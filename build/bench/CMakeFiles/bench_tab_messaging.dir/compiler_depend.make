# Empty compiler generated dependencies file for bench_tab_messaging.
# This may be replaced when dependencies are built.
