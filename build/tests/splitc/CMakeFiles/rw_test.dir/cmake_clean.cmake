file(REMOVE_RECURSE
  "CMakeFiles/rw_test.dir/rw_test.cc.o"
  "CMakeFiles/rw_test.dir/rw_test.cc.o.d"
  "rw_test"
  "rw_test.pdb"
  "rw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
