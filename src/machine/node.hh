/**
 * @file
 * One T3D node: Alpha core + local memory + shell, wired together.
 *
 * The node is the program-facing API of the machine model. Loads and
 * stores are routed the way the hardware routes them: plain local
 * virtual addresses go to the core's cache/write-buffer/DRAM path;
 * annexed virtual addresses resolve through the DTB Annex — to the
 * local path when the entry names the local PE (synonyms included),
 * to the shell's remote engine otherwise.
 *
 * Node implements the two wiring interfaces:
 *  - alpha::DrainPort: routes drained write-buffer lines to local
 *    DRAM (deferred commit — pending data stays invisible to synonym
 *    reads, §3.4) or to the shell's injection channel;
 *  - shell::RemoteMemoryPort: services requests arriving from other
 *    nodes against this node's DRAM timing and storage.
 */

#ifndef T3DSIM_MACHINE_NODE_HH
#define T3DSIM_MACHINE_NODE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "alpha/address.hh"
#include "alpha/cache.hh"
#include "alpha/core.hh"
#include "alpha/tlb.hh"
#include "alpha/write_buffer.hh"
#include "machine/config.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "probes/batch.hh"
#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/ports.hh"
#include "shell/shell.hh"
#include "sim/arrivals.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace t3dsim::machine
{

/** A processing element of the modeled T3D. */
class Node : public shell::RemoteMemoryPort, public alpha::DrainPort
{
  public:
    Node(const MachineConfig &config, PeId pe,
         shell::MachinePort &machine);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;
    ~Node();

    /** @name Program-facing timed memory operations */
    /// @{
    std::uint64_t loadU64(Addr va);
    std::uint32_t loadU32(Addr va);
    std::uint8_t loadU8(Addr va);
    void storeU64(Addr va, std::uint64_t value);
    void storeU32(Addr va, std::uint32_t value);
    void storeU8(Addr va, std::uint8_t value);
    void mb() { _core.mb(); }
    /// @}

    /**
     * FETCH hint through the annex: issue a binding prefetch of the
     * quadword at @p va (§5.2).
     */
    void fetchHint(Addr va);

    /** Pop the prefetch queue (load of the memory-mapped address). */
    std::uint64_t popPrefetch() { return _shell.prefetch().pop(); }

    /**
     * Block until every injected remote write has been acknowledged:
     * MB (push pending stores out of the write buffer — the §4.3
     * subtlety) then poll the status bit.
     */
    void waitRemoteWrites();

    /** Atomic swap on the node named by @p va's annex entry. */
    std::uint64_t swap(Addr va, std::uint64_t new_value);

    /** @name Components */
    /// @{
    Clock &clock() { return _clock; }
    alpha::AlphaCore &core() { return _core; }
    shell::Shell &shell() { return _shell; }
    mem::Storage &storage() { return _storage; }
    mem::DramController &dram() { return _dram; }
    alpha::DirectMappedCache &dcache() { return _dcache; }
    alpha::WriteBuffer &writeBuffer() { return _wb; }
    alpha::Tlb &tlb() { return _tlb; }
    PeId pe() const { return _pe; }
    /// @}

    /**
     * Bump-allocate @p bytes of this node's local segment (program
     * data; no timing).
     */
    Addr alloc(std::size_t bytes, std::size_t align = 8);

    /** Reset the allocator to the segment base (test support). */
    void resetAlloc() { _allocNext = allocBase; }

    /** @name shell::RemoteMemoryPort (network-side service) */
    /// @{
    Cycles serviceRead(Cycles arrive, Addr offset, void *dst,
                       std::size_t len, PeId requester) override;
    Cycles serviceWrite(Cycles arrive, Addr offset, const void *src,
                        std::size_t len, bool cache_inval,
                        PeId requester) override;
    Cycles serviceWriteMasked(Cycles arrive, Addr line_offset,
                              const std::uint8_t *data,
                              std::uint32_t byte_mask, bool cache_inval,
                              PeId requester) override;
    Cycles serviceSwap(Cycles arrive, Addr offset,
                       std::uint64_t new_value, std::uint64_t &old_value,
                       PeId requester) override;
    Cycles serviceFetchInc(Cycles arrive, unsigned reg,
                           std::uint64_t &old_value) override;
    void serviceMessage(Cycles arrive,
                        const std::uint64_t words[4]) override;
    void bulkReadRaw(Addr offset, void *dst, std::size_t len) override;
    void bulkWriteRaw(Addr offset, const void *src,
                      std::size_t len) override;
    /// @}

    /**
     * @name Split service paths for the host-parallel scheduler
     *
     * A cross-shard remote write needs its completion time
     * synchronously (the source's ack/backpressure bookkeeping uses
     * it) but must not touch the destination's shared state (storage,
     * dcache) until the window merge. The timing half only touches
     * the per-requester channel — which no host thread but the
     * requester's ever accesses — so it is safe in-window; the data
     * half is applied at the merge. serviceWriteMasked() ==
     * writeMaskedTiming() + applyMaskedLine(), in that order.
     */
    /// @{
    /** Channel-only timing of a masked line write (no data motion). */
    Cycles writeMaskedTiming(Cycles arrive, Addr line_offset,
                             PeId requester);

    /** Data half of a masked line write: storage + cache invalidate. */
    void applyMaskedLine(Addr line_offset, const std::uint8_t *data,
                         std::uint32_t byte_mask, bool cache_inval);

    /** serviceRead without the owner-thread storage cache. */
    Cycles serviceReadConcurrent(Cycles arrive, Addr offset, void *dst,
                                 std::size_t len, PeId requester);

    /** bulkReadRaw without the owner-thread storage cache. */
    void bulkReadRawConcurrent(Addr offset, void *dst, std::size_t len);
    /// @}

    /** @name alpha::DrainPort (write-buffer drain routing) */
    /// @{
    DrainResult drainLine(Cycles ready, Addr pa, const std::uint8_t *data,
                          std::uint32_t byte_mask,
                          std::uint32_t tag) override;
    void commitLine(Addr pa, const std::uint8_t *data,
                    std::uint32_t byte_mask) override;
    /// @}

    /** First allocatable offset (below is reserved scratch). */
    static constexpr Addr allocBase = 64 * KiB;

    /**
     * Timestamped arrivals of signaling-store bytes into this node's
     * memory (store_sync support, §7.1).
     */
    ArrivalLog &storeArrivals() { return _storeArrivals; }

    /** Timestamped arrivals of Active-Message deposits (§7.4). */
    ArrivalLog &amArrivals() { return _amArrivals; }

    /**
     * Install the SPMD executor's wakeup hooks: host-side callbacks
     * fired when store bytes, AM deposits, or user messages arrive
     * at this node, so the executor can wake parked PEs event-driven
     * instead of polling every node each scheduling step. The hooks
     * carry no simulated state and cannot affect model timing.
     */
    void setWakeupHooks(std::function<void()> on_store_arrival,
                        std::function<void()> on_am_arrival,
                        std::function<void()> on_message);

    /** Remove all executor wakeup hooks. */
    void clearWakeupHooks();

    /**
     * Host bytes resident for this node's model state: the node
     * object plus the dynamic parts of the dominant per-PE
     * structures (storage chunks and directory, D-cache sectors,
     * TLB entries, requester channels, counter block, arrival
     * logs). Small fixed-size shell containers are excluded.
     */
    std::size_t residentModelBytes() const;

    /** @name Observability */
    /// @{
    /**
     * This node's event record. The non-const accessor materializes
     * the (lazily-allocated) record and must only be called from
     * serial phases; the const accessor never allocates and returns
     * a shared all-zero record while the node has none.
     */
    probes::PerfCounters &counters();
    const probes::PerfCounters &counters() const;

    /**
     * The record when counting is enabled, nullptr otherwise. When
     * counting is enabled the record was materialized at
     * enableObservability() time, so this is safe from any host
     * thread.
     */
    probes::PerfCounters *
    countersIfEnabled()
    {
        return _countersOn ? _counters.get() : nullptr;
    }

    /**
     * Wire the counter record and the machine-wide trace sink
     * (either may be disabled/null) into the core, TLB, write
     * buffer, DRAM, and shell. Called by the Machine constructor.
     */
    void enableObservability(bool counters_on, probes::TraceSink *trace);

    /**
     * Toggle per-requester-channel counter batching (see
     * probes/batch.hh). While on, a channel touched from a thread
     * with an installed CounterBatch redirects its DRAM counter
     * bumps into a channel-local delta and registers the delta with
     * that batch for the serial per-window flush. Turning it off
     * (serial phases only) rewires every channel to this node's real
     * record and folds any unflushed delta into it.
     */
    void setChannelCounterBatching(bool on);
    /// @}

  private:
    /**
     * Resolve the destination PE of an annexed virtual address at
     * store issue and latch it as the core's store tag (the DTB
     * annex is consulted during address translation, before the
     * write buffer; the destination travels with the entry).
     */
    PeId latchStoreTarget(Addr va);

    MachineConfig _config;
    PeId _pe;
    shell::MachinePort &_machine;

    Clock _clock;
    mem::Storage _storage;
    mem::DramController _dram;
    alpha::Tlb _tlb;
    alpha::DirectMappedCache _dcache;
    alpha::WriteBuffer _wb;
    alpha::AlphaCore _core;
    shell::Shell _shell;

    ArrivalLog _storeArrivals;
    ArrivalLog _amArrivals;

    /**
     * Per-requester timing view of this node's memory system: the
     * DRAM page/bank state of that requester's own access stream
     * (see shell::RemoteMemoryPort for why contention between
     * requesters is deliberately not modeled) and the write-port
     * busy-until time. The memory controller services one
     * requester's network writes through a single port: a row miss
     * stalls that stream for the full access, an in-page write only
     * for the column cycle — what makes 16 KB-stride non-blocking
     * writes visibly slower (§5.3).
     *
     * A channel is only ever touched from the requester's own
     * host-execution context, so the parallel scheduler can compute
     * write timing in-window without racing the owner.
     */
    struct RequesterChannel
    {
        explicit RequesterChannel(const mem::DramConfig &config)
            : dram(config)
        {
        }

        mem::DramController dram;
        Cycles writePortFree = 0;

        /**
         * @name Counter batching (probes/batch.hh)
         *
         * Under a multi-shard counters-on run the channel's DRAM
         * bumps are redirected into @c delta (materialized on first
         * registration) instead of this node's record, which the
         * requester's thread must not touch. Single writer: the
         * requester's own thread sets @c registered and bumps the
         * delta; the controller clears both at the serial flush.
         */
        /// @{
        std::unique_ptr<probes::PerfCounters> delta;
        bool registered = false;
        /// @}
    };

    /**
     * Requester → channel map with two representations. Small
     * machines keep the historical dense flat array indexed by
     * requester — a plain load on the remote-access hot path (the
     * old per-op hash lookups showed up at 256 PEs) — with
     * atomically published lazily-allocated entries; each slot has a
     * single writer (its own requester), so dense inserts need no
     * lock. Beyond densePes the array itself would be the O(P^2)
     * footprint (512 KB per node at 64K PEs before a single access),
     * so large machines switch to an open-addressing hash sized by
     * the requesters actually seen: lookups are lock-free
     * (acquire-published keys over release-stored channel pointers),
     * inserts — rare, once per (node, requester) — serialize on a
     * mutex because distinct requesters on different shards may
     * insert concurrently. Grown tables are retired, not freed, so a
     * concurrent reader's table pointer stays valid for the node's
     * lifetime.
     */
    class ChannelTable
    {
      public:
        explicit ChannelTable(std::uint32_t num_pes);
        ~ChannelTable();

        ChannelTable(const ChannelTable &) = delete;
        ChannelTable &operator=(const ChannelTable &) = delete;

        /** Lock-free lookup; nullptr if never materialized. */
        RequesterChannel *
        find(PeId requester) const
        {
            if (!_dense.empty())
                return _dense[requester].load(std::memory_order_relaxed);
            return findSparse(requester);
        }

        /** Materialize (or return) the channel for @p requester. */
        RequesterChannel &getOrCreate(PeId requester,
                                      const mem::DramConfig &config,
                                      probes::PerfCounters *ctr);

        /** Visit every materialized channel (serial phases only). */
        template <typename F>
        void
        forEach(F &&f)
        {
            if (!_dense.empty()) {
                for (auto &slot : _dense)
                    if (RequesterChannel *ch =
                            slot.load(std::memory_order_acquire))
                        f(*ch);
                return;
            }
            const Table *t = _table.load(std::memory_order_acquire);
            if (!t)
                return;
            for (std::size_t i = 0; i < t->capacity; ++i)
                if (RequesterChannel *ch = t->entries[i].chan.load(
                        std::memory_order_acquire))
                    f(*ch);
        }

        /** Channels materialized so far. */
        std::size_t
        channelCount() const
        {
            return _count.load(std::memory_order_relaxed);
        }

        /** Host bytes resident (self + tables + channels). */
        std::size_t residentBytes() const;

        /** Largest machine still using the dense representation. */
        static constexpr std::uint32_t densePes = 1024;

      private:
        struct Entry
        {
            std::atomic<std::uint32_t> key{0}; ///< requester+1; 0 empty
            std::atomic<RequesterChannel *> chan{nullptr};
        };

        struct Table
        {
            explicit Table(std::size_t cap);
            std::size_t capacity;
            unsigned hashShift; ///< 64 - log2(capacity)
            std::unique_ptr<Entry[]> entries;
        };

        static std::size_t
        slotOf(std::uint32_t key, const Table &t)
        {
            return static_cast<std::size_t>(
                (key * 0x9E3779B97F4A7C15ull) >> t.hashShift);
        }

        RequesterChannel *findSparse(PeId requester) const;

        /** Rehash into a table of @p capacity; returns it published. */
        Table *grow(std::size_t capacity);

        std::vector<std::atomic<RequesterChannel *>> _dense;
        std::atomic<Table *> _table{nullptr};
        std::vector<std::unique_ptr<Table>> _retired;
        std::mutex _insertMutex;
        std::atomic<std::size_t> _count{0};
    };

    RequesterChannel &channelFor(PeId requester);

    /** Register @p ch with the calling thread's counter batch
     *  (channel-batching slow path; see setChannelCounterBatching). */
    void batchChannel(RequesterChannel &ch);

    ChannelTable _channels;

    /** setChannelCounterBatching state. */
    bool _channelBatching = false;

    Addr _allocNext = allocBase;

    /** Materialized on first use / at enableObservability(true). */
    std::unique_ptr<probes::PerfCounters> _counters;
    bool _countersOn = false;
};

} // namespace t3dsim::machine

#endif // T3DSIM_MACHINE_NODE_HH
