# Empty compiler generated dependencies file for byte_ops_test.
# This may be replaced when dependencies are built.
