/**
 * @file
 * User-level message queue, receiver side (§7.3).
 *
 * Sends are cheap (a 122-cycle PAL call, charged by the
 * RemoteEngine); receives are expensive: the arriving message
 * interrupts the processor (25 us) before landing in the user-level
 * queue, and dispatching to a user message handler costs a further
 * 33 us. Those costs are charged to the *receiving* processor when
 * it takes a message out of the queue.
 *
 * The memory-resident queue holds msgQueueCapacity entries; arrivals
 * past that are spilled to a DRAM overflow region by system software
 * instead of being dropped (or aborting the model). A spilled
 * message costs the receiver an extra msgSpillDrainCycles copy-back
 * when it is finally dequeued, so a flooded receiver slows down but
 * the run completes — matching the paper's observation that the
 * receiver eats all queue-pressure cost. Under-capacity traffic is
 * charged exactly as before the spill path existed.
 */

#ifndef T3DSIM_SHELL_MSG_QUEUE_HH
#define T3DSIM_SHELL_MSG_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/config.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::shell
{

/** A four-word T3D network message. */
struct Message
{
    /** Network arrival time at the receiving node. */
    Cycles arrival = 0;

    std::array<std::uint64_t, 4> words{};
};

/** Per-node user-level receive queue. */
class MessageQueue
{
  public:
    explicit MessageQueue(const ShellConfig &config);

    /** Network-side delivery of an arriving message. */
    void deliver(Cycles arrive, const std::uint64_t words[4]);

    /** True if a message is queued (regardless of arrival time). */
    bool hasMessage() const { return !_hw.empty(); }

    /** Arrival time of the queue head, if any. */
    std::optional<Cycles> headArrival() const;

    /**
     * Dequeue the head message and compute the time the receiving
     * processor is done absorbing it:
     *   max(now, arrival) + interrupt (+ handler dispatch when
     *   @p handler_mode).
     *
     * The caller advances its clock to the returned time.
     */
    std::pair<Message, Cycles> dequeue(Cycles now, bool handler_mode);

    /** Queued messages, hardware segment plus spill region. */
    std::size_t depth() const { return _hw.size() + _spill.size(); }

    /** Messages currently parked in the DRAM overflow region. */
    std::size_t spillDepth() const { return _spill.size(); }

    /** Messages that ever entered the overflow region. */
    std::uint64_t spilled() const { return _spilled; }

    std::uint64_t delivered() const { return _delivered; }

    /**
     * Install a host-side hook fired after every deliver(). Used by
     * the SPMD executor to wake a parked receiver event-driven
     * instead of polling the queue; must not touch simulated state.
     */
    void
    setDeliveryListener(std::function<void()> listener)
    {
        _onDeliver = std::move(listener);
    }

    /** Remove the deliver() hook. */
    void clearDeliveryListener() { _onDeliver = nullptr; }

    /**
     * Attach the receiving node's counters and the machine trace
     * sink. The queue doesn't know its PE, so the shell passes it.
     */
    void
    setObservability(probes::PerfCounters *ctr, probes::TraceSink *trace,
                     PeId pe)
    {
        _ctr = ctr;
        _trace = trace;
        _pe = pe;
    }

  private:
    /** A queued message plus where it currently resides. */
    struct Entry
    {
        Message msg;

        /** True if the entry ever sat in the DRAM overflow region
         *  (the copy-back cost is charged at dequeue). */
        bool spilled = false;
    };

    const ShellConfig &_config;

    /**
     * Invariant: concat(_hw, _spill) is sorted by arrival, and
     * _spill is non-empty only while _hw is at capacity — system
     * software refills the hardware segment as it drains.
     */
    sim::RingBuffer<Entry> _hw;
    sim::RingBuffer<Entry> _spill;

    std::uint64_t _delivered = 0;
    std::uint64_t _spilled = 0;
    std::function<void()> _onDeliver;

    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;
    PeId _pe = 0;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_MSG_QUEUE_HH
