#include "taskgraph/lower.hh"

#include <algorithm>
#include <map>
#include <tuple>

namespace t3dsim::taskgraph
{

namespace
{

/** Task-graph data lives above the splitc allocator's arena so a
 *  program can still allocLocal without colliding. */
constexpr Addr kLayoutBase = 1 * MiB;

Mechanism
pickMechanism(const Edge &e, PeId src_pe, PeId dst_pe,
              const LowerOptions &opt)
{
    if (src_pe == dst_pe || e.bytes == 0)
        return Mechanism::Local;
    if (e.mech != Mechanism::Auto)
        return e.mech;
    if (e.bytes <= opt.storeMaxBytes)
        return Mechanism::Store;
    if (e.bytes <= opt.putMaxBytes)
        return Mechanism::Put;
    if (e.bytes <= opt.bltCrossoverBytes)
        return Mechanism::Get;
    return Mechanism::Blt;
}

} // namespace

bool
Plan::build(const TaskGraph &graph, const LowerOptions &options, Plan &out,
            std::string &err)
{
    out = Plan{};
    out.pes = options.pes;
    out.options = options;

    // Placement: pinned tasks first, then greedy least-loaded (by
    // accumulated cycles + flop cycles) in task-index order with the
    // lowest PE id breaking ties — fully deterministic.
    out.placement.resize(graph.tasks.size());
    std::vector<std::uint64_t> load(options.pes, 0);
    for (std::size_t t = 0; t < graph.tasks.size(); ++t) {
        const Task &task = graph.tasks[t];
        if (task.pe >= 0) {
            out.placement[t] = static_cast<PeId>(task.pe);
            load[out.placement[t]] +=
                task.cycles + task.flops * options.flopCycles;
        }
    }
    for (std::size_t t = 0; t < graph.tasks.size(); ++t) {
        const Task &task = graph.tasks[t];
        if (task.pe >= 0)
            continue;
        PeId best = 0;
        for (PeId pe = 1; pe < options.pes; ++pe) {
            if (load[pe] < load[best])
                best = pe;
        }
        out.placement[t] = best;
        load[best] += task.cycles + task.flops * options.flopCycles;
    }

    std::uint32_t levels = 0;
    for (const Task &task : graph.tasks)
        levels = std::max(levels, task.level + 1);
    out.levels = levels;

    // Mechanism choice + memory layout. Each PE's region is a bump
    // cursor: one result word per task it owns, one staging span per
    // out-edge it produces, one buffer span per cross-PE in-edge it
    // consumes. Addresses depend only on (graph, options), so every
    // scheduler flavor sees the same layout. Every span is rounded to
    // the 32-byte cache line: AM-handler deliveries write raw storage
    // (run.cc), so no two spans may share a line a consumer might
    // already have cached.
    std::vector<Addr> cursor(options.pes, kLayoutBase);
    auto claim = [&cursor](PeId pe, std::uint64_t bytes) {
        const Addr at = cursor[pe];
        cursor[pe] += (bytes + 31) & ~std::uint64_t{31};
        return at;
    };
    out.taskResultAddr.resize(graph.tasks.size());
    for (std::size_t t = 0; t < graph.tasks.size(); ++t)
        out.taskResultAddr[t] = claim(out.placement[t], 8);

    out.loweredEdges.resize(graph.edges.size());
    for (std::uint32_t ei = 0; ei < graph.edges.size(); ++ei) {
        const Edge &e = graph.edges[ei];
        LoweredEdge &le = out.loweredEdges[ei];
        le.edge = ei;
        le.srcPe = out.placement[e.src];
        le.dstPe = out.placement[e.dst];
        le.level = graph.tasks[e.src].level;
        le.words = static_cast<std::uint32_t>((e.bytes + 7) / 8);
        le.mech = pickMechanism(e, le.srcPe, le.dstPe, options);

        le.stagingAddr = claim(le.srcPe, std::uint64_t{le.words} * 8);
        if (le.mech != Mechanism::Local) {
            le.bufAddr = claim(le.dstPe, std::uint64_t{le.words} * 8);
        } else {
            // Same-PE edge: the consumer folds straight from staging.
            le.bufAddr = le.stagingAddr;
        }
    }

    // Contention canonicalization guard (docs/STRESS.md): the
    // schedulers only agree on AM ticket order and hardware-message
    // timing when each receiver has a single sender per superstep, so
    // reject plans that would put two sending PEs behind one
    // receiver's queue in the same level.
    std::map<std::tuple<std::uint32_t, PeId, int>, PeId> senders;
    for (const LoweredEdge &le : out.loweredEdges) {
        if (le.mech != Mechanism::Am && le.mech != Mechanism::Message)
            continue;
        const int kind = le.mech == Mechanism::Am ? 0 : 1;
        auto [it, inserted] = senders.emplace(
            std::make_tuple(le.level, le.dstPe, kind), le.srcPe);
        if (!inserted && it->second != le.srcPe) {
            err = "edge " + std::to_string(le.edge) + ": " +
                  mechanismName(le.mech) + " edges into pe " +
                  std::to_string(le.dstPe) + " at level " +
                  std::to_string(le.level) +
                  " have multiple sender PEs (" +
                  std::to_string(it->second) + " and " +
                  std::to_string(le.srcPe) +
                  "); one sender per receiver per level";
            return false;
        }
    }

    // Work lists.
    out.work.assign(options.pes,
                    std::vector<PeLevelWork>(std::max(levels, 1u)));
    for (std::uint32_t t = 0; t < graph.tasks.size(); ++t)
        out.work[out.placement[t]][graph.tasks[t].level].tasks.push_back(t);
    for (std::uint32_t ei = 0; ei < out.loweredEdges.size(); ++ei) {
        const LoweredEdge &le = out.loweredEdges[ei];
        switch (le.mech) {
          case Mechanism::Local:
            break;
          case Mechanism::Store:
          case Mechanism::Put:
            out.work[le.srcPe][le.level].push.push_back(ei);
            break;
          case Mechanism::Am:
            out.work[le.srcPe][le.level].push.push_back(ei);
            ++out.work[le.dstPe][le.level].expectAms;
            break;
          case Mechanism::Message:
            out.work[le.srcPe][le.level].push.push_back(ei);
            ++out.work[le.dstPe][le.level].expectMessages;
            break;
          case Mechanism::Get:
          case Mechanism::Blt:
            out.work[le.dstPe][le.level].pull.push_back(ei);
            break;
          case Mechanism::Auto:
            err = "internal: edge " + std::to_string(ei) +
                  " left unlowered";
            return false;
        }
    }
    return true;
}

} // namespace t3dsim::taskgraph
