/**
 * @file
 * Tests of the sawtooth stride probe itself (§2.1): coverage of the
 * (array, stride) grid, determinism, and the warm-up discipline that
 * makes it measure steady state.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "probes/stride.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;

TEST(StrideProbe, GridCoverage)
{
    Machine m(MachineConfig::t3d(2));
    auto &node = m.node(0);
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 32 * KiB);

    // Strides 8..array/2 for each power-of-two array size.
    int count_4k = 0, count_32k = 0;
    for (const auto &p : points) {
        if (p.arrayBytes == 4 * KiB)
            ++count_4k;
        if (p.arrayBytes == 32 * KiB)
            ++count_32k;
    }
    EXPECT_EQ(count_4k, 9);  // 8..2048
    EXPECT_EQ(count_32k, 12); // 8..16384
}

TEST(StrideProbe, FindPoint)
{
    Machine m(MachineConfig::t3d(2));
    auto &node = m.node(0);
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 8 * KiB);
    EXPECT_NE(probes::findPoint(points, 8 * KiB, 64), nullptr);
    EXPECT_EQ(probes::findPoint(points, 16 * KiB, 64), nullptr);
    EXPECT_EQ(probes::findPoint(points, 8 * KiB, 8 * KiB), nullptr)
        << "stride beyond array/2";
}

TEST(StrideProbe, DeterministicAcrossMachines)
{
    auto run = [] {
        Machine m(MachineConfig::t3d(2));
        auto &node = m.node(0);
        return probes::strideProbe(
            [&](Addr a) { node.core().loadU64(a); },
            [&] { return node.clock().now(); },
            0, 4 * KiB, 64 * KiB);
    };
    auto a = run();
    auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].avgCyclesPerOp, b[i].avgCyclesPerOp);
}

TEST(StrideProbe, NsAndCyclesConsistent)
{
    Machine m(MachineConfig::t3d(2));
    auto &node = m.node(0);
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 8 * KiB);
    for (const auto &p : points) {
        EXPECT_NEAR(p.avgNsPerOp, p.avgCyclesPerOp * 6.667, 0.05);
    }
}

TEST(StrideProbe, WarmupMakesCacheResidentArraysHit)
{
    // Without the warm-up pass the 4 KB array would show cold
    // misses; the probe must report pure hits, as the paper's
    // repeated measurements do.
    Machine m(MachineConfig::t3d(2));
    auto &node = m.node(0);
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 4 * KiB);
    const auto *p = probes::findPoint(points, 4 * KiB, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(p->avgCyclesPerOp, 1.0);
}

} // namespace
