/**
 * @file
 * Translation look-aside buffer model (§2.2, §3.4).
 *
 * The T3D runs with very large pages, so its read-latency profile
 * shows no TLB inflection and annexed (remote-segment) accesses do
 * not meaningfully consume TLB reach — the property that makes
 * multiple annex registers *safe* for the TLB even though they are
 * unsafe for the write buffer (§3.4). The DEC workstation uses 8 KB
 * pages, producing the inflection at 8 KB stride in Figure 1.
 *
 * Modeled as fully associative with LRU replacement; translation is
 * identity (see alpha/address.hh) so the TLB only contributes a miss
 * penalty.
 */

#ifndef T3DSIM_ALPHA_TLB_HH
#define T3DSIM_ALPHA_TLB_HH

#include <cstdint>
#include <vector>

#include "probes/counters.hh"
#include "sim/types.hh"

namespace t3dsim::alpha
{

/** Fully associative LRU TLB; timing-only. */
class Tlb
{
  public:
    struct Config
    {
        /** Number of entries. 21064 DTB: 32. */
        unsigned entries = 32;

        /** Page size; T3D preset uses huge (4 MB) pages. */
        std::uint64_t pageBytes = 4 * MiB;

        /** Cycles added by a miss (page-table walk via PALcode). */
        Cycles missPenaltyCycles = 35;
    };

    explicit Tlb(const Config &config);

    /**
     * Touch the translation for @p va.
     * @return Penalty cycles (0 on hit).
     *
     * Inline fast path: a repeat hit on the entry that satisfied the
     * previous access (the overwhelming case under the T3D's 4 MB
     * pages) costs a compare and a counter bump; everything else
     * falls through to the associative scan.
     */
    Cycles
    access(Addr va)
    {
        const std::uint64_t page = pageOf(va);
        ++_useCounter;
        if (_lastHit < _entries.size()) {
            Entry &entry = _entries[_lastHit];
            if (entry.valid && entry.page == page) {
                entry.lastUse = _useCounter;
                ++_hits;
                return 0;
            }
        }
        return accessScan(page);
    }

    /** True if the page holding @p va is currently mapped. */
    bool contains(Addr va) const;

    /** Drop all entries. */
    void flush();

    /** Attach (or detach, with nullptr) the node's event counters. */
    void setCounters(probes::PerfCounters *ctr) { _ctr = ctr; }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    const Config &config() const { return _config; }

    /** Host bytes resident for this TLB model. */
    std::size_t
    residentBytes() const
    {
        return sizeof(Tlb) + _entries.capacity() * sizeof(Entry);
    }

  private:
    struct Entry
    {
        std::uint64_t page = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Scan path of access(): LRU lookup/replace for @p page. */
    Cycles accessScan(std::uint64_t page);

    /** Page number of @p va (shift when the page size is a power of
     *  two — the common configs — division otherwise). */
    std::uint64_t
    pageOf(Addr va) const
    {
        return _pageShift ? va >> _pageShift : va / _config.pageBytes;
    }

    Config _config;

    /** Entry array, materialized on the first associative scan: an
     *  untouched PE's TLB costs only the vector header. Empty and
     *  full-size are the only states (access() treats empty as
     *  all-invalid via the _lastHit bounds check). */
    std::vector<Entry> _entries;

    /** log2(pageBytes) when it is a power of two, else 0. */
    unsigned _pageShift = 0;

    /** Index of the entry that satisfied the last access: repeated
     *  same-page accesses (the overwhelming pattern under 4 MB
     *  pages) skip the associative scan. Guarded by a page/valid
     *  re-check, so it is a pure host-side shortcut. */
    unsigned _lastHit = ~0u;

    probes::PerfCounters *_ctr = nullptr;

    std::uint64_t _useCounter = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace t3dsim::alpha

#endif // T3DSIM_ALPHA_TLB_HH
