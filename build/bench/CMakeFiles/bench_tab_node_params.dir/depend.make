# Empty dependencies file for bench_tab_node_params.
# This may be replaced when dependencies are built.
