#include "mem/storage.hh"

#include <cstring>

#include "sim/logging.hh"

namespace t3dsim::mem
{

Storage::Storage(Addr limit)
    : _limit(limit)
{
}

void
Storage::checkRange(Addr addr, std::size_t len) const
{
    T3D_ASSERT(addr + len <= _limit && addr + len >= addr,
               "storage access out of range: addr=", addr, " len=", len,
               " limit=", _limit);
}

Storage::Chunk &
Storage::chunkFor(Addr addr)
{
    Addr key = addr / chunkBytes;
    auto it = _chunks.find(key);
    if (it == _chunks.end()) {
        auto chunk = std::make_unique<Chunk>();
        chunk->fill(0);
        it = _chunks.emplace(key, std::move(chunk)).first;
    }
    return *it->second;
}

const Storage::Chunk *
Storage::chunkIfPresent(Addr addr) const
{
    auto it = _chunks.find(addr / chunkBytes);
    return it == _chunks.end() ? nullptr : it->second.get();
}

std::uint8_t
Storage::readU8(Addr addr) const
{
    checkRange(addr, 1);
    const Chunk *chunk = chunkIfPresent(addr);
    return chunk ? (*chunk)[addr % chunkBytes] : 0;
}

void
Storage::writeU8(Addr addr, std::uint8_t value)
{
    checkRange(addr, 1);
    chunkFor(addr)[addr % chunkBytes] = value;
}

std::uint32_t
Storage::readU32(Addr addr) const
{
    std::uint32_t v = 0;
    readBlock(addr, &v, sizeof(v));
    return v;
}

void
Storage::writeU32(Addr addr, std::uint32_t value)
{
    writeBlock(addr, &value, sizeof(value));
}

std::uint64_t
Storage::readU64(Addr addr) const
{
    std::uint64_t v = 0;
    readBlock(addr, &v, sizeof(v));
    return v;
}

void
Storage::writeU64(Addr addr, std::uint64_t value)
{
    writeBlock(addr, &value, sizeof(value));
}

void
Storage::readBlock(Addr addr, void *dst, std::size_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::size_t off = addr % chunkBytes;
        std::size_t take = std::min(len, chunkBytes - off);
        const Chunk *chunk = chunkIfPresent(addr);
        if (chunk)
            std::memcpy(out, chunk->data() + off, take);
        else
            std::memset(out, 0, take);
        out += take;
        addr += take;
        len -= take;
    }
}

void
Storage::writeBlock(Addr addr, const void *src, std::size_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::size_t off = addr % chunkBytes;
        std::size_t take = std::min(len, chunkBytes - off);
        std::memcpy(chunkFor(addr).data() + off, in, take);
        in += take;
        addr += take;
        len -= take;
    }
}

} // namespace t3dsim::mem
