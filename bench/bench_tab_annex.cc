/**
 * @file
 * §3.2/§3.4 annex management table: the 23-cycle update cost, the
 * single-register vs. hashed-table policy comparison ("no clear
 * performance advantage"), and a demonstration of the write-buffer
 * synonym hazard that rules out careless multi-register use.
 */

#include <iostream>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

using namespace t3dsim;
using shell::ReadMode;

namespace
{

/** PE0 reads one word from each of @p targets PEs, @p rounds times. */
Cycles
roundRobinCost(splitc::AnnexPolicy policy, unsigned targets, int rounds)
{
    machine::Machine m(machine::MachineConfig::t3d(16));
    splitc::SplitcConfig cfg;
    cfg.annexPolicy = policy;
    Cycles result = 0;
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            for (unsigned t = 1; t <= targets; ++t) // warm
                p.readU64(splitc::GlobalAddr::make(t, 0));
            const Cycles t0 = p.now();
            for (int r = 0; r < rounds; ++r) {
                for (unsigned t = 1; t <= targets; ++t)
                    p.readU64(splitc::GlobalAddr::make(t, 0));
            }
            result = (p.now() - t0) / (rounds * targets);
            co_return;
        },
        cfg);
    return result;
}

} // namespace

int
main()
{
    std::cout << "Annex register management (Sec. 3.2/3.4)\n";

    // Update cost.
    machine::Machine m(machine::MachineConfig::t3d(4));
    auto &n0 = m.node(0);
    const Cycles t0 = n0.clock().now();
    n0.shell().setAnnex(1, {1, ReadMode::Uncached});
    const Cycles update = n0.clock().now() - t0;

    probes::Table t({"measurement", "model", "paper"});
    t.addRow("annex update (store-conditional)",
             std::to_string(update) + " cy", "23 cy");
    t.addRow("single register, 4-target round robin (cy/read)",
             roundRobinCost(splitc::AnnexPolicy::SingleReload, 4, 8),
             "update every access");
    t.addRow("hashed table, 4-target round robin (cy/read)",
             roundRobinCost(splitc::AnnexPolicy::HashedTable, 4, 8),
             "lookup every access");
    t.addRow("single register, 12 targets",
             roundRobinCost(splitc::AnnexPolicy::SingleReload, 12, 8),
             "-");
    t.addRow("hashed table, 12 targets",
             roundRobinCost(splitc::AnnexPolicy::HashedTable, 12, 8),
             "-");
    t.print();
    std::cout << "paper's conclusion: the savings of a table lookup "
                 "relative to a 23-cycle reload are small — a single "
                 "annex entry could have sufficed\n\n";

    // The synonym hazard demonstration (the reason multi-register
    // schemes need care).
    n0.shell().setAnnex(1, {0, ReadMode::Uncached});
    n0.shell().setAnnex(2, {0, ReadMode::Uncached});
    const Addr offset = 0x8000;
    n0.storage().writeU64(offset, 0xaaaa);
    n0.storeU64(alpha::makeAnnexedVa(1, offset), 0xbbbb);
    const std::uint64_t synonym_read =
        n0.loadU64(alpha::makeAnnexedVa(2, offset));
    std::cout << "write-buffer synonym probe: wrote 0xbbbb through "
                 "annex 1, read through annex 2 -> 0x"
              << std::hex << synonym_read << std::dec
              << (synonym_read == 0xaaaa
                      ? " (STALE — the Sec. 3.4 hazard)"
                      : " (fresh)")
              << "\n";
    return 0;
}
