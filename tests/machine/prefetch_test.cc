/**
 * @file
 * Integration tests of the binding prefetch queue (§5.2): single
 * prefetch ≈ blocking read + 15 cycles; groups of 16 approach ~31
 * cycles per element; binding semantics; FIFO order; overflow panic.
 */

#include <gtest/gtest.h>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using shell::ReadMode;

struct PrefetchTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(8)};
    machine::Node &n0 = m.node(0);
    machine::Node &n1 = m.node(1);

    void
    SetUp() override
    {
        n0.shell().setAnnex(1, {1, ReadMode::Uncached});
        for (int i = 0; i < 256; ++i)
            n1.storage().writeU64(0x1000 + 8 * i, 100 + i);
        // Warm the remote DRAM page.
        n0.loadU64(va(0));
    }

    Addr va(int i) { return alpha::makeAnnexedVa(1, 0x1000 + 8 * i); }
};

TEST_F(PrefetchTest, SinglePrefetchReturnsData)
{
    n0.fetchHint(va(3));
    n0.mb();
    EXPECT_EQ(n0.popPrefetch(), 103u);
}

TEST_F(PrefetchTest, SingleCostsBlockingReadPlusAbout15)
{
    n0.core().storeU64(0x100, 0); // warm the local TLB page
    // Blocking read reference.
    Cycles t0 = n0.clock().now();
    n0.loadU64(va(1));
    const double blocking = double(n0.clock().now() - t0);

    // Prefetch + MB + pop + local store.
    t0 = n0.clock().now();
    n0.fetchHint(va(2));
    n0.mb();
    const std::uint64_t v = n0.popPrefetch();
    n0.core().storeU64(0x100, v);
    const double prefetched = double(n0.clock().now() - t0);

    EXPECT_NEAR(prefetched - blocking, 15.0, 10.0)
        << "blocking=" << blocking << " prefetched=" << prefetched;
}

TEST_F(PrefetchTest, GroupOf16Near31CyclesPerElement)
{
    const Cycles t0 = n0.clock().now();
    for (int i = 0; i < 16; ++i)
        n0.fetchHint(va(i));
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t v = n0.popPrefetch();
        n0.core().storeU64(0x100 + 8 * i, v);
    }
    const double per_elem = double(n0.clock().now() - t0) / 16.0;
    EXPECT_NEAR(per_elem, 31.0, 4.0);
}

TEST_F(PrefetchTest, PipeliningBeatsBlockingReads)
{
    // Four blocking reads...
    Cycles t0 = n0.clock().now();
    for (int i = 0; i < 4; ++i)
        n0.loadU64(va(8 + i));
    const double blocking4 = double(n0.clock().now() - t0);

    // ...versus four prefetches + pops.
    t0 = n0.clock().now();
    for (int i = 0; i < 4; ++i)
        n0.fetchHint(va(16 + i));
    for (int i = 0; i < 4; ++i)
        n0.popPrefetch();
    const double prefetch4 = double(n0.clock().now() - t0);

    EXPECT_LT(prefetch4, blocking4)
        << "§5.2: grouped prefetch is significantly faster";
}

TEST_F(PrefetchTest, FifoOrder)
{
    n0.fetchHint(va(5));
    n0.fetchHint(va(6));
    n0.fetchHint(va(7));
    n0.mb();
    EXPECT_EQ(n0.popPrefetch(), 105u);
    EXPECT_EQ(n0.popPrefetch(), 106u);
    EXPECT_EQ(n0.popPrefetch(), 107u);
}

TEST_F(PrefetchTest, BindingSemantics)
{
    // The value is captured when the remote memory services the
    // request; later updates do not affect the queued copy.
    n0.fetchHint(va(9));
    n0.mb();
    n1.storage().writeU64(0x1000 + 8 * 9, 999);
    EXPECT_EQ(n0.popPrefetch(), 109u)
        << "binding prefetch holds the old value";
}

TEST_F(PrefetchTest, OutstandingCountAndMbThreshold)
{
    auto &pq = n0.shell().prefetch();
    EXPECT_TRUE(pq.needsMbBeforePop()) << "0 outstanding";
    for (int i = 0; i < 4; ++i)
        n0.fetchHint(va(i));
    EXPECT_EQ(pq.outstanding(), 4u);
    EXPECT_FALSE(pq.needsMbBeforePop()) << ">=4 pushed out naturally";
    for (int i = 0; i < 4; ++i)
        n0.popPrefetch();
}

TEST_F(PrefetchTest, OverflowSpillsInsteadOfAborting)
{
    auto &pq = n0.shell().prefetch();
    for (int i = 0; i < 16; ++i)
        n0.fetchHint(va(i));
    EXPECT_TRUE(pq.full());
    EXPECT_EQ(pq.spills(), 0u);

    // The 17th issue overflows the hardware slots: it is spilled to
    // the DRAM-side buffer rather than corrupting the FIFO.
    n0.fetchHint(va(16));
    EXPECT_EQ(pq.spills(), 1u);
    EXPECT_EQ(pq.outstanding(), 17u);

    // FIFO order and binding semantics survive the spill, and every
    // entry (including the spilled one) still returns its data.
    for (int i = 0; i < 17; ++i)
        EXPECT_EQ(n0.popPrefetch(), 100u + i);
    EXPECT_TRUE(pq.empty());
}

TEST_F(PrefetchTest, SpilledEntryPaysTheSpillCost)
{
    // Reference: issue+pop cost of the 16th (last in-capacity) entry.
    for (int i = 0; i < 15; ++i)
        n0.fetchHint(va(i));
    Cycles t0 = n0.clock().now();
    n0.fetchHint(va(15));
    const Cycles inCapacityIssue = n0.clock().now() - t0;

    // The spilled 17th entry pays the spill premium at issue...
    t0 = n0.clock().now();
    n0.fetchHint(va(16));
    const Cycles spilledIssue = n0.clock().now() - t0;
    EXPECT_EQ(spilledIssue, inCapacityIssue + m.config().shell.prefetchSpillCycles);

    // ...and again when it is recovered at pop (measured against the
    // in-capacity entry popped immediately before it, after the
    // network round trips have long completed).
    for (int i = 0; i < 15; ++i)
        n0.popPrefetch();
    n0.clock().advance(100000);
    t0 = n0.clock().now();
    n0.popPrefetch();
    const Cycles inCapacityPop = n0.clock().now() - t0;
    t0 = n0.clock().now();
    n0.popPrefetch();
    const Cycles spilledPop = n0.clock().now() - t0;
    EXPECT_EQ(spilledPop, inCapacityPop + m.config().shell.prefetchSpillCycles);
}

TEST_F(PrefetchTest, PopEmptyPanics)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(n0.popPrefetch(), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST_F(PrefetchTest, LocalPrefetchWorks)
{
    n0.storage().writeU64(0x2000, 55);
    n0.fetchHint(alpha::makeAnnexedVa(0, 0x2000));
    n0.mb();
    EXPECT_EQ(n0.popPrefetch(), 55u);
}

} // namespace
