/**
 * @file
 * Tests of bulk transfers (§6): every mechanism moves data
 * correctly, and the bandwidth ordering matches Figure 8 — prefetch
 * beats cached beats uncached in the mid range, the BLT wins above
 * ~16 KB, and stores beat the BLT for writes.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

constexpr Addr remoteBase = 0x100000;
constexpr Addr localBase = 0x200000;

struct BulkTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(4)};

    void
    SetUp() override
    {
        for (int i = 0; i < 16384; ++i)
            m.node(1).storage().writeU64(remoteBase + 8 * i, 7000 + i);
    }

    void
    expectCopied(std::size_t bytes)
    {
        for (std::size_t i = 0; i < bytes / 8; ++i) {
            ASSERT_EQ(m.node(0).storage().readU64(localBase + 8 * i),
                      7000 + i)
                << "word " << i;
        }
    }

    /** Run one mechanism on PE0 and return MB/s. */
    template <typename Fn>
    double
    bandwidth(std::size_t bytes, Fn &&fn)
    {
        double mbps = 0;
        runSpmd(m, [&](Proc &p) -> ProcTask {
            if (p.pe() == 0) {
                const Cycles t0 = p.now();
                fn(p);
                p.node().mb();
                const double secs =
                    cyclesToNs(p.now() - t0) * 1e-9;
                mbps = (double(bytes) / 1e6) / secs;
            }
            co_return;
        });
        return mbps;
    }
};

TEST_F(BulkTest, UncachedCopiesData)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.bulkReadUncached(localBase,
                               GlobalAddr::make(1, remoteBase), 1024);
        co_return;
    });
    expectCopied(1024);
}

TEST_F(BulkTest, CachedCopiesData)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.bulkReadCached(localBase,
                             GlobalAddr::make(1, remoteBase), 1024);
        co_return;
    });
    expectCopied(1024);
}

TEST_F(BulkTest, CachedLeavesNoStaleLines)
{
    // The coherence flushes must leave none of the source cached.
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.bulkReadCached(localBase,
                             GlobalAddr::make(1, remoteBase), 512);
            auto &annex = p.node().shell().annex();
            EXPECT_EQ(annex.peOf(1), 1u);
            // Probe a few source lines: all flushed.
            for (int i = 0; i < 16; ++i) {
                const Addr pa = alpha::makePa(1, remoteBase + 32 * i);
                EXPECT_FALSE(p.node().dcache().probe(pa));
            }
        }
        co_return;
    });
}

TEST_F(BulkTest, PrefetchCopiesData)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.bulkReadPrefetch(localBase,
                               GlobalAddr::make(1, remoteBase), 2048);
        co_return;
    });
    expectCopied(2048);
}

TEST_F(BulkTest, BltCopiesData)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.bulkReadBlt(localBase, GlobalAddr::make(1, remoteBase),
                          4096);
        co_return;
    });
    expectCopied(4096);
}

TEST_F(BulkTest, DispatchingBulkReadCopiesData)
{
    for (std::size_t bytes : {8ul, 64ul, 4096ul, 32ul * KiB}) {
        runSpmd(m, [&](Proc &p) -> ProcTask {
            if (p.pe() == 0)
                p.bulkRead(localBase, GlobalAddr::make(1, remoteBase),
                           bytes);
            co_return;
        });
        expectCopied(bytes);
    }
}

TEST_F(BulkTest, MidSizeOrderingPrefetchWins)
{
    // Figure 8 (left) at 1 KB: prefetch > cached > uncached; BLT is
    // hopeless (180 us startup).
    const std::size_t bytes = 1024;
    auto src = GlobalAddr::make(1, remoteBase);
    const double uncached = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadUncached(localBase, src, bytes);
    });
    const double cached = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadCached(localBase, src, bytes);
    });
    const double prefetch = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadPrefetch(localBase, src, bytes);
    });
    const double blt = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadBlt(localBase, src, bytes);
    });

    EXPECT_GT(prefetch, cached);
    EXPECT_GT(cached, uncached);
    EXPECT_GT(uncached, blt);
}

TEST_F(BulkTest, LargeSizeBltWins)
{
    // Figure 8 (left) at 128 KB: the BLT's streaming rate dominates.
    const std::size_t bytes = 128 * KiB;
    auto src = GlobalAddr::make(1, remoteBase);
    const double prefetch = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadPrefetch(localBase, src, bytes);
    });
    const double blt = bandwidth(bytes, [&](Proc &p) {
        p.bulkReadBlt(localBase, src, bytes);
    });
    EXPECT_GT(blt, prefetch);
}

TEST_F(BulkTest, WriteStoresBeatBlt)
{
    // Figure 8 (right): non-blocking stores beat the BLT at every
    // size.
    for (int i = 0; i < 8192; ++i)
        m.node(0).storage().writeU64(localBase + 8 * i, i);
    auto dst = GlobalAddr::make(1, 0x300000);
    for (std::size_t bytes : {1024ul, 64ul * KiB}) {
        const double stores = bandwidth(bytes, [&](Proc &p) {
            p.bulkWriteStores(dst, localBase, bytes);
        });
        const double blt = bandwidth(bytes, [&](Proc &p) {
            p.bulkWriteBlt(dst, localBase, bytes);
        });
        EXPECT_GT(stores, blt) << "bytes=" << bytes;
    }
}

TEST_F(BulkTest, WriteStoresPeakNear90MBps)
{
    for (int i = 0; i < 16384; ++i)
        m.node(0).storage().writeU64(localBase + 8 * i, i);
    auto dst = GlobalAddr::make(1, 0x300000);
    const std::size_t bytes = 128 * KiB;
    const double mbps = bandwidth(bytes, [&](Proc &p) {
        p.bulkWriteStores(dst, localBase, bytes);
    });
    EXPECT_NEAR(mbps, 90.0, 20.0) << "§6.2 bus-limited store peak";
}

TEST_F(BulkTest, BulkWriteMovesData)
{
    for (int i = 0; i < 512; ++i)
        m.node(0).storage().writeU64(localBase + 8 * i, 9000 + i);
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.bulkWrite(GlobalAddr::make(1, 0x300000), localBase, 4096);
        co_return;
    });
    for (int i = 0; i < 512; ++i)
        EXPECT_EQ(m.node(1).storage().readU64(0x300000 + 8 * i),
                  9000u + i);
}

TEST_F(BulkTest, SplitPhaseBulkGet)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            // Large enough to use the BLT (async) path.
            p.bulkGet(localBase, GlobalAddr::make(1, remoteBase),
                      16 * KiB);
            p.compute(1000); // overlapped work
            p.sync();
        }
        co_return;
    });
    expectCopied(16 * KiB);
}

TEST_F(BulkTest, SplitPhaseBulkPut)
{
    for (int i = 0; i < 256; ++i)
        m.node(0).storage().writeU64(localBase + 8 * i, 4000 + i);
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.bulkPut(GlobalAddr::make(1, 0x300000), localBase, 2048);
            p.sync();
        }
        co_return;
    });
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(m.node(1).storage().readU64(0x300000 + 8 * i),
                  4000u + i);
}

} // namespace
