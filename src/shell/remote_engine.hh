/**
 * @file
 * Remote read/write engine of the shell (§4, §5.3).
 *
 * Reads are blocking at the processor: the load stalls for the full
 * round trip (uncached 91 cycles, cached 114 cycles to an adjacent
 * node, §4.2). Writes are fire-and-forget from the processor's view:
 * the write buffer drains annexed lines into the shell's injection
 * channel (one line per ~17 cycles, §5.3); the hardware returns an
 * acknowledgement that clears a status bit. The §4.3 subtlety is
 * modeled: the status bit only reflects writes that have left the
 * processor, so blocking writes must MB before polling.
 */

#ifndef T3DSIM_SHELL_REMOTE_ENGINE_HH
#define T3DSIM_SHELL_REMOTE_ENGINE_HH

#include <cstdint>

#include "alpha/core.hh"
#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/annex.hh"
#include "shell/config.hh"
#include "shell/ports.hh"
#include "sim/arrivals.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::shell
{

/** Per-node remote access engine. */
class RemoteEngine
{
  public:
    RemoteEngine(const ShellConfig &config, PeId local_pe,
                 MachinePort &machine, alpha::AlphaCore &core);

    /**
     * Blocking remote read of @p len bytes (8 for a quadword load) at
     * @p offset on node @p dst. Charges the local clock for the full
     * round trip. For ReadMode::Cached the whole 32-byte line is
     * transferred and installed in the local data cache under
     * physical address @p pa (line-aligned internally).
     */
    std::uint64_t read(PeId dst, Addr offset, Addr pa, ReadMode mode);

    /**
     * Inject one drained write-buffer line into the network
     * (write-buffer DrainPort backend).
     *
     * @param ready Earliest time injection may begin.
     * @param remote_done Optional out-param: time the write was
     *        serviced at the remote memory (signaling stores log
     *        this as the receiver's data-arrival time).
     * @return Time the write-buffer slot is released (injection
     *         complete).
     */
    Cycles injectWriteLine(Cycles ready, PeId dst, Addr line_offset,
                           const std::uint8_t *data,
                           std::uint32_t byte_mask,
                           Cycles *remote_done = nullptr);

    /** True if any injected write's acknowledgement is outstanding. */
    bool writesOutstanding(Cycles now) const;

    /** Time by which every ack issued so far will have returned. */
    Cycles quietTime(Cycles now) const;

    /**
     * Poll the status bit until no remote writes are outstanding;
     * advances the local clock and charges the poll cost. The caller
     * must have issued an MB first (§4.3) — asserted via the write
     * buffer being empty of annexed lines is not checked here; the
     * node-level API enforces it.
     */
    void pollUntilQuiet();

    /** Atomic swap with remote memory through the shell register. */
    std::uint64_t swap(PeId dst, Addr offset, std::uint64_t new_value);

    /** Remote fetch&increment of register @p reg on node @p dst. */
    std::uint64_t fetchInc(PeId dst, unsigned reg);

    /** Send a four-word user-level message (§7.3). */
    void sendMessage(PeId dst, const std::uint64_t words[4]);

    /** Total writes injected (statistic). */
    std::uint64_t writesInjected() const { return _writesInjected; }

    /** Total remote reads performed (statistic). */
    std::uint64_t readsPerformed() const { return _readsPerformed; }

    /** Attach the local node's counters and the machine trace sink. */
    void
    setObservability(probes::PerfCounters *ctr, probes::TraceSink *trace)
    {
        _ctr = ctr;
        _trace = trace;
    }

  private:
    const ShellConfig &_config;
    PeId _localPe;
    MachinePort &_machine;
    alpha::AlphaCore &_core;

    /** Injection channel busy-until time. */
    Cycles _injectFree = 0;

    /** Remote completion times of recent in-flight writes (window). */
    sim::RingBuffer<Cycles> _inflight;

    /** Acknowledgement returns. */
    ArrivalLog _acks;
    Cycles _lastAck = 0;
    std::uint64_t _writesInjected = 0;
    std::uint64_t _readsPerformed = 0;

    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_REMOTE_ENGINE_HH
