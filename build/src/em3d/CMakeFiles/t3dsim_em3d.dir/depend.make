# Empty dependencies file for t3dsim_em3d.
# This may be replaced when dependencies are built.
