
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_local_write.cc" "bench/CMakeFiles/bench_fig2_local_write.dir/bench_fig2_local_write.cc.o" "gcc" "bench/CMakeFiles/bench_fig2_local_write.dir/bench_fig2_local_write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/t3dsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/t3dsim_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/t3dsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/t3dsim_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/t3dsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t3dsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
