/**
 * @file
 * §6.3 bulk-get mechanism crossover: the BLT costs 180 us to start,
 * during which the prefetch queue can move ~7,900 bytes — so bulk_get
 * uses prefetch below that size and the BLT above it. This bench
 * measures the model's initiation-time budget and locates the actual
 * crossover empirically.
 */

#include <iostream>

#include "machine/machine.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

#include "profile.hh"

using namespace t3dsim;

namespace
{

constexpr Addr remoteBase = 0x100000;
constexpr Addr localBase = 0x400000;

/** Elapsed cycles to complete a bulk read of @p bytes. */
Cycles
elapsedFor(bool use_blt, std::size_t bytes)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    Cycles elapsed = 0;
    splitc::runSpmd(m, [&](splitc::Proc &p) -> splitc::ProcTask {
        if (p.pe() != 0)
            co_return;
        const Cycles t0 = p.now();
        if (use_blt)
            p.bulkReadBlt(localBase,
                          splitc::GlobalAddr::make(1, remoteBase),
                          bytes);
        else
            p.bulkReadPrefetch(localBase,
                               splitc::GlobalAddr::make(1, remoteBase),
                               bytes);
        elapsed = p.now() - t0;
        co_return;
    });
    return elapsed;
}

} // namespace

int
main()
{
    std::cout << "Bulk-get crossover (Sec. 6.3)\n";

    machine::Machine m(machine::MachineConfig::t3d(2));
    const Cycles startup = m.config().shell.bltStartupCycles;
    std::cout << "BLT initiation: " << cyclesToUs(startup)
              << " us (paper: 180 us)\n";

    // Bytes the prefetch mechanism moves during one BLT startup.
    const std::size_t probe_bytes = 16 * KiB;
    const Cycles prefetch_elapsed = elapsedFor(false, probe_bytes);
    const double bytes_per_cycle =
        double(probe_bytes) / double(prefetch_elapsed);
    const double bytes_in_startup = bytes_per_cycle * double(startup);
    std::cout << "prefetch data moved in one BLT startup: "
              << bytes_in_startup << " bytes (paper: ~7,900)\n\n";

    // Locate the empirical total-time crossover.
    probes::Table t({"size", "prefetch (us)", "BLT (us)", "winner"});
    std::size_t crossover = 0;
    for (std::size_t bytes = 1 * KiB; bytes <= 256 * KiB; bytes *= 2) {
        const Cycles pf = elapsedFor(false, bytes);
        const Cycles blt = elapsedFor(true, bytes);
        if (crossover == 0 && blt < pf)
            crossover = bytes;
        t.addRow(bench::sizeLabel(bytes), cyclesToUs(pf),
                 cyclesToUs(blt), blt < pf ? "BLT" : "prefetch");
    }
    t.print();
    std::cout << "blocking-transfer crossover: ~"
              << bench::sizeLabel(crossover)
              << " (paper: ~16 KB for blocking bulk_read; 7,900 B "
                 "initiation-overlap rule for bulk_get)\n";

    return 0;
}
