#include "model/apps_sig.hh"

#include "machine/config.hh"
#include "splitc/config.hh"

namespace t3dsim::model
{

namespace
{

/** Counter-enabled machine, like the bench suite's counted runs. */
machine::MachineConfig
countedConfig(std::uint32_t pes)
{
    machine::MachineConfig mc = machine::MachineConfig::t3d(pes);
    mc.observe.counters = true;
    return mc;
}

/** Sequential scheduler: signatures must not depend on host races. */
splitc::SplitcConfig
sequentialConfig()
{
    splitc::SplitcConfig sc;
    sc.hostThreads = -1;
    return sc;
}

} // namespace

double
em3dComputePerPe(const em3d::Config &config, em3d::Version version,
                 std::uint64_t edges_per_pe_per_iter)
{
    Cycles per_edge = config.computeOptCycles;
    if (version == em3d::Version::Simple)
        per_edge = config.computeSimpleCycles;
    else if (version == em3d::Version::Bundle)
        per_edge = config.computeBundleCycles;

    // computeSide: computeCycles per edge, 4 cycles per destination
    // node; both the E and H sides update nodesPerPe nodes.
    const double per_iter =
        double(edges_per_pe_per_iter) * double(per_edge) +
        2.0 * double(config.nodesPerPe) * 4.0;
    return per_iter * config.iterations;
}

double
bsortComputePerPe(const apps::bsort::Config &config)
{
    const double keys = config.keysPerPe;
    const double passes = 64.0 / config.radixBits;
    const double buckets = double(std::uint64_t{1} << config.radixBits);
    // classifyStage charges classifyCycles per owned key; each radix
    // pass charges count+scatter bookkeeping per received key (mean
    // keysPerPe in balance) plus one cycle per prefix-sum bucket.
    return keys * double(config.classifyCycles) +
        passes * (keys * double(config.radixCountCycles +
                                config.radixScatterCycles) +
                  buckets);
}

double
qcdComputePerPe(const apps::qcd::Config &config, apps::Variant variant)
{
    const double nsites = double(config.lx) * config.ly * config.lz *
        config.lt;
    double cycles =
        config.sweeps * nsites * double(config.siteUpdateCycles);
    if (variant == apps::Variant::Bulk) {
        // Pack + unpack each touch every halo slot once per sweep
        // (one parity half per half-step, two half-steps).
        const double halo = 2.0 *
            (double(config.ly) * config.lz * config.lt +
             double(config.lx) * config.lz * config.lt +
             double(config.lx) * config.ly * config.lt);
        cycles += config.sweeps * 2.0 * halo *
            double(config.packCycles);
    }
    return cycles;
}

std::vector<LadderPoint>
runEm3dLadder(std::uint32_t pes, const em3d::Config &config)
{
    std::vector<LadderPoint> ladder;
    for (em3d::Version v : em3d::allVersions) {
        const em3d::Result r = em3d::run(config, v,
                                         countedConfig(pes),
                                         sequentialConfig());
        LadderPoint pt;
        pt.sig = signatureFromTotals(r.counters, pes);
        pt.sig.workload = "em3d";
        pt.sig.rung = em3d::versionName(v);
        pt.sig.computeCyclesPerPe =
            em3dComputePerPe(config, v, r.edgesPerPePerIter);
        pt.simulatedCycles = double(r.elapsed);
        ladder.push_back(std::move(pt));
    }
    return ladder;
}

std::vector<LadderPoint>
runBsortLadder(std::uint32_t pes, const apps::bsort::Config &config)
{
    std::vector<LadderPoint> ladder;
    for (apps::Variant v : apps::allVariants) {
        const apps::bsort::Result r =
            apps::bsort::run(config, v, countedConfig(pes),
                             sequentialConfig());
        LadderPoint pt;
        pt.sig = signatureFromTotals(r.counters, pes);
        pt.sig.workload = "bsort";
        pt.sig.rung = apps::variantName(v);
        pt.sig.computeCyclesPerPe = bsortComputePerPe(config);
        pt.simulatedCycles = double(r.elapsed);
        ladder.push_back(std::move(pt));
    }
    return ladder;
}

std::vector<LadderPoint>
runQcdLadder(std::uint32_t pes, const apps::qcd::Config &config)
{
    std::vector<LadderPoint> ladder;
    for (apps::Variant v : apps::allVariants) {
        const apps::qcd::Result r =
            apps::qcd::run(config, v, countedConfig(pes),
                           sequentialConfig());
        LadderPoint pt;
        pt.sig = signatureFromTotals(r.counters, pes);
        pt.sig.workload = "qcd";
        pt.sig.rung = apps::variantName(v);
        pt.sig.computeCyclesPerPe = qcdComputePerPe(config, v);
        pt.simulatedCycles = double(r.elapsed);
        ladder.push_back(std::move(pt));
    }
    return ladder;
}

} // namespace t3dsim::model
