/**
 * @file
 * Unit and smoke tests for the seeded differential stress harness
 * (src/stress/, docs/STRESS.md). The heavyweight 50-seed corpus runs
 * in CI via the t3d-fuzz binary; these tests pin the generator's
 * determinism and run a small differential matrix end to end.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stress/differential.hh"
#include "stress/generator.hh"

namespace
{

using namespace t3dsim;
using stress::Op;
using stress::OpKind;
using stress::Plan;
using stress::StressConfig;

StressConfig
smallCfg(std::uint64_t seed)
{
    StressConfig cfg;
    cfg.seed = seed;
    cfg.pes = 4;
    cfg.rounds = 2;
    cfg.opsPerRound = 8;
    return cfg;
}

TEST(StressPlan, SameSeedSameListing)
{
    std::ostringstream a, b;
    Plan::build(smallCfg(42)).print(a);
    Plan::build(smallCfg(42)).print(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(a.str().empty());
}

TEST(StressPlan, DifferentSeedsDiffer)
{
    std::ostringstream a, b;
    Plan::build(smallCfg(1)).print(a);
    Plan::build(smallCfg(2)).print(b);
    EXPECT_NE(a.str(), b.str());
}

TEST(StressPlan, NeverTargetsSelfAndRespectsCaps)
{
    StressConfig cfg;
    cfg.seed = 7;
    cfg.pes = 8;
    cfg.rounds = 6;
    cfg.opsPerRound = 24;
    const Plan plan = Plan::build(cfg);
    ASSERT_EQ(plan.rounds.size(), cfg.rounds);

    for (const auto &round : plan.rounds) {
        std::vector<std::uint32_t> ams(cfg.pes, 0), msgs(cfg.pes, 0);
        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            int blt_gets = 0, blt_puts = 0;
            for (const Op &op : round.ops[pe]) {
                EXPECT_NE(op.target, pe);
                EXPECT_LT(op.target, cfg.pes);
                if (op.kind == OpKind::AmDeposit)
                    ++ams[op.target];
                if (op.kind == OpKind::SendMsg)
                    ++msgs[op.target];
                if (op.kind == OpKind::BltGet)
                    ++blt_gets;
                if (op.kind == OpKind::BltPut)
                    ++blt_puts;
            }
            EXPECT_LE(blt_gets, 1);
            EXPECT_LE(blt_puts, 1);
        }
        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            // Matched-wait accounting must agree with the op lists,
            // and the AM cap keeps the corpus out of the overflow
            // ring (the primary queue holds 256).
            EXPECT_EQ(ams[pe], round.amsIn[pe]);
            EXPECT_EQ(msgs[pe], round.msgsIn[pe]);
            EXPECT_LE(round.amsIn[pe], 32u);
            EXPECT_LE(round.msgsIn[pe], 3u);
        }
    }
}

TEST(StressPlan, FloodKeepsSingleSenderPerReceiver)
{
    StressConfig cfg = smallCfg(9);
    cfg.amFloodDeposits = 24;
    const Plan plan = Plan::build(cfg);

    bool flooded = false;
    for (const auto &round : plan.rounds) {
        constexpr PeId kNone = ~PeId{0};
        std::vector<PeId> sender(cfg.pes, kNone);
        std::vector<std::uint32_t> ams(cfg.pes, 0);
        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            for (const Op &op : round.ops[pe]) {
                if (op.kind != OpKind::AmDeposit)
                    continue;
                EXPECT_TRUE(sender[op.target] == kNone ||
                            sender[op.target] == pe)
                    << "two AM senders for pe" << op.target;
                sender[op.target] = pe;
                ++ams[op.target];
            }
        }
        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            EXPECT_EQ(ams[pe], round.amsIn[pe]);
            flooded |= ams[pe] >= cfg.amFloodDeposits;
        }
    }
    EXPECT_TRUE(flooded) << "every round must carry the flood burst";
}

TEST(StressDifferential, RunIsDeterministic)
{
    const Plan plan = Plan::build(smallCfg(11));
    const auto a = stress::runOnce(plan, /*host_threads=*/-1, true);
    const auto b = stress::runOnce(plan, /*host_threads=*/-1, true);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.counters, b.counters);
}

TEST(StressDifferential, ChecksumDependsOnSeed)
{
    const auto a =
        stress::runOnce(Plan::build(smallCfg(1)), -1, false);
    const auto b =
        stress::runOnce(Plan::build(smallCfg(2)), -1, false);
    EXPECT_NE(a.checksum, b.checksum);
}

TEST(StressDifferential, SmokeSeedsPassAtTwoAndFourThreads)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto rep =
            stress::runDifferential(smallCfg(seed), {2, 4});
        EXPECT_TRUE(rep.pass) << "seed " << seed;
        for (const auto &msg : rep.mismatches)
            ADD_FAILURE() << "seed " << seed << ": " << msg;
    }
}

TEST(StressDifferential, FloodSeedsDriveTheOverflowRingAtManyThreads)
{
    // The saturating regime the plain corpus's AM cap never reaches:
    // a shrunken primary queue plus a per-round flood burst forces
    // deposits through the overflow-ring reroute, and the reroute
    // decision (placement, timing, amOverflows counters) must be
    // bit-identical between the sequential scheduler and 2/4/8 host
    // threads.
    for (std::uint64_t seed : {5ull, 6ull}) {
        StressConfig cfg = smallCfg(seed);
        cfg.amFloodDeposits = 24;
        cfg.amQueueSlots = 8;
        cfg.amOverflowSlots = 64;

        const auto ref = stress::runOnce(Plan::build(cfg), -1, true);
        std::uint64_t overflows = 0;
        for (const auto &ctr : ref.counters)
            overflows += ctr.amOverflows;
        EXPECT_GT(overflows, 0u)
            << "seed " << seed << ": flood must enter the ring";

        const auto rep = stress::runDifferential(cfg, {2, 4, 8});
        EXPECT_TRUE(rep.pass) << "seed " << seed;
        for (const auto &msg : rep.mismatches)
            ADD_FAILURE() << "seed " << seed << ": " << msg;
    }
}

TEST(StressSaturate, FloodCompletesWithModeledSpills)
{
    const auto rep = stress::runSaturate();
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.amHandled, rep.amDeposits);
    EXPECT_EQ(rep.msgsReceived, rep.msgsSent);
    EXPECT_GT(rep.amOverflows, 0u) << "flood must enter the ring";
    EXPECT_GT(rep.msgSpills, 0u) << "flood must spill the msg queue";
    EXPECT_GT(rep.receiverFinish, 0u);
}

} // namespace
