file(REMOVE_RECURSE
  "libt3dsim_shell.a"
)
