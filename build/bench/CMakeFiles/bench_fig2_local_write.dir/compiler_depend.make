# Empty compiler generated dependencies file for bench_fig2_local_write.
# This may be replaced when dependencies are built.
