#include "sim/arrivals.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim
{

void
ArrivalLog::record(Cycles when, std::uint64_t amount)
{
    if (amount == 0)
        return;
    _total += amount;
    // Most arrivals are recorded roughly in time order; fall back to a
    // sorted insert when they are not.
    if (_entries.empty() || _entries.back().when <= when) {
        std::uint64_t cum = amount;
        if (_prefixValid == _entries.size()) {
            // Common case: the prefix stays fully valid.
            if (!_entries.empty())
                cum += _entries.back().cum;
            ++_prefixValid;
        }
        _entries.push_back({when, amount, cum});
    } else {
        auto pos = std::upper_bound(
            _entries.begin(), _entries.end(), when,
            [](Cycles t, const Entry &e) { return t < e.when; });
        const auto idx =
            static_cast<std::size_t>(pos - _entries.begin());
        _entries.insert(pos, {when, amount, 0});
        _prefixValid = std::min(_prefixValid, idx);
    }
    if (_onRecord)
        _onRecord();
}

void
ArrivalLog::refreshPrefix() const
{
    std::uint64_t acc =
        _prefixValid ? _entries[_prefixValid - 1].cum : 0;
    for (std::size_t i = _prefixValid; i < _entries.size(); ++i) {
        acc += _entries[i].amount;
        _entries[i].cum = acc;
    }
    _prefixValid = _entries.size();
}

std::optional<Cycles>
ArrivalLog::timeOfCumulative(std::uint64_t amount) const
{
    if (amount == 0)
        return Cycles{0};
    if (amount > _total)
        return std::nullopt;
    refreshPrefix();
    auto pos = std::lower_bound(
        _entries.begin(), _entries.end(), amount,
        [](const Entry &e, std::uint64_t a) { return e.cum < a; });
    T3D_ASSERT(pos != _entries.end(), "prefix sum inconsistent");
    return pos->when;
}

std::uint64_t
ArrivalLog::arrivedBy(Cycles when) const
{
    if (_entries.empty() || _entries.front().when > when)
        return 0;
    refreshPrefix();
    auto pos = std::upper_bound(
        _entries.begin(), _entries.end(), when,
        [](Cycles t, const Entry &e) { return t < e.when; });
    return (pos - 1)->cum;
}

void
ArrivalLog::consume(std::uint64_t amount)
{
    T3D_ASSERT(amount <= _total, "consuming more than arrived");
    _total -= amount;
    std::size_t drop = 0;
    while (amount > 0) {
        T3D_ASSERT(drop < _entries.size(), "arrival log underflow");
        Entry &front = _entries[drop];
        if (front.amount > amount) {
            front.amount -= amount;
            amount = 0;
        } else {
            amount -= front.amount;
            ++drop;
        }
    }
    if (drop > 0)
        _entries.erase(_entries.begin(),
                       _entries.begin() + static_cast<long>(drop));
    // Entries shifted and/or the front shrank: rebuild on next query.
    _prefixValid = 0;
}

void
ArrivalLog::reset()
{
    _entries.clear();
    _prefixValid = 0;
    _total = 0;
}

} // namespace t3dsim
