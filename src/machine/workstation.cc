#include "machine/workstation.hh"

namespace t3dsim::machine
{

Workstation::Workstation(const WorkstationConfig &config)
    : _config(config), _storage(Addr{1} << 32), _dram(config.dram),
      _tlb(config.tlb), _l1(config.l1Bytes, config.l1LineBytes),
      _l2(config.l2Bytes, config.l2LineBytes),
      _wb(config.writeBuffer, *this),
      _core(config.core, _clock, _tlb, _l1, _wb, _dram, _storage, &_l2)
{
}

alpha::DrainPort::DrainResult
Workstation::drainLine(Cycles ready, Addr pa, const std::uint8_t *,
                       std::uint32_t, std::uint32_t)
{
    auto access = _dram.access(ready, pa);
    return {access.complete, /*deferCommit=*/true};
}

void
Workstation::commitLine(Addr pa, const std::uint8_t *data,
                        std::uint32_t byte_mask)
{
    for (unsigned i = 0; i < alpha::wbLineBytes; ++i) {
        if (byte_mask & (1u << i))
            _storage.writeU8(pa + i, data[i]);
    }
}

} // namespace t3dsim::machine
