/**
 * @file
 * Network distance effects: §4.2 measures "roughly a 13 to 20 ns
 * (2-3 cycle) cost per hop" of additional read latency. The model's
 * torus transit must show exactly that, and the machine factory must
 * wire arbitrary PE counts consistently.
 */

#include <gtest/gtest.h>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using shell::ReadMode;

/** Warm read latency from PE0 to @p dst on machine @p m. */
Cycles
readLatency(Machine &m, PeId dst)
{
    auto &n0 = m.node(0);
    n0.shell().setAnnex(1, {dst, ReadMode::Uncached});
    const Addr va = alpha::makeAnnexedVa(1, 0x1000);
    n0.loadU64(va); // warm remote page + TLB
    const Cycles t0 = n0.clock().now();
    n0.loadU64(va + 8);
    return n0.clock().now() - t0;
}

TEST(Hops, LatencyGrowsPerHop)
{
    // 8x1x1 ring: distances 1..4 from PE0.
    MachineConfig cfg = MachineConfig::t3d(8);
    Machine m(cfg);
    ASSERT_EQ(m.torus().dimZ() * m.torus().dimY() * m.torus().dimX(),
              8u);

    // Use PEs at increasing hop distance.
    std::vector<std::pair<PeId, std::uint32_t>> targets;
    for (PeId pe = 1; pe < 8; ++pe)
        targets.emplace_back(pe, m.torus().hops(0, pe));

    for (auto [pe, hops] : targets) {
        const Cycles lat = readLatency(m, pe);
        const Cycles adjacent = 91;
        // Each extra hop adds 2 cycles each way.
        EXPECT_EQ(lat, adjacent + (hops - 1) * 2 * cfg.hopCycles)
            << "pe=" << pe << " hops=" << hops;
    }
}

TEST(Hops, PerHopCostMatchesPaper)
{
    Machine m(MachineConfig::t3d(64)); // 4x4x4
    std::uint32_t max_hops = 0;
    PeId far_pe = 0;
    for (PeId pe = 1; pe < 64; ++pe) {
        if (m.torus().hops(0, pe) > max_hops) {
            max_hops = m.torus().hops(0, pe);
            far_pe = pe;
        }
    }
    ASSERT_EQ(max_hops, 6u) << "4x4x4 torus diameter";

    const Cycles near = readLatency(m, 1);
    const Cycles far = readLatency(m, far_pe);
    const double per_hop_ns =
        cyclesToNs(far - near) / (2.0 * (max_hops - 1));
    EXPECT_GE(per_hop_ns, 13.0);
    EXPECT_LE(per_hop_ns, 20.0) << "§4.2: 13-20 ns per hop";
}

/** Property: the machine works at many PE counts. */
class MachineSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MachineSizes, RemoteRoundTripWorks)
{
    const std::uint32_t pes = GetParam();
    Machine m(MachineConfig::t3d(pes));
    auto &n0 = m.node(0);
    const PeId dst = pes - 1;
    if (dst == 0)
        GTEST_SKIP() << "single PE has no remote";

    m.node(dst).storage().writeU64(0x2000, 1234);
    n0.shell().setAnnex(1, {dst, ReadMode::Uncached});
    EXPECT_EQ(n0.loadU64(alpha::makeAnnexedVa(1, 0x2000)), 1234u);

    n0.storeU64(alpha::makeAnnexedVa(1, 0x2008), 77);
    n0.waitRemoteWrites();
    EXPECT_EQ(m.node(dst).storage().readU64(0x2008), 77u);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, MachineSizes,
                         ::testing::Values(2, 3, 5, 8, 16, 32, 64,
                                           128));

TEST(Hops, UpTo2048Pes)
{
    // The T3D scales to 2,048 nodes (§1.2); the model must too.
    Machine m(MachineConfig::t3d(2048));
    EXPECT_EQ(m.numPes(), 2048u);
    EXPECT_GE(m.torus().hops(0, 1024), 1u);
}

} // namespace
