file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_sim.dir/arrivals.cc.o"
  "CMakeFiles/t3dsim_sim.dir/arrivals.cc.o.d"
  "CMakeFiles/t3dsim_sim.dir/logging.cc.o"
  "CMakeFiles/t3dsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/t3dsim_sim.dir/rng.cc.o"
  "CMakeFiles/t3dsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/t3dsim_sim.dir/stats.cc.o"
  "CMakeFiles/t3dsim_sim.dir/stats.cc.o.d"
  "libt3dsim_sim.a"
  "libt3dsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
