# Empty dependencies file for t3dsim_alpha.
# This may be replaced when dependencies are built.
