file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_messaging.dir/bench_tab_messaging.cc.o"
  "CMakeFiles/bench_tab_messaging.dir/bench_tab_messaging.cc.o.d"
  "bench_tab_messaging"
  "bench_tab_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
