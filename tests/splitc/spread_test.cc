/**
 * @file
 * Tests of spread arrays (§1.1/§3.1): cyclic layout, symmetric
 * allocation, and SPMD access through the runtime.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"
#include "splitc/spread.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::Proc;
using splitc::ProcTask;
using splitc::SpreadArray;

TEST(Spread, SymmetricAllocationReturnsSameOffset)
{
    Machine m(MachineConfig::t3d(4));
    const Addr a = splitc::allocSymmetric(m, 256);
    const Addr b = splitc::allocSymmetric(m, 512);
    EXPECT_GT(b, a);
    // A second machine mirrors the layout (determinism).
    Machine m2(MachineConfig::t3d(4));
    EXPECT_EQ(splitc::allocSymmetric(m2, 256), a);
}

TEST(Spread, CyclicLayout)
{
    Machine m(MachineConfig::t3d(4));
    auto arr = SpreadArray<std::uint64_t>::allocate(m, 16);
    // PE varies fastest.
    EXPECT_EQ(arr.at(0).pe(), 0u);
    EXPECT_EQ(arr.at(1).pe(), 1u);
    EXPECT_EQ(arr.at(3).pe(), 3u);
    EXPECT_EQ(arr.at(4).pe(), 0u);
    EXPECT_EQ(arr.at(4).local(), arr.at(0).local() + 8);
    EXPECT_EQ(arr.ownerOf(7), 3u);
    EXPECT_EQ(arr.localOf(8), arr.base() + 16);
}

TEST(Spread, OutOfRangePanics)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(4));
    auto arr = SpreadArray<std::uint64_t>::allocate(m, 16);
    EXPECT_THROW(arr.at(16), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(Spread, SpmdWriteAndReadBack)
{
    Machine m(MachineConfig::t3d(4));
    auto arr = SpreadArray<std::uint64_t>::allocate(m, 32);
    splitc::runSpmd(m, [&](Proc &p) -> ProcTask {
        // Each PE stores into its own cyclic elements.
        for (std::uint64_t i = p.pe(); i < arr.size(); i += p.procs())
            p.writeU64(arr.at(i).addr(), 1000 + i);
        co_await p.barrier();
        // Everyone verifies the whole array (mostly remote reads).
        if (p.pe() == 0) {
            for (std::uint64_t i = 0; i < arr.size(); ++i)
                EXPECT_EQ(p.readU64(arr.at(i).addr()), 1000 + i);
        }
        co_return;
    });
}

TEST(Spread, TypedElementSize)
{
    Machine m(MachineConfig::t3d(2));
    auto arr = SpreadArray<double>::allocate(m, 8);
    EXPECT_EQ(arr.at(2).local(), arr.at(0).local() + 8);
    EXPECT_EQ(arr.at(2).pe(), 0u);
}

} // namespace
