# CMake generated Testfile for 
# Source directory: /root/repo/tests/em3d
# Build directory: /root/repo/build/tests/em3d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/em3d/em3d_test[1]_include.cmake")
