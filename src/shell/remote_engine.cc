#include "shell/remote_engine.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace t3dsim::shell
{

RemoteEngine::RemoteEngine(const ShellConfig &config, PeId local_pe,
                           MachinePort &machine, alpha::AlphaCore &core)
    : _config(config), _localPe(local_pe), _machine(machine), _core(core)
{
}

std::uint64_t
RemoteEngine::read(PeId dst, Addr offset, Addr pa, ReadMode mode)
{
    T3D_ASSERT(dst != _localPe,
               "remote engine asked to read from the local node");
    ++_readsPerformed;
    T3D_COUNT(_ctr, remoteReads);

    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    const Cycles transit = _machine.transitCycles(_localPe, dst);
    RemoteMemoryPort &port = _machine.remoteMemory(dst);

    const Cycles request_arrive = clock.now() + transit;

    std::uint64_t value = 0;
    Cycles done;
    if (mode == ReadMode::Cached) {
        // Transfer the whole 32-byte line and install it locally.
        const std::size_t line_bytes = _core.dcache().lineBytes();
        const Addr line_offset = offset & ~(line_bytes - 1);
        std::uint8_t line[256];
        T3D_ASSERT(line_bytes <= sizeof(line),
                   "cache line larger than transfer buffer");
        Cycles remote_done =
            port.serviceRead(request_arrive, line_offset, line,
                             line_bytes, _localPe);
        done = remote_done + transit + _config.readFixedCycles +
            _config.cachedReadExtraCycles;
        const Addr line_pa = pa & ~(Addr{line_bytes} - 1);
        _core.dcache().fill(line_pa, line);
        std::memcpy(&value, line + (offset - line_offset), 8);
    } else {
        Cycles remote_done =
            port.serviceRead(request_arrive, offset, &value, 8,
                             _localPe);
        done = remote_done + transit + _config.readFixedCycles;
    }

    clock.advanceTo(done);
    T3D_TRACE(_trace, span(_localPe, "remote_read", t0, done, "dst", dst));
    return value;
}

Cycles
RemoteEngine::injectWriteLine(Cycles ready, PeId dst, Addr line_offset,
                              const std::uint8_t *data,
                              std::uint32_t byte_mask,
                              Cycles *remote_done_out)
{
    T3D_ASSERT(dst != _localPe,
               "remote engine asked to write to the local node");
    ++_writesInjected;
    T3D_COUNT(_ctr, remoteWriteLines);

    Cycles start = std::max(ready, _injectFree);
    // Backpressure: at most writeWindow writes between injection and
    // remote service completion.
    if (_inflight.size() >= _config.writeWindow) {
        start = std::max(
            start, _inflight[_inflight.size() - _config.writeWindow]);
    }
    const auto payload_bytes =
        static_cast<unsigned>(std::popcount(byte_mask));
    const Cycles inject_cost = _config.writeInjectBaseCycles +
        static_cast<Cycles>(_config.writeInjectPerByteCycles *
                            payload_bytes);
    const Cycles injected = start + inject_cost;
    _injectFree = injected;

    const Cycles transit = _machine.transitCycles(_localPe, dst);
    RemoteMemoryPort &port = _machine.remoteMemory(dst);

    const Cycles remote_done = port.serviceWriteMasked(
        injected + transit, line_offset, data, byte_mask,
        /*cache_inval=*/true, _localPe);

    if (remote_done_out)
        *remote_done_out = remote_done;
    _inflight.push_back(remote_done);
    while (_inflight.size() > _config.writeWindow)
        _inflight.pop_front();

    const Cycles ack =
        remote_done + transit + _config.writeFixedCycles;
    _acks.record(ack, 1);
    _lastAck = std::max(_lastAck, ack);

    T3D_TRACE(_trace, span(_localPe, "remote_write", start, remote_done,
                           "dst", dst));
    return injected;
}

bool
RemoteEngine::writesOutstanding(Cycles now) const
{
    return _acks.arrivedBy(now) < _writesInjected;
}

Cycles
RemoteEngine::quietTime(Cycles now) const
{
    return std::max(now, _lastAck);
}

void
RemoteEngine::pollUntilQuiet()
{
    Clock &clock = _core.clock();
    clock.advanceTo(quietTime(clock.now()));
    clock.advance(_config.statusPollCycles);
}

std::uint64_t
RemoteEngine::swap(PeId dst, Addr offset, std::uint64_t new_value)
{
    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    const Cycles transit = _machine.transitCycles(_localPe, dst);
    RemoteMemoryPort &port = _machine.remoteMemory(dst);

    std::uint64_t old_value = 0;
    const Cycles remote_done = port.serviceSwap(
        clock.now() + transit, offset, new_value, old_value, _localPe);
    clock.advanceTo(remote_done + transit + _config.swapFixedCycles);
    T3D_TRACE(_trace,
              span(_localPe, "swap", t0, clock.now(), "dst", dst));
    return old_value;
}

std::uint64_t
RemoteEngine::fetchInc(PeId dst, unsigned reg)
{
    T3D_COUNT(_ctr, fetchIncRoundTrips);

    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    const Cycles transit = _machine.transitCycles(_localPe, dst);
    RemoteMemoryPort &port = _machine.remoteMemory(dst);

    std::uint64_t old_value = 0;
    const Cycles remote_done =
        port.serviceFetchInc(clock.now() + transit, reg, old_value);
    clock.advanceTo(remote_done + transit + _config.fetchIncFixedCycles);
    T3D_TRACE(_trace,
              span(_localPe, "fetch_inc", t0, clock.now(), "dst", dst));
    return old_value;
}

void
RemoteEngine::sendMessage(PeId dst, const std::uint64_t words[4])
{
    T3D_COUNT(_ctr, msgSends);

    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    clock.advance(_config.msgSendCycles);
    const Cycles arrive =
        clock.now() + _machine.transitCycles(_localPe, dst);
    _machine.remoteMemory(dst).serviceMessage(arrive, words);
    T3D_TRACE(_trace,
              span(_localPe, "msg_send", t0, clock.now(), "dst", dst));
}

} // namespace t3dsim::shell
