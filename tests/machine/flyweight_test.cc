/**
 * @file
 * Flyweight-footprint bounds: a freshly constructed machine must
 * cost O(1) bytes per PE (no eager cache tags, TLB pages, storage
 * chunks or counter blocks), and a real workload at large P must
 * stay within the sparse-chunk budget. These pin the tentpole
 * property that makes 4K-64K-PE tori routine: construction and
 * per-PE cost scale with *touched* state, not with configured
 * capacity.
 */

#include <gtest/gtest.h>

#include "em3d/em3d.hh"
#include "machine/machine.hh"
#include "sim/types.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;

TEST(Flyweight, BareMachineBytesPerPe)
{
    // Pre-flyweight, a bare node cost ~69 KB (eager 8 KB D-cache
    // tags+data, full TLB arrays, counter blocks, slot directories).
    // The flyweight model keeps an untouched node to a few KB.
    Machine m(MachineConfig::t3d(4096));
    const std::size_t per_pe = m.residentModelBytes() / 4096;
    EXPECT_LT(per_pe, 5 * KiB) << "untouched PE grew past the budget";
}

TEST(Flyweight, BareMachineScalesSublinearlyInTouchedState)
{
    // Doubling P must roughly double total bytes (per-PE cost flat,
    // no O(P) or O(P log P) per-node structures creeping in).
    Machine small(MachineConfig::t3d(1024));
    Machine big(MachineConfig::t3d(4096));
    const std::size_t small_per_pe = small.residentModelBytes() / 1024;
    const std::size_t big_per_pe = big.residentModelBytes() / 4096;
    EXPECT_LT(big_per_pe, small_per_pe + small_per_pe / 2)
        << "per-PE cost must not grow materially with P";
}

TEST(Flyweight, Em3dAt4kPesStaysWithinChunkBudget)
{
    // A tiny EM3D problem at 4K PEs: each node touches its graph
    // arrays, a few ghost lines and its stack. With 4 KiB chunks
    // (resolvedStorageChunkShift at P >= fineChunkPes) the modeled
    // footprint must stay well under the old eager ~69 KB/PE.
    ASSERT_GE(4096u, MachineConfig::fineChunkPes);
    em3d::Config cfg;
    cfg.nodesPerPe = 2;
    cfg.degree = 1;
    cfg.remoteFraction = 0.5;
    cfg.iterations = 1;
    const auto r = em3d::run(cfg, em3d::Version::Get, 4096);
    ASSERT_GT(r.modeledBytes, 0u);
    const std::size_t per_pe = r.modeledBytes / 4096;
    EXPECT_LT(per_pe, 16 * KiB)
        << "EM3D-loaded PE footprint exceeded the sparse-chunk budget";
}

} // namespace
