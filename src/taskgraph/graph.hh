/**
 * @file
 * The task-graph frontend's data model (docs/TASKGRAPH.md): an
 * explicit DAG of computation tasks and communication edges, parsed
 * from the line-protocol / file JSON schema, validated, and
 * topologically levelled so the lowering layer (lower.hh) can map it
 * onto `t3d::Machine` primitives.
 *
 * The shape follows the task-based-runtime frontends named in
 * ROADMAP item 2: comp tasks carry cycle/flop weights, comm edges
 * carry byte sizes and (src, dst) task endpoints, and placement is
 * either explicit per task or left to the deterministic greedy
 * balancer in lower.cc.
 */

#ifndef T3DSIM_TASKGRAPH_GRAPH_HH
#define T3DSIM_TASKGRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::model
{
class Json;
}

namespace t3dsim::taskgraph
{

/**
 * How one edge's payload moves between PEs. `Auto` defers the choice
 * to the lowering layer's size thresholds (docs/TASKGRAPH.md
 * "Lowering rules"); the rest force a primitive, subject to
 * validation (payload caps for Am/Message, the single-sender rule).
 */
enum class Mechanism : std::uint8_t
{
    Auto,    ///< pick by payload size at lowering time
    Local,   ///< same-PE edge (or zero bytes): no transfer
    Store,   ///< non-blocking signaling stores, word at a time
    Put,     ///< non-blocking puts + sync
    Get,     ///< consumer-side bulk get (prefetch pipeline)
    Blt,     ///< consumer-side bulk read via the BLT engine
    Am,      ///< active-message deposit carrying the payload
    Message, ///< hardware message carrying the payload
};

const char *mechanismName(Mechanism m);

/** One computation task. */
struct Task
{
    std::string id;            ///< unique within the graph
    std::uint64_t cycles = 0;  ///< fixed compute cycles
    std::uint64_t flops = 0;   ///< floating-point ops (priced at
                               ///< LowerOptions::flopCycles each)
    std::int32_t pe = -1;      ///< explicit placement; -1 = auto

    /** @name Derived by TaskGraph::validate */
    /// @{
    std::uint32_t level = 0;   ///< longest-path level from the roots
    /// @}
};

/** One communication edge (payload from task src to task dst). */
struct Edge
{
    std::uint32_t src = 0;     ///< producer task index
    std::uint32_t dst = 0;     ///< consumer task index
    std::uint64_t bytes = 0;   ///< payload size; 0 = pure dependency
    Mechanism mech = Mechanism::Auto;
};

/**
 * A parsed task graph. Lifecycle: parse (or build programmatically)
 * -> validate(pes) -> lower (lower.hh) -> run/predict.
 */
struct TaskGraph
{
    std::string name;
    std::vector<Task> tasks;
    std::vector<Edge> edges;

    /**
     * Parse the docs/TASKGRAPH.md schema out of @p doc. On failure
     * returns false with a typed message in @p err ("task 3: missing
     * id", "edge 0: unknown src task 'x'", ...). Endpoint names are
     * resolved to dense task indices here; structural checks beyond
     * name resolution live in validate().
     */
    static bool parse(const model::Json &doc, TaskGraph &out,
                      std::string &err);

    /** parse() applied to JSON text (adds "bad JSON: ..." errors). */
    static bool parseText(const std::string &text, TaskGraph &out,
                          std::string &err);

    /**
     * Structural validation against a @p pes -PE machine: non-empty
     * task list, endpoint ranges, explicit placements in range,
     * payload caps for forced Am/Message edges, and acyclicity.
     * Fills every task's longest-path level (the topological
     * schedule lower.cc executes). False + @p err on the first
     * violation.
     */
    bool validate(std::uint32_t pes, std::string &err);

    /**
     * FNV-1a over the canonical serialization (name, tasks in order,
     * edges in order). Two graphs hash equal iff they describe the
     * same DAG with the same weights, placements and mechanisms —
     * the graph half of the service's cache key.
     */
    std::uint64_t contentHash() const;
};

/** FNV-1a over a byte string (shared by the hash helpers). */
std::uint64_t fnv1aBytes(const void *data, std::size_t len,
                         std::uint64_t seed = 0xcbf29ce484222325ull);

} // namespace t3dsim::taskgraph

#endif // T3DSIM_TASKGRAPH_GRAPH_HH
