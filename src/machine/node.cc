#include "machine/node.hh"

#include <algorithm>
#include <bit>

#include "alpha/byte_ops.hh"
#include "sim/logging.hh"

namespace t3dsim::machine
{

using alpha::annexIdxOfPa;
using alpha::offsetOfPa;
using alpha::paOfVa;
using alpha::vaIsAnnexed;

Node::Node(const MachineConfig &config, PeId pe,
           shell::MachinePort &machine)
    : _config(config), _pe(pe), _machine(machine),
      _storage(alpha::segBytes, config.resolvedStorageChunkShift()),
      _dram(config.dram), _tlb(config.tlb),
      _dcache(config.dcacheBytes, config.dcacheLineBytes),
      _wb(config.writeBuffer, *this),
      _core(config.core, _clock, _tlb, _dcache, _wb, _dram, _storage),
      _shell(config.shell, pe, machine, _core),
      _channels(machine.numPes())
{
}

Node::~Node() = default;

Node::ChannelTable::ChannelTable(std::uint32_t num_pes)
    : _dense(num_pes <= densePes ? num_pes : 0)
{
}

Node::ChannelTable::~ChannelTable()
{
    forEach([](RequesterChannel &ch) { delete &ch; });
    delete _table.load(std::memory_order_relaxed);
}

Node::ChannelTable::Table::Table(std::size_t cap)
    : capacity(cap),
      hashShift(64u - static_cast<unsigned>(std::countr_zero(cap))),
      entries(new Entry[cap])
{
}

Node::RequesterChannel *
Node::ChannelTable::findSparse(PeId requester) const
{
    const Table *t = _table.load(std::memory_order_acquire);
    if (!t)
        return nullptr;
    const std::uint32_t key = requester + 1;
    std::size_t i = slotOf(key, *t);
    for (;;) {
        const std::uint32_t k =
            t->entries[i].key.load(std::memory_order_acquire);
        if (k == key)
            return t->entries[i].chan.load(std::memory_order_relaxed);
        if (k == 0)
            return nullptr;
        i = (i + 1) & (t->capacity - 1);
    }
}

Node::ChannelTable::Table *
Node::ChannelTable::grow(std::size_t capacity)
{
    // Called under _insertMutex. Entries move to the new table with
    // plain (relaxed) stores; the release publication of the table
    // pointer makes them visible to lock-free readers. The old table
    // is retired, not freed: a reader may still hold its pointer.
    auto next = std::make_unique<Table>(capacity);
    if (Table *old = _table.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < old->capacity; ++i) {
            const std::uint32_t k =
                old->entries[i].key.load(std::memory_order_relaxed);
            if (k == 0)
                continue;
            std::size_t j = slotOf(k, *next);
            while (next->entries[j].key.load(std::memory_order_relaxed))
                j = (j + 1) & (next->capacity - 1);
            next->entries[j].chan.store(
                old->entries[i].chan.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            next->entries[j].key.store(k, std::memory_order_relaxed);
        }
        _retired.emplace_back(old);
    }
    Table *t = next.release();
    _table.store(t, std::memory_order_release);
    return t;
}

Node::RequesterChannel &
Node::ChannelTable::getOrCreate(PeId requester,
                                const mem::DramConfig &config,
                                probes::PerfCounters *ctr)
{
    if (!_dense.empty()) {
        // Dense slots have a single writer (their own requester), so
        // no lock: release-publish pairs with the serial-phase scans.
        auto &slot = _dense[requester];
        RequesterChannel *ch = slot.load(std::memory_order_relaxed);
        if (!ch) {
            ch = new RequesterChannel(config);
            if (ctr)
                ch->dram.setCounters(ctr);
            slot.store(ch, std::memory_order_release);
            _count.fetch_add(1, std::memory_order_relaxed);
        }
        return *ch;
    }

    std::lock_guard<std::mutex> lock(_insertMutex);
    Table *t = _table.load(std::memory_order_relaxed);
    const std::uint32_t key = requester + 1;
    if (t) {
        std::size_t i = slotOf(key, *t);
        for (;;) {
            const std::uint32_t k =
                t->entries[i].key.load(std::memory_order_relaxed);
            if (k == key) // lost a race with ourselves? re-entrant find
                return *t->entries[i].chan.load(std::memory_order_relaxed);
            if (k == 0)
                break;
            i = (i + 1) & (t->capacity - 1);
        }
    }
    const std::size_t count = _count.load(std::memory_order_relaxed);
    if (!t || (count + 1) * 4 > t->capacity * 3)
        t = grow(t ? t->capacity * 2 : 16);

    auto *ch = new RequesterChannel(config);
    if (ctr)
        ch->dram.setCounters(ctr);
    std::size_t i = slotOf(key, *t);
    while (t->entries[i].key.load(std::memory_order_relaxed))
        i = (i + 1) & (t->capacity - 1);
    t->entries[i].chan.store(ch, std::memory_order_relaxed);
    // Release on the key: a reader that acquires the key also sees
    // the channel pointer and the constructed channel behind it.
    t->entries[i].key.store(key, std::memory_order_release);
    _count.fetch_add(1, std::memory_order_relaxed);
    return *ch;
}

std::size_t
Node::ChannelTable::residentBytes() const
{
    std::size_t bytes = sizeof(ChannelTable) +
                        _dense.capacity() * sizeof(_dense[0]) +
                        channelCount() * sizeof(RequesterChannel);
    if (const Table *t = _table.load(std::memory_order_acquire))
        bytes += sizeof(Table) + t->capacity * sizeof(Entry);
    bytes += _retired.capacity() * sizeof(_retired[0]);
    for (const auto &t : _retired)
        bytes += sizeof(Table) + t->capacity * sizeof(Entry);
    return bytes;
}

Addr
Node::alloc(std::size_t bytes, std::size_t align)
{
    T3D_FATAL_IF(align == 0 || (align & (align - 1)) != 0,
                 "alignment must be a power of two");
    _allocNext = (_allocNext + align - 1) & ~(Addr{align} - 1);
    Addr result = _allocNext;
    _allocNext += bytes;
    T3D_FATAL_IF(_allocNext > alpha::segBytes,
                 "node ", _pe, " out of local memory");
    return result;
}

std::uint64_t
Node::loadU64(Addr va)
{
    if (!vaIsAnnexed(va))
        return _core.loadU64(va);

    const Addr pa = paOfVa(va);
    const auto &entry = _shell.annex().get(annexIdxOfPa(pa));
    if (entry.pe == _pe) {
        // Local (possibly synonym) path: ordinary cache/WB/DRAM.
        return _core.loadU64(va);
    }
    if (entry.readMode == shell::ReadMode::Cached && _dcache.probe(pa)) {
        // A previously cached remote line: local hit, no network.
        return _core.loadU64(va);
    }
    // Address translation happens before the request reaches the
    // shell: annexed accesses consume TLB reach too (§3.4).
    _core.charge(_tlb.access(va));
    return _shell.remote().read(entry.pe, offsetOfPa(pa), pa,
                                entry.readMode);
}

std::uint32_t
Node::loadU32(Addr va)
{
    T3D_FATAL_IF((va & 3) != 0, "unaligned LDL: va=", va);
    if (!vaIsAnnexed(va))
        return _core.loadU32(va);
    // Remote LDL: same round trip as a quadword; extract the word.
    const std::uint64_t q = loadU64(va & ~Addr{7});
    return static_cast<std::uint32_t>((va & 4) ? (q >> 32) : q);
}

std::uint8_t
Node::loadU8(Addr va)
{
    if (!vaIsAnnexed(va))
        return _core.loadU8(va);
    const std::uint64_t q = loadU64(va & ~Addr{7});
    _core.chargeRegOps(1); // EXTBL
    return static_cast<std::uint8_t>(
        alpha::extbl(q, static_cast<unsigned>(va & 7)));
}

PeId
Node::latchStoreTarget(Addr va)
{
    const Addr pa = paOfVa(va);
    const PeId dst = _shell.annex().peOf(annexIdxOfPa(pa));
    // Tag encoding: 0 = local, otherwise destination PE + 1 (so that
    // PE 0 is representable as a remote target).
    _core.setStoreTag(dst == _pe ? 0 : dst + 1);
    return dst;
}

void
Node::storeU64(Addr va, std::uint64_t value)
{
    if (vaIsAnnexed(va))
        latchStoreTarget(va);
    _core.storeU64(va, value);
}

void
Node::storeU32(Addr va, std::uint32_t value)
{
    if (vaIsAnnexed(va))
        latchStoreTarget(va);
    _core.storeU32(va, value);
}

void
Node::storeU8(Addr va, std::uint8_t value)
{
    if (!vaIsAnnexed(va)) {
        _core.storeU8(va, value);
        return;
    }
    const Addr pa = paOfVa(va);
    const auto &entry = _shell.annex().get(annexIdxOfPa(pa));
    if (entry.pe == _pe) {
        _core.storeU8(va, value);
        return;
    }
    // No byte stores on the Alpha: remote byte write is a remote
    // read-modify-write of the containing quadword — NOT atomic
    // against other writers of the same word (§4.5).
    const Addr aligned = va & ~Addr{7};
    std::uint64_t word = loadU64(aligned);
    _core.chargeRegOps(2); // MSKBL + INSBL
    word = alpha::mergeByte(word, static_cast<unsigned>(va & 7), value);
    storeU64(aligned, word);
}

void
Node::fetchHint(Addr va)
{
    const Addr pa = paOfVa(va);
    const auto &entry = _shell.annex().get(annexIdxOfPa(pa));
    _core.charge(_tlb.access(va));
    _shell.prefetch().issue(entry.pe, offsetOfPa(pa));
}

void
Node::waitRemoteWrites()
{
    // The status bit does not cover writes still sitting in the
    // write buffer (§4.3): MB first.
    _core.mb();
    _shell.remote().pollUntilQuiet();
}

std::uint64_t
Node::swap(Addr va, std::uint64_t new_value)
{
    const Addr pa = paOfVa(va);
    const auto &entry = _shell.annex().get(annexIdxOfPa(pa));
    const auto &cfg = _shell.config();
    if (entry.pe == _pe) {
        std::uint64_t old_value = 0;
        const Cycles done = serviceSwap(_clock.now(), offsetOfPa(pa),
                                        new_value, old_value, _pe);
        _clock.advanceTo(done + cfg.swapFixedCycles);
        return old_value;
    }
    return _shell.remote().swap(entry.pe, offsetOfPa(pa), new_value);
}

Node::RequesterChannel &
Node::channelFor(PeId requester)
{
    RequesterChannel *ch = _channels.find(requester);
    if (!ch) [[unlikely]] {
        // Remote requesters' accesses are events of this memory, so
        // the new channel inherits this node's counter record.
        ch = &_channels.getOrCreate(requester, _config.dram,
                                    countersIfEnabled());
    }
    if (_channelBatching) [[unlikely]]
        batchChannel(*ch);
    return *ch;
}

void
Node::batchChannel(RequesterChannel &ch)
{
    probes::CounterBatch *batch = probes::currentCounterBatch();
    if (!batch || ch.registered)
        return;
    // First touch since the last flush: point the channel's bumps at
    // its local delta (idempotent across windows) and hand the delta
    // to the touching shard's batch. Single writer — only the
    // requester's own thread reaches its channel in-window.
    if (!ch.delta)
        ch.delta = std::make_unique<probes::PerfCounters>();
    ch.registered = true;
    ch.dram.setCounters(ch.delta.get());
    batch->channels.push_back(
        {ch.delta.get(), countersIfEnabled(), &ch.registered});
}

void
Node::setChannelCounterBatching(bool on)
{
    _channelBatching = on;
    if (on)
        return;
    // Serial teardown: restore every channel to the node's record and
    // fold in anything a final partial window left behind.
    probes::PerfCounters *ctr = countersIfEnabled();
    _channels.forEach([ctr](RequesterChannel &ch) {
        ch.dram.setCounters(ctr);
        if (ch.registered || ch.delta) {
            if (ctr && ch.delta)
                *ctr += *ch.delta;
            if (ch.delta)
                *ch.delta = probes::PerfCounters{};
            ch.registered = false;
        }
    });
}

probes::PerfCounters &
Node::counters()
{
    if (!_counters)
        _counters = std::make_unique<probes::PerfCounters>();
    return *_counters;
}

const probes::PerfCounters &
Node::counters() const
{
    static const probes::PerfCounters zero{};
    return _counters ? *_counters : zero;
}

void
Node::enableObservability(bool counters_on, probes::TraceSink *trace)
{
    _countersOn = counters_on;
    if (counters_on)
        counters(); // materialize while still serial
    probes::PerfCounters *ctr = countersIfEnabled();
    _core.setCounters(ctr);
    _tlb.setCounters(ctr);
    _wb.setCounters(ctr);
    _dram.setCounters(ctr);
    _channels.forEach(
        [ctr](RequesterChannel &ch) { ch.dram.setCounters(ctr); });
    _shell.setObservability(ctr, trace);
}

std::size_t
Node::residentModelBytes() const
{
    std::size_t bytes = sizeof(Node);
    bytes += _storage.residentBytes() - sizeof(mem::Storage);
    bytes += _dcache.residentBytes() - sizeof(alpha::DirectMappedCache);
    bytes += _tlb.residentBytes() - sizeof(alpha::Tlb);
    bytes += _channels.residentBytes() - sizeof(ChannelTable);
    bytes += _storeArrivals.residentBytes() - sizeof(ArrivalLog);
    bytes += _amArrivals.residentBytes() - sizeof(ArrivalLog);
    if (_counters)
        bytes += sizeof(probes::PerfCounters);
    return bytes;
}

Cycles
Node::serviceRead(Cycles arrive, Addr offset, void *dst, std::size_t len,
                  PeId requester)
{
    auto access = channelFor(requester).dram.access(arrive, offset);
    _storage.readBlock(offset, dst, len);
    const Cycles extra = access.offPage
        ? _config.shell.remoteOffPageExtraCycles : Cycles{0};
    return access.complete + extra;
}

Cycles
Node::serviceReadConcurrent(Cycles arrive, Addr offset, void *dst,
                            std::size_t len, PeId requester)
{
    auto access = channelFor(requester).dram.access(arrive, offset);
    _storage.readBlockConcurrent(offset, dst, len);
    const Cycles extra = access.offPage
        ? _config.shell.remoteOffPageExtraCycles : Cycles{0};
    return access.complete + extra;
}

Cycles
Node::serviceWrite(Cycles arrive, Addr offset, const void *src,
                   std::size_t len, bool cache_inval, PeId requester)
{
    RequesterChannel &channel = channelFor(requester);
    const Cycles start = std::max(arrive, channel.writePortFree);
    auto access = channel.dram.access(start, offset);
    channel.writePortFree = access.offPage
        ? access.complete
        : access.start + _config.dram.pipelinedBusyCycles;
    _storage.writeBlock(offset, src, len);
    if (cache_inval) {
        const std::uint64_t line = _dcache.lineBytes();
        for (Addr a = offset & ~(line - 1); a < offset + len; a += line)
            _dcache.invalidate(a);
    }
    const Cycles extra = access.offPage
        ? _config.shell.remoteOffPageExtraCycles : Cycles{0};
    return access.complete + extra;
}

Cycles
Node::writeMaskedTiming(Cycles arrive, Addr line_offset, PeId requester)
{
    RequesterChannel &channel = channelFor(requester);
    const Cycles start = std::max(arrive, channel.writePortFree);
    auto access = channel.dram.access(start, line_offset);
    channel.writePortFree = access.offPage
        ? access.complete
        : access.start + _config.dram.pipelinedBusyCycles;
    const Cycles extra = access.offPage
        ? _config.shell.remoteOffPageExtraCycles : Cycles{0};
    return access.complete + extra;
}

void
Node::applyMaskedLine(Addr line_offset, const std::uint8_t *data,
                      std::uint32_t byte_mask, bool cache_inval)
{
    _storage.writeMasked(line_offset, data, byte_mask,
                         alpha::wbLineBytes);
    if (cache_inval)
        _dcache.invalidate(line_offset);
}

Cycles
Node::serviceWriteMasked(Cycles arrive, Addr line_offset,
                         const std::uint8_t *data,
                         std::uint32_t byte_mask, bool cache_inval,
                         PeId requester)
{
    const Cycles done = writeMaskedTiming(arrive, line_offset, requester);
    applyMaskedLine(line_offset, data, byte_mask, cache_inval);
    return done;
}

Cycles
Node::serviceSwap(Cycles arrive, Addr offset, std::uint64_t new_value,
                  std::uint64_t &old_value, PeId requester)
{
    auto access = channelFor(requester).dram.access(arrive, offset);
    old_value = _storage.readU64(offset);
    _storage.writeU64(offset, new_value);
    _dcache.invalidate(offset);
    return access.complete;
}

Cycles
Node::serviceFetchInc(Cycles arrive, unsigned reg,
                      std::uint64_t &old_value)
{
    // Shell registers: no DRAM involvement.
    old_value = _shell.fetchIncRegs().fetchInc(reg);
    return arrive + shell::FetchIncRegisters::serviceCycles;
}

void
Node::serviceMessage(Cycles arrive, const std::uint64_t words[4])
{
    _shell.messages().deliver(arrive, words);
}

void
Node::setWakeupHooks(std::function<void()> on_store_arrival,
                     std::function<void()> on_am_arrival,
                     std::function<void()> on_message)
{
    _storeArrivals.setRecordListener(std::move(on_store_arrival));
    _amArrivals.setRecordListener(std::move(on_am_arrival));
    _shell.messages().setDeliveryListener(std::move(on_message));
}

void
Node::clearWakeupHooks()
{
    _storeArrivals.clearRecordListener();
    _amArrivals.clearRecordListener();
    _shell.messages().clearDeliveryListener();
}

void
Node::bulkReadRaw(Addr offset, void *dst, std::size_t len)
{
    _storage.readBlock(offset, dst, len);
}

void
Node::bulkReadRawConcurrent(Addr offset, void *dst, std::size_t len)
{
    _storage.readBlockConcurrent(offset, dst, len);
}

void
Node::bulkWriteRaw(Addr offset, const void *src, std::size_t len)
{
    _storage.writeBlock(offset, src, len);
    const std::uint64_t line = _dcache.lineBytes();
    for (Addr a = offset & ~(line - 1); a < offset + len; a += line)
        _dcache.invalidate(a);
}

alpha::DrainPort::DrainResult
Node::drainLine(Cycles ready, Addr pa, const std::uint8_t *data,
                std::uint32_t byte_mask, std::uint32_t tag)
{
    // The tag carries the annex-resolved destination latched when
    // the store issued; 0 means local (including local synonyms),
    // otherwise the destination PE + 1.
    const PeId dst = tag == 0 ? _pe : static_cast<PeId>(tag - 1);

    if (dst == _pe) {
        // Local line (plain or synonym): DRAM timing, deferred
        // commit so the pending data stays invisible to loads that
        // miss the buffer's physical-address match (§3.4).
        auto access = _dram.access(ready, offsetOfPa(pa));
        return {access.complete, /*deferCommit=*/true};
    }

    const Cycles injected = _shell.remote().injectWriteLine(
        ready, dst, offsetOfPa(pa), data, byte_mask);
    return {injected, /*deferCommit=*/false};
}

void
Node::commitLine(Addr pa, const std::uint8_t *data,
                 std::uint32_t byte_mask)
{
    const Addr offset = offsetOfPa(pa);
    _storage.writeMasked(offset, data, byte_mask, alpha::wbLineBytes);
}

} // namespace t3dsim::machine
