# Empty dependencies file for synonym_test.
# This may be replaced when dependencies are built.
