#include "splitc/parallel_executor.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "machine/node.hh"
#include "probes/counters.hh"
#include "splitc/lookahead.hh"
#include "splitc/proc.hh"
#include "sim/logging.hh"

namespace t3dsim::splitc
{

thread_local ParallelScheduler::Shard *ParallelScheduler::tlsShard = nullptr;

namespace
{

constexpr Cycles NO_KEY = std::numeric_limits<Cycles>::max();

/** Merge order of deferred effects / blocked resumes. */
using MergeKey = std::tuple<Cycles, PeId, std::uint64_t>;

} // namespace

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

ParallelScheduler::ParallelScheduler(machine::Machine &machine,
                                     const SplitcConfig &config,
                                     unsigned host_threads)
    : Scheduler(machine, config)
{
    _window = conservativeLookahead(machine.config());
    _adaptive = config.adaptiveLookahead;

    unsigned shards = std::max(1u, host_threads);
    shards = std::min<unsigned>(shards, machine.numPes());
    // Observability stays multi-shard: cross-thread counter bumps
    // (per-requester channel timing on the destination node, torus
    // route tallies) accumulate into shard-local CounterBatches, and
    // trace events recorded from shard threads accumulate into
    // shard-local TraceSink::Batches; both flush serially at the
    // window merge (probes/batch.hh, probes/trace.hh). Recording
    // never advances a clock, so timing is unaffected either way.

    T3D_ASSERT(machine.config().dcacheLineBytes <= 32,
               "deferred line buffer holds at most 32 bytes, got line of ",
               machine.config().dcacheLineBytes);

    const std::uint32_t pes = machine.numPes();
    _peShard.resize(pes);
    _shards.reserve(shards);
    const std::uint32_t base = pes / shards;
    const std::uint32_t rem = pes % shards;
    PeId next = 0;
    for (unsigned s = 0; s < shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->index = s;
        const std::uint32_t count = base + (s < rem ? 1 : 0);
        for (std::uint32_t i = 0; i < count; ++i)
            _peShard[next++] = s;
        _shards.push_back(std::move(shard));
    }

    _proxies.reserve(pes);
    for (PeId pe = 0; pe < pes; ++pe)
        _proxies.emplace_back(*this, pe);
}

ParallelScheduler::~ParallelScheduler()
{
    shutdownWorkers();
}

// ---------------------------------------------------------------------
// Seam overrides
// ---------------------------------------------------------------------

void
ParallelScheduler::markReady(PeId pe)
{
    Shard &shard = *_shards[_peShard[pe]];
    shard.heap.push_back({_slots[pe].proc->now(), pe});
    std::push_heap(shard.heap.begin(), shard.heap.end());
}

void
ParallelScheduler::queueWakeupCheck(PeId pe)
{
    Slot &slot = _slots[pe];
    if (slot.wakeQueued)
        return;
    if (slot.state != ProcState::StoreWait &&
        slot.state != ProcState::MessageWait)
        return;
    slot.wakeQueued = true;

    // Same-shard wakes run right after the current resume (the exact
    // point the sequential scheduler runs them); anything else —
    // merge-time applications, granted cross-shard records — drains
    // serially at the next window start, before any PE can run.
    Shard *shard = tlsShard;
    if (shard && _peShard[pe] == shard->index)
        shard->localWakes.push_back(pe);
    else
        _pendingWakeups.push_back(pe);
}

void
ParallelScheduler::parkBarrier(PeId pe)
{
    // Parks happen on the owning shard's worker thread (during a
    // resume), so the waiter list must be per-shard: two shards can
    // park PEs concurrently inside the same window.
    _slots[pe].state = ProcState::BarrierWait;
    Shard *shard = tlsShard;
    if (shard)
        shard->barrierWaiters.push_back(pe);
    else
        _barrierWaiters.push_back(pe);
}

void
ParallelScheduler::completeBarrier(Cycles exit)
{
    // Only reached with exclusive access — serially at the window
    // merge, or on a granted worker while every other shard is
    // parked — so draining the other shards' lists (and pushing
    // woken PEs onto their heaps) is safe; the park/dispatch mutex
    // handshakes order the accesses.
    for (PeId pe : _barrierWaiters)
        wakeBarrierWaiter(pe, exit);
    _barrierWaiters.clear();
    for (auto &shard : _shards) {
        for (PeId pe : shard->barrierWaiters)
            wakeBarrierWaiter(pe, exit);
        shard->barrierWaiters.clear();
    }
    _machine.barrier().resetGeneration();
}

void
ParallelScheduler::barrierArrive(PeId pe, Cycles when)
{
    // The barrier network is shared machine state read by every
    // shard's fast path (generation, last exit time): inside a
    // window the arrival is always deferred, even for a "local"
    // one, so it is only mutated serially at the merge.
    Shard *shard = tlsShard;
    if (shard && !shard->grantedMode) {
        DeferredOp &op = defer(*shard, DeferredOp::Kind::BarrierArrive, pe);
        op.when = when;
        return;
    }
    Scheduler::barrierArrive(pe, when);
}

void
ParallelScheduler::recordStoreArrival(PeId dst, Cycles when,
                                      std::uint64_t bytes)
{
    Shard *shard = tlsShard;
    if (shard && !shard->grantedMode && _peShard[dst] != shard->index) {
        DeferredOp &op = defer(*shard, DeferredOp::Kind::StoreArrival, dst);
        op.when = when;
        op.amount = bytes;
        return;
    }
    if (shard && shard->grantedMode && _peShard[dst] != shard->index)
        checkArrivalAboveFrontier(dst, when);
    Scheduler::recordStoreArrival(dst, when, bytes);
}

void
ParallelScheduler::recordAmArrival(PeId dst, Cycles when,
                                   std::uint64_t count)
{
    Shard *shard = tlsShard;
    if (shard && !shard->grantedMode && _peShard[dst] != shard->index) {
        DeferredOp &op = defer(*shard, DeferredOp::Kind::AmArrival, dst);
        op.when = when;
        op.amount = count;
        return;
    }
    if (shard && shard->grantedMode && _peShard[dst] != shard->index)
        checkArrivalAboveFrontier(dst, when);
    Scheduler::recordAmArrival(dst, when, count);
}

void
ParallelScheduler::amPublishDispatch(PeId pe, bool spilled)
{
    // Like the barrier network, the flow account is shared state
    // every shard's deposit path routes on: inside a window the
    // publish is always deferred — even for the shard's own PE — so
    // it commits at its merge-key position, never at a host instant.
    Shard *shard = tlsShard;
    if (shard && !shard->grantedMode) {
        DeferredOp &op = defer(*shard, DeferredOp::Kind::AmDispatch, pe);
        op.amount = spilled ? 1 : 0;
        return;
    }
    Scheduler::amPublishDispatch(pe, spilled);
}

Scheduler::AmFlowCounts
ParallelScheduler::amFlowVisible(PeId pe)
{
    // Committed account plus the calling shard's own unmerged
    // publishes. A same-shard receiver's dispatches ran host-before
    // this claim in exactly the sequential order, so all of them must
    // be visible (like overlayPendingWrites, the tail scan is
    // deliberately not key-filtered); a cross-shard receiver's
    // publishes merge strictly by key, and everything below the
    // claim's grant key was applied before the grant.
    AmFlowCounts flow = amFlow(pe);
    const Shard *shard = tlsShard;
    if (!shard)
        return flow;
    for (std::size_t i = shard->outboxCursor; i < shard->outbox.size();
         ++i) {
        const DeferredOp &op = shard->outbox[i];
        if (op.kind == DeferredOp::Kind::AmDispatch && op.dst == pe) {
            ++flow.dispatched;
            if (op.amount != 0)
                ++flow.spillsDrained;
        }
    }
    return flow;
}

shell::RemoteMemoryPort *
ParallelScheduler::route(PeId dst)
{
    Shard *shard = tlsShard;
    if (!shard || shard->grantedMode)
        return nullptr; // controller / granted resume: direct access
    if (_peShard[dst] == shard->index)
        return nullptr; // same shard: the destination is exclusively ours
    return &_proxies[dst];
}

// ---------------------------------------------------------------------
// RemoteProxy: the cross-shard view of one destination PE
// ---------------------------------------------------------------------

Cycles
ParallelScheduler::RemoteProxy::serviceRead(Cycles arrive, Addr offset,
                                            void *dst, std::size_t len,
                                            PeId requester)
{
    const Cycles done = _sched->machine().node(_dst).serviceReadConcurrent(
        arrive, offset, dst, len, requester);
    _sched->overlayPendingWrites(*tlsShard, _dst, offset, dst, len);
    return done;
}

Cycles
ParallelScheduler::RemoteProxy::serviceWrite(Cycles arrive, Addr offset,
                                             const void *src,
                                             std::size_t len,
                                             bool cache_inval,
                                             PeId requester)
{
    // No runtime path issues un-masked remote writes today; if one
    // appears, serialize it like an atomic rather than guessing at a
    // timing/data split.
    _sched->blockForGrant();
    return _sched->machine().node(_dst).serviceWrite(
        arrive, offset, src, len, cache_inval, requester);
}

Cycles
ParallelScheduler::RemoteProxy::serviceWriteMasked(Cycles arrive,
                                                   Addr line_offset,
                                                   const std::uint8_t *data,
                                                   std::uint32_t byte_mask,
                                                   bool cache_inval,
                                                   PeId requester)
{
    // The source needs the completion time now (it feeds the ack
    // pipeline), but the destination's data and cache state must not
    // change until the merge: split timing from application.
    const Cycles done = _sched->machine().node(_dst).writeMaskedTiming(
        arrive, line_offset, requester);

    DeferredOp &op = _sched->defer(*tlsShard,
                                   DeferredOp::Kind::MaskedLine, _dst);
    op.offset = line_offset;
    op.mask = byte_mask;
    op.cacheInval = cache_inval;
    for (unsigned i = 0; i < 32; ++i) {
        if (byte_mask & (1u << i))
            op.line[i] = data[i];
    }
    return done;
}

Cycles
ParallelScheduler::RemoteProxy::serviceSwap(Cycles arrive, Addr offset,
                                            std::uint64_t new_value,
                                            std::uint64_t &old_value,
                                            PeId requester)
{
    // The requester needs the pre-swap value to continue: this
    // cannot be deferred. Park until every other shard is quiescent,
    // then run directly.
    _sched->blockForGrant();
    return _sched->machine().node(_dst).serviceSwap(
        arrive, offset, new_value, old_value, requester);
}

Cycles
ParallelScheduler::RemoteProxy::serviceFetchInc(Cycles arrive, unsigned reg,
                                                std::uint64_t &old_value)
{
    _sched->blockForGrant();
    return _sched->machine().node(_dst).serviceFetchInc(arrive, reg,
                                                        old_value);
}

void
ParallelScheduler::RemoteProxy::serviceMessage(Cycles arrive,
                                               const std::uint64_t words[4])
{
    DeferredOp &op = _sched->defer(*tlsShard,
                                   DeferredOp::Kind::Message, _dst);
    op.when = arrive;
    std::copy(words, words + 4, op.words.begin());
}

void
ParallelScheduler::RemoteProxy::bulkReadRaw(Addr offset, void *dst,
                                            std::size_t len)
{
    _sched->machine().node(_dst).bulkReadRawConcurrent(offset, dst, len);
    _sched->overlayPendingWrites(*tlsShard, _dst, offset, dst, len);
}

void
ParallelScheduler::RemoteProxy::bulkWriteRaw(Addr offset, const void *src,
                                             std::size_t len)
{
    Shard &shard = *tlsShard;
    DeferredOp &op = _sched->defer(shard, DeferredOp::Kind::BulkWrite,
                                   _dst);
    op.offset = offset;
    // The payload lives in the shard's payload arena (not the scratch
    // arena the caller may have a scope over) until the window merge
    // applies the op and rewinds it.
    std::uint8_t *buf = shard.payload.alloc(len);
    std::memcpy(buf, src, len);
    op.bulkData = buf;
    op.bulkLen = len;
}

// ---------------------------------------------------------------------
// Shard-thread side
// ---------------------------------------------------------------------

ParallelScheduler::DeferredOp &
ParallelScheduler::defer(Shard &shard, DeferredOp::Kind kind, PeId dst)
{
    DeferredOp &op = shard.outbox.emplace_back();
    op.key = shard.currentKey.clock;
    op.src = shard.currentKey.pe;
    op.seq = shard.seq++;
    op.kind = kind;
    op.dst = dst;
    return op;
}

void
ParallelScheduler::overlayPendingWrites(const Shard &shard, PeId dst,
                                        Addr offset, void *buf,
                                        std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(buf);
    for (std::size_t i = shard.outboxCursor; i < shard.outbox.size(); ++i) {
        const DeferredOp &op = shard.outbox[i];
        if (op.dst != dst)
            continue;
        switch (op.kind) {
          case DeferredOp::Kind::MaskedLine:
            for (unsigned b = 0; b < 32; ++b) {
                if (!(op.mask & (1u << b)))
                    continue;
                const Addr a = op.offset + b;
                if (a >= offset && a < offset + len)
                    bytes[a - offset] = op.line[b];
            }
            break;
          case DeferredOp::Kind::BulkWrite: {
            const Addr lo = std::max<Addr>(op.offset, offset);
            const Addr hi = std::min<Addr>(op.offset + op.bulkLen,
                                           offset + len);
            if (lo < hi) {
                std::copy_n(op.bulkData + (lo - op.offset), hi - lo,
                            bytes + (lo - offset));
            }
            break;
          }
          default:
            break;
        }
    }
}

void
ParallelScheduler::sortOutboxTail(Shard &shard)
{
    // Host append order can regress below the resume key (a woken PE
    // resumes at a clock earlier than a PE that ran before it), so
    // the unapplied tail is sorted into merge order whenever the
    // shard parks.
    std::sort(shard.outbox.begin() +
                  static_cast<std::ptrdiff_t>(shard.outboxCursor),
              shard.outbox.end(),
              [](const DeferredOp &a, const DeferredOp &b) {
                  return std::tie(a.key, a.src, a.seq) <
                         std::tie(b.key, b.src, b.seq);
              });
}

void
ParallelScheduler::drainLocalWakes(Shard &shard)
{
    for (std::size_t i = 0; i < shard.localWakes.size(); ++i)
        tryWake(shard.localWakes[i]);
    shard.localWakes.clear();
}

void
ParallelScheduler::runWindow(Shard &shard)
{
    while (!_abort.load(std::memory_order_relaxed)) {
        if (shard.heap.empty())
            break;
        const ReadyRef top = shard.heap.front();
        if (top.clock >= shard.horizon)
            break;
        std::pop_heap(shard.heap.begin(), shard.heap.end());
        shard.heap.pop_back();

        shard.currentKey = top;
        if (top.clock > shard.executedFrontier)
            shard.executedFrontier = top.clock;
        const bool finished = resumeSlot(top.pe);
        shard.grantedMode = false;
        if (finished) {
            auto handle = _slots[top.pe].task.handle();
            if (handle.promise().exception) {
                noteError(handle.promise().exception);
                break;
            }
            ++shard.doneDelta;
        }
        drainLocalWakes(shard);
    }
}

void
ParallelScheduler::workerMain(Shard &shard)
{
    tlsShard = &shard;
    // This thread's BLT staging comes from the shard's scratch arena;
    // counter bumps and trace events that would cross threads batch
    // into the shard's CounterBatch / TraceSink::Batch (only needed
    // when the respective sink is live and there is more than one
    // shard — a lone shard's recordings never race).
    sim::ScratchArenaInstall scratch_install(shard.scratch);
    if (_shards.size() > 1) {
        if (_machine.countersEnabled() || _machine.trace() != nullptr)
            probes::installCounterBatch(&shard.batch);
        if (_machine.trace() != nullptr)
            probes::TraceSink::installBatch(&shard.traceBatch);
    }
    while (true) {
        {
            std::unique_lock<std::mutex> lock(shard.m);
            shard.cv.wait(lock, [&] {
                return shard.runRequested || shard.exitRequested;
            });
            if (shard.exitRequested)
                return;
            shard.runRequested = false;
        }
        try {
            runWindow(shard);
        } catch (...) {
            noteError(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lock(shard.m);
            sortOutboxTail(shard);
            shard.state = Shard::State::DoneWindow;
            shard.cv.notify_all();
        }
    }
}

void
ParallelScheduler::blockForGrant()
{
    Shard *shard = tlsShard;
    T3D_ASSERT(shard, "grant requested off a worker thread");
    T3D_ASSERT(!shard->grantedMode, "nested grant request");

    std::unique_lock<std::mutex> lock(shard->m);
    sortOutboxTail(*shard);
    shard->state = Shard::State::Blocked;
    shard->cv.notify_all();
    shard->cv.wait(lock, [&] {
        return shard->granted || shard->exitRequested;
    });
    if (shard->exitRequested) {
        // Teardown while parked (the controller is unwinding): bail
        // out of the resume; the exception parks in the coroutine
        // promise and the worker exits on its next command wait.
        lock.unlock();
        throw std::runtime_error(
            "t3dsim: parallel scheduler shut down while awaiting grant");
    }
    shard->granted = false;
    shard->state = Shard::State::Running;
    shard->grantedMode = true;
}

void
ParallelScheduler::noteError(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(_errorMutex);
        if (!_firstError)
            _firstError = error;
    }
    _abort.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Controller side
// ---------------------------------------------------------------------

void
ParallelScheduler::dispatch(Shard &shard, Cycles horizon)
{
    std::lock_guard<std::mutex> lock(shard.m);
    shard.horizon = horizon;
    shard.doneDelta = 0;
    shard.runRequested = true;
    shard.state = Shard::State::Running;
    shard.cv.notify_all();
}

void
ParallelScheduler::waitParked(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.m);
    shard.cv.wait(lock, [&] {
        return shard.state == Shard::State::Blocked ||
               shard.state == Shard::State::DoneWindow;
    });
}

void
ParallelScheduler::grantAndWait(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.m);
    shard.granted = true;
    shard.cv.notify_all();
    // The shard consumes the grant (granted = false, state =
    // Running), finishes the resume with direct access, and parks
    // again — possibly blocked on its next atomic.
    shard.cv.wait(lock, [&] {
        return !shard.granted && shard.state != Shard::State::Running;
    });
}

void
ParallelScheduler::checkArrivalAboveFrontier(PeId dst, Cycles when) const
{
    // The lookahead soundness argument (conservative or adaptive, see
    // adaptiveHorizon) promises that every time-stamped cross-shard
    // arrival lands at or above what the receiving shard has already
    // executed; a violation means some PE ran past a store/message
    // wake it should have seen. Fail loudly here instead of silently
    // diverging from the sequential reference. Checked at merge-time
    // application and on granted resumes' direct records (reading the
    // destination's frontier is safe in both: every other shard is
    // parked, with the park/dispatch mutex handshakes ordering the
    // accesses).
    const Shard &dst_shard = *_shards[_peShard[dst]];
    T3D_ASSERT(when >= dst_shard.executedFrontier,
               "cross-shard arrival at PE ", dst, " time ", when,
               " lands below its shard's executed frontier ",
               dst_shard.executedFrontier, " — lookahead horizon unsound");
}

void
ParallelScheduler::applyOp(const DeferredOp &op)
{
    if (op.kind == DeferredOp::Kind::Message ||
        op.kind == DeferredOp::Kind::StoreArrival ||
        op.kind == DeferredOp::Kind::AmArrival) {
        checkArrivalAboveFrontier(op.dst, op.when);
    }

    machine::Node &node = _machine.node(op.dst);
    switch (op.kind) {
      case DeferredOp::Kind::MaskedLine:
        node.applyMaskedLine(op.offset, op.line.data(), op.mask,
                             op.cacheInval);
        break;
      case DeferredOp::Kind::BulkWrite:
        node.bulkWriteRaw(op.offset, op.bulkData, op.bulkLen);
        break;
      case DeferredOp::Kind::Message:
        node.serviceMessage(op.when, op.words.data());
        break;
      case DeferredOp::Kind::StoreArrival:
        Scheduler::recordStoreArrival(op.dst, op.when, op.amount);
        break;
      case DeferredOp::Kind::AmArrival:
        Scheduler::recordAmArrival(op.dst, op.when, op.amount);
        break;
      case DeferredOp::Kind::AmDispatch:
        Scheduler::amPublishDispatch(op.dst, op.amount != 0);
        break;
      case DeferredOp::Kind::BarrierArrive:
        Scheduler::barrierArrive(op.dst, op.when);
        break;
    }
}

void
ParallelScheduler::mergeWindow()
{
    // Repeatedly consume the globally smallest pending item — a
    // deferred effect at an outbox cursor, or a shard blocked on an
    // atomic — in (clock, source PE, issue seq) order. Applying in
    // key order reproduces the sequential schedule; grants interleave
    // the serialized atomics at exactly their key position.
    while (true) {
        Shard *op_shard = nullptr;
        Shard *blocked = nullptr;
        MergeKey best{};
        bool have = false;

        for (auto &entry : _shards) {
            Shard &shard = *entry;
            if (shard.outboxCursor < shard.outbox.size()) {
                const DeferredOp &op = shard.outbox[shard.outboxCursor];
                const MergeKey key{op.key, op.src, op.seq};
                if (!have || key < best) {
                    have = true;
                    best = key;
                    op_shard = &shard;
                    blocked = nullptr;
                }
            }
            Shard::State state;
            {
                std::lock_guard<std::mutex> lock(shard.m);
                state = shard.state;
            }
            if (state == Shard::State::Blocked) {
                // The blocked op carries the shard's next seq: every
                // effect the resume deferred before it applies first.
                const MergeKey key{shard.currentKey.clock,
                                   shard.currentKey.pe, shard.seq};
                if (!have || key < best) {
                    have = true;
                    best = key;
                    blocked = &shard;
                    op_shard = nullptr;
                }
            }
        }

        if (!have)
            break;
        if (op_shard) {
            applyOp(op_shard->outbox[op_shard->outboxCursor]);
            ++op_shard->outboxCursor;
        } else {
            grantAndWait(*blocked);
        }
    }

    for (auto &entry : _shards) {
        entry->outbox.clear();
        entry->outboxCursor = 0;
        // Every deferred payload has been applied: drop them all
        // (chunks are kept, so steady state allocates nothing).
        entry->payload.rewindAll();
        flushObservabilityBatches(*entry);
    }
}

void
ParallelScheduler::flushObservabilityBatches(Shard &shard)
{
    probes::CounterBatch &batch = shard.batch;
    for (const probes::ChannelDelta &cd : batch.channels) {
        if (cd.target)
            *cd.target += *cd.delta;
        *cd.delta = probes::PerfCounters{};
        *cd.registered = false;
    }
    batch.channels.clear();
    for (const auto &[src, dst, when] : batch.routes)
        _machine.recordDeferredRoute(src, dst, when);
    batch.routes.clear();
    if (probes::TraceSink *trace = _machine.trace())
        trace->flush(shard.traceBatch);
}

void
ParallelScheduler::shutdownWorkers()
{
    for (auto &entry : _shards) {
        std::lock_guard<std::mutex> lock(entry->m);
        entry->exitRequested = true;
        entry->cv.notify_all();
    }
    for (auto &entry : _shards) {
        if (entry->thread.joinable())
            entry->thread.join();
    }
}

Cycles
ParallelScheduler::adaptiveHorizon(const Shard &shard) const
{
    // H_i = min(W + min over the *other* nonempty shards' front keys,
    //           F_i + 2W), F_i this shard's own front.
    //
    // The first leg bounds one-hop influence that exists at the
    // window-start snapshot: it originates at or after some other
    // shard's front and takes at least W of simulated time to land.
    // It is NOT sound on its own, because in-window sends create
    // influence below the snapshot fronts: a store this shard issues
    // at F_i wakes a peer PE at >= F_i + W whose reply lands back
    // here at >= F_i + 2W — running past that point would read
    // memory the reflection should already have written. The second
    // leg caps the horizon below every such reflection.
    //
    // Soundness of the pair, by induction on hop count: H_i <= F_j +
    // W for every other nonempty shard j (first leg), so snapshot
    // effects land at >= F_j + W >= H_i; and H_i <= T + 2W <= H_j +
    // W (T the global minimum front; if T = F_i the cap gives H_i <=
    // T + 2W, otherwise the holder of T is "other" and the first leg
    // gives H_i <= T + W), so a reply to an in-window arrival —
    // which by induction reached shard j at >= H_j — lands here at
    // >= H_j + W >= H_i. Atomics are exempt: they serialize through
    // the grant protocol at their exact key.
    //
    // Only a lone shard gets an unbounded horizon: with no other
    // shard in existence there are no cross-shard sends at all, so
    // it can run to its next park in one window.
    if (_shards.size() == 1)
        return NO_KEY;
    Cycles other = NO_KEY;
    for (const auto &entry : _shards) {
        if (entry.get() == &shard || entry->heap.empty())
            continue;
        other = std::min(other, entry->heap.front().clock);
    }
    const Cycles h_other =
        other > NO_KEY - _window ? NO_KEY : other + _window;
    if (shard.heap.empty())
        return h_other; // never dispatched; value is bookkeeping only
    const Cycles own = shard.heap.front().clock;
    const Cycles two_w = _window > NO_KEY / 2 ? NO_KEY : 2 * _window;
    const Cycles h_own = own > NO_KEY - two_w ? NO_KEY : own + two_w;
    return std::min(h_other, h_own);
}

void
ParallelScheduler::mainLoop()
{
    struct RouterGuard
    {
        machine::Machine &machine;
        ~RouterGuard() { machine.setRemoteRouter(nullptr); }
    } router_guard{_machine};
    _machine.setRemoteRouter(this);

    // Multi-shard counter runs redirect per-requester channel bumps
    // into shard-local deltas (see probes/batch.hh); the mode comes
    // off however we leave, restoring the channels for a later
    // sequential run on the same machine. Traced multi-shard runs
    // also get a final batch flush so no shard-buffered events are
    // lost on an abort path.
    const bool batch_counters =
        _machine.countersEnabled() && _shards.size() > 1;
    const bool batch_obs =
        (_machine.countersEnabled() || _machine.trace() != nullptr) &&
        _shards.size() > 1;
    struct BatchGuard
    {
        ParallelScheduler &sched;
        bool channels;
        bool active;
        ~BatchGuard()
        {
            if (!active)
                return;
            // Workers are joined by the time guards unwind (the
            // WorkerGuard below is constructed after this one), so a
            // final serial flush of anything an aborted window left
            // behind is safe; disabling the mode then restores the
            // channels' counter wiring.
            for (auto &entry : sched._shards)
                sched.flushObservabilityBatches(*entry);
            if (!channels)
                return;
            for (PeId pe = 0; pe < sched._machine.numPes(); ++pe)
                sched._machine.node(pe).setChannelCounterBatching(false);
        }
    } batch_guard{*this, batch_counters, batch_obs};
    if (batch_counters) {
        for (PeId pe = 0; pe < _machine.numPes(); ++pe)
            _machine.node(pe).setChannelCounterBatching(true);
    }

    // The guard goes up before the first spawn: if a std::thread
    // constructor throws mid-loop, the workers already running must
    // be joined on the unwind path before BatchGuard above flushes
    // their batches (shutdownWorkers skips never-started threads).
    struct WorkerGuard
    {
        ParallelScheduler &sched;
        ~WorkerGuard() { sched.shutdownWorkers(); }
    } worker_guard{*this};
    for (auto &entry : _shards) {
        Shard *shard = entry.get();
        shard->thread = std::thread([this, shard] { workerMain(*shard); });
    }

    while (true) {
        // Serial pre-window step: wake checks queued by the previous
        // merge (and granted cross-shard records) run before any PE
        // can be scheduled, exactly like the sequential drain before
        // each pop.
        drainPendingWakeups();
        if (_done >= _slots.size() ||
            _abort.load(std::memory_order_acquire)) {
            break;
        }

        Cycles t = NO_KEY;
        for (auto &entry : _shards) {
            if (!entry->heap.empty() && entry->heap.front().clock < t)
                t = entry->heap.front().clock;
        }
        if (t == NO_KEY)
            panicDeadlock(_done);
        const Cycles base_horizon =
            t > NO_KEY - _window ? NO_KEY : t + _window;

        // Fix every shard's horizon from the same window-start front
        // snapshot before dispatching any of them: a dispatched
        // worker immediately mutates its own heap, which
        // adaptiveHorizon reads as "other" state for the remaining
        // shards, so interleaving the two would race (and make the
        // widening count host-timing dependent).
        for (auto &entry : _shards) {
            // The adaptive horizon is never below the conservative
            // one: the globally smallest front is "other" to every
            // shard but its own, whose own front *is* the minimum.
            const Cycles horizon =
                _adaptive ? adaptiveHorizon(*entry) : base_horizon;
            entry->plannedHorizon = horizon;
            entry->dispatched = !entry->heap.empty() &&
                                entry->heap.front().clock < horizon;
            if (entry->dispatched && horizon > base_horizon)
                ++_lookaheadWidenings;
        }
        for (auto &entry : _shards) {
            if (entry->dispatched)
                dispatch(*entry, entry->plannedHorizon);
        }
        for (auto &entry : _shards) {
            if (entry->dispatched)
                waitParked(*entry);
        }

        mergeWindow();

        for (auto &entry : _shards) {
            if (!entry->dispatched)
                continue;
            _done += entry->doneDelta;
            entry->doneDelta = 0;
        }
    }

    shutdownWorkers();
    if (_firstError)
        std::rethrow_exception(_firstError);
}

} // namespace t3dsim::splitc
