/**
 * @file
 * Fitter tests (docs/MODEL.md §3): golden exact-recovery fits on
 * synthetic sweeps, scaling-term selection, the multi-feature
 * no-intercept solver, and residual thresholds on the *real*
 * micro-sweeps — the fitted model must explain the measurements it
 * came from, or the handbook's coefficients are fiction.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/fit.hh"
#include "model/measure.hh"
#include "model/primitives.hh"
#include "model/sweep.hh"

namespace t3dsim::model
{
namespace
{

TEST(FitLinear, RecoversExactLine)
{
    std::vector<FitPoint> pts;
    for (double x : {1.0, 2.0, 4.0, 8.0, 16.0})
        pts.push_back({x, 100.0 + 7.0 * x});
    const LinearFit fit = fitLinear(pts);
    EXPECT_NEAR(fit.intercept, 100.0, 1e-9);
    EXPECT_NEAR(fit.slope, 7.0, 1e-9);
    EXPECT_NEAR(fit.quality.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.quality.maxRelErr, 0.0, 1e-12);
}

TEST(FitLinear, DegenerateXGivesMeanIntercept)
{
    const LinearFit fit = fitLinear({{3, 10}, {3, 20}});
    EXPECT_DOUBLE_EQ(fit.slope, 0);
    EXPECT_DOUBLE_EQ(fit.intercept, 15);
}

TEST(FitScaling, PicksGeneratingTerm)
{
    for (ScalingTerm term :
         {ScalingTerm::Log2, ScalingTerm::Sqrt, ScalingTerm::Linear,
          ScalingTerm::PLogP}) {
        std::vector<FitPoint> pts;
        for (double p : {2.0, 8.0, 32.0, 128.0, 512.0})
            pts.push_back({p, 5.0 + 3.0 * scalingTermValue(term, p)});
        const ScalingFit fit = fitScaling(pts);
        EXPECT_EQ(fit.term, term) << scalingTermName(term);
        EXPECT_NEAR(fit.intercept, 5.0, 1e-6);
        EXPECT_NEAR(fit.slope, 3.0, 1e-6);
    }
}

TEST(FitScaling, ConstantDataPrefersConstantTerm)
{
    std::vector<FitPoint> pts;
    for (double p : {2.0, 8.0, 32.0, 128.0})
        pts.push_back({p, 42.0});
    const ScalingFit fit = fitScaling(pts);
    EXPECT_EQ(fit.term, ScalingTerm::Constant);
    EXPECT_NEAR(fit.eval(1 << 20), 42.0, 1e-9);
}

TEST(SolveLeastSquares, RecoversTwoCoupledFeatures)
{
    // y = 88·a + 2·b, with (a, b) patterns mimicking the pooled
    // remote-read op-count + distance sweeps.
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (double ops : {8.0, 16.0, 32.0}) {
        rows.push_back({ops, 2 * ops});
        y.push_back(88.0 * ops + 2.0 * (2 * ops));
    }
    for (double hops : {1.0, 3.0, 6.0}) {
        rows.push_back({16.0, 16.0 * hops});
        y.push_back(88.0 * 16.0 + 2.0 * 16.0 * hops);
    }
    std::vector<double> beta;
    ASSERT_TRUE(solveLeastSquares(rows, y, beta));
    ASSERT_EQ(beta.size(), 2u);
    EXPECT_NEAR(beta[0], 88.0, 1e-6);
    EXPECT_NEAR(beta[1], 2.0, 1e-6);
}

TEST(SolveLeastSquares, SingularSystemReportsFailure)
{
    // Second feature is a constant multiple of the first.
    std::vector<std::vector<double>> rows = {
        {1, 2}, {2, 4}, {3, 6}};
    std::vector<double> beta;
    EXPECT_FALSE(solveLeastSquares(rows, {10, 20, 30}, beta));
    ASSERT_EQ(beta.size(), 2u);
    EXPECT_DOUBLE_EQ(beta[0], 0);
    EXPECT_DOUBLE_EQ(beta[1], 0);
}

/** Synthetic sweeps with known per-counter prices: the fitter must
 *  recover them exactly (golden fit). */
TEST(FitCostModel, GoldenRecoveryFromSyntheticSweeps)
{
    auto sweep = [](const char *primitive,
                    std::vector<SweepPoint> pts) {
        Sweep s;
        s.primitive = primitive;
        s.xUnit = "ops";
        s.points = std::move(pts);
        return s;
    };
    std::vector<Sweep> sweeps;
    // l1Hits priced at exactly 1.5 cycles.
    sweeps.push_back(sweep(
        "local_read_hit", {{32, 48, {{"l1Hits", 32}}},
                           {64, 96, {{"l1Hits", 64}}},
                           {128, 192, {{"l1Hits", 128}}}}));
    FitReport report;
    const CostModel m = fitCostModel(sweeps, &report);
    EXPECT_NEAR(m.beta("l1Hits"), 1.5, 1e-9);
    const CostTerm *t = m.termForCounter("l1Hits");
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->fitted);
    EXPECT_NEAR(t->quality.r2, 1.0, 1e-9);
    // Unmeasured groups stay at assumed values and warn.
    EXPECT_FALSE(report.warnings.empty());
    const CostTerm *rr = m.termForCounter("remoteReads");
    ASSERT_NE(rr, nullptr);
    EXPECT_FALSE(rr->fitted);
}

/** The real micro-sweeps must be explained by their own fit. */
TEST(FitCostModel, RealSweepsFitWithinResidualBand)
{
    std::string error;
    const std::vector<Sweep> sweeps = measureAll(&error);
    ASSERT_FALSE(sweeps.empty()) << error;

    FitReport report;
    const CostModel m = fitCostModel(sweeps, &report);

    // Anchor coefficients the paper pins down.
    EXPECT_NEAR(m.beta("l1Hits"), 1.0, 0.05);
    EXPECT_NEAR(m.beta("annexFaults"), 23.0, 2.0);
    EXPECT_GT(m.beta("remoteReads"), 60.0);
    EXPECT_LT(m.beta("remoteReads"), 130.0);
    EXPECT_GT(m.beta("msgInterrupts"), 3000.0);

    // Every fitted term must carry healthy residuals.
    for (const CostTerm &t : m.terms) {
        if (!t.fitted || t.beta == 0)
            continue;
        EXPECT_GT(t.quality.points, 0u) << t.name;
        EXPECT_LT(t.quality.medianRelErr, 0.05) << t.name;
    }

    // Fig. 8: BLT bandwidth near 1 cycle/byte after startup, and a
    // solved crossover in the thousands of bytes.
    EXPECT_GT(m.bltRead.slope, 0.9);
    EXPECT_LT(m.bltRead.slope, 1.4);
    EXPECT_GT(m.bltCrossoverBytes, 2000.0);
    EXPECT_LT(m.bltCrossoverBytes, 20000.0);

    // No negative prices survive fitting.
    for (const CostTerm &t : m.terms)
        EXPECT_GE(t.beta, 0.0) << t.name;
}

/** Sweeps and fitted models survive their JSON round trip. */
TEST(ModelJson, SweepAndModelRoundTrip)
{
    std::string error;
    const std::vector<Sweep> sweeps = measureAll(&error);
    ASSERT_FALSE(sweeps.empty()) << error;

    std::ostringstream ss;
    writeSweepsJson(ss, sweeps);
    const Json doc = Json::parse(ss.str(), &error);
    std::vector<Sweep> back;
    ASSERT_TRUE(readSweepsJson(doc, back, &error)) << error;
    ASSERT_EQ(back.size(), sweeps.size());
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        EXPECT_EQ(back[i].primitive, sweeps[i].primitive);
        ASSERT_EQ(back[i].points.size(), sweeps[i].points.size());
        for (std::size_t j = 0; j < sweeps[i].points.size(); ++j) {
            EXPECT_DOUBLE_EQ(back[i].points[j].cycles,
                             sweeps[i].points[j].cycles);
            EXPECT_EQ(back[i].points[j].counters,
                      sweeps[i].points[j].counters);
        }
    }

    const CostModel m = fitCostModel(sweeps);
    std::ostringstream ms;
    writeModelJson(ms, m);
    const Json mdoc = Json::parse(ms.str(), &error);
    CostModel mb;
    ASSERT_TRUE(readModelJson(mdoc, mb, &error)) << error;
    ASSERT_EQ(mb.terms.size(), m.terms.size());
    for (std::size_t i = 0; i < m.terms.size(); ++i) {
        EXPECT_EQ(mb.terms[i].counter, m.terms[i].counter);
        EXPECT_DOUBLE_EQ(mb.terms[i].beta, m.terms[i].beta);
        EXPECT_EQ(mb.terms[i].flagOnNonzero,
                  m.terms[i].flagOnNonzero);
    }
    EXPECT_EQ(mb.directCycleCounters, m.directCycleCounters);
    EXPECT_DOUBLE_EQ(mb.bltCrossoverBytes, m.bltCrossoverBytes);
    EXPECT_DOUBLE_EQ(mb.bltRead.slope, m.bltRead.slope);
    EXPECT_EQ(mb.barrierScaling.term, m.barrierScaling.term);
}

} // namespace
} // namespace t3dsim::model
