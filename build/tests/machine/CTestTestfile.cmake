# CMake generated Testfile for 
# Source directory: /root/repo/tests/machine
# Build directory: /root/repo/build/tests/machine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/machine/remote_access_test[1]_include.cmake")
include("/root/repo/build/tests/machine/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/machine/blt_test[1]_include.cmake")
include("/root/repo/build/tests/machine/workstation_test[1]_include.cmake")
include("/root/repo/build/tests/machine/messaging_test[1]_include.cmake")
include("/root/repo/build/tests/machine/synonym_test[1]_include.cmake")
include("/root/repo/build/tests/machine/hops_test[1]_include.cmake")
