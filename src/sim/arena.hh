/**
 * @file
 * EventArena: a chunked bump-pointer allocator for event-path
 * transients (DESIGN.md §9).
 *
 * Two allocation patterns on the simulator's hot path used the heap
 * per event: the parallel scheduler's deferred-op bulk payloads (one
 * std::vector per cross-shard bulk write, freed at the window merge)
 * and the BLT's per-transfer staging buffers (one or two vectors per
 * transfer, freed before the call returns). Both are strictly
 * scoped — nothing outlives its window or its transfer — which is the
 * textbook arena shape: allocate by bumping a pointer into a chunk,
 * free everything at once by rewinding.
 *
 * Pointers handed out are stable (chunks never move or grow in
 * place); rewinding keeps every chunk allocated, so a scheduler in
 * steady state performs zero heap traffic per window.
 *
 * Ownership and threading:
 *  - each parallel-scheduler shard owns a *payload* arena (deferred-op
 *    bulk spans; rewound serially in the window merge) and a
 *    *scratch* arena (BLT staging; rewound per transfer);
 *  - the sequential scheduler owns one scratch arena;
 *  - ArenaScope allocates from the arena installed on the current
 *    thread (ScratchArenaInstall), falling back to a lazily-created
 *    thread-local arena so shell code works outside any scheduler
 *    (unit tests driving the BLT directly).
 *
 * The payload and scratch arenas must be distinct: a BLT write stages
 * its source bytes in a scratch scope and, under the parallel
 * scheduler, defers the actual write — whose payload must survive the
 * scope's rewind until the window merge.
 */

#ifndef T3DSIM_SIM_ARENA_HH
#define T3DSIM_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace t3dsim::sim
{

class EventArena
{
  public:
    /** A rewind point: (chunk index, byte offset within it). */
    struct Marker
    {
        std::size_t chunk = 0;
        std::size_t offset = 0;
    };

    explicit EventArena(std::size_t chunk_bytes = 64 * 1024)
        : _chunkBytes(chunk_bytes)
    {
    }

    EventArena(const EventArena &) = delete;
    EventArena &operator=(const EventArena &) = delete;

    /** Allocate @p bytes with 8-byte alignment. Stable until the
     *  enclosing rewind. */
    std::uint8_t *
    alloc(std::size_t bytes)
    {
        const std::size_t need = (bytes + 7) & ~std::size_t{7};
        if (_chunk >= _chunks.size() ||
            _offset + need > _chunks[_chunk].size) [[unlikely]]
            nextChunk(need);
        std::uint8_t *p = _chunks[_chunk].data.get() + _offset;
        _offset += need;
        return p;
    }

    Marker mark() const { return {_chunk, _offset}; }

    /** Drop every allocation made after @p m; chunks are kept. */
    void
    rewind(Marker m)
    {
        _chunk = m.chunk;
        _offset = m.offset;
    }

    /** Drop every allocation; chunks are kept. */
    void rewindAll() { rewind({0, 0}); }

    /** Bytes currently held (for footprint accounting). */
    std::size_t
    reservedBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : _chunks)
            total += c.size;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t size = 0;
    };

    void
    nextChunk(std::size_t need)
    {
        // Advance to the next chunk large enough for the request;
        // oversized requests get a dedicated chunk of their own size.
        while (++_chunk < _chunks.size()) {
            if (_chunks[_chunk].size >= need) {
                _offset = 0;
                return;
            }
        }
        const std::size_t size = need > _chunkBytes ? need : _chunkBytes;
        _chunks.push_back(
            {std::make_unique<std::uint8_t[]>(size), size});
        _chunk = _chunks.size() - 1;
        _offset = 0;
    }

    std::size_t _chunkBytes;
    std::vector<Chunk> _chunks;
    std::size_t _chunk = 0; ///< current chunk (may be == size(): none)
    std::size_t _offset = 0;
};

namespace detail
{
/** Arena installed on this thread by a scheduler (null = none). */
inline thread_local EventArena *tlsScratchArena = nullptr;
} // namespace detail

/** The scratch arena for this thread: the installed one, else a
 *  lazily-created thread-local fallback. */
inline EventArena &
currentScratchArena()
{
    if (detail::tlsScratchArena)
        return *detail::tlsScratchArena;
    static thread_local EventArena fallback;
    return fallback;
}

/** RAII install of @p arena as this thread's scratch arena. */
class ScratchArenaInstall
{
  public:
    explicit ScratchArenaInstall(EventArena &arena)
        : _prev(detail::tlsScratchArena)
    {
        detail::tlsScratchArena = &arena;
    }

    ~ScratchArenaInstall() { detail::tlsScratchArena = _prev; }

    ScratchArenaInstall(const ScratchArenaInstall &) = delete;
    ScratchArenaInstall &operator=(const ScratchArenaInstall &) = delete;

  private:
    EventArena *_prev;
};

/** RAII scope over the current thread's scratch arena: allocations
 *  made through the scope are dropped when it closes. */
class ArenaScope
{
  public:
    ArenaScope() : _arena(currentScratchArena()), _mark(_arena.mark()) {}
    ~ArenaScope() { _arena.rewind(_mark); }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    std::uint8_t *alloc(std::size_t bytes) { return _arena.alloc(bytes); }

  private:
    EventArena &_arena;
    EventArena::Marker _mark;
};

} // namespace t3dsim::sim

#endif // T3DSIM_SIM_ARENA_HH
