#include "sim/arrivals.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim
{

void
ArrivalLog::record(Cycles when, std::uint64_t amount)
{
    if (amount == 0)
        return;
    _total += amount;
    // Most arrivals are recorded roughly in time order; fall back to a
    // sorted insert when they are not.
    if (_entries.empty() || _entries.back().when <= when) {
        std::uint64_t cum = amount;
        if (_prefixValid == _entries.size()) {
            // Common case: the prefix stays fully valid.
            cum += _entries.empty() ? _cumBase : _entries.back().cum;
            ++_prefixValid;
        }
        _entries.push_back({when, amount, cum});
    } else {
        // Ordered insert among the *live* entries only: the fully
        // consumed prefix is semantically gone.
        auto pos = std::upper_bound(
            _entries.begin() + static_cast<long>(_head), _entries.end(),
            when, [](Cycles t, const Entry &e) { return t < e.when; });
        const auto idx =
            static_cast<std::size_t>(pos - _entries.begin());
        if (idx == _head && _headConsumed > 0) {
            // The new entry lands in front of a partially-consumed
            // one. Fold the partial consumption into the old head —
            // shrinking its recorded amount and forgetting those
            // units were ever consumed — so the head cursor cleanly
            // refers to the new entry. Unconsumed totals and all
            // query answers are unchanged.
            _entries[_head].amount -= _headConsumed;
            _consumedTotal -= _headConsumed;
            _headConsumed = 0;
        }
        _entries.insert(pos, {when, amount, 0});
        _prefixValid = std::min(_prefixValid, idx);
    }
    if (_onRecord)
        _onRecord();
}

void
ArrivalLog::refreshPrefix() const
{
    std::uint64_t acc =
        _prefixValid ? _entries[_prefixValid - 1].cum : _cumBase;
    for (std::size_t i = _prefixValid; i < _entries.size(); ++i) {
        acc += _entries[i].amount;
        _entries[i].cum = acc;
    }
    _prefixValid = _entries.size();
}

std::optional<Cycles>
ArrivalLog::timeOfCumulative(std::uint64_t amount) const
{
    if (amount == 0)
        return Cycles{0};
    if (amount > _total)
        return std::nullopt;
    refreshPrefix();
    const std::uint64_t target = _consumedTotal + amount;
    auto pos = std::lower_bound(
        _entries.begin() + static_cast<long>(_head), _entries.end(),
        target,
        [](const Entry &e, std::uint64_t a) { return e.cum < a; });
    T3D_ASSERT(pos != _entries.end(), "prefix sum inconsistent");
    return pos->when;
}

std::uint64_t
ArrivalLog::arrivedBy(Cycles when) const
{
    if (_head == _entries.size() || _entries[_head].when > when)
        return 0;
    refreshPrefix();
    auto pos = std::upper_bound(
        _entries.begin() + static_cast<long>(_head), _entries.end(),
        when, [](Cycles t, const Entry &e) { return t < e.when; });
    return (pos - 1)->cum - _consumedTotal;
}

void
ArrivalLog::consume(std::uint64_t amount)
{
    T3D_ASSERT(amount <= _total, "consuming more than arrived");
    _total -= amount;
    _consumedTotal += amount;
    while (amount > 0) {
        T3D_ASSERT(_head < _entries.size(), "arrival log underflow");
        const std::uint64_t avail =
            _entries[_head].amount - _headConsumed;
        if (avail > amount) {
            _headConsumed += amount;
            amount = 0;
        } else {
            amount -= avail;
            _headConsumed = 0;
            ++_head;
        }
    }
    if (_head > 64 && _head * 2 > _entries.size())
        compact();
}

void
ArrivalLog::compact()
{
    // The dropped entries are fully consumed, so their amounts are
    // exactly the consumed total minus the partial head consumption;
    // fold them into the prefix-rebuild base so absolute cums stay
    // continuous across the compaction.
    _cumBase = _consumedTotal - _headConsumed;
    _entries.erase(_entries.begin(),
                   _entries.begin() + static_cast<long>(_head));
    _head = 0;
    _prefixValid = 0;
}

void
ArrivalLog::reset()
{
    _entries.clear();
    _head = 0;
    _headConsumed = 0;
    _consumedTotal = 0;
    _cumBase = 0;
    _prefixValid = 0;
    _total = 0;
}

} // namespace t3dsim
