/**
 * @file
 * Lightweight statistics helpers used by probes and benches: running
 * scalar statistics and fixed-bucket histograms.
 */

#ifndef T3DSIM_SIM_STATS_HH
#define T3DSIM_SIM_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace t3dsim
{

/** Incremental min / max / mean / variance over a stream of samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    std::uint64_t count() const { return _count; }

    /** Sum of all samples. */
    double sum() const { return _sum; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return _count ? _sum / _count : 0.0; }

    /** Smallest sample; +inf when empty. */
    double min() const { return _min; }

    /** Largest sample; -inf when empty. */
    double max() const { return _max; }

    /** Population variance (Welford); 0 when fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Forget all samples. */
    void reset() { *this = RunningStat(); }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
    double _meanAcc = 0.0;
    double _m2 = 0.0;
};

/**
 * Histogram over [lo, hi) with uniform buckets plus underflow and
 * overflow counters.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the bucketed range.
     * @param hi Exclusive upper bound of the bucketed range.
     * @param buckets Number of uniform buckets; must be > 0.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return _counts.at(i); }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const;

    std::size_t numBuckets() const { return _counts.size(); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }

    /** Render a compact one-line-per-bucket summary. */
    std::string render() const;

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

} // namespace t3dsim

#endif // T3DSIM_SIM_STATS_HH
