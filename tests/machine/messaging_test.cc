/**
 * @file
 * Integration tests of the user-level message queue (§7.3): send is
 * 122 cycles (813 ns), receive costs a 25 us interrupt, dispatching
 * to a handler adds 33 us more.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;

struct MessagingTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(8)};
    machine::Node &n0 = m.node(0);
    machine::Node &n1 = m.node(1);

    void
    send(std::uint64_t w0)
    {
        std::uint64_t words[4] = {w0, w0 + 1, w0 + 2, w0 + 3};
        n0.shell().remote().sendMessage(1, words);
    }
};

TEST_F(MessagingTest, SendCosts122Cycles)
{
    const Cycles t0 = n0.clock().now();
    send(1);
    EXPECT_EQ(n0.clock().now() - t0, 122u);
    EXPECT_NEAR(cyclesToNs(122), 813.0, 5.0);
}

TEST_F(MessagingTest, MessageArrivesWithPayload)
{
    send(10);
    ASSERT_TRUE(n1.shell().messages().hasMessage());
    auto [msg, done] = n1.shell().messages().dequeue(
        n1.clock().now(), false);
    EXPECT_EQ(msg.words[0], 10u);
    EXPECT_EQ(msg.words[3], 13u);
}

TEST_F(MessagingTest, ReceiveInterruptCosts25us)
{
    send(1);
    auto [msg, done] =
        n1.shell().messages().dequeue(n1.clock().now(), false);
    const double us = cyclesToUs(done - msg.arrival);
    EXPECT_NEAR(us, 25.0, 0.2) << "§7.3 measured interrupt cost";
}

TEST_F(MessagingTest, HandlerDispatchAdds33us)
{
    send(1);
    send(2);
    auto [m1, d1] =
        n1.shell().messages().dequeue(n1.clock().now(), false);
    auto [m2, d2] = n1.shell().messages().dequeue(d1, true);
    const double extra_us = cyclesToUs((d2 - d1) - (d1 - m1.arrival));
    // d2 - d1 = wait-to-arrival + interrupt + handler; arrival is in
    // the past here, so the difference is exactly the handler cost.
    EXPECT_NEAR(extra_us, 33.0, 0.5);
}

TEST_F(MessagingTest, ReceiveIsMuchSlowerThanSend)
{
    // The §7.3 punchline: "the send cost is the fast part".
    send(1);
    const Cycles send_cost = 122;
    auto [msg, done] =
        n1.shell().messages().dequeue(n1.clock().now(), false);
    const Cycles recv_cost = done - std::max(n1.clock().now(),
                                             msg.arrival);
    EXPECT_GT(recv_cost, 25 * send_cost);
}

TEST_F(MessagingTest, MultipleMessagesQueueInOrder)
{
    send(100);
    send(200);
    send(300);
    EXPECT_EQ(n1.shell().messages().depth(), 3u);
    auto [m1, d1] =
        n1.shell().messages().dequeue(n1.clock().now(), false);
    auto [m2, d2] = n1.shell().messages().dequeue(d1, false);
    auto [m3, d3] = n1.shell().messages().dequeue(d2, false);
    EXPECT_EQ(m1.words[0], 100u);
    EXPECT_EQ(m2.words[0], 200u);
    EXPECT_EQ(m3.words[0], 300u);
}

} // namespace
