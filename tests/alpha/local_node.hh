/**
 * @file
 * Test fixture: a standalone local Alpha node (no shell) with a
 * simple DRAM-backed drain port, T3D-calibrated by default.
 */

#ifndef T3DSIM_TESTS_ALPHA_LOCAL_NODE_HH
#define T3DSIM_TESTS_ALPHA_LOCAL_NODE_HH

#include "alpha/cache.hh"
#include "alpha/core.hh"
#include "alpha/tlb.hh"
#include "alpha/write_buffer.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "sim/clock.hh"

namespace t3dsim::testing
{

/** A core + memory system with no shell, for alpha-layer tests. */
class LocalNode : public alpha::DrainPort
{
  public:
    explicit LocalNode(const alpha::Tlb::Config &tlb_cfg =
                           {32, 4 * MiB, 35},
                       const alpha::WriteBuffer::Config &wb_cfg = {})
        : storage(Addr{1} << 32), dram(), tlb(tlb_cfg),
          dcache(8 * KiB, 32), wb(wb_cfg, *this),
          core(alpha::CoreConfig{}, clock, tlb, dcache, wb, dram,
               storage)
    {
    }

    DrainResult
    drainLine(Cycles ready, Addr pa, const std::uint8_t *,
              std::uint32_t, std::uint32_t) override
    {
        auto access = dram.access(ready, pa);
        return {access.complete, /*deferCommit=*/true};
    }

    void
    commitLine(Addr pa, const std::uint8_t *data,
               std::uint32_t byte_mask) override
    {
        for (unsigned i = 0; i < alpha::wbLineBytes; ++i) {
            if (byte_mask & (1u << i))
                storage.writeU8(pa + i, data[i]);
        }
    }

    Clock clock;
    mem::Storage storage;
    mem::DramController dram;
    alpha::Tlb tlb;
    alpha::DirectMappedCache dcache;
    alpha::WriteBuffer wb;
    alpha::AlphaCore core;
};

} // namespace t3dsim::testing

#endif // T3DSIM_TESTS_ALPHA_LOCAL_NODE_HH
