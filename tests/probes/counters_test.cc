/**
 * @file
 * PerfCounters taxonomy / aggregation / report-writer tests, plus
 * machine-level checks that the bump sites fire where the taxonomy
 * says they do (and stay silent when observability is off).
 */

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "probes/counters.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using probes::ObsConfig;
using probes::PerfCounters;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

// ---------------------------------------------------------------------
// Struct-level: taxonomy table, aggregation, writers
// ---------------------------------------------------------------------

TEST(Counters, MemberTableCoversEveryField)
{
    // infos() and memberTable are generated from the same X-macro:
    // same length, and value(i) round-trips through setValue(i).
    EXPECT_EQ(PerfCounters::infos().size(), PerfCounters::numCounters);

    PerfCounters c;
    for (std::size_t i = 0; i < PerfCounters::numCounters; ++i) {
        EXPECT_EQ(c.value(i), 0u);
        c.setValue(i, i + 1);
    }
    for (std::size_t i = 0; i < PerfCounters::numCounters; ++i)
        EXPECT_EQ(c.value(i), i + 1);
}

TEST(Counters, InfosAreNamedAndDocumented)
{
    for (const auto &info : PerfCounters::infos()) {
        EXPECT_NE(info.name, nullptr);
        EXPECT_STRNE(info.name, "");
        EXPECT_STRNE(info.unit, "");
        EXPECT_STRNE(info.site, "");
        EXPECT_STRNE(info.paper, "");
    }
}

TEST(Counters, AggregateSumsFieldwise)
{
    PerfCounters a;
    a.l1Hits = 3;
    a.remoteReads = 1;
    PerfCounters b;
    b.l1Hits = 4;
    b.torusHops = 9;

    const PerfCounters total = probes::aggregate({a, b});
    EXPECT_EQ(total.l1Hits, 7u);
    EXPECT_EQ(total.remoteReads, 1u);
    EXPECT_EQ(total.torusHops, 9u);
    EXPECT_EQ(total.barriers, 0u);

    PerfCounters sum = a;
    sum += b;
    EXPECT_EQ(sum, total);
}

TEST(Counters, JsonReportHasSchemaTotalsAndPerPe)
{
    PerfCounters a;
    a.remoteReads = 2;
    PerfCounters b;
    b.remoteReads = 5;

    std::ostringstream os;
    probes::writeCountersJson(os, {a, b});
    const std::string s = os.str();

    EXPECT_NE(s.find("\"schema\": \"t3dsim-counters-v1\""),
              std::string::npos);
    EXPECT_NE(s.find("\"pes\": 2"), std::string::npos);
    EXPECT_NE(s.find("\"remoteReads\": 7"), std::string::npos);
    EXPECT_NE(s.find("\"per_pe\""), std::string::npos);
    // No torus section unless stats are supplied.
    EXPECT_EQ(s.find("\"torus\""), std::string::npos);
}

TEST(Counters, JsonReportIncludesTorusStats)
{
    probes::TorusLinkStats torus;
    torus.dx = 2;
    torus.dy = 2;
    torus.dz = 1;
    torus.dimTraversals = {5, 3, 0};
    torus.linkTraversals.assign(4 * 3, 0);
    torus.linkTraversals[0 * 3 + 0] = 5;

    std::ostringstream os;
    probes::writeCountersJson(os, {PerfCounters{}}, &torus);
    const std::string s = os.str();

    EXPECT_NE(s.find("\"dims\": [2, 2, 1]"), std::string::npos);
    EXPECT_NE(s.find("\"dim_traversals\": [5, 3, 0]"),
              std::string::npos);
    EXPECT_NE(s.find("\"link_traversals\""), std::string::npos);
}

TEST(Counters, CsvReportHasHeaderPerPeAndTotalRows)
{
    PerfCounters a;
    a.l1Misses = 8;

    std::ostringstream os;
    probes::writeCountersCsv(os, {a, PerfCounters{}});
    const std::string s = os.str();

    EXPECT_EQ(s.rfind("pe,l1Hits,l1Misses", 0), 0u); // header first
    EXPECT_NE(s.find("\n0,0,8,"), std::string::npos);
    EXPECT_NE(s.find("\ntotal,0,8,"), std::string::npos);
}

// ---------------------------------------------------------------------
// Environment overrides
// ---------------------------------------------------------------------

TEST(Counters, FromEnvEnablesAndOverridesPaths)
{
    setenv("T3DSIM_COUNTERS", "1", 1);
    setenv("T3DSIM_TRACE", "/tmp/custom.trace.json", 1);
    const ObsConfig obs = ObsConfig::fromEnv(ObsConfig{});
    unsetenv("T3DSIM_COUNTERS");
    unsetenv("T3DSIM_TRACE");

    EXPECT_TRUE(obs.counters);
    EXPECT_EQ(obs.countersPath, "t3dsim.counters.json");
    EXPECT_TRUE(obs.trace);
    EXPECT_EQ(obs.tracePath, "/tmp/custom.trace.json");
}

TEST(Counters, FromEnvZeroForcesOff)
{
    ObsConfig base;
    base.counters = true;
    base.trace = true;
    setenv("T3DSIM_COUNTERS", "0", 1);
    setenv("T3DSIM_TRACE", "0", 1);
    const ObsConfig obs = ObsConfig::fromEnv(base);
    unsetenv("T3DSIM_COUNTERS");
    unsetenv("T3DSIM_TRACE");

    EXPECT_FALSE(obs.counters);
    EXPECT_FALSE(obs.trace);
}

TEST(Counters, FromEnvAbsentKeepsBase)
{
    unsetenv("T3DSIM_COUNTERS");
    unsetenv("T3DSIM_TRACE");
    ObsConfig base;
    base.counters = true;
    base.countersPath = "mine.json";
    const ObsConfig obs = ObsConfig::fromEnv(base);
    EXPECT_TRUE(obs.counters);
    EXPECT_EQ(obs.countersPath, "mine.json");
    EXPECT_FALSE(obs.trace);
}

// ---------------------------------------------------------------------
// Machine-level bump sites
// ---------------------------------------------------------------------

/** 2-PE program touching most shell mechanisms. */
void
runMicroProgram(Machine &m)
{
    runSpmd(m, [&](Proc &p) -> ProcTask {
        // A cached local access so the L1 counters see traffic.
        p.node().core().storeU64(0x20000, p.pe());
        p.node().core().loadU64(0x20000);
        if (p.pe() == 0) {
            p.readU64(GlobalAddr::make(1, 0x40000));
            p.writeU64(GlobalAddr::make(1, 0x40008), 7);
            p.getU64(GlobalAddr::make(1, 0x40000), 0x50000);
            p.sync();
            p.fetchInc(1, 0);
        }
        co_await p.barrier();
        co_return;
    });
}

#if T3D_OBS_ENABLED

TEST(Counters, MachineRunBumpsShellCounters)
{
    MachineConfig config = MachineConfig::t3d(2);
    config.observe.counters = true;
    Machine m(config);
    ASSERT_TRUE(m.countersEnabled());

    runMicroProgram(m);

    const PerfCounters &pe0 = m.node(0).counters();
    EXPECT_EQ(pe0.remoteReads, 1u);
    EXPECT_GE(pe0.remoteWriteLines, 1u);
    EXPECT_EQ(pe0.prefetchIssues, 1u);
    EXPECT_EQ(pe0.prefetchDrains, 1u);
    EXPECT_EQ(pe0.fetchIncRoundTrips, 1u);
    EXPECT_GE(pe0.annexFaults, 1u);
    EXPECT_EQ(pe0.barriers, 1u);
    EXPECT_GT(pe0.torusHops, 0u);
    // The remote accesses ran against PE 1's memory.
    EXPECT_GT(m.node(1).counters().dramPageHits +
                  m.node(1).counters().dramPageMisses,
              0u);

    const PerfCounters total = m.totalCounters();
    EXPECT_EQ(total.barriers, 2u);
    EXPECT_GE(total.l1Hits + total.l1Misses, 1u);

    std::ostringstream os;
    m.writeCounterJson(os);
    EXPECT_NE(os.str().find("\"torus\""), std::string::npos);
}

#endif // T3D_OBS_ENABLED

TEST(Counters, DisabledMachineStaysSilent)
{
    // Default config: no counters, no trace; records must stay zero.
    Machine m(MachineConfig::t3d(2));
    EXPECT_FALSE(m.countersEnabled());
    EXPECT_EQ(m.trace(), nullptr);

    runMicroProgram(m);

    EXPECT_EQ(m.totalCounters(), PerfCounters{});
    EXPECT_EQ(m.node(0).countersIfEnabled(), nullptr);
}

} // namespace
