/**
 * @file
 * t3d-fuzz: seeded differential stress harness (docs/STRESS.md).
 *
 * Generates random-but-race-free Split-C traffic from a seed and
 * cross-checks the sequential scheduler against the host-parallel
 * scheduler at several thread counts: per-PE finish times, memory
 * checksums and per-PE counters must match bit-for-bit.
 *
 *   t3d-fuzz                         # 50-seed corpus, threads 1,2,4,8
 *   t3d-fuzz --seed 7                # one seed
 *   t3d-fuzz --seed 7 --repro        # print the op listing, then run
 *   t3d-fuzz --corpus 10 --base 100  # seeds 100..109
 *   t3d-fuzz --pes 4 --rounds 2 --ops 8 --threads 2,4
 *   t3d-fuzz --pes 2048 --corpus 2 --rounds 2 --ops 4
 *                                    # large-P differential configs
 *   t3d-fuzz --large-smoke           # fixed 1K/2K/4K-PE smoke corpus
 *   t3d-fuzz --flood 24 --am-slots 8 --ovf-slots 64
 *                                    # drive the AM overflow ring
 *   t3d-fuzz --adaptive-lookahead    # add adaptive-horizon legs
 *   t3d-fuzz --saturate              # AM/message flood demo
 *   t3d-fuzz --json                  # machine-readable report
 *
 * Exit status: 0 when every seed passes, 1 on any divergence.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "stress/differential.hh"
#include "stress/generator.hh"

namespace
{

using namespace t3dsim;

struct CliOptions
{
    bool haveSeed = false;
    std::uint64_t seed = 0;
    std::uint64_t corpus = 50;
    std::uint64_t base = 1;
    std::uint32_t pes = 8;
    std::uint32_t rounds = 4;
    std::uint32_t ops = 12;
    std::uint32_t flood = 0;
    std::uint32_t amSlots = 0;
    std::uint32_t ovfSlots = 0;
    std::vector<int> threads = {1, 2, 4, 8};
    bool adaptiveLegs = false;
    bool repro = false;
    bool saturate = false;
    bool json = false;
    bool largeSmoke = false;
};

std::vector<int>
parseThreads(const std::string &list)
{
    std::vector<int> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::stoi(item));
    return out;
}

[[noreturn]] void
usage(int status)
{
    std::cerr
        << "usage: t3d-fuzz [--seed N | --corpus N [--base B]]\n"
        << "                [--pes P] [--rounds R] [--ops K]\n"
        << "                [--flood N] [--am-slots Q] [--ovf-slots V]\n"
        << "                [--threads a,b,c] [--adaptive-lookahead]\n"
        << "                [--repro] [--saturate] [--large-smoke]\n"
        << "                [--json]\n";
    std::exit(status);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.haveSeed = true;
            opt.seed = std::stoull(value());
        } else if (arg == "--corpus") {
            opt.corpus = std::stoull(value());
        } else if (arg == "--base") {
            opt.base = std::stoull(value());
        } else if (arg == "--pes") {
            opt.pes = std::uint32_t(std::stoul(value()));
        } else if (arg == "--rounds") {
            opt.rounds = std::uint32_t(std::stoul(value()));
        } else if (arg == "--ops") {
            opt.ops = std::uint32_t(std::stoul(value()));
        } else if (arg == "--flood") {
            opt.flood = std::uint32_t(std::stoul(value()));
        } else if (arg == "--am-slots") {
            opt.amSlots = std::uint32_t(std::stoul(value()));
        } else if (arg == "--ovf-slots") {
            opt.ovfSlots = std::uint32_t(std::stoul(value()));
        } else if (arg == "--threads") {
            opt.threads = parseThreads(value());
        } else if (arg == "--adaptive-lookahead") {
            opt.adaptiveLegs = true;
        } else if (arg == "--repro") {
            opt.repro = true;
        } else if (arg == "--saturate") {
            opt.saturate = true;
        } else if (arg == "--large-smoke") {
            opt.largeSmoke = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "t3d-fuzz: unknown option " << arg << "\n";
            usage(2);
        }
    }
    if (opt.repro && !opt.haveSeed) {
        std::cerr << "t3d-fuzz: --repro needs --seed\n";
        usage(2);
    }
    return opt;
}

int
runSaturateDemo(const CliOptions &opt)
{
    const auto rep = stress::runSaturate();
    if (opt.json) {
        std::cout << "{\"mode\": \"saturate\", \"completed\": "
                  << (rep.completed ? "true" : "false")
                  << ", \"am_deposits\": " << rep.amDeposits
                  << ", \"am_overflows\": " << rep.amOverflows
                  << ", \"am_handled\": " << rep.amHandled
                  << ", \"msgs_sent\": " << rep.msgsSent
                  << ", \"msg_spills\": " << rep.msgSpills
                  << ", \"msgs_received\": " << rep.msgsReceived
                  << ", \"receiver_finish_cycles\": "
                  << rep.receiverFinish << "}\n";
    } else {
        std::cout << "saturate: " << rep.amDeposits
                  << " AM deposits (" << rep.amOverflows
                  << " rerouted to the overflow ring, " << rep.amHandled
                  << " handled), " << rep.msgsSent << " messages ("
                  << rep.msgSpills << " spilled past the hardware "
                  << "queue, " << rep.msgsReceived
                  << " received); receiver finished at cycle "
                  << rep.receiverFinish << "\n";
    }
    const bool ok = rep.completed && rep.amHandled == rep.amDeposits &&
                    rep.msgsReceived == rep.msgsSent &&
                    rep.amOverflows > 0 && rep.msgSpills > 0;
    if (!ok)
        std::cerr << "saturate: FAILED (flood did not complete with "
                  << "modeled spill costs)\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    if (opt.saturate)
        return runSaturateDemo(opt);

    const auto makeConfig = [&](std::uint64_t seed) {
        stress::StressConfig cfg{seed, opt.pes, opt.rounds, opt.ops};
        cfg.amFloodDeposits = opt.flood;
        cfg.amQueueSlots = opt.amSlots;
        cfg.amOverflowSlots = opt.ovfSlots;
        return cfg;
    };

    std::vector<stress::StressConfig> configs;
    if (opt.largeSmoke) {
        // Fixed large-P corpus: a few rounds of light traffic at PE
        // counts that straddle the fine-chunk storage threshold
        // (2048; see MachineConfig::fineChunkPes), so the sparse
        // chunk store, the radix barrier tree and the hashed channel
        // table all get differential coverage at scale.
        for (std::uint32_t pes : {1024u, 2048u, 4096u}) {
            stress::StressConfig cfg{opt.base + pes, pes, 2, 4};
            configs.push_back(cfg);
        }
    } else if (opt.haveSeed) {
        configs.push_back(makeConfig(opt.seed));
    } else {
        for (std::uint64_t s = 0; s < opt.corpus; ++s)
            configs.push_back(makeConfig(opt.base + s));
    }

    if (opt.repro)
        stress::Plan::build(makeConfig(opt.seed)).print(std::cout);

    std::uint64_t failures = 0;
    if (opt.json)
        std::cout << "[\n";
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto rep = stress::runDifferential(
            configs[i], opt.threads, opt.adaptiveLegs);
        if (!rep.pass)
            ++failures;
        if (opt.json) {
            std::cout << "  {\"seed\": " << rep.seed << ", \"pass\": "
                      << (rep.pass ? "true" : "false")
                      << ", \"checksum\": " << rep.reference.checksum
                      << ", \"mismatches\": [";
            for (std::size_t k = 0; k < rep.mismatches.size(); ++k)
                std::cout << (k ? ", " : "") << '"'
                          << rep.mismatches[k] << '"';
            std::cout << "]}" << (i + 1 < configs.size() ? "," : "")
                      << "\n";
        } else {
            std::cout << "seed " << rep.seed << ": "
                      << (rep.pass ? "ok" : "FAIL") << "\n";
            for (const auto &msg : rep.mismatches)
                std::cout << "  " << msg << "\n";
        }
    }
    if (opt.json)
        std::cout << "]\n";

    if (!opt.json)
        std::cout << (configs.size() - failures) << "/" << configs.size()
                  << " seeds passed the differential check\n";
    if (failures != 0)
        std::cerr << "t3d-fuzz: " << failures
                  << " seed(s) diverged; rerun with --seed <N> "
                  << "--repro to print the op listing\n";
    return failures == 0 ? 0 : 1;
}
