#include "taskgraph/service.hh"

#include <sstream>

#include "model/json.hh"
#include "taskgraph/graph.hh"
#include "taskgraph/predict.hh"
#include "taskgraph/run.hh"

namespace t3dsim::taskgraph
{

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof esc, "\\u%04x", c);
                out += esc;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One parsed request line. */
struct Request
{
    std::string id = "?";
    bool predict = false;
    std::uint32_t pes = 8;
    int hostThreads = -1;
    bool trace = false;
    TaskGraph graph;
    Plan plan;
    std::uint64_t graphHash = 0;
    std::uint64_t machineHash = 0;
};

/** The machine half of the cache key: everything outside the graph
 *  that shapes the answer (PE count + the lowering thresholds; the
 *  MachineConfig::t3d preset itself is fixed per build). */
std::uint64_t
machineHashFor(const LowerOptions &opt)
{
    std::ostringstream os;
    os << "m1|" << opt.pes << '|' << opt.storeMaxBytes << '|'
       << opt.putMaxBytes << '|' << opt.bltCrossoverBytes << '|'
       << opt.flopCycles;
    const std::string s = os.str();
    return fnv1aBytes(s.data(), s.size());
}

bool
parseRequest(const std::string &line, Request &req, std::string &err)
{
    std::string parse_err;
    const model::Json doc = model::Json::parse(line, &parse_err);
    if (!parse_err.empty()) {
        err = "bad JSON: " + parse_err;
        return false;
    }
    if (!doc.isObject()) {
        err = "request must be a JSON object";
        return false;
    }
    if (doc["id"].isString())
        req.id = doc["id"].str();
    if (doc.has("mode")) {
        const std::string mode = doc["mode"].str();
        if (mode == "predict") {
            req.predict = true;
        } else if (mode != "simulate") {
            err = "unknown mode '" + mode + "' (simulate|predict)";
            return false;
        }
    }
    const double pes = doc.numberOr("pes", 8);
    if (pes < 1 || pes > 65536 || pes != static_cast<double>(
                                             static_cast<std::uint32_t>(pes))) {
        err = "'pes' must be an integer in [1, 65536]";
        return false;
    }
    req.pes = static_cast<std::uint32_t>(pes);
    req.hostThreads = static_cast<int>(doc.numberOr("host_threads", -1));
    req.trace = doc["trace"].isBool() && doc["trace"].boolean();

    if (!doc.has("graph")) {
        err = "missing 'graph'";
        return false;
    }
    if (!TaskGraph::parse(doc["graph"], req.graph, err))
        return false;
    if (!req.graph.validate(req.pes, err))
        return false;

    LowerOptions opt;
    opt.pes = req.pes;
    if (!Plan::build(req.graph, opt, req.plan, err))
        return false;

    req.graphHash = req.graph.contentHash();
    req.machineHash = machineHashFor(opt);
    return true;
}

/** Execute and render the response fragment past the id/cache
 *  fields. Scheduler-invariant: nothing here depends on
 *  host_threads, so cached fragments are valid for every client. */
std::string
executePayload(const Request &req, const model::CostModel &model,
               const std::string &trace_dir)
{
    std::ostringstream os;
    os << "\"mode\":\"" << (req.predict ? "predict" : "simulate")
       << "\",\"pes\":" << req.pes
       << ",\"tasks\":" << req.graph.tasks.size()
       << ",\"edges\":" << req.graph.edges.size()
       << ",\"levels\":" << req.plan.levels << ",\"graph_hash\":\""
       << hex64(req.graphHash) << "\",\"machine_hash\":\""
       << hex64(req.machineHash) << '"';

    if (req.predict) {
        const model::Prediction pred =
            predictGraph(req.graph, req.plan, model);
        os << ",\"predicted_cycles\":"
           << static_cast<std::uint64_t>(pred.cycles)
           << ",\"breakdown\":{";
        bool first = true;
        for (const auto &[term, cycles] : pred.breakdown) {
            os << (first ? "" : ",") << '"' << jsonEscape(term)
               << "\":" << static_cast<std::uint64_t>(cycles);
            first = false;
        }
        os << "},\"flags\":[";
        first = true;
        for (const std::string &flag : pred.flags) {
            os << (first ? "" : ",") << '"' << jsonEscape(flag) << '"';
            first = false;
        }
        os << ']';
        return os.str();
    }

    RunOptions ropt;
    ropt.hostThreads = req.hostThreads;
    if (req.trace) {
        ropt.trace = true;
        if (!trace_dir.empty())
            ropt.tracePath = trace_dir + "/job-" + hex64(req.graphHash) +
                             "-" + hex64(req.machineHash) +
                             ".trace.json";
    }
    const RunResult r = simulate(req.graph, req.plan, ropt);
    os << ",\"makespan_cycles\":" << r.makespanCycles
       << ",\"finish_hash\":\"" << hex64(r.finishHash)
       << "\",\"checksum\":\"" << hex64(r.checksum) << '"';
    if (req.trace) {
        os << ",\"trace_events\":" << r.traceEvents;
        if (!ropt.tracePath.empty())
            os << ",\"trace_path\":\"" << jsonEscape(ropt.tracePath)
               << '"';
    }
    return os.str();
}

std::string
errorResponse(const std::string &id, const std::string &err)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":false,\"error\":\"" +
           jsonEscape(err) + "\"}";
}

std::string
okResponse(const std::string &id, bool cache_hit,
           const std::string &payload)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":true,\"cache\":\"" +
           (cache_hit ? "hit" : "miss") + "\"," + payload + "}";
}

} // namespace

JobService::JobService(ServiceOptions options, ResponseFn on_response)
    : _options(std::move(options)), _onResponse(std::move(on_response))
{
    const unsigned workers = std::max(1u, _options.workers);
    _workers.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerMain(); });
}

JobService::~JobService()
{
    {
        std::lock_guard<std::mutex> lock(_m);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
JobService::submit(std::string line, std::uint64_t tag)
{
    {
        std::lock_guard<std::mutex> lock(_m);
        _queue.push_back(Job{std::move(line), tag});
        ++_inFlight;
    }
    _wake.notify_one();
}

void
JobService::drain()
{
    std::unique_lock<std::mutex> lock(_m);
    _idle.wait(lock, [this] { return _inFlight == 0; });
}

JobService::Stats
JobService::stats() const
{
    std::lock_guard<std::mutex> lock(_m);
    return _stats;
}

void
JobService::workerMain()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_m);
            _wake.wait(lock, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // _stop, and nothing left to answer
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        process(job);
        {
            std::lock_guard<std::mutex> lock(_m);
            if (--_inFlight == 0)
                _idle.notify_all();
        }
    }
}

void
JobService::process(const Job &job)
{
    Request req;
    std::string err;
    if (!parseRequest(job.line, req, err)) {
        {
            std::lock_guard<std::mutex> lock(_m);
            ++_stats.jobs;
            ++_stats.errors;
        }
        _onResponse(job.tag, errorResponse(req.id, err));
        return;
    }

    const std::string key = hex64(req.graphHash) + "/" +
                            hex64(req.machineHash) +
                            (req.predict ? "/p" : "/s") +
                            (req.trace ? "/t" : "");
    std::shared_ptr<CacheEntry> entry;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(_m);
        auto it = _cache.find(key);
        if (it == _cache.end()) {
            entry = std::make_shared<CacheEntry>();
            _cache.emplace(key, entry);
            leader = true;
        } else {
            entry = it->second;
        }
    }

    if (leader) {
        const std::string payload =
            executePayload(req, _options.model, _options.traceDir);
        {
            std::lock_guard<std::mutex> entry_lock(entry->m);
            entry->payload = payload;
            entry->done = true;
        }
        entry->cv.notify_all();
        std::lock_guard<std::mutex> lock(_m);
        ++_stats.jobs;
        if (req.predict)
            ++_stats.predictions;
        else
            ++_stats.simulations;
    } else {
        {
            std::unique_lock<std::mutex> entry_lock(entry->m);
            entry->cv.wait(entry_lock, [&] { return entry->done; });
        }
        std::lock_guard<std::mutex> lock(_m);
        ++_stats.jobs;
        ++_stats.cacheHits;
    }
    _onResponse(job.tag, okResponse(req.id, !leader, entry->payload));
}

std::string
JobService::runStandalone(const std::string &line,
                          const model::CostModel &model,
                          const std::string &trace_dir)
{
    Request req;
    std::string err;
    if (!parseRequest(line, req, err))
        return errorResponse(req.id, err);
    return okResponse(req.id, false, executePayload(req, model, trace_dir));
}

} // namespace t3dsim::taskgraph
