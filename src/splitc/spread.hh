/**
 * @file
 * Spread arrays (§1.1/§3.1): arrays laid out across the global
 * address space with the processor dimension varying fastest, as in
 * Split-C's `double A[n]::`. Element i lives on PE (i mod procs) at
 * row (i div procs).
 *
 * Allocation is symmetric: the same local offset on every node, so a
 * single (base, element size) pair addresses the whole array.
 */

#ifndef T3DSIM_SPLITC_SPREAD_HH
#define T3DSIM_SPLITC_SPREAD_HH

#include <cstdint>

#include "machine/machine.hh"
#include "splitc/global_ptr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace t3dsim::splitc
{

/**
 * Allocate @p bytes at the same local offset on every node of
 * @p machine (untimed setup helper).
 * @return The common local offset.
 */
inline Addr
allocSymmetric(machine::Machine &machine, std::size_t bytes,
               std::size_t align = 8)
{
    Addr base = 0;
    for (PeId pe = 0; pe < machine.numPes(); ++pe) {
        const Addr a = machine.node(pe).alloc(bytes, align);
        if (pe == 0)
            base = a;
        else
            T3D_FATAL_IF(a != base,
                         "symmetric allocation diverged on PE ", pe,
                         ": ", a, " != ", base);
    }
    return base;
}

/** A cyclically spread array of T. */
template <typename T>
class SpreadArray
{
  public:
    SpreadArray() = default;

    /**
     * Allocate room for @p total elements spread over the machine
     * (round-robin). Untimed setup.
     */
    static SpreadArray
    allocate(machine::Machine &machine, std::uint64_t total)
    {
        const std::uint32_t procs = machine.numPes();
        const std::uint64_t per_pe = (total + procs - 1) / procs;
        SpreadArray arr;
        arr._procs = procs;
        arr._total = total;
        arr._base =
            allocSymmetric(machine, per_pe * sizeof(T), alignof(T));
        return arr;
    }

    /** Global pointer to element @p i (processor-fastest layout). */
    GlobalPtr<T>
    at(std::uint64_t i) const
    {
        T3D_FATAL_IF(i >= _total, "spread array index out of range: ", i);
        const PeId pe = static_cast<PeId>(i % _procs);
        const std::uint64_t row = i / _procs;
        return GlobalPtr<T>::make(pe, _base + row * sizeof(T));
    }

    /** Local address of element @p i on its owning PE. */
    Addr
    localOf(std::uint64_t i) const
    {
        return _base + (i / _procs) * sizeof(T);
    }

    /** Owning PE of element @p i. */
    PeId ownerOf(std::uint64_t i) const
    {
        return static_cast<PeId>(i % _procs);
    }

    std::uint64_t size() const { return _total; }
    Addr base() const { return _base; }
    std::uint32_t procs() const { return _procs; }

  private:
    Addr _base = 0;
    std::uint64_t _total = 0;
    std::uint32_t _procs = 1;
};

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_SPREAD_HH
