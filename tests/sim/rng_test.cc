/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace
{

using t3dsim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.nextBounded(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Coarse uniformity check on the mean.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng r(9);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

} // namespace
