#include "apps/bsort/bsort.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "splitc/spread.hh"

namespace t3dsim::apps::bsort
{

std::uint64_t
keyOf(std::uint64_t seed, PeId pe, std::uint32_t i)
{
    // One SplitMix64 step over a per-(pe, i) nonce: random-looking,
    // collision-poor, and O(1) to regenerate anywhere (validation,
    // examples) without carrying the key arrays around.
    std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (pe + 1)) ^
        (0xbf58476d1ce4e5b9ull * (i + 1));
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::vector<std::uint64_t>
pickSplitters(const Config &config, std::uint32_t pes)
{
    // Regular sample: every PE contributes `oversample` evenly spaced
    // keys of its stream; the sorted sample is cut at the P-quantiles
    // (the classic sample-sort bound on bucket imbalance).
    std::vector<std::uint64_t> sample;
    sample.reserve(std::size_t{pes} * config.oversample);
    const std::uint32_t step =
        std::max(1u, config.keysPerPe / std::max(1u, config.oversample));
    for (PeId pe = 0; pe < pes; ++pe) {
        for (std::uint32_t s = 0; s < config.oversample; ++s) {
            const std::uint32_t i = (s * step) % config.keysPerPe;
            sample.push_back(keyOf(config.seed, pe, i));
        }
    }
    std::sort(sample.begin(), sample.end());

    std::vector<std::uint64_t> splitters;
    splitters.reserve(pes - 1);
    for (std::uint32_t b = 1; b < pes; ++b)
        splitters.push_back(sample[b * sample.size() / pes]);
    return splitters;
}

std::uint32_t
bucketOf(std::uint64_t key, const std::vector<std::uint64_t> &splitters)
{
    // Bucket b holds keys in [splitters[b-1], splitters[b]).
    return static_cast<std::uint32_t>(
        std::upper_bound(splitters.begin(), splitters.end(), key) -
        splitters.begin());
}

Plan
Plan::build(machine::Machine &machine, const Config &config)
{
    Plan plan;
    plan.config = config;
    plan.pes = machine.numPes();
    plan.perPe.resize(plan.pes);
    plan.splitters = pickSplitters(config, plan.pes);

    const std::uint32_t n = config.keysPerPe;

    // Outgoing counts per (src, dst) and each key's destination.
    std::vector<std::vector<std::uint32_t>> counts(
        plan.pes, std::vector<std::uint32_t>(plan.pes, 0));
    std::vector<std::vector<std::uint32_t>> destOfKey(
        plan.pes, std::vector<std::uint32_t>(n));
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t d =
                bucketOf(keyOf(config.seed, pe, i), plan.splitters);
            destOfKey[pe][i] = d;
            ++counts[pe][d];
        }
    }

    // Stage layout on each producer: runs in ascending destination.
    // Receive layout on each consumer: runs in ascending source.
    // recvFirst[s][d] = where src s's run starts inside d's receive
    // array (prefix over sources), so every variant can compute its
    // target slots without any runtime coordination.
    std::vector<std::vector<std::uint32_t>> recvFirst(
        plan.pes, std::vector<std::uint32_t>(plan.pes, 0));
    for (PeId d = 0; d < plan.pes; ++d) {
        std::uint32_t at = 0;
        for (PeId s = 0; s < plan.pes; ++s) {
            recvFirst[s][d] = at;
            at += counts[s][d];
        }
        plan.perPe[d].recvCount = at;
        plan.maxRecv = std::max(plan.maxRecv, at);
    }

    for (PeId pe = 0; pe < plan.pes; ++pe) {
        PerPe &pp = plan.perPe[pe];

        // Producer: stage offsets by ascending destination.
        std::vector<std::uint32_t> stageFirst(plan.pes, 0);
        std::uint32_t at = 0;
        for (PeId d = 0; d < plan.pes; ++d) {
            stageFirst[d] = at;
            if (counts[pe][d] > 0) {
                pp.outBlocks.push_back(
                    {d, at, recvFirst[pe][d], counts[pe][d]});
            }
            at += counts[pe][d];
        }
        T3D_ASSERT(at == n, "stage layout lost keys on PE ", pe);

        // Key -> stage slot, stable within a destination run.
        pp.stageSlotOfKey.resize(n);
        std::vector<std::uint32_t> seen(plan.pes, 0);
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t d = destOfKey[pe][i];
            pp.stageSlotOfKey[i] = stageFirst[d] + seen[d]++;
        }

        // Consumer: incoming runs by ascending source.
        for (PeId s = 0; s < plan.pes; ++s) {
            if (counts[s][pe] == 0)
                continue;
            // The producer's stage offset for destination `pe` is the
            // prefix of its counts below `pe`.
            std::uint32_t src_stage_first = 0;
            for (PeId d = 0; d < pe; ++d)
                src_stage_first += counts[s][d];
            pp.inBlocks.push_back(
                {s, src_stage_first, recvFirst[s][pe], counts[s][pe]});
        }
    }

    // Simulated memory map (symmetric, sized by the busiest PE).
    const std::size_t key_bytes = std::size_t{n} * 8;
    const std::size_t recv_bytes = std::size_t{plan.maxRecv} * 8;
    plan.keysBase = splitc::allocSymmetric(machine, key_bytes);
    plan.stageBase = splitc::allocSymmetric(machine, key_bytes);
    plan.recvBase = splitc::allocSymmetric(machine, recv_bytes);
    plan.scratchBase = splitc::allocSymmetric(machine, recv_bytes);

    // Deterministic initial key arrays.
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t i = 0; i < n; ++i)
            storage.writeU64(plan.keysBase + Addr{i} * 8,
                             keyOf(config.seed, pe, i));
    }

    return plan;
}

} // namespace t3dsim::apps::bsort
