# Empty dependencies file for annex_test.
# This may be replaced when dependencies are built.
