#include "mem/storage.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace t3dsim::mem
{

Storage::Storage(Addr limit, unsigned chunk_shift)
    : _limit(limit),
      _chunkShift(std::clamp(chunk_shift, minChunkShift, maxChunkShift)),
      _chunkSize(std::size_t{1} << _chunkShift),
      _chunkMask(_chunkSize - 1),
      _groups((((limit + _chunkSize - 1) >> _chunkShift) + groupSlots - 1)
              >> groupShift)
{
}

Storage::Storage(Storage &&other) noexcept
    : _limit(other._limit), _chunkShift(other._chunkShift),
      _chunkSize(other._chunkSize), _chunkMask(other._chunkMask),
      _groups(std::move(other._groups)),
      _chunksAllocated(other._chunksAllocated),
      _groupsAllocated(other._groupsAllocated),
      _cachedKey(other._cachedKey), _cachedChunk(other._cachedChunk)
{
    other._chunksAllocated = 0;
    other._groupsAllocated = 0;
    other._cachedKey = noChunk;
    other._cachedChunk = nullptr;
}

Storage &
Storage::operator=(Storage &&other) noexcept
{
    if (this != &other) {
        destroyChunks();
        _limit = other._limit;
        _chunkShift = other._chunkShift;
        _chunkSize = other._chunkSize;
        _chunkMask = other._chunkMask;
        _groups = std::move(other._groups);
        _chunksAllocated = other._chunksAllocated;
        _groupsAllocated = other._groupsAllocated;
        _cachedKey = other._cachedKey;
        _cachedChunk = other._cachedChunk;
        other._chunksAllocated = 0;
        other._groupsAllocated = 0;
        other._cachedKey = noChunk;
        other._cachedChunk = nullptr;
    }
    return *this;
}

Storage::~Storage() { destroyChunks(); }

void
Storage::destroyChunks()
{
    for (auto &gslot : _groups) {
        Group *g = gslot.load(std::memory_order_relaxed);
        if (!g)
            continue;
        for (auto &slot : g->slots)
            delete[] slot.load(std::memory_order_relaxed);
        delete g;
    }
}

void
Storage::checkRange(Addr addr, std::size_t len) const
{
    T3D_FATAL_IF(addr + len > _limit || addr + len < addr,
                 "storage access out of range: addr=", addr, " len=", len,
                 " limit=", _limit);
}

std::uint8_t *
Storage::chunkFor(Addr addr)
{
    const Addr key = addr >> _chunkShift;
    if (key == _cachedKey)
        return _cachedChunk;
    auto &gslot = _groups[key >> groupShift];
    Group *g = gslot.load(std::memory_order_relaxed);
    if (!g) {
        g = new Group();
        // Release-publish so a concurrent reader that observes the
        // group also observes its null slot pointers.
        gslot.store(g, std::memory_order_release);
        ++_groupsAllocated;
    }
    auto &slot = g->slots[key & (groupSlots - 1)];
    std::uint8_t *chunk = slot.load(std::memory_order_relaxed);
    if (!chunk) {
        chunk = new std::uint8_t[_chunkSize]();
        // Release-publish so a concurrent reader that observes the
        // pointer also observes the zero fill.
        slot.store(chunk, std::memory_order_release);
        ++_chunksAllocated;
    }
    _cachedKey = key;
    _cachedChunk = chunk;
    return chunk;
}

const std::uint8_t *
Storage::chunkIfPresent(Addr addr) const
{
    const Addr key = addr >> _chunkShift;
    if (key == _cachedKey)
        return _cachedChunk;
    const Group *g =
        _groups[key >> groupShift].load(std::memory_order_relaxed);
    if (!g)
        return nullptr;
    std::uint8_t *chunk =
        g->slots[key & (groupSlots - 1)].load(std::memory_order_relaxed);
    if (!chunk)
        return nullptr;
    _cachedKey = key;
    _cachedChunk = chunk;
    return chunk;
}

std::size_t
Storage::residentBytes() const
{
    return sizeof(Storage) + _groups.capacity() * sizeof(_groups[0]) +
           _groupsAllocated * sizeof(Group) +
           _chunksAllocated * _chunkSize;
}

std::uint8_t
Storage::readU8(Addr addr) const
{
    checkRange(addr, 1);
    const std::uint8_t *chunk = chunkIfPresent(addr);
    return chunk ? chunk[addr & _chunkMask] : 0;
}

void
Storage::writeU8(Addr addr, std::uint8_t value)
{
    checkRange(addr, 1);
    chunkFor(addr)[addr & _chunkMask] = value;
}

std::uint32_t
Storage::readU32(Addr addr) const
{
    checkRange(addr, sizeof(std::uint32_t));
    const std::size_t off = addr & _chunkMask;
    if (off + sizeof(std::uint32_t) <= _chunkSize) [[likely]] {
        const std::uint8_t *chunk = chunkIfPresent(addr);
        if (!chunk)
            return 0;
        std::uint32_t v;
        std::memcpy(&v, chunk + off, sizeof(v));
        return v;
    }
    std::uint32_t v = 0;
    readBlock(addr, &v, sizeof(v));
    return v;
}

void
Storage::writeU32(Addr addr, std::uint32_t value)
{
    checkRange(addr, sizeof(value));
    const std::size_t off = addr & _chunkMask;
    if (off + sizeof(value) <= _chunkSize) [[likely]] {
        std::memcpy(chunkFor(addr) + off, &value, sizeof(value));
        return;
    }
    writeBlock(addr, &value, sizeof(value));
}

std::uint64_t
Storage::readU64(Addr addr) const
{
    checkRange(addr, sizeof(std::uint64_t));
    const std::size_t off = addr & _chunkMask;
    if (off + sizeof(std::uint64_t) <= _chunkSize) [[likely]] {
        const std::uint8_t *chunk = chunkIfPresent(addr);
        if (!chunk)
            return 0;
        std::uint64_t v;
        std::memcpy(&v, chunk + off, sizeof(v));
        return v;
    }
    std::uint64_t v = 0;
    readBlock(addr, &v, sizeof(v));
    return v;
}

void
Storage::writeU64(Addr addr, std::uint64_t value)
{
    checkRange(addr, sizeof(value));
    const std::size_t off = addr & _chunkMask;
    if (off + sizeof(value) <= _chunkSize) [[likely]] {
        std::memcpy(chunkFor(addr) + off, &value, sizeof(value));
        return;
    }
    writeBlock(addr, &value, sizeof(value));
}

void
Storage::readBlock(Addr addr, void *dst, std::size_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::size_t off = addr & _chunkMask;
        std::size_t take = std::min(len, _chunkSize - off);
        const std::uint8_t *chunk = chunkIfPresent(addr);
        if (chunk)
            std::memcpy(out, chunk + off, take);
        else
            std::memset(out, 0, take);
        out += take;
        addr += take;
        len -= take;
    }
}

void
Storage::readBlockConcurrent(Addr addr, void *dst, std::size_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::size_t off = addr & _chunkMask;
        std::size_t take = std::min(len, _chunkSize - off);
        const std::uint8_t *chunk = chunkIfPresentConcurrent(addr);
        if (chunk)
            std::memcpy(out, chunk + off, take);
        else
            std::memset(out, 0, take);
        out += take;
        addr += take;
        len -= take;
    }
}

const std::uint8_t *
Storage::peekSpanConcurrent(Addr addr, std::size_t max_len,
                            std::size_t &span) const
{
    checkRange(addr, max_len ? 1 : 0);
    const std::size_t off = addr & _chunkMask;
    span = std::min(max_len, _chunkSize - off);
    const std::uint8_t *chunk = chunkIfPresentConcurrent(addr);
    return chunk ? chunk + off : nullptr;
}

void
Storage::writeBlock(Addr addr, const void *src, std::size_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::size_t off = addr & _chunkMask;
        std::size_t take = std::min(len, _chunkSize - off);
        std::memcpy(chunkFor(addr) + off, in, take);
        in += take;
        addr += take;
        len -= take;
    }
}

void
Storage::writeMasked(Addr addr, const std::uint8_t *data,
                     std::uint64_t mask, std::size_t len)
{
    checkRange(addr, len);
    T3D_ASSERT(len <= 64, "writeMasked mask covers at most 64 bytes");
    std::size_t i = 0;
    while (i < len) {
        if (!(mask >> i)) // no set bits left
            return;
        const std::size_t off = (addr + i) & _chunkMask;
        const std::size_t take = std::min(len - i, _chunkSize - off);
        const std::uint64_t span_mask =
            take >= 64 ? ~std::uint64_t{0} >> (64 - len)
                       : ((std::uint64_t{1} << take) - 1) << i;
        std::uint8_t *base = chunkFor(addr + i) + off - i;
        if ((mask & span_mask) == span_mask) {
            // Full span (the common case: a whole line commit).
            std::memcpy(base + i, data + i, take);
        } else {
            for (std::size_t b = i; b < i + take; ++b) {
                if (mask & (std::uint64_t{1} << b))
                    base[b] = data[b];
            }
        }
        i += take;
    }
}

} // namespace t3dsim::mem
