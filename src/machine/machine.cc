#include "machine/machine.hh"

#include <fstream>

#include "probes/batch.hh"
#include "sim/logging.hh"

namespace t3dsim::machine
{

Machine::Machine(const MachineConfig &config)
    : _config(config),
      _torus(net::Torus::forPeCount(config.numPes, config.hopCycles)),
      _barrier(config.numPes, config.shell.barrierLatencyCycles),
      _obs(probes::ObsConfig::fromEnv(config.observe))
{
    _countersOn = T3D_OBS_ENABLED && _obs.counters;
    if (T3D_OBS_ENABLED && _obs.trace) {
        _trace = std::make_unique<probes::TraceSink>(config.numPes,
                                                     _obs.traceEventCap);
    }
    _transitObs = _countersOn || _trace != nullptr;

    _nodes.reserve(config.numPes);
    for (PeId pe = 0; pe < config.numPes; ++pe) {
        _nodes.push_back(std::make_unique<Node>(_config, pe, *this));
        if (_transitObs)
            _nodes.back()->enableObservability(_countersOn, _trace.get());
    }
}

Node &
Machine::node(PeId pe)
{
    T3D_FATAL_IF(pe >= _nodes.size(), "node index out of range: ", pe);
    return *_nodes[pe];
}

Cycles
Machine::transitCycles(PeId src, PeId dst) const
{
    if (_transitObs) [[unlikely]]
        observeTransit(src, dst);
    return _torus.transitCycles(src, dst);
}

void
Machine::observeTransit(PeId src, PeId dst) const
{
    // Host-side accounting only: nothing here reads from or writes to
    // a Clock, so the transit latency returned to the caller is
    // untouched.
    if (probes::CounterBatch *batch = probes::currentCounterBatch()) {
        // Multi-shard run: the torus tallies are machine-wide mutable
        // state, so the route defers to the serial window flush.
        // torusHops goes to the source node's record, which only the
        // source's own thread ever bumps (transits are charged on the
        // requester's path), so it stays direct. Traced runs capture
        // the source clock here so the flush can stamp the replayed
        // torus counter samples with the observation-time clock
        // rather than the (later) merge-time one.
        if (_countersOn)
            _nodes[src]->counters().torusHops += _torus.hops(src, dst);
        batch->routes.push_back(
            {src, dst, _trace ? _nodes[src]->clock().now() : Cycles{0}});
        return;
    }
    if (_countersOn)
        _nodes[src]->counters().torusHops += _torus.hops(src, dst);
    recordDeferredRoute(src, dst,
                        _trace ? _nodes[src]->clock().now() : Cycles{0});
}

void
Machine::recordDeferredRoute(PeId src, PeId dst, Cycles when) const
{
    const std::array<std::uint64_t, 3> before = _torus.dimTraversals();
    _torus.recordRoute(src, dst);

    if (_trace) {
        static const char *const tracks[3] = {"torus.x", "torus.y",
                                              "torus.z"};
        const std::array<std::uint64_t, 3> &after =
            _torus.dimTraversals();
        for (unsigned d = 0; d < 3; ++d) {
            if (after[d] != before[d])
                _trace->counter(tracks[d], when, after[d]);
        }
    }
}

shell::RemoteMemoryPort &
Machine::remoteMemory(PeId pe)
{
    if (_remoteRouter) {
        if (shell::RemoteMemoryPort *port = _remoteRouter->route(pe))
            return *port;
    }
    return node(pe);
}

std::size_t
Machine::residentModelBytes() const
{
    std::size_t bytes = sizeof(Machine) + _barrier.residentBytes() -
                        sizeof(shell::BarrierNetwork);
    bytes += _nodes.capacity() * sizeof(_nodes[0]);
    for (const auto &node : _nodes)
        bytes += node->residentModelBytes();
    return bytes;
}

probes::PerfCounters
Machine::totalCounters() const
{
    probes::PerfCounters total;
    for (const auto &node : _nodes)
        total += node->counters();
    return total;
}

void
Machine::writeCounterJson(std::ostream &os) const
{
    std::vector<probes::PerfCounters> per_pe;
    per_pe.reserve(_nodes.size());
    for (const auto &node : _nodes)
        per_pe.push_back(node->counters());

    probes::TorusLinkStats torus;
    torus.dx = _torus.dimX();
    torus.dy = _torus.dimY();
    torus.dz = _torus.dimZ();
    torus.dimTraversals = _torus.dimTraversals();
    torus.linkTraversals = _torus.linkTraversals();
    probes::writeCountersJson(os, per_pe, &torus);
}

void
Machine::writeCounterCsv(std::ostream &os) const
{
    std::vector<probes::PerfCounters> per_pe;
    per_pe.reserve(_nodes.size());
    for (const auto &node : _nodes)
        per_pe.push_back(node->counters());
    probes::writeCountersCsv(os, per_pe);
}

void
Machine::writeTraceJson(std::ostream &os) const
{
    if (_trace)
        _trace->writeJson(os);
}

void
Machine::flushObservability() const
{
    if (_countersOn && !_obs.countersPath.empty()) {
        std::ofstream os(_obs.countersPath);
        if (os)
            writeCounterJson(os);
        else
            T3D_WARN("cannot write counter report to ", _obs.countersPath);
    }
    if (_trace && !_obs.tracePath.empty()) {
        if (!_trace->writeFile(_obs.tracePath))
            T3D_WARN("cannot write trace to ", _obs.tracePath);
    }
}

} // namespace t3dsim::machine
