#include "net/torus.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace t3dsim::net
{

Torus::Torus(std::uint32_t dx, std::uint32_t dy, std::uint32_t dz,
             Cycles hop_cycles)
    : _dx(dx), _dy(dy), _dz(dz), _hopCycles(hop_cycles)
{
    T3D_ASSERT(dx > 0 && dy > 0 && dz > 0,
               "torus dimensions must be positive");
}

Torus
Torus::forPeCount(std::uint32_t pes, Cycles hop_cycles)
{
    if (pes == 0)
        T3D_FATAL("machine needs at least one PE");
    // Factor into the most cubic (dx, dy, dz) with dx*dy*dz == pes.
    std::uint32_t best_x = pes, best_y = 1, best_z = 1;
    std::uint32_t best_spread = pes;
    for (std::uint32_t z = 1; z * z * z <= pes; ++z) {
        if (pes % z != 0)
            continue;
        std::uint32_t rest = pes / z;
        for (std::uint32_t y = z; y * y <= rest; ++y) {
            if (rest % y != 0)
                continue;
            std::uint32_t x = rest / y;
            std::uint32_t spread = x - z;
            if (spread < best_spread) {
                best_spread = spread;
                best_x = x;
                best_y = y;
                best_z = z;
            }
        }
    }
    return Torus(best_x, best_y, best_z, hop_cycles);
}

Coord
Torus::coordOf(PeId pe) const
{
    T3D_ASSERT(pe < numPes(), "PE out of range: ", pe);
    Coord c;
    c.x = pe % _dx;
    c.y = (pe / _dx) % _dy;
    c.z = pe / (_dx * _dy);
    return c;
}

PeId
Torus::peAt(const Coord &c) const
{
    T3D_ASSERT(c.x < _dx && c.y < _dy && c.z < _dz,
               "coordinate out of range");
    return c.x + _dx * (c.y + _dy * c.z);
}

std::uint32_t
Torus::ringDistance(std::uint32_t a, std::uint32_t b, std::uint32_t dim)
{
    std::uint32_t d = a > b ? a - b : b - a;
    return std::min(d, dim - d);
}

std::uint32_t
Torus::hops(PeId src, PeId dst) const
{
    const Coord a = coordOf(src);
    const Coord b = coordOf(dst);
    return ringDistance(a.x, b.x, _dx) + ringDistance(a.y, b.y, _dy) +
        ringDistance(a.z, b.z, _dz);
}

Cycles
Torus::transitCycles(PeId src, PeId dst) const
{
    return Cycles{hops(src, dst)} * _hopCycles;
}

} // namespace t3dsim::net
