/**
 * @file
 * Timestamped arrival tracking.
 *
 * Remote effects (signaling stores, messages) are delivered to a node
 * with a completion timestamp computed by the network/memory model.
 * ArrivalLog records (time, amount) pairs and answers the question
 * "at what time had at least N units arrived?", which is exactly the
 * semantics needed by Split-C's store_sync and by message polling.
 */

#ifndef T3DSIM_SIM_ARRIVALS_HH
#define T3DSIM_SIM_ARRIVALS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace t3dsim
{

/** Ordered log of timestamped quantity arrivals at one node. */
class ArrivalLog
{
  public:
    /** Record @p amount units arriving at time @p when. */
    void record(Cycles when, std::uint64_t amount);

    /** Total units recorded since the last reset. */
    std::uint64_t totalArrived() const { return _total; }

    /**
     * Earliest time at which the cumulative arrived amount reaches
     * @p amount, or nullopt if it never does (yet).
     */
    std::optional<Cycles> timeOfCumulative(std::uint64_t amount) const;

    /** Units that had arrived by time @p when (inclusive). */
    std::uint64_t arrivedBy(Cycles when) const;

    /**
     * Consume @p amount units from the front of the log (after a
     * successful wait), keeping later arrivals for the next phase.
     */
    void consume(std::uint64_t amount);

    /** Drop everything. */
    void reset();

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t amount;
    };

    /** Kept sorted by time; record() inserts in order. */
    std::vector<Entry> _entries;
    std::uint64_t _total = 0;
};

} // namespace t3dsim

#endif // T3DSIM_SIM_ARRIVALS_HH
