/**
 * @file
 * The micro-benchmark probe of §2.1: a sawtooth address stream.
 *
 *   for (array = min; array <= max; array *= 2)
 *     for (stride = 8; stride <= array/2; stride *= 2)
 *       for (i = 0; i < array; i += stride)
 *         OP(A[i]);
 *
 * One warm-up pass precedes each measured pass (the paper repeats
 * the experiment and reports the average; in the model the second
 * pass is exactly the steady state). Loop overhead is zero in the
 * model, matching the paper's subtraction of it.
 */

#ifndef T3DSIM_PROBES_STRIDE_HH
#define T3DSIM_PROBES_STRIDE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::probes
{

/** One (array size, stride) measurement. */
struct StridePoint
{
    std::uint64_t arrayBytes;
    std::uint64_t strideBytes;
    double avgNsPerOp;
    double avgCyclesPerOp;
};

/**
 * Run the sawtooth probe.
 *
 * @param op Callable performing one timed memory operation at a
 *           virtual address: op(Addr).
 * @param now Callable returning the current clock in cycles.
 * @param base Base virtual address of the probed array.
 * @param min_array Smallest array size in bytes (power of two).
 * @param max_array Largest array size in bytes (power of two).
 * @param min_stride Smallest stride in bytes (the element size).
 */
template <typename OpFn, typename NowFn>
std::vector<StridePoint>
strideProbe(OpFn &&op, NowFn &&now, Addr base,
            std::uint64_t min_array, std::uint64_t max_array,
            std::uint64_t min_stride = 8)
{
    std::vector<StridePoint> points;
    for (std::uint64_t array = min_array; array <= max_array;
         array *= 2) {
        for (std::uint64_t stride = min_stride; stride <= array / 2;
             stride *= 2) {
            // Warm-up pass: populate caches / open DRAM pages.
            for (Addr i = 0; i < array; i += stride)
                op(base + i);

            const Cycles start = now();
            std::uint64_t ops = 0;
            for (Addr i = 0; i < array; i += stride) {
                op(base + i);
                ++ops;
            }
            const Cycles elapsed = now() - start;

            StridePoint point;
            point.arrayBytes = array;
            point.strideBytes = stride;
            point.avgCyclesPerOp =
                static_cast<double>(elapsed) / static_cast<double>(ops);
            point.avgNsPerOp = cyclesToNs(elapsed) /
                static_cast<double>(ops);
            points.push_back(point);
        }
    }
    return points;
}

/** Find the measurement for a given (array, stride), if present. */
inline const StridePoint *
findPoint(const std::vector<StridePoint> &points, std::uint64_t array,
          std::uint64_t stride)
{
    for (const auto &p : points) {
        if (p.arrayBytes == array && p.strideBytes == stride)
            return &p;
    }
    return nullptr;
}

} // namespace t3dsim::probes

#endif // T3DSIM_PROBES_STRIDE_HH
