/**
 * @file
 * Differential checker for the seeded stress generator (t3d-fuzz).
 *
 * One seed is checked by running the identical Plan under:
 *
 *  - the sequential scheduler with counters on (the reference);
 *  - the sequential scheduler with counters off (observability must
 *    not move simulated time);
 *  - the host-parallel scheduler at each requested thread count,
 *    both with counters on (counter records must match exactly —
 *    counters-on runs are genuinely multi-shard: cross-thread bump
 *    sites batch into shard-local deltas flushed per window) and
 *    with counters off;
 *  - optionally (adaptive_legs) the host-parallel scheduler again at
 *    each thread count with adaptive lookahead on, counters on and
 *    off — the widened per-shard horizons must not move a single
 *    timestamp.
 *
 * Every run must reproduce the reference per-PE finish times and the
 * memory checksum bit-for-bit; counters-on runs must also reproduce
 * every per-PE counter record.
 */

#ifndef T3DSIM_STRESS_DIFFERENTIAL_HH
#define T3DSIM_STRESS_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "probes/counters.hh"
#include "sim/types.hh"
#include "stress/generator.hh"

namespace t3dsim::stress
{

/** Outcome of one execution of a Plan. */
struct RunResult
{
    std::vector<Cycles> finish;
    std::uint64_t checksum = 0;
    /** Per-PE counter records; empty when counters were off. */
    std::vector<probes::PerfCounters> counters;
};

/**
 * Build a fresh Machine and execute @p plan once.
 * @param host_threads -1 sequential, N >= 1 parallel N threads.
 * @param counters_on request per-PE counters.
 * @param adaptive enable adaptive lookahead (parallel runs only; the
 *        base legs pin it off so both horizon policies stay covered).
 */
RunResult runOnce(const Plan &plan, int host_threads, bool counters_on,
                  bool adaptive = false);

/** Differential verdict for one seed. */
struct SeedReport
{
    std::uint64_t seed = 0;
    bool pass = false;
    /** One line per divergence (empty when pass). */
    std::vector<std::string> mismatches;
    RunResult reference;
};

/** Run the full differential matrix for one seed. */
SeedReport runDifferential(const StressConfig &cfg,
                           const std::vector<int> &thread_counts,
                           bool adaptive_legs = false);

/**
 * The --saturate demo: a deliberately overloading program — an AM
 * flood past the primary queue and a hardware-message flood past a
 * shrunken msgQueueCapacity — that must complete with modeled spill
 * costs instead of aborting (the tentpole acceptance shape).
 */
struct SaturateReport
{
    bool completed = false;
    std::uint64_t amDeposits = 0;
    std::uint64_t amOverflows = 0; ///< rerouted to the overflow ring
    std::uint64_t amHandled = 0;
    std::uint64_t msgsSent = 0;
    std::uint64_t msgSpills = 0; ///< spilled past msgQueueCapacity
    std::uint64_t msgsReceived = 0;
    Cycles receiverFinish = 0;
};

SaturateReport runSaturate();

} // namespace t3dsim::stress

#endif // T3DSIM_STRESS_DIFFERENTIAL_HH
