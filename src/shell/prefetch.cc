#include "shell/prefetch.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

PrefetchQueue::PrefetchQueue(const ShellConfig &config, PeId local_pe,
                             MachinePort &machine, alpha::AlphaCore &core)
    : _config(config), _localPe(local_pe), _machine(machine), _core(core)
{
}

void
PrefetchQueue::issue(PeId dst, Addr offset)
{
    // Issuing past the hardware slots spills the reply to a DRAM
    // buffer instead of corrupting the FIFO: charge the spill cost
    // here and mark the slot so pop() charges it again.
    const bool spill = full();
    if (spill) {
        ++_spills;
        T3D_COUNT(_ctr, prefetchSpills);
    }
    ++_issued;
    T3D_COUNT(_ctr, prefetchIssues);

    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    clock.advance(_config.prefetchIssueCycles);
    if (spill)
        clock.advance(_config.prefetchSpillCycles);

    // The request leaves through the shell's injection channel;
    // back-to-back prefetches pipeline at the injection interval.
    const Cycles start = std::max(clock.now(), _injectFree);
    const Cycles injected = start + _config.prefetchInjectCycles;
    _injectFree = injected;

    const Cycles transit = _machine.transitCycles(_localPe, dst);

    Slot slot{};
    slot.spilled = spill;
    if (dst == _localPe) {
        // Prefetch of a local address: served by local memory, no
        // network transit. (Useful and legal; rare in practice.)
        auto access = _core.dram().access(injected, offset);
        // The request is ordered behind pending write-buffer entries
        // (prefetches travel through the write buffer, §5.2), so it
        // observes the core's coherent view.
        slot.data = _core.peekU64(offset);
        slot.arrival = access.complete + _config.prefetchFixedCycles;
    } else {
        RemoteMemoryPort &port = _machine.remoteMemory(dst);
        // BINDING: the value is captured at remote service time.
        const Cycles remote_done =
            port.serviceRead(injected + transit, offset, &slot.data, 8,
                             _localPe);
        slot.arrival =
            remote_done + transit + _config.prefetchFixedCycles;
    }

    // FIFO arrival order cannot invert: a later request's data is
    // not visible before an earlier one's.
    if (!_fifo.empty())
        slot.arrival = std::max(slot.arrival, _fifo.back().arrival);
    _fifo.push_back(slot);
    T3D_TRACE(_trace, span(_localPe, "prefetch_issue", t0, clock.now(),
                           "dst", dst));
}

std::uint64_t
PrefetchQueue::pop()
{
    T3D_FATAL_IF(_fifo.empty(), "pop from an empty prefetch queue");
    ++_popped;
    T3D_COUNT(_ctr, prefetchDrains);

    Slot slot = _fifo.front();
    _fifo.pop_front();

    Clock &clock = _core.clock();
    const Cycles t0 = clock.now();
    clock.syncTo(slot.arrival);
    clock.advance(_config.prefetchPopCycles);
    // A spilled entry is recovered from the DRAM-side buffer rather
    // than the memory-mapped FIFO head.
    if (slot.spilled)
        clock.advance(_config.prefetchSpillCycles);
    T3D_TRACE(_trace, span(_localPe, "prefetch_pop", t0, clock.now()));
    return slot.data;
}

} // namespace t3dsim::shell
