/**
 * @file
 * Distributed histogram: every PE classifies a local block of
 * samples into buckets spread cyclically over the machine, showing
 * two ways to update a shared counter (§1.2/§7.4):
 *
 *  - atomic swap through the shell (a remote spin-lock-free
 *    exchange-add loop), and
 *  - shipping the update to the owner as an Active Message, which
 *    makes it atomic by construction.
 *
 * The fetch&increment registers then assemble a global "done"
 * count without a barrier.
 *
 * The sample stream and the bucketing reuse the bsort app's kernels
 * (apps::bsort::keyOf / pickSplitters / bucketOf, docs/APPS.md):
 * the buckets are splitter ranges exactly like the sort's, so the
 * near-uniform counts double as a check on the sample-sort splitter
 * quality.
 */

#include <iostream>

#include "apps/bsort/bsort.hh"
#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"
#include "splitc/spread.hh"

using namespace t3dsim;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

namespace
{

constexpr std::uint32_t pes = 8;
constexpr std::uint32_t buckets = 16;
constexpr std::uint32_t samplesPerPe = 256;

/** AM tag for "add a[1] to the counter at local address a[0]". */
constexpr std::uint64_t tagAdd = 20;

} // namespace

int
main()
{
    machine::Machine machine(machine::MachineConfig::t3d(pes));
    auto counters =
        splitc::SpreadArray<std::uint64_t>::allocate(machine, buckets);

    // Bucket boundaries from the bsort app's splitter kernel: cut
    // the key space into `buckets` sample-quantile ranges.
    apps::bsort::Config kcfg;
    kcfg.keysPerPe = samplesPerPe;
    const std::vector<std::uint64_t> splitters =
        apps::bsort::pickSplitters(kcfg, buckets);

    auto finish = splitc::runSpmd(machine, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd, [](Proc &self,
                       const std::array<std::uint64_t, 4> &a) {
                auto &core = self.node().core();
                const Addr addr = static_cast<Addr>(a[0]);
                core.storeU64(addr, core.loadU64(addr) + a[1]);
            });

        // Deterministic per-PE samples: the bsort app's key stream,
        // classified with its splitter search.
        const auto sample = [&](std::uint32_t s) {
            return apps::bsort::bucketOf(
                apps::bsort::keyOf(kcfg.seed, p.pe(), s), splitters);
        };

        // Phase 1: histogram via atomic swap (exchange-add loop).
        for (std::uint32_t s = 0; s < samplesPerPe / 2; ++s) {
            const std::uint32_t b = sample(s);
            auto cell = counters.at(b).addr();
            // swap in a sentinel, add, swap back: the shell's atomic
            // swap serializes concurrent updaters.
            std::uint64_t cur = p.atomicSwap(cell, ~0ull);
            while (cur == ~0ull) // someone else holds the cell
                cur = p.atomicSwap(cell, ~0ull);
            p.atomicSwap(cell, cur + 1);
        }
        co_await p.barrier();

        // Phase 2: histogram via Active Messages to the owner.
        for (std::uint32_t s = samplesPerPe / 2; s < samplesPerPe;
             ++s) {
            const std::uint32_t b = sample(s);
            const PeId owner = counters.ownerOf(b);
            const Addr local = counters.localOf(b);
            if (owner == p.pe()) {
                auto &core = p.node().core();
                core.storeU64(local, core.loadU64(local) + 1);
            } else {
                p.amDeposit(owner, tagAdd, {local, 1, 0, 0});
            }
            // Service our own queue while producing.
            p.amPoll();
        }
        // Announce completion through PE0's fetch&increment register
        // (an N-to-1 counter, §7.4), then synchronize and drain the
        // deposits that arrived for us.
        const std::uint64_t order = p.fetchInc(0, 1);
        if (p.pe() == 0 && order + 1 == pes) {
            std::cout << "PE" << p.pe()
                      << " was the last to finish producing\n";
        }
        co_await p.barrier();
        while (p.amPoll()) {
        }
        p.node().mb();
        co_return;
    });

    // Validate: the counters must sum to the number of samples.
    std::uint64_t total = 0;
    std::cout << "bucket counts:";
    for (std::uint32_t b = 0; b < buckets; ++b) {
        const std::uint64_t v = machine.node(counters.ownerOf(b))
                                    .storage()
                                    .readU64(counters.localOf(b));
        total += v;
        std::cout << " " << v;
    }
    std::cout << "\ntotal: " << total << " (expect "
              << pes * samplesPerPe << ")\n";
    std::cout << "simulated time: "
              << cyclesToUs(*std::max_element(finish.begin(),
                                              finish.end()))
              << " us\n";
    return (total == pes * samplesPerPe) ? 0 : 1;
}
