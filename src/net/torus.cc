#include "net/torus.hh"

#include <cmath>

namespace t3dsim::net
{

Torus::Torus(std::uint32_t dx, std::uint32_t dy, std::uint32_t dz,
             Cycles hop_cycles)
    : _dx(dx), _dy(dy), _dz(dz), _hopCycles(hop_cycles)
{
    T3D_ASSERT(dx > 0 && dy > 0 && dz > 0,
               "torus dimensions must be positive");
    _coords.reserve(numPes());
    for (PeId pe = 0; pe < numPes(); ++pe) {
        Coord c;
        c.x = pe % _dx;
        c.y = (pe / _dx) % _dy;
        c.z = pe / (_dx * _dy);
        _coords.push_back(c);
    }
}

Torus
Torus::forPeCount(std::uint32_t pes, Cycles hop_cycles)
{
    if (pes == 0)
        T3D_FATAL("machine needs at least one PE");
    // Factor into the most cubic (dx, dy, dz) with dx*dy*dz == pes.
    std::uint32_t best_x = pes, best_y = 1, best_z = 1;
    std::uint32_t best_spread = pes;
    for (std::uint32_t z = 1; z * z * z <= pes; ++z) {
        if (pes % z != 0)
            continue;
        std::uint32_t rest = pes / z;
        for (std::uint32_t y = z; y * y <= rest; ++y) {
            if (rest % y != 0)
                continue;
            std::uint32_t x = rest / y;
            std::uint32_t spread = x - z;
            if (spread < best_spread) {
                best_spread = spread;
                best_x = x;
                best_y = y;
                best_z = z;
            }
        }
    }
    return Torus(best_x, best_y, best_z, hop_cycles);
}

PeId
Torus::peAt(const Coord &c) const
{
    T3D_ASSERT(c.x < _dx && c.y < _dy && c.z < _dz,
               "coordinate out of range");
    return c.x + _dx * (c.y + _dy * c.z);
}

void
Torus::recordRoute(PeId src, PeId dst) const
{
    if (_linkTraversals.empty())
        _linkTraversals.assign(std::size_t{numPes()} * 3, 0);

    Coord cur = coordOf(src);
    const Coord goal = coordOf(dst);

    // Dimension-order (x, then y, then z), shorter ring direction;
    // ties break toward increasing coordinate, matching hops().
    const std::uint32_t dims[3] = {_dx, _dy, _dz};
    std::uint32_t *cur_c[3] = {&cur.x, &cur.y, &cur.z};
    const std::uint32_t goal_c[3] = {goal.x, goal.y, goal.z};

    for (unsigned d = 0; d < 3; ++d) {
        const std::uint32_t dim = dims[d];
        while (*cur_c[d] != goal_c[d]) {
            const std::uint32_t fwd =
                (goal_c[d] + dim - *cur_c[d]) % dim;
            const bool up = fwd <= dim - fwd;
            // The link is owned by the node the flit leaves.
            _linkTraversals[std::size_t{peAt(cur)} * 3 + d] += 1;
            _dimTraversals[d] += 1;
            *cur_c[d] = up ? (*cur_c[d] + 1) % dim
                           : (*cur_c[d] + dim - 1) % dim;
        }
    }
}

} // namespace t3dsim::net
