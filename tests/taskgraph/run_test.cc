/**
 * @file
 * End-to-end task-graph execution goldens: one DAG exercising every
 * lowered mechanism (local, store, put, get, blt, am, message) must
 * produce bit-identical makespan, finish hash and value checksum on
 * the sequential scheduler and at 1/2/4/8 host threads — including
 * with tracing enabled, now that tracing no longer clamps the
 * parallel scheduler to one worker.
 */

#include <gtest/gtest.h>

#include "taskgraph/graph.hh"
#include "taskgraph/lower.hh"
#include "taskgraph/run.hh"

using namespace t3dsim;
using namespace t3dsim::taskgraph;

namespace
{

/** Three supersteps on 8 PEs; edge sizes chosen so auto lowering
 *  covers store/put/get/blt and explicit mechs cover am/message,
 *  plus one same-PE local edge. */
const char *kAllMechanisms = R"({
    "name": "all-mechanisms",
    "tasks": [
        {"id": "t0", "pe": 0, "cycles": 120, "flops": 30},
        {"id": "t1", "pe": 1, "cycles": 240},
        {"id": "t2", "pe": 2, "cycles": 60},
        {"id": "t3", "pe": 3, "cycles": 500},
        {"id": "t4", "pe": 4, "cycles": 90},
        {"id": "t5", "pe": 5, "cycles": 90},
        {"id": "t6", "pe": 6, "cycles": 90},
        {"id": "t7", "pe": 7, "cycles": 90},
        {"id": "tl", "pe": 0, "cycles": 40},
        {"id": "sink", "pe": 2, "cycles": 10}
    ],
    "edges": [
        {"src": "t0", "dst": "t4", "bytes": 64},
        {"src": "t0", "dst": "t5", "bytes": 1024},
        {"src": "t1", "dst": "t6", "bytes": 4096},
        {"src": "t2", "dst": "t7", "bytes": 20000},
        {"src": "t3", "dst": "t4", "bytes": 16, "mech": "am"},
        {"src": "t3", "dst": "t5", "bytes": 16, "mech": "message"},
        {"src": "t0", "dst": "tl", "bytes": 512},
        {"src": "t4", "dst": "sink", "bytes": 40},
        {"src": "t5", "dst": "sink", "bytes": 40},
        {"src": "t6", "dst": "sink", "bytes": 40},
        {"src": "t7", "dst": "sink", "bytes": 40}
    ]
})";

Plan
buildPlan(TaskGraph &g)
{
    std::string err;
    EXPECT_TRUE(TaskGraph::parseText(kAllMechanisms, g, err)) << err;
    EXPECT_TRUE(g.validate(8, err)) << err;
    Plan plan;
    EXPECT_TRUE(Plan::build(g, LowerOptions{}, plan, err)) << err;
    return plan;
}

} // namespace

TEST(TaskGraphRun, CoversEveryMechanism)
{
    TaskGraph g;
    Plan plan = buildPlan(g);
    bool seen[8] = {};
    for (const LoweredEdge &le : plan.loweredEdges)
        seen[static_cast<int>(le.mech)] = true;
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Local)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Store)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Put)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Get)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Blt)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Am)]);
    EXPECT_TRUE(seen[static_cast<int>(Mechanism::Message)]);
}

TEST(TaskGraphRun, BitIdenticalAcrossSchedulers)
{
    TaskGraph g;
    Plan plan = buildPlan(g);

    RunOptions seq;
    seq.hostThreads = -1;
    const RunResult golden = simulate(g, plan, seq);
    EXPECT_GT(golden.makespanCycles, 0u);
    EXPECT_NE(golden.checksum, 0u);
    EXPECT_EQ(golden.levels, 3u);

    // Re-running sequentially reproduces exactly.
    const RunResult again = simulate(g, plan, seq);
    EXPECT_EQ(again.makespanCycles, golden.makespanCycles);
    EXPECT_EQ(again.finishHash, golden.finishHash);
    EXPECT_EQ(again.checksum, golden.checksum);

    for (int threads : {1, 2, 4, 8}) {
        RunOptions par;
        par.hostThreads = threads;
        const RunResult r = simulate(g, plan, par);
        EXPECT_EQ(r.makespanCycles, golden.makespanCycles)
            << "threads=" << threads;
        EXPECT_EQ(r.finishHash, golden.finishHash)
            << "threads=" << threads;
        EXPECT_EQ(r.checksum, golden.checksum) << "threads=" << threads;
    }
}

TEST(TaskGraphRun, TracingDoesNotPerturbResultsAtAnyThreadCount)
{
    TaskGraph g;
    Plan plan = buildPlan(g);

    RunOptions plain;
    plain.hostThreads = -1;
    const RunResult golden = simulate(g, plan, plain);

    RunOptions traced_seq;
    traced_seq.hostThreads = -1;
    traced_seq.trace = true;
    const RunResult ts = simulate(g, plan, traced_seq);
    EXPECT_EQ(ts.makespanCycles, golden.makespanCycles);
    EXPECT_EQ(ts.checksum, golden.checksum);
    EXPECT_GT(ts.traceEvents, 0u);

    // Multi-worker traced runs: same results and the same event
    // count as the sequential traced run (the lifted one-worker
    // clamp, satellite of this PR).
    for (int threads : {2, 4}) {
        RunOptions traced_par;
        traced_par.hostThreads = threads;
        traced_par.trace = true;
        const RunResult tp = simulate(g, plan, traced_par);
        EXPECT_EQ(tp.makespanCycles, golden.makespanCycles)
            << "threads=" << threads;
        EXPECT_EQ(tp.finishHash, golden.finishHash)
            << "threads=" << threads;
        EXPECT_EQ(tp.checksum, golden.checksum) << "threads=" << threads;
        EXPECT_EQ(tp.traceEvents, ts.traceEvents)
            << "threads=" << threads;
    }
}

TEST(TaskGraphRun, UnpinnedGraphIsSchedulerInvariantToo)
{
    const char *text = R"({
        "tasks": [
            {"id": "a", "cycles": 50}, {"id": "b", "cycles": 70},
            {"id": "c", "cycles": 90}, {"id": "d", "cycles": 110},
            {"id": "e", "cycles": 130}, {"id": "f", "cycles": 20}
        ],
        "edges": [
            {"src": "a", "dst": "c", "bytes": 128},
            {"src": "b", "dst": "d", "bytes": 3000},
            {"src": "c", "dst": "e", "bytes": 12000},
            {"src": "d", "dst": "e", "bytes": 96},
            {"src": "a", "dst": "f", "bytes": 8}
        ]
    })";
    TaskGraph g;
    std::string err;
    ASSERT_TRUE(TaskGraph::parseText(text, g, err)) << err;
    ASSERT_TRUE(g.validate(4, err)) << err;
    LowerOptions opt;
    opt.pes = 4;
    Plan plan;
    ASSERT_TRUE(Plan::build(g, opt, plan, err)) << err;

    RunOptions seq;
    seq.hostThreads = -1;
    const RunResult golden = simulate(g, plan, seq);
    for (int threads : {2, 8}) {
        RunOptions par;
        par.hostThreads = threads;
        const RunResult r = simulate(g, plan, par);
        EXPECT_EQ(r.makespanCycles, golden.makespanCycles);
        EXPECT_EQ(r.finishHash, golden.finishHash);
        EXPECT_EQ(r.checksum, golden.checksum);
    }
}
