#include "shell/barrier.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

BarrierNetwork::BarrierNetwork(std::uint32_t pes, Cycles latency_cycles)
    : _pes(pes), _latency(latency_cycles), _present(pes, false)
{
    T3D_ASSERT(pes > 0, "barrier needs at least one PE");
}

std::optional<Cycles>
BarrierNetwork::arrive(PeId pe, Cycles when)
{
    T3D_ASSERT(pe < _pes, "barrier arrival from unknown PE ", pe);
    T3D_ASSERT(!_present[pe],
               "PE ", pe, " arrived twice in barrier generation ",
               _generation);
    _present[pe] = true;
    ++_arrived;
    _maxArrival = std::max(_maxArrival, when);
    if (complete())
        return exitTime();
    return std::nullopt;
}

Cycles
BarrierNetwork::exitTime() const
{
    T3D_ASSERT(complete(), "barrier exit time queried before completion");
    return _maxArrival + _latency;
}

void
BarrierNetwork::resetGeneration()
{
    T3D_ASSERT(complete(), "barrier generation reset while incomplete");
    _lastExit = exitTime();
    std::fill(_present.begin(), _present.end(), false);
    _arrived = 0;
    _maxArrival = 0;
    ++_generation;
}

} // namespace t3dsim::shell
