/**
 * @file
 * Timestamped arrival tracking.
 *
 * Remote effects (signaling stores, messages) are delivered to a node
 * with a completion timestamp computed by the network/memory model.
 * ArrivalLog records (time, amount) pairs and answers the question
 * "at what time had at least N units arrived?", which is exactly the
 * semantics needed by Split-C's store_sync and by message polling.
 *
 * Host-performance notes: entries carry a lazily-maintained
 * *absolute* prefix sum of the amounts (monotone over the whole
 * recorded history), so both queries are O(log n) binary searches
 * over an implicit balanced aggregation tree instead of linear
 * scans — store_sync waiters on a node that receives thousands of
 * store lines pay O(log n) per poll. Consumption advances a head
 * cursor (plus a partial-consumption offset into the head entry)
 * instead of erasing entries, so consume() is amortized O(1) and —
 * because the absolute prefix of later entries is unaffected — never
 * invalidates the prefix sums; the fully-consumed prefix is
 * physically compacted only when it exceeds half the log. record()
 * additionally fires an optional listener so the SPMD executor can
 * wake parked waiters event-driven instead of polling every log each
 * scheduling step. Neither structure affects the recorded times:
 * simulated timing is byte-identical to the naive implementation
 * (pinned by tests/sim/arrivals_test.cc's reference-model fuzz).
 */

#ifndef T3DSIM_SIM_ARRIVALS_HH
#define T3DSIM_SIM_ARRIVALS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace t3dsim
{

/** Ordered log of timestamped quantity arrivals at one node. */
class ArrivalLog
{
  public:
    /** Record @p amount units arriving at time @p when. */
    void record(Cycles when, std::uint64_t amount);

    /** Total unconsumed units recorded since the last reset. */
    std::uint64_t totalArrived() const { return _total; }

    /**
     * Earliest time at which the cumulative arrived amount reaches
     * @p amount, or nullopt if it never does (yet).
     */
    std::optional<Cycles> timeOfCumulative(std::uint64_t amount) const;

    /** Unconsumed units that had arrived by time @p when (inclusive). */
    std::uint64_t arrivedBy(Cycles when) const;

    /**
     * Consume @p amount units from the front of the log (after a
     * successful wait), keeping later arrivals for the next phase.
     */
    void consume(std::uint64_t amount);

    /** Drop everything (the listener survives). */
    void reset();

    /** Host bytes resident for this log. */
    std::size_t
    residentBytes() const
    {
        return sizeof(ArrivalLog) + _entries.capacity() * sizeof(Entry);
    }

    /**
     * Install a host-side hook fired after every successful
     * record(). Used by the SPMD executor for event-driven wakeups;
     * must not touch simulated state.
     */
    void
    setRecordListener(std::function<void()> listener)
    {
        _onRecord = std::move(listener);
    }

    /** Remove the record() hook. */
    void clearRecordListener() { _onRecord = nullptr; }

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t amount;

        /**
         * Absolute cumulative amount through this entry, counting
         * consumed units (queries subtract _consumedTotal). Only
         * entries below _prefixValid hold a current value; the rest
         * are filled in by refreshPrefix() on demand.
         */
        std::uint64_t cum;
    };

    /** Extend the valid prefix-sum range to the full log. */
    void refreshPrefix() const;

    /** Physically drop the fully-consumed prefix when it dominates. */
    void compact();

    /** Kept sorted by time; record() inserts in order.
     *  [ _head, size() ) is the live (not fully consumed) range. */
    mutable std::vector<Entry> _entries;
    std::size_t _head = 0;

    /** Units consumed from _entries[_head] (partial consumption). */
    std::uint64_t _headConsumed = 0;

    /** Absolute units consumed since the last reset/compaction era. */
    std::uint64_t _consumedTotal = 0;

    /** Absolute cum of everything compacted away (prefix rebuild base). */
    std::uint64_t _cumBase = 0;

    mutable std::size_t _prefixValid = 0;
    std::uint64_t _total = 0;
    std::function<void()> _onRecord;
};

} // namespace t3dsim

#endif // T3DSIM_SIM_ARRIVALS_HH
