#include "alpha/write_buffer.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "sim/logging.hh"

namespace t3dsim::alpha
{

WriteBuffer::WriteBuffer(const Config &config, DrainPort &port)
    : _config(config), _port(port)
{
    T3D_ASSERT(_config.entries > 0, "write buffer needs entries");
}

void
WriteBuffer::issueSlot(Slot &slot, Cycles ready)
{
    T3D_ASSERT(!slot.scheduled, "double issue of write-buffer slot");
    auto result = _port.drainLine(ready, slot.lineAddr,
                                  slot.data.data(), slot.mask,
                                  slot.tag);
    slot.scheduled = true;
    slot.completion = result.completion;
    slot.deferCommit = result.deferCommit;
    --_unscheduled;
}

void
WriteBuffer::issueDue(Cycles now)
{
    if (_unscheduled == 0 || now < _earliestDue)
        return;
    Cycles next = std::numeric_limits<Cycles>::max();
    for (auto &slot : _slots) {
        if (slot.scheduled)
            continue;
        const Cycles due = slot.accept + _config.holdoffCycles;
        if (due <= now)
            issueSlot(slot, due);
        else
            next = std::min(next, due);
    }
    _earliestDue = next;
}

void
WriteBuffer::retireCompleted(Cycles now)
{
    while (!_slots.empty()) {
        Slot &front = _slots.front();
        if (!front.scheduled || front.completion > now)
            break;
        if (front.deferCommit)
            _port.commitLine(front.lineAddr, front.data.data(), front.mask);
        T3D_COUNT(_ctr, wbRetires);
        _slots.pop_front();
    }
}

Cycles
WriteBuffer::write(Cycles now, Addr pa, const void *src, std::size_t len,
                   std::uint32_t tag)
{
    const Addr line = pa & ~(Addr{wbLineBytes} - 1);
    const std::size_t off = pa - line;
    T3D_ASSERT(off + len <= wbLineBytes, "store crosses a line boundary");

    commitUpTo(now);

    // Write-merging: coalesce into a pending same-line entry that has
    // not yet issued to memory.
    for (auto &slot : _slots) {
        if (!slot.scheduled && slot.lineAddr == line &&
            slot.tag == tag) {
            std::memcpy(slot.data.data() + off, src, len);
            for (std::size_t i = 0; i < len; ++i)
                slot.mask |= 1u << (off + i);
            ++_merges;
            T3D_COUNT(_ctr, wbMerges);
            return _config.issueCycles;
        }
    }

    // Need a fresh slot; stall while the buffer is full. Entries
    // retire in FIFO order, so the stall lasts until the oldest
    // entry's drain completes.
    Cycles when = now;
    while (_slots.size() >= _config.entries) {
        // Full-buffer pressure forces every pending entry to memory.
        for (auto &slot : _slots) {
            if (!slot.scheduled)
                issueSlot(slot, when);
        }
        when = std::max(when, _slots.front().completion);
        retireCompleted(when);
    }
    if (when != now) {
        T3D_COUNT(_ctr, wbStalls);
        T3D_COUNT_ADD(_ctr, wbStallCycles, when - now);
    }
    _stallCycles += when - now;

    Slot slot;
    slot.lineAddr = line;
    slot.tag = tag;
    std::memcpy(slot.data.data() + off, src, len);
    for (std::size_t i = 0; i < len; ++i)
        slot.mask |= 1u << (off + i);
    slot.accept = when;
    _slots.push_back(slot);
    const Cycles due = when + _config.holdoffCycles;
    _earliestDue = _unscheduled == 0 ? due : std::min(_earliestDue, due);
    ++_unscheduled;

    return (when - now) + _config.issueCycles;
}

bool
WriteBuffer::forward(Cycles now, Addr pa, void *buf, std::size_t len)
{
    commitUpTo(now);
    auto *out = static_cast<std::uint8_t *>(buf);
    bool any = false;
    // Oldest-to-newest so newer pending bytes win.
    for (const auto &slot : _slots) {
        for (std::size_t i = 0; i < len; ++i) {
            Addr byte_addr = pa + i;
            if ((byte_addr & ~(Addr{wbLineBytes} - 1)) != slot.lineAddr)
                continue;
            std::size_t off = byte_addr - slot.lineAddr;
            if (slot.mask & (1u << off)) {
                out[i] = slot.data[off];
                any = true;
            }
        }
    }
    return any;
}

bool
WriteBuffer::holdsLine(Cycles now, Addr pa)
{
    commitUpTo(now);
    const Addr line = pa & ~(Addr{wbLineBytes} - 1);
    for (const auto &slot : _slots) {
        if (slot.lineAddr == line)
            return true;
    }
    return false;
}

Cycles
WriteBuffer::drainAll(Cycles now)
{
    commitUpTo(now);
    Cycles done = now;
    for (auto &slot : _slots) {
        if (!slot.scheduled)
            issueSlot(slot, now);
        done = std::max(done, slot.completion);
    }
    return done;
}

unsigned
WriteBuffer::occupancy(Cycles now)
{
    commitUpTo(now);
    return static_cast<unsigned>(_slots.size());
}

} // namespace t3dsim::alpha
