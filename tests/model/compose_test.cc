/**
 * @file
 * Composer and validator tests (docs/MODEL.md §4-§6): the prediction
 * dot product, limit-path flagging, signature scaling, and the
 * round-trip acceptance test — fit the model from the real
 * micro-sweeps, simulate a real app ladder, and require the composed
 * predictions to land inside the error band.
 */

#include <gtest/gtest.h>

#include "model/apps_sig.hh"
#include "model/compose.hh"
#include "model/measure.hh"
#include "model/primitives.hh"
#include "model/validate.hh"
#include "probes/counters.hh"

namespace t3dsim::model
{
namespace
{

TEST(Predict, DotProductOverPricedAndDirectCounters)
{
    CostModel m = defaultCostModel();
    Signature sig;
    sig.computeCyclesPerPe = 1000;
    sig.setCounter("l1Hits", 500);            // priced at 1
    sig.setCounter("barrierWaitCycles", 250); // direct
    const Prediction pred = predict(m, sig);
    EXPECT_DOUBLE_EQ(pred.cycles,
                     1000 + 500 * m.beta("l1Hits") + 250);
    EXPECT_TRUE(pred.flags.empty());
    // Breakdown is sorted by contribution, compute first here.
    ASSERT_EQ(pred.breakdown.size(), 3u);
    EXPECT_EQ(pred.breakdown[0].first, "compute");
}

TEST(Predict, FlagsLimitPathAndUnknownCounters)
{
    CostModel m = defaultCostModel();
    Signature sig;
    sig.setCounter("msgSpills", 3);
    sig.setCounter("notACounter", 1);
    const Prediction pred = predict(m, sig);
    ASSERT_EQ(pred.flags.size(), 2u);
    EXPECT_NE(pred.flags[0].find("msgSpills"), std::string::npos);
    EXPECT_NE(pred.flags[1].find("notACounter"), std::string::npos);
}

TEST(Signature, FromTotalsDividesByPes)
{
    probes::PerfCounters totals{};
    totals.l1Hits = 3200;
    totals.remoteReads = 64;
    const Signature sig = signatureFromTotals(totals, 32);
    EXPECT_DOUBLE_EQ(sig.counter("l1Hits"), 100);
    EXPECT_DOUBLE_EQ(sig.counter("remoteReads"), 2);
    EXPECT_DOUBLE_EQ(sig.counter("l1Misses"), 0);
}

TEST(SignatureScaling, ExtrapolatesGeneratingLaws)
{
    // Synthetic rung: one flat counter, one linear-in-P counter.
    std::vector<Signature> measured;
    for (double p : {8.0, 16.0, 32.0, 64.0}) {
        Signature s;
        s.workload = "synthetic";
        s.rung = "r";
        s.pes = p;
        s.setCounter("flat", 100);
        s.setCounter("linear", 3 * p);
        s.computeCyclesPerPe = 1000;
        measured.push_back(std::move(s));
    }
    const SignatureModel sm = fitSignatureScaling(measured);
    const Signature big = sm.at(1 << 18);
    EXPECT_NEAR(big.counter("flat"), 100, 1e-6);
    EXPECT_NEAR(big.counter("linear"), 3.0 * (1 << 18), 1e-3);
    EXPECT_NEAR(big.computeCyclesPerPe, 1000, 1e-6);
}

/** The acceptance criterion, in miniature: fit from real sweeps,
 *  simulate the qcd and bsort ladders at 8 PEs, and require the
 *  composed predictions inside a 15% per-row band with a well
 *  under-10% median (docs/MODEL.md §6 reports the full matrix). */
TEST(RoundTrip, FittedModelPredictsAppLadders)
{
    std::string error;
    const std::vector<Sweep> sweeps = measureAll(&error);
    ASSERT_FALSE(sweeps.empty()) << error;
    const CostModel m = fitCostModel(sweeps);

    std::vector<LadderPoint> points;
    {
        apps::qcd::Config qcfg; // 4^4 sites, 2 sweeps — fast
        auto l = runQcdLadder(8, qcfg);
        points.insert(points.end(), l.begin(), l.end());
    }
    {
        apps::bsort::Config bcfg;
        bcfg.keysPerPe = 256;
        auto l = runBsortLadder(8, bcfg);
        points.insert(points.end(), l.begin(), l.end());
    }
    const ValidationReport report =
        summarize(validateLadder(m, points), 15.0);
    ASSERT_EQ(report.rows.size(), 10u);
    for (const ErrorRow &row : report.rows) {
        EXPECT_LT(std::abs(row.errorPct), 15.0)
            << row.workload << "/" << row.rung;
    }
    EXPECT_LT(report.medianAbsErrorPct, 10.0);
}

TEST(Validate, SummarizeComputesMediansAndFlags)
{
    std::vector<ErrorRow> rows;
    for (double e : {1.0, -2.0, 3.0, -12.0}) {
        ErrorRow r;
        r.workload = e > 0 ? "a" : "b";
        r.errorPct = e;
        rows.push_back(std::move(r));
    }
    rows[0].flags.push_back("limit path");
    const ValidationReport report = summarize(std::move(rows), 10.0);
    EXPECT_DOUBLE_EQ(report.medianAbsErrorPct, 2.5);
    EXPECT_DOUBLE_EQ(report.maxAbsErrorPct, 12.0);
    // Row 0 is flagged (composer flag), row 3 breaches the band.
    EXPECT_EQ(report.flaggedRows, 2u);
    ASSERT_EQ(report.perWorkloadMedian.size(), 2u);
    const std::string table = reportMarkdown(report);
    EXPECT_NE(table.find("limit path"), std::string::npos);
    EXPECT_NE(table.find("Median |error|"), std::string::npos);
}

} // namespace
} // namespace t3dsim::model
