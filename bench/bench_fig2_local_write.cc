/**
 * @file
 * Figure 2: local write cost on the T3D node.
 *
 * Reveals: write merging below the 32-byte line size (~20 ns per
 * store), the 4-entry write buffer's ~35 ns steady-state retirement
 * against the 145 ns memory, and the off-page inflection at 16 KB
 * strides.
 */

#include <iostream>

#include "machine/machine.hh"
#include "probes/stride.hh"
#include "probes/table.hh"

#include "profile.hh"

using namespace t3dsim;

int
main()
{
    std::cout << "Figure 2: local memory write cost (sawtooth stride "
                 "probe, ns per write)\n";

    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().storeU64(a, 0x5a5a5a5aull); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 8 * MiB);
    bench::printProfile("CRAY-T3D node (writes)", points);

    auto at = [&](std::uint64_t a, std::uint64_t s) {
        const auto *p = probes::findPoint(points, a, s);
        return p ? p->avgNsPerOp : -1.0;
    };

    probes::Table key({"landmark", "model (ns)", "paper (Sec. 2.3)"});
    key.addRow("merged writes (64K/8)", at(64 * KiB, 8),
               "~20 ns (write merging)");
    key.addRow("line-distinct (64K/32)", at(64 * KiB, 32),
               "~35 ns (4-entry WB vs 145 ns memory)");
    key.addRow("off-page (1M/16K)", at(1 * MiB, 16 * KiB),
               "distinctly slower (DRAM page miss)");
    key.addRow("same-bank (1M/64K)", at(1 * MiB, 64 * KiB),
               "worst case");
    key.print();

    std::cout << "derived write-buffer size estimate: "
              << "memory access / steady-state cost = "
              << 145.0 / at(64 * KiB, 32) << " (paper: 4 entries)\n";
    return 0;
}
