/**
 * @file
 * EM3D (§8): propagation of electromagnetic waves through objects in
 * three dimensions, reduced (as in the paper) to leapfrog updates on
 * an irregular bipartite graph of E and H field nodes spread across
 * the machine.
 *
 * Six program versions reproduce Figure 9's optimization ladder:
 *
 *   Simple  — every edge performs a blocking (possibly remote) read.
 *   Bundle  — remote values are fetched once per step into local
 *             ghost nodes; compute reads only local memory.
 *   Unroll  — Bundle plus an unrolled/software-pipelined compute
 *             phase (cheaper per-edge instruction overhead).
 *   Get     — the ghost fill is pipelined with split-phase gets.
 *   Put     — the *owner* of each value pushes it into the
 *             consumers' ghost slots with puts.
 *   Bulk    — outgoing values are gathered into a contiguous stage
 *             buffer and moved with one bulk transfer.
 *
 * The synthetic kernel graph follows the paper: a configurable
 * number of nodes per processor, fixed degree, and a dial for the
 * fraction of edges that cross processors. Remote edges reference a
 * uniformly random other processor; the resulting interleaving of
 * destination PEs is what makes repeated annex set-up visible and
 * reproduces Figure 9's Put-beats-Get and Bulk-beats-Put ordering
 * (§8: Bulk "avoids repeated Annex set-up operations").
 */

#ifndef T3DSIM_EM3D_EM3D_HH
#define T3DSIM_EM3D_EM3D_HH

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "splitc/config.hh"
#include "splitc/global_ptr.hh"
#include "sim/types.hh"

namespace t3dsim::em3d
{

/** Workload parameters (§8: 500 nodes/PE, degree 20). */
struct Config
{
    std::uint32_t nodesPerPe = 500;
    std::uint32_t degree = 20;

    /** Fraction of edges whose producer lives on another PE. */
    double remoteFraction = 0.2;

    std::uint64_t seed = 42;
    int iterations = 1;

    /** @name Per-edge compute-phase costs (cycles), calibrated so
     *  the optimized all-local versions land at the paper's 0.37 us
     *  per edge (§8). */
    /// @{
    Cycles computeSimpleCycles = 72;
    Cycles computeBundleCycles = 70;
    Cycles computeOptCycles = 53;
    /// @}
};

/** The six Figure 9 program versions. */
enum class Version
{
    Simple,
    Bundle,
    Unroll,
    Get,
    Put,
    Bulk,
};

/** Human-readable version name (as in Figure 9's legend). */
const char *versionName(Version v);

/** All versions in Figure 9 order. */
inline constexpr Version allVersions[] = {
    Version::Simple, Version::Bundle, Version::Unroll,
    Version::Get,    Version::Put,    Version::Bulk,
};

/** One consumer-side dependency edge. */
struct Edge
{
    /** Local index of the consuming node on its PE. */
    std::uint32_t dstIdx;

    /** Producer PE and local index of the producer value. */
    PeId srcPe;
    std::uint32_t srcIdx;

    /** Edge weight. */
    double weight;

    /**
     * Local address of the value during the compute phase (the
     * producer's array for local edges, a ghost slot for remote
     * ones). Filled in by Graph::build.
     */
    Addr localValueAddr = 0;
};

/** A remote value to pull into a ghost slot (Bundle/Get versions). */
struct Fetch
{
    PeId srcPe;
    std::uint32_t srcIdx;
    std::uint32_t ghostSlot;
};

/** A local value to push into a consumer's ghost slot (Put). */
struct Push
{
    std::uint32_t srcIdx;
    PeId dstPe;
    std::uint32_t ghostSlot;
};

/** The built graph: host-side structure + simulated memory layout. */
class Graph
{
  public:
    /**
     * Generate the synthetic kernel graph and allocate the value /
     * ghost / stage arrays symmetrically across @p machine.
     */
    static Graph build(machine::Machine &machine, const Config &config);

    /** Consumer-side view of one producer's contribution. */
    struct ProducerGroup
    {
        PeId srcPe;
        std::uint32_t firstSlot;

        /** Producer-local indices, in ghost-slot order. */
        std::vector<std::uint32_t> srcIdxs;

        /** Where the producer stages these values (Bulk version). */
        Addr producerStageOffset = 0;
    };

    /** Producer-side view of one consumer's staging region (Bulk). */
    struct StageGroup
    {
        PeId dstPe;
        Addr stageOffset;
        std::uint32_t dstFirstSlot;
        std::vector<std::uint32_t> srcIdxs;
    };

    /** One field direction's per-PE data. */
    struct Side
    {
        /** Edges consumed when updating this side's nodes, grouped
         *  by destination node. */
        std::vector<Edge> edges;

        /** Remote values to pull (deduplicated), in slot order —
         *  slots are grouped by producer. */
        std::vector<Fetch> fetches;

        /** Consumer view, one entry per producer. */
        std::vector<ProducerGroup> groups;

        /** Producer view: values to push, in node order (the
         *  destination-PE interleaving causes annex churn). */
        std::vector<Push> pushes;

        /** Producer view of per-consumer staging regions (Bulk). */
        std::vector<StageGroup> stageGroups;

        std::uint32_t ghostCount = 0;
    };

    struct PerPe
    {
        Side e; ///< updating E nodes (consumes H values)
        Side h; ///< updating H nodes (consumes E values)
    };

    Config config;
    std::uint32_t pes = 0;

    /** @name Symmetric local offsets of the simulated arrays */
    /// @{
    Addr eValsBase = 0;
    Addr hValsBase = 0;
    Addr eGhostBase = 0; ///< ghosts of remote H values (E update)
    Addr hGhostBase = 0; ///< ghosts of remote E values (H update)
    Addr stageBase = 0;  ///< producer-side staging for Bulk
    /// @}

    std::vector<PerPe> perPe;

    /** Directed edges per PE per iteration (both phases). */
    std::uint64_t edgesPerPe() const;

    /** Deterministic checksum of all E and H values (validation). */
    double checksum(machine::Machine &machine) const;
};

/** Outcome of one EM3D run. */
struct Result
{
    Version version;
    double usPerEdge = 0;
    Cycles elapsed = 0;
    std::uint64_t edgesPerPePerIter = 0;
    double checksum = 0;

    /** Host bytes resident for the modeled machine after the run
     *  (Machine::residentModelBytes; see DESIGN.md §11). */
    std::uint64_t modeledBytes = 0;

    /** Machine-wide counter totals (valid only when the machine ran
     *  with MachineConfig::observe.counters), as in the app suite's
     *  Results — the export hook the model layer composes from. */
    probes::PerfCounters counters{};
    bool countersValid = false;
};

/**
 * Build the graph on a fresh machine of @p pes processors and run
 * @p version for config.iterations leapfrog steps.
 *
 * @param splitc_config Runtime policy knobs (annex management etc.),
 *        for ablation studies.
 */
Result run(const Config &config, Version version, std::uint32_t pes,
           const splitc::SplitcConfig &splitc_config = {});

/** As above, on a caller-supplied machine configuration. */
Result run(const Config &config, Version version,
           const machine::MachineConfig &machine_config,
           const splitc::SplitcConfig &splitc_config = {});

} // namespace t3dsim::em3d

#endif // T3DSIM_EM3D_EM3D_HH
