file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_net.dir/torus.cc.o"
  "CMakeFiles/t3dsim_net.dir/torus.cc.o.d"
  "libt3dsim_net.a"
  "libt3dsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
