file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_em3d.dir/graph.cc.o"
  "CMakeFiles/t3dsim_em3d.dir/graph.cc.o.d"
  "CMakeFiles/t3dsim_em3d.dir/run.cc.o"
  "CMakeFiles/t3dsim_em3d.dir/run.cc.o.d"
  "libt3dsim_em3d.a"
  "libt3dsim_em3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_em3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
