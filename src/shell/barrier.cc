#include "shell/barrier.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

BarrierNetwork::BarrierNetwork(std::uint32_t pes, Cycles latency_cycles)
    : _pes(pes), _latency(latency_cycles),
      _leaves((pes + radix - 1) / radix)
{
    T3D_ASSERT(pes > 0, "barrier needs at least one PE");
    std::size_t width = _leaves.size();
    for (;;) {
        _levels.emplace_back(width);
        if (width == 1)
            break;
        width = (width + radix - 1) / radix;
    }
}

std::optional<Cycles>
BarrierNetwork::arrive(PeId pe, Cycles when)
{
    T3D_ASSERT(pe < _pes, "barrier arrival from unknown PE ", pe);

    LeafGroup &leaf = _leaves[pe >> radixLog2];
    if (leaf.gen != _generation) {
        leaf.gen = _generation;
        leaf.present = 0;
    }
    const std::uint64_t bit = std::uint64_t{1} << (pe & (radix - 1));
    T3D_ASSERT(!(leaf.present & bit),
               "PE ", pe, " arrived twice in barrier generation ",
               _generation);
    leaf.present |= bit;

    // A stale arrival timestamp from before the previous generation's
    // exit cannot rewind the wired OR: the line only clears at that
    // exit, so an earlier @p when is clamped to it. Without this a
    // new generation (whose max restarts at 0) could compute an exit
    // time before the previous generation's. Clamping per arrival
    // yields the same root max as the flat running max did.
    const Cycles clamped = std::max(when, _lastExit);

    std::size_t idx = pe >> radixLog2;
    for (auto &level : _levels) {
        TreeNode &node = level[idx];
        if (node.gen != _generation) {
            node.gen = _generation;
            node.count = 0;
            node.maxArrival = 0;
        }
        ++node.count;
        node.maxArrival = std::max(node.maxArrival, clamped);
        idx >>= radixLog2;
    }

    if (complete())
        return exitTime();
    return std::nullopt;
}

Cycles
BarrierNetwork::exitTime() const
{
    T3D_ASSERT(complete(), "barrier exit time queried before completion");
    return root().maxArrival + _latency;
}

void
BarrierNetwork::resetGeneration()
{
    T3D_ASSERT(complete(), "barrier generation reset while incomplete");
    _lastExit = exitTime();
    // Stale stamps make every leaf and node self-reset on first
    // touch of the new generation: no O(P) fill.
    ++_generation;
}

std::size_t
BarrierNetwork::residentBytes() const
{
    std::size_t bytes = sizeof(BarrierNetwork) +
                        _leaves.capacity() * sizeof(LeafGroup);
    bytes += _levels.capacity() * sizeof(_levels[0]);
    for (const auto &level : _levels)
        bytes += level.capacity() * sizeof(TreeNode);
    return bytes;
}

} // namespace t3dsim::shell
