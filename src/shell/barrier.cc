#include "shell/barrier.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

BarrierNetwork::BarrierNetwork(std::uint32_t pes, Cycles latency_cycles)
    : _pes(pes), _latency(latency_cycles), _present(pes, false)
{
    T3D_ASSERT(pes > 0, "barrier needs at least one PE");
}

std::optional<Cycles>
BarrierNetwork::arrive(PeId pe, Cycles when)
{
    T3D_ASSERT(pe < _pes, "barrier arrival from unknown PE ", pe);
    T3D_ASSERT(!_present[pe],
               "PE ", pe, " arrived twice in barrier generation ",
               _generation);
    _present[pe] = true;
    ++_arrived;
    // A stale arrival timestamp from before the previous generation's
    // exit cannot rewind the wired OR: the line only clears at that
    // exit, so an earlier @p when is clamped to it. Without this a
    // new generation (whose _maxArrival restarts at 0) could compute
    // an exit time before the previous generation's.
    _maxArrival = std::max({_maxArrival, when, _lastExit});
    if (complete())
        return exitTime();
    return std::nullopt;
}

Cycles
BarrierNetwork::exitTime() const
{
    T3D_ASSERT(complete(), "barrier exit time queried before completion");
    return _maxArrival + _latency;
}

void
BarrierNetwork::resetGeneration()
{
    T3D_ASSERT(complete(), "barrier generation reset while incomplete");
    _lastExit = exitTime();
    std::fill(_present.begin(), _present.end(), false);
    _arrived = 0;
    _maxArrival = 0;
    ++_generation;
}

} // namespace t3dsim::shell
