/**
 * @file
 * Tunables of the Split-C runtime: code-generation overheads the
 * paper attributes to the language implementation on top of the raw
 * hardware primitives, plus the compiler's mechanism-selection
 * crossover points.
 */

#ifndef T3DSIM_SPLITC_CONFIG_HH
#define T3DSIM_SPLITC_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace t3dsim::splitc
{

/** Annex register management strategy (§3.4). */
enum class AnnexPolicy
{
    /**
     * Use one annex register for all remote accesses, reloading it
     * whenever the target PE changes (the strategy the paper's
     * implementation settled on).
     */
    SingleReload,

    /**
     * Hash the PE number onto a pool of annex registers and keep a
     * runtime table of their contents. Hazard-free by construction
     * (a PE always maps to the same register) but each access pays a
     * table lookup, so there is "no clear performance advantage"
     * (§3.4).
     */
    HashedTable,
};

/** Runtime overhead constants and policy knobs. */
struct SplitcConfig
{
    AnnexPolicy annexPolicy = AnnexPolicy::SingleReload;

    /**
     * Global-pointer dereference overhead: extract the PE number,
     * insert the annex index into the address, test for local
     * (§3.3/§4.4; the gap between the 91-cycle raw uncached read and
     * the ~128-cycle Split-C read beyond the 23-cycle annex update).
     */
    Cycles ptrOverheadCycles = 6;

    /** Table lookup per access under AnnexPolicy::HashedTable. */
    Cycles annexTableLookupCycles = 10;

    /** get: target-address table update/lookup, 10 cycles (§5.4). */
    Cycles getTableCycles = 10;

    /** get: final store into the target local address (§5.4). */
    Cycles getLocalStoreCycles = 3;

    /** put: "a few additional checks" beyond the store (§5.4). */
    Cycles putCheckCycles = 10;

    /**
     * Signaling store: extra cost of maintaining the receiver's
     * arrived-bytes counter (pipelined second write; §7.1/§7.4).
     */
    Cycles storeSignalExtraCycles = 4;

    /** Fuzzy-barrier instruction costs around the hardware OR. */
    Cycles startBarrierCycles = 5;
    Cycles endBarrierCycles = 5;

    /** store_sync: local counter poll on wakeup. */
    Cycles storeSyncPollCycles = 25;

    /** bulk_read/bulk_write: switch to the BLT above this (§6.3). */
    std::size_t bulkBltCrossoverBytes = 16 * KiB;

    /**
     * bulk_get: the BLT's 180 us startup buys overlap only above
     * ~7,900 bytes (§6.3).
     */
    std::size_t bulkGetBltCrossoverBytes = 7900;

    /** AM deposit: sender-side packing/bookkeeping overhead (§7.4). */
    Cycles amDepositOverheadCycles = 100;

    /** AM dispatch: receiver-side handler dispatch overhead (§7.4). */
    Cycles amDispatchOverheadCycles = 170;

    /**
     * Slots in the per-node shared-memory AM queue. A deposit whose
     * ticket has this many undispatched predecessors (per the
     * receiver's flow account, sampled at the serialized ticket
     * claim) cannot use the primary queue: system software reroutes
     * it into a DRAM overflow ring that the receiver recovers from
     * with one modeled interrupt per spilled message — a sustained
     * flood becomes an interrupt storm that slows the receiver
     * instead of aborting the run. The counter-based rule makes
     * placement a pure function of simulated state, so the
     * sequential and host-parallel schedulers reroute identically.
     */
    std::uint32_t amQueueSlots = 256;

    /**
     * Slots in the per-node DRAM overflow ring, occupied in ticket
     * order by spilled deposits. Together with the primary queue
     * this bounds undispatched deposits per receiver; exhausting
     * both is diagnosed as a typed error (a receiver that never
     * drains is a deadlocked program, not extreme-but-legal
     * traffic). The combined rings must fit below Node::allocBase.
     */
    std::uint32_t amOverflowSlots = 1024;

    /**
     * Receiver-side cost to recover one spilled deposit from the
     * overflow ring: an OS interrupt, same 25 us the message-queue
     * path charges (§7.3; assumption documented in DESIGN.md).
     */
    Cycles amOverflowDrainCycles = usToCycles(25.0);

    /**
     * Host worker threads for the scheduler (a host-side knob; it
     * never changes simulated timing — the parallel scheduler is
     * bit-identical to the sequential one for race-free programs).
     *   0  (default) consult T3DSIM_HOST_THREADS; unset or 0 means
     *      the sequential scheduler
     *   N >= 1 host-parallel scheduler with N worker threads
     *   -1 force the sequential scheduler even if the environment
     *      variable is set (benchmark baselines use this)
     */
    int hostThreads = 0;

    /**
     * Adaptive lookahead for the host-parallel scheduler (another
     * pure host-side knob; simulated timing is bit-identical either
     * way, pinned by tests/splitc/lookahead_test.cc). When on, a
     * shard's window horizon widens from T + W to
     * min(other nonempty shards' front keys) + W — sound because
     * every cross-shard influence on the shard originates at or
     * after some other shard's front and takes at least W to land
     * (splitc/lookahead.hh). Comm-sparse phases then run many
     * resumes per window instead of one per W cycles, and a shard
     * that is the only one with work runs to its next park in a
     * single window.
     */
    bool adaptiveLookahead = true;
};

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_CONFIG_HH
