file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_bulk_crossover.dir/bench_tab_bulk_crossover.cc.o"
  "CMakeFiles/bench_tab_bulk_crossover.dir/bench_tab_bulk_crossover.cc.o.d"
  "bench_tab_bulk_crossover"
  "bench_tab_bulk_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_bulk_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
