/**
 * @file
 * QCD lattice relaxation sweep (docs/APPS.md): the five-rung variant
 * ladder at 32 and 256 PEs with full per-variant counter breakdowns,
 * a prefetch-depth ablation on the Get rung (the Fig. 6 pipeline
 * story replayed through a face exchange instead of a
 * microbenchmark), and the sequential-vs-parallel differential.
 * Writes BENCH_app_qcd.json; exits non-zero if any run fails
 * validation or the differential diverges.
 *
 * --quick   32 PEs only, 2^4 local lattice (the CI smoke config).
 * --out=F   output path (default BENCH_app_qcd.json).
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app_bench.hh"
#include "apps/qcd/qcd.hh"
#include "machine/machine.hh"

using namespace t3dsim;
using apps::Variant;

namespace
{

apps::qcd::Config
benchConfig(bool quick)
{
    apps::qcd::Config cfg;
    if (quick) {
        cfg.lx = cfg.ly = cfg.lz = cfg.lt = 2;
        cfg.sweeps = 1;
    } else {
        cfg.lx = cfg.ly = cfg.lz = cfg.lt = 4;
        cfg.sweeps = 2;
    }
    return cfg;
}

appbench::LadderRow
toRow(const apps::qcd::Result &r, std::uint32_t pes)
{
    appbench::LadderRow row;
    row.variant = apps::variantName(r.variant);
    row.pes = pes;
    row.simCycles = r.elapsed;
    row.perUnit = r.usPerSiteUpdate;
    row.checksum = r.checksum;
    row.valid = r.converged;
    row.counters = r.counters;
    row.countersValid = r.countersValid;
    return row;
}

/** One prefetch-depth ablation measurement on the Get rung. */
struct DepthRow
{
    std::uint32_t prefetchSlots = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t prefetchIssues = 0;
    std::uint64_t prefetchFullStalls = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_app_qcd.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
    }

    const apps::qcd::Config cfg = benchConfig(quick);
    const std::vector<std::uint32_t> pe_counts =
        quick ? std::vector<std::uint32_t>{32}
              : std::vector<std::uint32_t>{32, 256};

    bool ok = true;

    // ---- Variant ladder with counters ----
    std::vector<appbench::LadderRow> ladder;
    for (std::uint32_t pes : pe_counts) {
        for (Variant v : apps::allVariants) {
            machine::MachineConfig mc = machine::MachineConfig::t3d(pes);
            mc.observe.counters = true;
            const apps::qcd::Result r = apps::qcd::run(cfg, v, mc);
            if (!r.converged) {
                std::cerr << "FAIL: " << apps::variantName(v) << " @ "
                          << pes
                          << " PEs did not match the reference\n";
                ok = false;
            }
            std::cout << "ladder " << apps::variantName(v) << " pes="
                      << pes << " sim_cycles=" << r.elapsed
                      << " us/site-update=" << r.usPerSiteUpdate
                      << "\n";
            ladder.push_back(toRow(r, pes));
        }
    }

    // ---- Prefetch-depth ablation (Get rung, smallest PE count) ----
    // The face fill issues a stream of same-producer gets; shrinking
    // ShellConfig::prefetchSlots throttles the pipeline (Fig. 6's
    // depth story) and prefetchFullStalls counts the back-pressure.
    std::vector<DepthRow> depth;
    for (std::uint32_t slots : {1u, 2u, 4u, 8u, 16u, 32u}) {
        machine::MachineConfig mc = machine::MachineConfig::t3d(32);
        mc.observe.counters = true;
        mc.shell.prefetchSlots = slots;
        const apps::qcd::Result r =
            apps::qcd::run(cfg, Variant::Get, mc);
        if (!r.converged) {
            std::cerr << "FAIL: prefetch_slots=" << slots
                      << " did not match the reference\n";
            ok = false;
        }
        DepthRow row;
        row.prefetchSlots = slots;
        row.simCycles = r.elapsed;
        if (r.countersValid) {
            row.prefetchIssues = r.counters.prefetchIssues;
            row.prefetchFullStalls = r.counters.prefetchFullStalls;
        }
        std::cout << "depth slots=" << slots
                  << " sim_cycles=" << r.elapsed
                  << " full_stalls=" << row.prefetchFullStalls << "\n";
        depth.push_back(row);
    }

    // ---- Sequential-vs-parallel differential ----
    bool differential_ok = true;
    for (Variant v : apps::allVariants) {
        const std::string label =
            std::string("qcd/") + apps::variantName(v);
        differential_ok &= appbench::runDifferential(
            label.c_str(),
            [&](const splitc::SplitcConfig &sc, bool counters) {
                machine::MachineConfig mc =
                    machine::MachineConfig::t3d(32);
                mc.observe.counters = counters;
                return toRow(apps::qcd::run(cfg, v, mc, sc), 32);
            });
    }
    ok &= differential_ok;
    std::cout << "differential "
              << (differential_ok ? "ok" : "DIVERGED") << "\n";

    // ---- JSON ----
    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    os.precision(17);
    os << "{\n"
       << "  \"bench\": \"app_qcd\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"config\": {\"lx\": " << cfg.lx << ", \"ly\": " << cfg.ly
       << ", \"lz\": " << cfg.lz << ", \"lt\": " << cfg.lt
       << ", \"sweeps\": " << cfg.sweeps << ", \"omega\": ";
    os.precision(6);
    os << cfg.omega;
    os.precision(17);
    os << ", \"seed\": " << cfg.seed << "},\n";
    appbench::writeLadderJson(os, ladder, "us_per_site_update");
    os << ",\n  \"prefetch_depth\": [\n";
    for (std::size_t i = 0; i < depth.size(); ++i) {
        const DepthRow &d = depth[i];
        os << "    {\"prefetch_slots\": " << d.prefetchSlots
           << ", \"sim_cycles\": " << d.simCycles
           << ", \"prefetch_issues\": " << d.prefetchIssues
           << ", \"prefetch_full_stalls\": " << d.prefetchFullStalls
           << "}" << (i + 1 < depth.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"differential\": {\"pes\": 32, \"host_threads\": [1, 2, "
          "4, 8], \"counters_modes\": 2, \"ok\": "
       << (differential_ok ? "true" : "false") << "}\n"
       << "}\n";
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
