/**
 * @file
 * Per-node logical clock.
 *
 * Every processing element owns a Clock; memory-system components
 * charge cycles to it as abstract instructions execute. Clocks only
 * move forward. The SPMD executor synchronizes clocks at barriers and
 * other interaction points.
 */

#ifndef T3DSIM_SIM_CLOCK_HH
#define T3DSIM_SIM_CLOCK_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace t3dsim
{

/** Monotonic cycle counter for one processing element. */
class Clock
{
  public:
    Clock() = default;

    /** Current time in cycles since simulation start. */
    Cycles now() const { return _now; }

    /** Advance the clock by @p cycles. */
    void advance(Cycles cycles) { _now += cycles; }

    /**
     * Move the clock forward to an absolute point in time.
     * Moving backwards is a simulator bug.
     */
    void
    advanceTo(Cycles when)
    {
        T3D_ASSERT(when >= _now,
                   "clock moved backwards: ", _now, " -> ", when);
        _now = when;
    }

    /** Advance to @p when if it is in the future; otherwise no-op. */
    void syncTo(Cycles when) { if (when > _now) _now = when; }

    /** Reset to time zero (test support). */
    void reset() { _now = 0; }

    /** Current time in nanoseconds. */
    double nowNs() const { return cyclesToNs(_now); }

  private:
    Cycles _now = 0;
};

} // namespace t3dsim

#endif // T3DSIM_SIM_CLOCK_HH
