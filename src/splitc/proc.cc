#include "splitc/proc.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "alpha/address.hh"
#include "alpha/write_buffer.hh"
#include "sim/logging.hh"

namespace t3dsim::splitc
{

namespace
{

/** Tag reserved for the remote byte-write handler (§4.5/§7.4). */
constexpr std::uint64_t amTagByteWrite = 0;

/** First tag available to user handlers. */
constexpr std::uint64_t amTagUser = 16;

/** Scratch offset of the AM queue (below Node::allocBase). */
constexpr Addr amQueueBase = 4 * KiB;

/** Slot layout: [flag|tag, ticket, a0, a1, a2, a3] = 6 words. The
 *  ticket tag lets the receiver verify which deposit occupies a slot,
 *  so dispatch stays strictly in ticket order across the primary
 *  queue and the overflow ring. */
constexpr Addr amSlotBytes = 48;

} // namespace

Proc::Proc(Scheduler &sched, machine::Machine &machine,
           machine::Node &node, const SplitcConfig &config)
    : _sched(sched), _machine(machine), _node(node), _config(config),
      _annexCurrent(0), _ctr(node.countersIfEnabled()),
      _trace(machine.trace())
{
    T3D_FATAL_IF(_config.amQueueSlots == 0 ||
                     _config.amOverflowSlots == 0,
                 "SplitcConfig::amQueueSlots and amOverflowSlots must "
                 "be nonzero (a 0-slot ring has no address to deposit "
                 "into)");
    T3D_FATAL_IF(
        amQueueBase +
                (Addr{_config.amQueueSlots} + _config.amOverflowSlots) *
                    amSlotBytes >
            machine::Node::allocBase,
        "AM queue rings (", _config.amQueueSlots, " + ",
        _config.amOverflowSlots, " slots of ", amSlotBytes,
        " bytes) do not fit in the scratch region below "
        "Node::allocBase");
    // The §4.5 fix: byte writes into shared data are shipped to the
    // owner and performed locally, making them atomic.
    registerAmHandler(
        amTagByteWrite,
        [](Proc &self, const std::array<std::uint64_t, 4> &args) {
            self.node().core().storeU8(
                static_cast<Addr>(args[0]),
                static_cast<std::uint8_t>(args[1]));
        });
}

GlobalAddr
Proc::allocLocal(std::size_t bytes, std::size_t align)
{
    return GlobalAddr::make(_node.pe(), _node.alloc(bytes, align));
}

// ---------------------------------------------------------------------
// Annex management (§3.4)
// ---------------------------------------------------------------------

unsigned
Proc::annexFor(PeId dst, shell::ReadMode mode)
{
    if (dst == pe())
        return 0;

    auto &core = _node.core();
    if (_config.annexPolicy == AnnexPolicy::SingleReload) {
        // Compare against the remembered contents of register 1.
        core.chargeRegOps(2);
        if (_annexValid && _annexCurrent == dst && _annexMode == mode) {
            T3D_COUNT(_ctr, annexHits);
            return 1;
        }
        _node.shell().setAnnex(1, {dst, mode});
        _annexCurrent = dst;
        _annexMode = mode;
        _annexValid = true;
        ++_annexUpdates;
        return 1;
    }

    // HashedTable: a PE always maps to the same register, so no two
    // registers ever alias the same PE (synonym-hazard-free), at the
    // price of a table lookup on every access.
    const unsigned idx = 1 + (dst % (alpha::numAnnexRegs - 2));
    core.charge(_config.annexTableLookupCycles);
    auto it = _annexTable.find(idx);
    if (it == _annexTable.end() || it->second != dst ||
        _node.shell().annex().get(idx).readMode != mode) {
        _node.shell().setAnnex(idx, {dst, mode});
        _annexTable[idx] = dst;
        ++_annexUpdates;
    } else {
        T3D_COUNT(_ctr, annexHits);
    }
    return idx;
}

// ---------------------------------------------------------------------
// Blocking reads and writes (§4.4)
// ---------------------------------------------------------------------

std::uint64_t
Proc::readU64(GlobalAddr src)
{
    auto &core = _node.core();
    if (src.pe() == pe()) {
        core.chargeRegOps(2); // locality test on the pointer
        return core.loadU64(src.local());
    }
    const unsigned idx = annexFor(src.pe(), shell::ReadMode::Uncached);
    core.charge(_config.ptrOverheadCycles);
    return _node.loadU64(vaFor(idx, src.local()));
}

void
Proc::writeU64(GlobalAddr dst, std::uint64_t value)
{
    auto &core = _node.core();
    if (dst.pe() == pe()) {
        core.chargeRegOps(2);
        core.storeU64(dst.local(), value);
        // Blocking semantics irrespective of locality (§4.5): the
        // write must be complete, not buffered.
        core.mb();
        return;
    }
    const unsigned idx = annexFor(dst.pe());
    core.charge(_config.ptrOverheadCycles);
    _node.storeU64(vaFor(idx, dst.local()), value);
    _node.waitRemoteWrites();
}

double
Proc::readF64(GlobalAddr src)
{
    return std::bit_cast<double>(readU64(src));
}

void
Proc::writeF64(GlobalAddr dst, double value)
{
    writeU64(dst, std::bit_cast<std::uint64_t>(value));
}

std::uint8_t
Proc::readU8(GlobalAddr src)
{
    auto &core = _node.core();
    if (src.pe() == pe()) {
        core.chargeRegOps(2);
        return core.loadU8(src.local());
    }
    const unsigned idx = annexFor(src.pe());
    core.charge(_config.ptrOverheadCycles);
    return _node.loadU8(vaFor(idx, src.local()));
}

void
Proc::writeU8(GlobalAddr dst, std::uint8_t value)
{
    auto &core = _node.core();
    if (dst.pe() == pe()) {
        core.chargeRegOps(2);
        core.storeU8(dst.local(), value);
        core.mb();
        return;
    }
    // The §4.5 trap, faithfully: remote read-modify-write of the
    // containing word. Concurrent writers clobber each other; use
    // amWriteByte() for the correct version.
    const unsigned idx = annexFor(dst.pe());
    core.charge(_config.ptrOverheadCycles);
    _node.storeU8(vaFor(idx, dst.local()), value);
    _node.waitRemoteWrites();
}

// ---------------------------------------------------------------------
// Split-phase gets and puts (§5.4)
// ---------------------------------------------------------------------

void
Proc::getU64(GlobalAddr src, Addr local_dst)
{
    ++_getsIssued;
    const unsigned idx = annexFor(src.pe());

    // The hardware FIFO holds 16; when full, drain before issuing.
    if (_getTable.size() >= _node.shell().config().prefetchSlots) {
        T3D_COUNT(_ctr, prefetchFullStalls);
        drainGets();
    }

    _node.fetchHint(vaFor(idx, src.local()));
    _node.core().charge(_config.getTableCycles);
    _getTable.push_back(local_dst);
}

void
Proc::drainGets()
{
    if (_getTable.empty())
        return;
    auto &pq = _node.shell().prefetch();
    // With fewer than 4 outstanding, the requests may still sit in
    // the write buffer: MB forces them out (§5.2).
    if (pq.needsMbBeforePop())
        _node.mb();
    while (!_getTable.empty()) {
        const std::uint64_t value = _node.popPrefetch();
        _node.core().storeU64(_getTable.front(), value);
        _getTable.pop_front();
    }
}

void
Proc::putU64(GlobalAddr dst, std::uint64_t value)
{
    ++_putsIssued;
    auto &core = _node.core();
    if (dst.pe() == pe()) {
        core.chargeRegOps(2);
        core.storeU64(dst.local(), value);
        return;
    }
    const unsigned idx = annexFor(dst.pe());
    core.charge(_config.putCheckCycles);
    _node.storeU64(vaFor(idx, dst.local()), value);
    _putsOutstanding = true;
}

void
Proc::putF64(GlobalAddr dst, double value)
{
    putU64(dst, std::bit_cast<std::uint64_t>(value));
}

void
Proc::sync()
{
    drainGets();
    if (_putsOutstanding) {
        _node.waitRemoteWrites();
        _putsOutstanding = false;
    }
    if (_bltPending) {
        _node.shell().blt().wait(_bltPending);
        _bltPending = 0;
    }
}

// ---------------------------------------------------------------------
// Signaling stores (§7.1)
// ---------------------------------------------------------------------

void
Proc::storeBytesSignaling(GlobalAddr dst, const void *src,
                          std::size_t len)
{
    ++_storesIssued;
    auto &core = _node.core();
    auto &clock = _node.clock();

    if (dst.pe() == pe()) {
        // Local store: data is immediately "arrived".
        core.chargeRegOps(2);
        for (std::size_t i = 0; i + 8 <= len; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, static_cast<const std::uint8_t *>(src) + i, 8);
            core.storeU64(dst.local() + i, w);
        }
        _sched.recordStoreArrival(pe(), clock.now(), len);
        return;
    }

    const unsigned idx = annexFor(dst.pe());
    (void)idx;
    core.charge(core.config().storeIssueCycles +
                _config.storeSignalExtraCycles);

    // Build the masked line and inject it directly (the store path
    // bypasses blocking entirely; backpressure is the injection
    // channel itself).
    const Addr offset = dst.local();
    const Addr line = offset & ~(Addr{alpha::wbLineBytes} - 1);
    const std::size_t in_line = offset - line;
    T3D_FATAL_IF(in_line + len > alpha::wbLineBytes,
                 "signaling store crosses a line boundary");

    std::array<std::uint8_t, alpha::wbLineBytes> data{};
    std::memcpy(data.data() + in_line, src, len);
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < len; ++i)
        mask |= 1u << (in_line + i);

    Cycles remote_done = 0;
    const Cycles injected = _node.shell().remote().injectWriteLine(
        clock.now(), dst.pe(), line, data.data(), mask, &remote_done);
    // The processor stalls only if the channel is backed up beyond
    // one injection interval.
    clock.syncTo(injected > clock.now() ? injected : clock.now());

    _sched.recordStoreArrival(dst.pe(), remote_done, len);
    _putsOutstanding = true; // all_store_sync waits for acks
}

void
Proc::storeU64(GlobalAddr dst, std::uint64_t value)
{
    storeBytesSignaling(dst, &value, sizeof(value));
}

void
Proc::storeF64(GlobalAddr dst, double value)
{
    storeU64(dst, std::bit_cast<std::uint64_t>(value));
}

BarrierAwaiter
Proc::allStoreSync()
{
    // Identical mechanism to the barrier: drain, poll acks, fuzzy
    // hardware barrier (§7.5).
    return barrier();
}

StoreSyncAwaiter
Proc::storeSync(std::uint64_t bytes)
{
    const std::uint64_t target = _storeWatermark + bytes;
    advanceStoreWatermark(bytes);
    return StoreSyncAwaiter{*this, target, /*amLog=*/false};
}

// ---------------------------------------------------------------------
// Barrier (§7.5)
// ---------------------------------------------------------------------

BarrierAwaiter
Proc::barrier()
{
    startBarrier();
    return endBarrier();
}

void
Proc::startBarrier()
{
    // "The global barrier waits for outstanding stores to complete,
    // performs the start-barrier instruction, then polls..." (§7.5)
    T3D_FATAL_IF(_barrierActive,
                 "start-barrier while a barrier is already in flight");
    _node.waitRemoteWrites();
    _putsOutstanding = false;
    _node.core().charge(_config.startBarrierCycles);
    T3D_COUNT(_ctr, barriers);
    _barrierArrive = now();

    auto &bn = _machine.barrier();
    _barrierGen = bn.generation();
    _barrierActive = true;

    // The scheduler owns the arrival: sequentially it lands in the
    // barrier network at once (completing the generation if we are
    // the last arriver); the parallel scheduler defers it to the
    // serial window merge.
    _sched.barrierArrive(pe(), now());
}

BarrierAwaiter
Proc::endBarrier()
{
    T3D_FATAL_IF(!_barrierActive, "end-barrier without start-barrier");
    return BarrierAwaiter{*this};
}

bool
Proc::barrierReady()
{
    auto &bn = _machine.barrier();
    if (bn.generation() == _barrierGen)
        return false; // not everyone has started yet: suspend.
    _barrierActive = false;
    _node.clock().syncTo(bn.lastExitTime());
    _node.core().charge(_config.endBarrierCycles);
    noteBarrierComplete();
    return true;
}

void
Proc::noteBarrierComplete()
{
    T3D_COUNT_ADD(_ctr, barrierWaitCycles, now() - _barrierArrive);
    T3D_TRACE(_trace, span(pe(), "barrier", _barrierArrive, now()));
}

// ---------------------------------------------------------------------
// Bulk transfers (§6)
// ---------------------------------------------------------------------

void
Proc::bulkReadUncached(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    T3D_FATAL_IF(bytes % 8 != 0, "bulk transfers are word-granular");
    const unsigned idx = annexFor(src.pe(), shell::ReadMode::Uncached);
    auto &core = _node.core();
    for (std::size_t off = 0; off < bytes; off += 8) {
        const std::uint64_t v = _node.loadU64(vaFor(idx, src.local() + off));
        core.storeU64(local_dst + off, v);
    }
}

void
Proc::bulkReadCached(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    T3D_FATAL_IF(bytes % 8 != 0, "bulk transfers are word-granular");
    const unsigned idx = annexFor(src.pe(), shell::ReadMode::Cached);
    auto &core = _node.core();
    const std::size_t line = core.dcache().lineBytes();
    // Above 8 KB the per-line flushes batch into one whole-cache
    // flush, which is cheaper (§6.2 footnote 3).
    const bool batch_flush = bytes >= 8 * KiB;

    for (std::size_t off = 0; off < bytes; off += 8) {
        const Addr va = vaFor(idx, src.local() + off);
        const std::uint64_t v = _node.loadU64(va);
        core.storeU64(local_dst + off, v);
        const bool line_end =
            ((off + 8) % line == 0) || (off + 8 == bytes);
        if (line_end && !batch_flush)
            core.flushLine(va & ~(Addr{line} - 1));
    }
    if (batch_flush)
        core.flushAll();
}

void
Proc::bulkReadPrefetch(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    T3D_FATAL_IF(bytes % 8 != 0, "bulk transfers are word-granular");
    const unsigned idx = annexFor(src.pe());
    auto &core = _node.core();
    auto &pq = _node.shell().prefetch();
    const std::size_t slots = _node.shell().config().prefetchSlots;

    std::size_t off = 0;
    while (off < bytes) {
        const std::size_t group =
            std::min(slots, (bytes - off) / 8);
        for (std::size_t g = 0; g < group; ++g)
            _node.fetchHint(vaFor(idx, src.local() + off + g * 8));
        if (pq.needsMbBeforePop())
            _node.mb();
        for (std::size_t g = 0; g < group; ++g) {
            const std::uint64_t v = _node.popPrefetch();
            core.storeU64(local_dst + off + g * 8, v);
        }
        off += group * 8;
    }
}

void
Proc::bulkReadBlt(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    const Cycles done = _node.shell().blt().startRead(
        src.pe(), src.local(), local_dst, bytes);
    _node.shell().blt().wait(done);
}

void
Proc::bulkRead(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    // Mechanism selection (§6.3): a single word reads uncached; the
    // prefetch queue wins up to the BLT crossover (~16 KB).
    if (bytes <= 8)
        bulkReadUncached(local_dst, src, bytes);
    else if (bytes < _config.bulkBltCrossoverBytes)
        bulkReadPrefetch(local_dst, src, bytes);
    else
        bulkReadBlt(local_dst, src, bytes);
}

void
Proc::bulkWriteStores(GlobalAddr dst, Addr local_src, std::size_t bytes)
{
    T3D_FATAL_IF(bytes % 8 != 0, "bulk transfers are word-granular");
    auto &core = _node.core();
    if (dst.pe() == pe()) {
        for (std::size_t off = 0; off < bytes; off += 8)
            core.storeU64(dst.local() + off,
                          core.loadU64(local_src + off));
        core.mb();
        return;
    }
    const unsigned idx = annexFor(dst.pe());
    for (std::size_t off = 0; off < bytes; off += 8) {
        const std::uint64_t v = core.loadU64(local_src + off);
        _node.storeU64(vaFor(idx, dst.local() + off), v);
    }
    _node.waitRemoteWrites();
}

void
Proc::bulkWriteBlt(GlobalAddr dst, Addr local_src, std::size_t bytes)
{
    const Cycles done = _node.shell().blt().startWrite(
        dst.pe(), dst.local(), local_src, bytes);
    _node.shell().blt().wait(done);
}

void
Proc::bulkWrite(GlobalAddr dst, Addr local_src, std::size_t bytes)
{
    // Non-blocking stores beat the BLT at every size (§6.2).
    bulkWriteStores(dst, local_src, bytes);
}

void
Proc::bulkGet(Addr local_dst, GlobalAddr src, std::size_t bytes)
{
    // Below ~7,900 bytes the prefetch queue finishes before the BLT
    // would even start (§6.3); above it, start the BLT and overlap.
    if (bytes < _config.bulkGetBltCrossoverBytes) {
        bulkReadPrefetch(local_dst, src, bytes);
        return;
    }
    _bltPending = std::max(
        _bltPending, _node.shell().blt().startRead(
                         src.pe(), src.local(), local_dst, bytes));
}

void
Proc::bulkPut(GlobalAddr dst, Addr local_src, std::size_t bytes)
{
    // Pipelined non-blocking stores; completion at the next sync().
    T3D_FATAL_IF(bytes % 8 != 0, "bulk transfers are word-granular");
    auto &core = _node.core();
    if (dst.pe() == pe()) {
        for (std::size_t off = 0; off < bytes; off += 8)
            core.storeU64(dst.local() + off,
                          core.loadU64(local_src + off));
        return;
    }
    const unsigned idx = annexFor(dst.pe());
    for (std::size_t off = 0; off < bytes; off += 8) {
        const std::uint64_t v = core.loadU64(local_src + off);
        _node.storeU64(vaFor(idx, dst.local() + off), v);
    }
    _putsOutstanding = true;
}

// ---------------------------------------------------------------------
// Messages and Active Messages (§7.3/§7.4)
// ---------------------------------------------------------------------

void
Proc::sendMessage(PeId dst, const std::array<std::uint64_t, 4> &words)
{
    _node.shell().remote().sendMessage(dst, words.data());
}

MessageAwaiter
Proc::waitMessage()
{
    return MessageAwaiter{*this};
}

shell::Message
Proc::takeMessage(bool handler_mode)
{
    auto [msg, done] =
        _node.shell().messages().dequeue(now(), handler_mode);
    _node.clock().advanceTo(done);
    return msg;
}

void
Proc::registerAmHandler(std::uint64_t tag, AmHandler handler)
{
    _amHandlers[tag] = std::move(handler);
}

Addr
Proc::amSlotAddr(std::uint64_t slot) const
{
    return amQueueBase + slot * amSlotBytes;
}

Addr
Proc::amOverflowSlotAddr(std::uint64_t slot) const
{
    return amQueueBase + _config.amQueueSlots * amSlotBytes +
        slot * amSlotBytes;
}

std::uint64_t
Proc::fetchInc(PeId dst, unsigned reg)
{
    if (dst == pe()) {
        // Local fetch&increment of the shell register.
        T3D_COUNT(_ctr, fetchIncRoundTrips);
        const Cycles t0 = now();
        std::uint64_t old_value = 0;
        const Cycles done =
            _node.serviceFetchInc(now(), reg, old_value);
        _node.clock().advanceTo(done + 5);
        T3D_TRACE(_trace,
                  span(pe(), "fetch_inc", t0, now(), "dst", dst));
        return old_value;
    }
    return _node.shell().remote().fetchInc(dst, reg);
}

std::uint64_t
Proc::atomicSwap(GlobalAddr dst, std::uint64_t new_value)
{
    const unsigned idx = annexFor(dst.pe(), shell::ReadMode::Swap);
    return _node.swap(vaFor(idx, dst.local()), new_value);
}

void
Proc::amDeposit(PeId dst, std::uint64_t tag,
                const std::array<std::uint64_t, 4> &args)
{
    T3D_FATAL_IF(dst == pe(), "AM deposit to self is not supported");
    _node.core().charge(_config.amDepositOverheadCycles);

    // Claim a ticket in the receiver's queue (≈ a remote read,
    // §7.4); tickets dispatch in order, so the ticket number is the
    // deterministic total order of deposits per receiver.
    const std::uint64_t ticket = fetchInc(dst, 0);

    // Route the deposit on the receiver's flow account, sampled at
    // the claim — the serialization point both schedulers place at
    // the same simulated instant — never on a peek at the receiver's
    // memory, whose host-instant contents race with the receiver
    // under the host-parallel scheduler. ticket - dispatched
    // predecessors are undispatched; once they cannot all fit in the
    // primary queue the deposit must take the DRAM overflow ring:
    // writing a freed primary slot ahead of an older spilled message
    // would dispatch out of order and strand the spill. The receiver
    // recovers each spill at one modeled interrupt
    // (amOverflowDrainCycles) — an interrupt storm under sustained
    // flooding, not a process abort.
    const auto flow = _sched.amFlowVisible(dst);
    Addr base;
    const bool spill =
        ticket - flow.dispatched >= _config.amQueueSlots;
    if (spill) {
        auto &claim = _sched.amFlow(dst);
        T3D_FATAL_IF(
            claim.spillsClaimed - flow.spillsDrained >=
                _config.amOverflowSlots,
            "AM queue overflow on PE ", dst, ": ticket ", ticket,
            " found both the primary queue and the overflow ring "
            "full (", _config.amQueueSlots, " + ",
            _config.amOverflowSlots,
            " undispatched deposits; the consumer is not draining — "
            "call amPoll, or enlarge SplitcConfig::amQueueSlots / "
            "amOverflowSlots)");
        // Spills occupy ring slots in claim (= ticket) order; the
        // occupancy gate above proves this slot's previous occupant
        // (spill number spillsClaimed - amOverflowSlots) has been
        // drained and its flag cleared.
        base = amOverflowSlotAddr(claim.spillsClaimed %
                                  _config.amOverflowSlots);
        ++claim.spillsClaimed;
        ++_amOverflows;
        T3D_COUNT(_ctr, amOverflows);
    } else {
        // An unspilled ticket owns its primary slot: its Q-th
        // predecessor is already dispatched (flag cleared), and no
        // later ticket can claim the slot until this one dispatches.
        base = amSlotAddr(ticket % _config.amQueueSlots);
    }

    // Deposit the ticket tag and four data words (pipelined puts)...
    putU64(GlobalAddr::make(dst, base + 8), ticket);
    for (unsigned i = 0; i < 4; ++i)
        putU64(GlobalAddr::make(dst, base + 16 + i * 8), args[i]);
    // ...make them visible before the control word...
    _node.waitRemoteWrites();
    _putsOutstanding = false;

    // ...then set the control word; its arrival is what the
    // receiver's poll observes.
    auto &clock = _node.clock();
    std::array<std::uint8_t, alpha::wbLineBytes> data{};
    const Addr line = base & ~(Addr{alpha::wbLineBytes} - 1);
    const std::size_t in_line = base - line;
    const std::uint64_t flag = tag + 1;
    std::memcpy(data.data() + in_line, &flag, 8);
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < 8; ++i)
        mask |= 1u << (in_line + i);

    Cycles remote_done = 0;
    _node.shell().remote().injectWriteLine(clock.now(), dst, line,
                                           data.data(), mask,
                                           &remote_done);
    _sched.recordAmArrival(dst, remote_done, 1);
    _putsOutstanding = true;
}

bool
Proc::amPoll()
{
    auto &core = _node.core();
    Addr base = amSlotAddr(_amHead % _config.amQueueSlots);
    bool spilled = false;

    std::uint64_t flag = core.loadU64(base);
    if (flag != 0) {
        // The deposit path's routing rule guarantees the occupant of
        // the primary slot is exactly the next ticket (see
        // amDeposit); the ticket tag pins the invariant.
        T3D_ASSERT(core.peekU64(base + 8) == _amHead,
                   "AM primary slot holds ticket ",
                   core.peekU64(base + 8), ", expected ", _amHead);
    } else {
        // The next ticket may have been rerouted to the DRAM
        // overflow ring. Spilled deposits occupy ring slots in claim
        // order, so the ring head is the oldest undispatched spill;
        // its ticket tag says whether it is this one's turn (a later
        // spilled ticket must wait for in-flight primary deposits).
        // The peeks are untimed system-software bookkeeping, so a
        // poll that finds nothing costs exactly what it did before
        // the overflow ring existed; recovering a spilled message
        // pays a full OS interrupt.
        const Addr ovf = amOverflowSlotAddr(_amSpillHead %
                                            _config.amOverflowSlots);
        if (core.peekU64(ovf) == 0 || core.peekU64(ovf + 8) != _amHead)
            return false;
        base = ovf;
        spilled = true;
        flag = core.loadU64(base);
        core.charge(_config.amOverflowDrainCycles);
        ++_amSpillHead;
    }

    std::array<std::uint64_t, 4> args{};
    for (unsigned i = 0; i < 4; ++i)
        args[i] = core.loadU64(base + 16 + i * 8);
    core.storeU64(base, 0); // free the slot
    ++_amHead;
    advanceAmWatermark(1);
    core.charge(_config.amDispatchOverheadCycles);
    _sched.amPublishDispatch(pe(), spilled);

    const std::uint64_t tag = flag - 1;
    auto it = _amHandlers.find(tag);
    T3D_FATAL_IF(it == _amHandlers.end(), "no AM handler for tag ", tag);
    it->second(*this, args);
    return true;
}

StoreSyncAwaiter
Proc::amWait()
{
    return StoreSyncAwaiter{*this, _amWatermark + 1, /*amLog=*/true};
}

void
Proc::amWriteByte(GlobalAddr dst, std::uint8_t value)
{
    if (dst.pe() == pe()) {
        _node.core().storeU8(dst.local(), value);
        return;
    }
    amDeposit(dst.pe(), amTagByteWrite,
              {dst.local(), std::uint64_t{value}, 0, 0});
}

} // namespace t3dsim::splitc
