#include "model/sweep.hh"

#include <ostream>

namespace t3dsim::model
{

double
SweepPoint::counter(const std::string &name) const
{
    for (const auto &[k, v] : counters) {
        if (k == name)
            return v;
    }
    return 0;
}

std::vector<FitPoint>
Sweep::xyPoints() const
{
    std::vector<FitPoint> xy;
    xy.reserve(points.size());
    for (const SweepPoint &p : points)
        xy.push_back({p.x, p.cycles});
    return xy;
}

void
writeSweepsJson(std::ostream &os, const std::vector<Sweep> &sweeps)
{
    os.precision(17);
    os << "{\n  \"schema\": \"t3dsim-sweeps-v1\",\n  \"sweeps\": [\n";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const Sweep &s = sweeps[i];
        os << "    {\"primitive\": \"" << s.primitive
           << "\", \"x_unit\": \"" << s.xUnit << "\"";
        if (!s.note.empty())
            os << ", \"note\": \"" << s.note << "\"";
        os << ", \"points\": [\n";
        for (std::size_t j = 0; j < s.points.size(); ++j) {
            const SweepPoint &p = s.points[j];
            os << "      {\"x\": " << p.x << ", \"cycles\": "
               << p.cycles;
            if (!p.counters.empty()) {
                os << ", \"counters\": {";
                for (std::size_t k = 0; k < p.counters.size(); ++k) {
                    os << "\"" << p.counters[k].first
                       << "\": " << p.counters[k].second
                       << (k + 1 < p.counters.size() ? ", " : "");
                }
                os << "}";
            }
            os << "}" << (j + 1 < s.points.size() ? "," : "") << "\n";
        }
        os << "    ]}" << (i + 1 < sweeps.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

bool
readSweepsJson(const Json &doc, std::vector<Sweep> &sweeps,
               std::string *error)
{
    sweeps.clear();
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        sweeps.clear();
        return false;
    };
    if (!doc.isObject())
        return fail("not a JSON object");
    if (doc["schema"].str() != "t3dsim-sweeps-v1")
        return fail("schema is not t3dsim-sweeps-v1");
    const Json &arr = doc["sweeps"];
    if (!arr.isArray())
        return fail("missing \"sweeps\" array");
    for (const Json &js : arr.array()) {
        Sweep s;
        s.primitive = js["primitive"].str();
        s.xUnit = js["x_unit"].str();
        s.note = js["note"].str();
        if (s.primitive.empty())
            return fail("sweep without \"primitive\"");
        const Json &pts = js["points"];
        if (!pts.isArray() || pts.array().empty())
            return fail("sweep " + s.primitive + " has no points");
        for (const Json &jp : pts.array()) {
            if (!jp["x"].isNumber() || !jp["cycles"].isNumber())
                return fail("sweep " + s.primitive +
                            ": point missing x/cycles");
            SweepPoint p;
            p.x = jp["x"].number();
            p.cycles = jp["cycles"].number();
            const Json &jc = jp["counters"];
            if (jc.isObject()) {
                for (const auto &[k, v] : jc.members()) {
                    if (!v.isNumber())
                        return fail("sweep " + s.primitive +
                                    ": counter " + k +
                                    " is not a number");
                    p.counters.emplace_back(k, v.number());
                }
            }
            s.points.push_back(std::move(p));
        }
        sweeps.push_back(std::move(s));
    }
    if (error)
        error->clear();
    return true;
}

const Sweep *
findSweep(const std::vector<Sweep> &sweeps,
          const std::string &primitive)
{
    for (const Sweep &s : sweeps) {
        if (s.primitive == primitive)
            return &s;
    }
    return nullptr;
}

} // namespace t3dsim::model
