# Empty compiler generated dependencies file for bench_tab_annex.
# This may be replaced when dependencies are built.
