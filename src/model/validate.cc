#include "model/validate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "model/compose.hh"

namespace t3dsim::model
{

namespace
{

double
medianOf(std::vector<double> v)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

std::vector<ErrorRow>
validateLadder(const CostModel &model,
               const std::vector<LadderPoint> &ladder)
{
    std::vector<ErrorRow> rows;
    for (const LadderPoint &pt : ladder) {
        const Prediction pred = predict(model, pt.sig);
        ErrorRow row;
        row.workload = pt.sig.workload;
        row.rung = pt.sig.rung;
        row.pes = pt.sig.pes;
        row.simulatedCycles = pt.simulatedCycles;
        row.predictedCycles = pred.cycles;
        row.errorPct = pt.simulatedCycles != 0
            ? 100.0 * (pred.cycles - pt.simulatedCycles) /
                pt.simulatedCycles
            : 0;
        row.flags = pred.flags;
        rows.push_back(std::move(row));
    }
    return rows;
}

ValidationReport
summarize(std::vector<ErrorRow> rows, double band_pct)
{
    ValidationReport report;
    report.rows = std::move(rows);

    std::vector<double> abs_errors;
    std::vector<std::pair<std::string, std::vector<double>>> per_app;
    for (const ErrorRow &row : report.rows) {
        const double e = std::abs(row.errorPct);
        abs_errors.push_back(e);
        report.maxAbsErrorPct = std::max(report.maxAbsErrorPct, e);
        if (e > band_pct || !row.flags.empty())
            ++report.flaggedRows;
        auto it = std::find_if(per_app.begin(), per_app.end(),
                               [&](const auto &p) {
                                   return p.first == row.workload;
                               });
        if (it == per_app.end()) {
            per_app.emplace_back(row.workload,
                                 std::vector<double>{e});
        } else {
            it->second.push_back(e);
        }
    }
    report.medianAbsErrorPct = medianOf(abs_errors);
    for (auto &[name, errors] : per_app)
        report.perWorkloadMedian.emplace_back(
            name, medianOf(std::move(errors)));
    return report;
}

std::string
reportMarkdown(const ValidationReport &report)
{
    std::string out;
    out += "| workload | rung | PEs | simulated | predicted | error "
           "| flags |\n";
    out += "|---|---|---:|---:|---:|---:|---|\n";
    for (const ErrorRow &row : report.rows) {
        out += "| " + row.workload + " | " + row.rung + " | " +
            fmt("%.0f", row.pes) + " | " +
            fmt("%.0f", row.simulatedCycles) + " | " +
            fmt("%.0f", row.predictedCycles) + " | " +
            fmt("%+.1f%%", row.errorPct) + " | ";
        for (std::size_t i = 0; i < row.flags.size(); ++i)
            out += (i ? "; " : "") + row.flags[i];
        out += " |\n";
    }
    out += "\nMedian |error|: " +
        fmt("%.1f%%", report.medianAbsErrorPct) +
        " (max " + fmt("%.1f%%", report.maxAbsErrorPct) + ", " +
        std::to_string(report.flaggedRows) + "/" +
        std::to_string(report.rows.size()) + " rows flagged)\n";
    for (const auto &[name, median] : report.perWorkloadMedian)
        out += "  - " + name + ": median |error| " +
            fmt("%.1f%%", median) + "\n";
    return out;
}

ValidationReport
validateAll(const CostModel &model,
            const std::vector<std::uint32_t> &pe_counts,
            double band_pct)
{
    std::vector<ErrorRow> rows;
    for (std::uint32_t pes : pe_counts) {
        for (auto &&ladder :
             {runEm3dLadder(pes), runBsortLadder(pes),
              runQcdLadder(pes)}) {
            auto batch = validateLadder(model, ladder);
            rows.insert(rows.end(),
                        std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
        }
    }
    return summarize(std::move(rows), band_pct);
}

} // namespace t3dsim::model
