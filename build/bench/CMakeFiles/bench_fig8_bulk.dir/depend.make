# Empty dependencies file for bench_fig8_bulk.
# This may be replaced when dependencies are built.
