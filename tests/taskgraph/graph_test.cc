/**
 * @file
 * Task-graph ingestion: schema errors are rejected with typed
 * diagnostics, topological levels and content hashes are stable, and
 * lowering enforces the single-sender contract for Am/Message edges.
 */

#include <gtest/gtest.h>

#include "taskgraph/graph.hh"
#include "taskgraph/lower.hh"

using namespace t3dsim;
using namespace t3dsim::taskgraph;

namespace
{

TaskGraph
mustParse(const std::string &text)
{
    TaskGraph g;
    std::string err;
    EXPECT_TRUE(TaskGraph::parseText(text, g, err)) << err;
    return g;
}

std::string
parseError(const std::string &text)
{
    TaskGraph g;
    std::string err;
    EXPECT_FALSE(TaskGraph::parseText(text, g, err));
    return err;
}

std::string
validateError(const std::string &text, std::uint32_t pes)
{
    TaskGraph g = mustParse(text);
    std::string err;
    EXPECT_FALSE(g.validate(pes, err));
    return err;
}

const char *kDiamond = R"({
    "name": "diamond",
    "tasks": [{"id": "a", "cycles": 100},
              {"id": "b", "cycles": 200},
              {"id": "c", "cycles": 300},
              {"id": "d", "cycles": 400}],
    "edges": [{"src": "a", "dst": "b", "bytes": 64},
              {"src": "a", "dst": "c", "bytes": 64},
              {"src": "b", "dst": "d", "bytes": 64},
              {"src": "c", "dst": "d", "bytes": 64}]
})";

} // namespace

TEST(TaskGraphParse, AcceptsDiamond)
{
    TaskGraph g = mustParse(kDiamond);
    EXPECT_EQ(g.name, "diamond");
    ASSERT_EQ(g.tasks.size(), 4u);
    ASSERT_EQ(g.edges.size(), 4u);
    EXPECT_EQ(g.tasks[0].id, "a");
    EXPECT_EQ(g.tasks[1].cycles, 200u);
    EXPECT_EQ(g.edges[0].src, 0u);
    EXPECT_EQ(g.edges[0].dst, 1u);
    EXPECT_EQ(g.edges[0].bytes, 64u);
    EXPECT_EQ(g.edges[0].mech, Mechanism::Auto);
}

TEST(TaskGraphParse, RejectsBadJson)
{
    EXPECT_NE(parseError("{\"tasks\": [").find("bad JSON"),
              std::string::npos);
}

TEST(TaskGraphParse, RejectsNonObjectTopLevel)
{
    EXPECT_NE(parseError("[1, 2]").find("top level must be a JSON object"),
              std::string::npos);
}

TEST(TaskGraphParse, RejectsMissingOrEmptyTasks)
{
    EXPECT_NE(parseError("{}").find("'tasks' must be a non-empty array"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"tasks": []})")
                  .find("'tasks' must be a non-empty array"),
              std::string::npos);
}

TEST(TaskGraphParse, RejectsMissingAndDuplicateIds)
{
    EXPECT_NE(parseError(R"({"tasks": [{"cycles": 1}]})")
                  .find("task 0: missing id"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"tasks": [{"id": "a"}, {"id": "a"}]})")
                  .find("duplicate task id 'a'"),
              std::string::npos);
}

TEST(TaskGraphParse, RejectsNonIntegerWeights)
{
    EXPECT_NE(
        parseError(R"({"tasks": [{"id": "a", "cycles": -5}]})")
            .find("'cycles' must be a non-negative integer"),
        std::string::npos);
    EXPECT_NE(
        parseError(R"({"tasks": [{"id": "a", "flops": 1.5}]})")
            .find("'flops' must be a non-negative integer"),
        std::string::npos);
}

TEST(TaskGraphParse, RejectsDanglingEdgeEndpoints)
{
    const char *missing = R"({"tasks": [{"id": "a"}],
                              "edges": [{"dst": "a"}]})";
    EXPECT_NE(parseError(missing).find("edge 0: missing 'src' task id"),
              std::string::npos);
    const char *unknown = R"({"tasks": [{"id": "a"}],
                              "edges": [{"src": "a", "dst": "zz"}]})";
    EXPECT_NE(parseError(unknown).find("unknown dst task 'zz'"),
              std::string::npos);
}

TEST(TaskGraphParse, RejectsUnknownMechanism)
{
    const char *text = R"({"tasks": [{"id": "a"}, {"id": "b"}],
        "edges": [{"src": "a", "dst": "b", "mech": "rdma"}]})";
    EXPECT_NE(parseError(text).find("unknown mechanism 'rdma'"),
              std::string::npos);
}

TEST(TaskGraphValidate, RejectsOutOfRangePe)
{
    const char *text = R"({"tasks": [{"id": "a", "pe": 9}]})";
    EXPECT_NE(validateError(text, 8).find("pe 9 out of range for 8 PEs"),
              std::string::npos);
}

TEST(TaskGraphValidate, RejectsSelfLoop)
{
    const char *text = R"({"tasks": [{"id": "a"}, {"id": "b"}],
        "edges": [{"src": "a", "dst": "a"}]})";
    EXPECT_NE(validateError(text, 8).find("self-loop on task 'a'"),
              std::string::npos);
}

TEST(TaskGraphValidate, RejectsOversizedAmAndMessagePayloads)
{
    const char *am = R"({"tasks": [{"id": "a"}, {"id": "b"}],
        "edges": [{"src": "a", "dst": "b", "bytes": 32, "mech": "am"}]})";
    EXPECT_NE(validateError(am, 8).find("am payload is capped at 24"),
              std::string::npos);
    const char *msg = R"({"tasks": [{"id": "a"}, {"id": "b"}],
        "edges": [{"src": "a", "dst": "b", "bytes": 32,
                   "mech": "message"}]})";
    EXPECT_NE(validateError(msg, 8).find("message payload is capped at 24"),
              std::string::npos);
}

TEST(TaskGraphValidate, RejectsCycles)
{
    const char *text = R"({"tasks": [{"id": "a"}, {"id": "b"}, {"id": "c"}],
        "edges": [{"src": "a", "dst": "b"},
                  {"src": "b", "dst": "c"},
                  {"src": "c", "dst": "a"}]})";
    EXPECT_NE(validateError(text, 8).find("cycle through task"),
              std::string::npos);
}

TEST(TaskGraphValidate, ComputesLongestPathLevels)
{
    TaskGraph g = mustParse(kDiamond);
    std::string err;
    ASSERT_TRUE(g.validate(8, err)) << err;
    EXPECT_EQ(g.tasks[0].level, 0u);
    EXPECT_EQ(g.tasks[1].level, 1u);
    EXPECT_EQ(g.tasks[2].level, 1u);
    EXPECT_EQ(g.tasks[3].level, 2u);
}

TEST(TaskGraphHash, TracksContent)
{
    TaskGraph a = mustParse(kDiamond);
    TaskGraph b = mustParse(kDiamond);
    EXPECT_EQ(a.contentHash(), b.contentHash());
    b.edges[0].bytes = 65;
    EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(Lowering, PicksMechanismBySize)
{
    const char *text = R"({"tasks": [
        {"id": "a", "pe": 0}, {"id": "s", "pe": 1}, {"id": "p", "pe": 2},
        {"id": "g", "pe": 3}, {"id": "b", "pe": 4}, {"id": "l", "pe": 0}],
        "edges": [{"src": "a", "dst": "s", "bytes": 64},
                  {"src": "a", "dst": "p", "bytes": 1024},
                  {"src": "a", "dst": "g", "bytes": 4096},
                  {"src": "a", "dst": "b", "bytes": 65536},
                  {"src": "a", "dst": "l", "bytes": 4096}]})";
    TaskGraph g = mustParse(text);
    std::string err;
    ASSERT_TRUE(g.validate(8, err)) << err;
    Plan plan;
    ASSERT_TRUE(Plan::build(g, LowerOptions{}, plan, err)) << err;
    EXPECT_EQ(plan.loweredEdges[0].mech, Mechanism::Store);
    EXPECT_EQ(plan.loweredEdges[1].mech, Mechanism::Put);
    EXPECT_EQ(plan.loweredEdges[2].mech, Mechanism::Get);
    EXPECT_EQ(plan.loweredEdges[3].mech, Mechanism::Blt);
    EXPECT_EQ(plan.loweredEdges[4].mech, Mechanism::Local);
}

TEST(Lowering, HonorsPinsAndBalancesRest)
{
    const char *text = R"({"tasks": [
        {"id": "a", "pe": 3, "cycles": 10},
        {"id": "b", "cycles": 1000},
        {"id": "c", "cycles": 10}]})";
    TaskGraph g = mustParse(text);
    std::string err;
    ASSERT_TRUE(g.validate(4, err)) << err;
    LowerOptions opt;
    opt.pes = 4;
    Plan plan;
    ASSERT_TRUE(Plan::build(g, opt, plan, err)) << err;
    EXPECT_EQ(plan.placement[0], 3u);
    // Greedy least-loaded: b lands on PE 0, then c avoids it.
    EXPECT_EQ(plan.placement[1], 0u);
    EXPECT_EQ(plan.placement[2], 1u);
}

TEST(Lowering, RejectsMultipleAmSendersPerReceiverLevel)
{
    const char *text = R"({"tasks": [
        {"id": "a", "pe": 0}, {"id": "b", "pe": 1}, {"id": "c", "pe": 2}],
        "edges": [{"src": "a", "dst": "c", "bytes": 8, "mech": "am"},
                  {"src": "b", "dst": "c", "bytes": 8, "mech": "am"}]})";
    TaskGraph g = mustParse(text);
    std::string err;
    LowerOptions opt;
    opt.pes = 4;
    ASSERT_TRUE(g.validate(opt.pes, err)) << err;
    Plan plan;
    EXPECT_FALSE(Plan::build(g, opt, plan, err));
    EXPECT_NE(err.find("multiple sender PEs"), std::string::npos) << err;
}

TEST(Lowering, AlignsLayoutSpansToCacheLines)
{
    TaskGraph g = mustParse(kDiamond);
    std::string err;
    ASSERT_TRUE(g.validate(8, err)) << err;
    Plan plan;
    ASSERT_TRUE(Plan::build(g, LowerOptions{}, plan, err)) << err;
    for (const LoweredEdge &le : plan.loweredEdges) {
        EXPECT_EQ(le.stagingAddr % 32, 0u);
        EXPECT_EQ(le.bufAddr % 32, 0u);
    }
    for (Addr addr : plan.taskResultAddr)
        EXPECT_EQ(addr % 32, 0u);
}
