/**
 * @file
 * Data-holding direct-mapped cache model.
 *
 * Used for the T3D node's 8 KB write-through read-allocate on-chip
 * D-cache (32-byte lines, §1.2/§2.2) and, with a different geometry,
 * for the DEC workstation's 512 KB board-level cache (§2.2).
 *
 * Lines hold real data so that the *incoherence* of cached remote
 * reads (§4.2/§4.4) is observable: a line cached from a remote node
 * goes stale when the owner updates its memory.
 *
 * Host-performance notes: probe/read/update sit on the simulator's
 * hottest path (every load and store), so index/tag math is
 * shift-and-mask (geometry is power-of-two by contract) and the
 * accessors are inline. Tags are 4-byte values (physical addresses
 * are well under 2^32, so a shifted tag always fits; ~0 is the
 * invalid sentinel) and tag+data arrays are materialized lazily in
 * 64-line *sectors*: a PE that never misses in a region pays nothing
 * for it, and an idle PE's whole D-cache model costs one pointer
 * array. This is the per-PE flyweight that lets 64K-node machines
 * construct in O(touched state) instead of O(P * cache size). The
 * cache is owner-thread-only (plus the serialized controller
 * phases), so sector pointers are plain, not atomic.
 */

#ifndef T3DSIM_ALPHA_CACHE_HH
#define T3DSIM_ALPHA_CACHE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace t3dsim::alpha
{

/** Direct-mapped, physically indexed and tagged, data-holding cache. */
class DirectMappedCache
{
  public:
    /**
     * @param size_bytes Total capacity; must be a power of two.
     * @param line_bytes Line size; must be a power of two.
     */
    DirectMappedCache(std::uint64_t size_bytes, std::uint64_t line_bytes);

    DirectMappedCache(const DirectMappedCache &) = delete;
    DirectMappedCache &operator=(const DirectMappedCache &) = delete;
    DirectMappedCache(DirectMappedCache &&other) noexcept;
    DirectMappedCache &operator=(DirectMappedCache &&other) noexcept;
    ~DirectMappedCache();

    /** True if the line holding @p pa is present. */
    bool
    probe(Addr pa) const
    {
        const std::uint64_t idx = indexOf(pa);
        const std::uint32_t *tags = _sectors[idx >> sectorShift];
        return tags && tags[idx & (sectorLines - 1)] == tag32Of(pa);
    }

    /** Number of lines. */
    std::uint64_t numLines() const { return _numLines; }

    std::uint64_t lineBytes() const { return _lineBytes; }
    std::uint64_t sizeBytes() const { return _numLines * _lineBytes; }

    /** Cache-line index of @p pa. */
    std::uint64_t indexOf(Addr pa) const
    {
        return (pa >> _lineShift) & _indexMask;
    }

    /** Tag of @p pa. */
    std::uint64_t tagOf(Addr pa) const { return pa >> _tagShift; }

    /**
     * Install the line holding @p pa with @p line_data (lineBytes()
     * bytes, line-aligned). Evicts whatever was there (write-through
     * caches have nothing dirty to write back).
     */
    void
    fill(Addr pa, const std::uint8_t *line_data)
    {
        T3D_ASSERT(tagOf(pa) < invalidTag,
                   "cache tag overflows 32 bits: pa=", pa);
        const std::uint64_t idx = indexOf(pa);
        const std::uint64_t s = idx >> sectorShift;
        std::uint32_t *tags = _sectors[s];
        if (!tags) [[unlikely]]
            tags = materializeSector(s);
        const std::uint64_t lane = idx & (sectorLines - 1);
        tags[lane] = tag32Of(pa);
        std::memcpy(sectorData(tags) + lane * _lineBytes, line_data,
                    _lineBytes);
    }

    /** Read @p len bytes at @p pa; the line must be present. */
    void read(Addr pa, void *dst, std::size_t len) const;

    /**
     * Write-through update: if the line holding @p pa is present,
     * update its bytes; otherwise do nothing (no write-allocate).
     * @return true if the line was present.
     */
    bool
    updateIfPresent(Addr pa, const void *src, std::size_t len)
    {
        const std::uint64_t idx = indexOf(pa);
        std::uint32_t *tags = _sectors[idx >> sectorShift];
        const std::uint64_t lane = idx & (sectorLines - 1);
        if (!tags || tags[lane] != tag32Of(pa))
            return false;
        const std::size_t off = pa & (_lineBytes - 1);
        T3D_ASSERT(off + len <= _lineBytes, "cache write crosses line");
        std::memcpy(sectorData(tags) + lane * _lineBytes + off, src, len);
        return true;
    }

    /** Invalidate the line holding @p pa if present and matching. */
    void
    invalidate(Addr pa)
    {
        const std::uint64_t idx = indexOf(pa);
        std::uint32_t *tags = _sectors[idx >> sectorShift];
        const std::uint64_t lane = idx & (sectorLines - 1);
        if (tags && tags[lane] == tag32Of(pa))
            tags[lane] = invalidTag;
    }

    /** Invalidate every line. */
    void invalidateAll();

    /** Count of currently valid lines (test support). */
    std::uint64_t validLines() const;

    /** Number of 64-line sectors materialized so far (test support). */
    std::uint64_t sectorsAllocated() const { return _sectorsAllocated; }

    /** Host bytes resident for this cache model. */
    std::size_t residentBytes() const;

  private:
    /** Lines per lazily-allocated tag+data sector. */
    static constexpr unsigned sectorShift = 6;
    static constexpr std::uint64_t sectorLines = 64;

    /** Tag sentinel: shifted physical addresses never reach 2^32-1. */
    static constexpr std::uint32_t invalidTag = ~std::uint32_t{0};

    std::uint32_t tag32Of(Addr pa) const
    {
        return static_cast<std::uint32_t>(pa >> _tagShift);
    }

    /**
     * A sector is one allocation: sectorLines 4-byte tags followed by
     * sectorLines line-data payloads. The stored pointer addresses
     * the tag array; data starts right after it.
     */
    std::uint8_t *sectorData(std::uint32_t *tags) const
    {
        return reinterpret_cast<std::uint8_t *>(tags + sectorLines);
    }
    const std::uint8_t *sectorData(const std::uint32_t *tags) const
    {
        return reinterpret_cast<const std::uint8_t *>(tags + sectorLines);
    }

    /** Allocate sector @p s with every tag invalid; returns its tags. */
    std::uint32_t *materializeSector(std::uint64_t s);

    std::size_t sectorAllocWords() const
    {
        return sectorLines + sectorLines * _lineBytes / sizeof(std::uint32_t);
    }

    void destroySectors();

    std::uint64_t _numLines;
    std::uint64_t _lineBytes;
    std::uint64_t _indexMask;
    unsigned _lineShift;
    unsigned _tagShift;

    /** One slot per sector; null until a line in it is filled. */
    std::vector<std::uint32_t *> _sectors;
    std::uint64_t _sectorsAllocated = 0;
};

} // namespace t3dsim::alpha

#endif // T3DSIM_ALPHA_CACHE_HH
