/**
 * @file
 * Tests of the shared-memory Active-Message layer (§7.4): deposit /
 * poll / dispatch correctness, the measured cost bands (~2.9 us
 * deposit, ~1.5 us dispatch), and ordering.
 */

#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

constexpr std::uint64_t tagAdd = 20;

TEST(Am, DepositAndDispatch)
{
    Machine m(MachineConfig::t3d(2));
    std::uint64_t sum = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd, [&](Proc &, const std::array<std::uint64_t, 4> &a) {
                sum += a[0] + a[1];
            });
        if (p.pe() == 0) {
            p.amDeposit(1, tagAdd, {10, 20, 0, 0});
        } else {
            co_await p.amWait();
            EXPECT_TRUE(p.amPoll());
        }
        co_return;
    });
    EXPECT_EQ(sum, 30u);
}

TEST(Am, MultipleDepositsDispatchInOrder)
{
    Machine m(MachineConfig::t3d(2));
    std::vector<std::uint64_t> seen;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd, [&](Proc &, const std::array<std::uint64_t, 4> &a) {
                seen.push_back(a[0]);
            });
        if (p.pe() == 0) {
            for (int i = 0; i < 5; ++i)
                p.amDeposit(1, tagAdd,
                            {std::uint64_t(i), 0, 0, 0});
            co_await p.barrier();
        } else {
            co_await p.barrier();
            while (p.amPoll()) {
            }
        }
        co_return;
    });
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(seen[i], std::uint64_t(i));
}

TEST(Am, DepositCostNear3us)
{
    Machine m(MachineConfig::t3d(2));
    double us = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd,
            [](Proc &, const std::array<std::uint64_t, 4> &) {});
        if (p.pe() == 0) {
            p.amDeposit(1, tagAdd, {1, 2, 3, 4}); // warm
            const Cycles t0 = p.now();
            p.amDeposit(1, tagAdd, {1, 2, 3, 4});
            us = cyclesToUs(p.now() - t0);
        }
        co_return;
    });
    EXPECT_NEAR(us, 2.9, 0.8) << "§7.4 deposit cost";
}

TEST(Am, DispatchCostNear1_5us)
{
    Machine m(MachineConfig::t3d(2));
    double us = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd,
            [](Proc &, const std::array<std::uint64_t, 4> &) {});
        if (p.pe() == 0) {
            p.amDeposit(1, tagAdd, {1, 2, 3, 4});
            co_await p.barrier();
        } else {
            co_await p.barrier();
            const Cycles t0 = p.now();
            EXPECT_TRUE(p.amPoll());
            us = cyclesToUs(p.now() - t0);
        }
        co_return;
    });
    EXPECT_NEAR(us, 1.5, 0.7) << "§7.4 dispatch + access cost";
}

TEST(Am, AmIsFarCheaperThanHardwareMessages)
{
    // The §7.4 argument for building messages from shared-memory
    // primitives: the hardware path costs a 25 us interrupt.
    Machine m(MachineConfig::t3d(2));
    double am_us = 0, msg_us = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd,
            [](Proc &, const std::array<std::uint64_t, 4> &) {});
        if (p.pe() == 0) {
            p.amDeposit(1, tagAdd, {1, 0, 0, 0});
            p.sendMessage(1, {2, 0, 0, 0});
            co_await p.barrier();
        } else {
            co_await p.barrier();
            Cycles t0 = p.now();
            p.amPoll();
            am_us = cyclesToUs(p.now() - t0);
            t0 = p.now();
            co_await p.waitMessage();
            p.takeMessage(false);
            msg_us = cyclesToUs(p.now() - t0);
        }
        co_return;
    });
    EXPECT_LT(am_us * 5, msg_us);
}

TEST(Am, PollReturnsFalseWhenEmpty)
{
    Machine m(MachineConfig::t3d(2));
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 1)
            EXPECT_FALSE(p.amPoll());
        co_return;
    });
}

TEST(Am, WrapAroundQueue)
{
    // More deposits than queue slots, drained in phases.
    Machine m(MachineConfig::t3d(2));
    int handled = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tagAdd,
            [&](Proc &, const std::array<std::uint64_t, 4> &) {
                ++handled;
            });
        const int total = 320; // wraps the 256-slot queue
        if (p.pe() == 0) {
            for (int i = 0; i < total; ++i) {
                p.amDeposit(1, tagAdd, {std::uint64_t(i), 0, 0, 0});
                if ((i + 1) % 32 == 0)
                    co_await p.barrier(); // let the receiver drain
            }
            co_await p.barrier();
        } else {
            for (int b = 0; b < total / 32; ++b) {
                co_await p.barrier();
                while (p.amPoll()) {
                }
            }
            co_await p.barrier();
            while (p.amPoll()) {
            }
        }
        co_return;
    });
    EXPECT_EQ(handled, 320);
}

TEST(Am, OverflowSpillsToOverflowRing)
{
    Machine m(MachineConfig::t3d(2));
    splitc::SplitcConfig cfg;
    cfg.amQueueSlots = 4;
    int handled = 0;
    std::uint64_t overflows = 0;
    runSpmd(
        m,
        [&](Proc &p) -> ProcTask {
            p.registerAmHandler(
                tagAdd,
                [&](Proc &, const std::array<std::uint64_t, 4> &) {
                    ++handled;
                });
            if (p.pe() == 0) {
                // Ten deposits into a 4-slot queue while the consumer
                // is parked at the barrier: six reroute to the DRAM
                // overflow ring instead of aborting the run.
                for (int i = 0; i < 10; ++i)
                    p.amDeposit(1, tagAdd, {std::uint64_t(i), 0, 0, 0});
                overflows = p.amOverflows();
                co_await p.barrier();
            } else {
                co_await p.barrier();
                while (p.amPoll()) {
                }
            }
            co_return;
        },
        cfg);
    EXPECT_EQ(handled, 10);
    EXPECT_EQ(overflows, 6u);
}

TEST(Am, OverflowDrainPaysAnInterruptPerSpilledMessage)
{
    // Same flood, measured: the receiver's drain of a spilled
    // message costs amOverflowDrainCycles more than an in-queue one.
    Machine m(MachineConfig::t3d(2));
    splitc::SplitcConfig cfg;
    cfg.amQueueSlots = 4;
    Cycles inQueue = 0, spilled = 0;
    runSpmd(
        m,
        [&](Proc &p) -> ProcTask {
            p.registerAmHandler(
                tagAdd,
                [](Proc &, const std::array<std::uint64_t, 4> &) {});
            if (p.pe() == 0) {
                for (int i = 0; i < 5; ++i)
                    p.amDeposit(1, tagAdd, {std::uint64_t(i), 0, 0, 0});
                co_await p.barrier();
            } else {
                co_await p.barrier();
                // Tickets 0..3 sit in the primary queue, ticket 4 in
                // the overflow ring. Polls 2..4 are steady-state
                // in-queue dispatches; poll 5 recovers the spill.
                p.amPoll();
                Cycles t0 = p.now();
                p.amPoll();
                inQueue = p.now() - t0;
                p.amPoll();
                p.amPoll();
                t0 = p.now();
                p.amPoll();
                spilled = p.now() - t0;
            }
            co_return;
        },
        cfg);
    // Tolerance absorbs cache-geometry differences between the two
    // measured polls (different slots miss a different number of
    // lines); the 3750-cycle interrupt dominates.
    EXPECT_NEAR(double(spilled) - double(inQueue),
                double(cfg.amOverflowDrainCycles), 100.0);
}

TEST(Am, InterleavedFloodDispatchesInTicketOrderLosingNothing)
{
    // Regression for the overflow-ring misorder: spill tickets 4..8
    // while letting the receiver drain one message mid-flood. A
    // positional (flag-probe) reroute would let a later ticket claim
    // the freed primary slot ahead of the older spilled messages,
    // dispatch it out of order and strand a spill forever; the
    // counter-routed ring must deliver all nine in ticket order.
    Machine m(MachineConfig::t3d(2));
    splitc::SplitcConfig cfg;
    cfg.amQueueSlots = 4;
    std::vector<std::uint64_t> seen;
    runSpmd(
        m,
        [&](Proc &p) -> ProcTask {
            p.registerAmHandler(
                tagAdd,
                [&](Proc &, const std::array<std::uint64_t, 4> &a) {
                    seen.push_back(a[0]);
                });
            if (p.pe() == 0) {
                for (int i = 0; i < 5; ++i) // ticket 4 spills
                    p.amDeposit(1, tagAdd, {std::uint64_t(i), 0, 0, 0});
                co_await p.barrier();
                co_await p.barrier(); // receiver dispatched ticket 0
                for (int i = 5; i < 9; ++i) // all forced to the ring
                    p.amDeposit(1, tagAdd, {std::uint64_t(i), 0, 0, 0});
                co_await p.barrier();
            } else {
                co_await p.barrier();
                EXPECT_TRUE(p.amPoll()); // frees primary slot 0
                co_await p.barrier();
                co_await p.barrier();
                while (p.amPoll()) {
                }
            }
            co_return;
        },
        cfg);
    ASSERT_EQ(seen.size(), 9u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i) << "ticket order";
}

TEST(Am, OverflowExhaustionIsDiagnosed)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(2));
    splitc::SplitcConfig cfg;
    cfg.amQueueSlots = 4;
    cfg.amOverflowSlots = 4;
    EXPECT_THROW(
        runSpmd(
            m,
            [&](Proc &p) -> ProcTask {
                p.registerAmHandler(
                    tagAdd,
                    [](Proc &,
                       const std::array<std::uint64_t, 4> &) {});
                if (p.pe() == 0) {
                    // Nine deposits against 4 + 4 slots with a
                    // consumer that never drains: ticket 8 finds both
                    // its primary and its overflow slot occupied.
                    for (int i = 0; i < 9; ++i)
                        p.amDeposit(1, tagAdd,
                                    {std::uint64_t(i), 0, 0, 0});
                }
                co_return;
            },
            cfg),
        std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
