#include "em3d/em3d.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "splitc/spread.hh"

namespace t3dsim::em3d
{

const char *
versionName(Version v)
{
    switch (v) {
      case Version::Simple:
        return "Simple";
      case Version::Bundle:
        return "Bundle";
      case Version::Unroll:
        return "Unroll";
      case Version::Get:
        return "Get";
      case Version::Put:
        return "Put";
      case Version::Bulk:
        return "Bulk";
    }
    return "?";
}

namespace
{

/**
 * Assign ghost slots (grouped by producer, producer-local indices
 * ascending within a group), build the fetch list and consumer
 * groups, and resolve every edge's compute-phase local address.
 */
void
resolveSide(Graph::Side &side, PeId pe, Addr vals_base, Addr ghost_base)
{
    // Distinct remote references, sorted by (srcPe, srcIdx): the
    // index into this vector IS the ghost slot, so slots come out
    // grouped by producer and the Bulk version can move each
    // producer's values as one contiguous block. Sort + unique +
    // binary search replaces a per-side red-black tree — graph
    // construction is part of every benchmark's host time.
    std::vector<std::pair<PeId, std::uint32_t>> keys;
    for (const auto &edge : side.edges) {
        if (edge.srcPe != pe)
            keys.emplace_back(edge.srcPe, edge.srcIdx);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    const auto slot_of = [&](PeId src_pe, std::uint32_t src_idx) {
        const auto it = std::lower_bound(
            keys.begin(), keys.end(), std::make_pair(src_pe, src_idx));
        return static_cast<std::uint32_t>(it - keys.begin());
    };

    for (std::uint32_t slot = 0; slot < keys.size(); ++slot) {
        const auto &[src_pe, src_idx] = keys[slot];
        if (side.groups.empty() || side.groups.back().srcPe != src_pe)
            side.groups.push_back({src_pe, slot, {}, 0});
        side.groups.back().srcIdxs.push_back(src_idx);
    }
    side.ghostCount = static_cast<std::uint32_t>(keys.size());

    // The fetch list (Bundle/Get) is in edge-discovery order (the
    // order a compiler-built ghost list would fetch in — producers
    // interleave, so Bundle/Get pay the annex set-up churn of §8).
    std::vector<bool> listed(keys.size(), false);
    for (const auto &edge : side.edges) {
        if (edge.srcPe == pe)
            continue;
        const std::uint32_t slot = slot_of(edge.srcPe, edge.srcIdx);
        if (!listed[slot]) {
            listed[slot] = true;
            side.fetches.push_back({edge.srcPe, edge.srcIdx, slot});
        }
    }

    for (auto &edge : side.edges) {
        if (edge.srcPe == pe) {
            edge.localValueAddr = vals_base + Addr{edge.srcIdx} * 8;
        } else {
            const std::uint32_t slot = slot_of(edge.srcPe, edge.srcIdx);
            edge.localValueAddr = ghost_base + Addr{slot} * 8;
        }
    }
}

/** Accessor for the side (E or H) of a PerPe record. */
Graph::Side &
sideOf(Graph::PerPe &pp, bool e_side)
{
    return e_side ? pp.e : pp.h;
}

/**
 * Build producer-side push lists and Bulk staging layout from the
 * consumers' groups, and tell each consumer group where its producer
 * stages its values.
 */
void
buildProducerViews(Graph &g, bool e_side)
{
    // Staging regions: on each producer, consumers in ascending
    // dstPe order. One pass over the consumers (visited in ascending
    // pe order, so each producer sees its consumers in the required
    // order) instead of a producers x consumers rescan.
    std::vector<Addr> stage_offset(g.pes, 0);
    for (PeId pe = 0; pe < g.pes; ++pe) {
        Graph::Side &cons = sideOf(g.perPe[pe], e_side);
        for (auto &group : cons.groups) {
            const PeId q = group.srcPe;
            Graph::Side &prod = sideOf(g.perPe[q], e_side);
            Addr &offset = stage_offset[q];
            Graph::StageGroup sg;
            sg.dstPe = pe;
            sg.stageOffset = offset;
            sg.dstFirstSlot = group.firstSlot;
            sg.srcIdxs = group.srcIdxs;
            group.producerStageOffset = offset;
            offset += Addr{8} * sg.srcIdxs.size();
            prod.stageGroups.push_back(std::move(sg));

            // Push list entries (slot order within the group).
            for (std::uint32_t k = 0; k < group.srcIdxs.size(); ++k) {
                prod.pushes.push_back(
                    {group.srcIdxs[k], pe, group.firstSlot + k});
            }
        }
    }
    for (PeId q = 0; q < g.pes; ++q) {
        Graph::Side &prod = sideOf(g.perPe[q], e_side);
        // Node-order iteration on the producer: sort by source index
        // so consecutive pushes interleave destination PEs — the
        // annex-churn pattern of the Put version (§8).
        std::stable_sort(prod.pushes.begin(), prod.pushes.end(),
                         [](const Push &a, const Push &b) {
                             return a.srcIdx < b.srcIdx;
                         });
    }
}

} // namespace

Graph
Graph::build(machine::Machine &machine, const Config &config)
{
    Graph g;
    g.config = config;
    g.pes = machine.numPes();
    g.perPe.resize(g.pes);

    const std::uint32_t n = config.nodesPerPe;
    const std::size_t vals_bytes = std::size_t{n} * 8;
    // A ghost/stage slot per distinct remote value; one per edge is
    // the worst case.
    const std::size_t ghost_bytes =
        std::size_t{n} * config.degree * 8;

    g.eValsBase = splitc::allocSymmetric(machine, vals_bytes);
    g.hValsBase = splitc::allocSymmetric(machine, vals_bytes);
    g.eGhostBase = splitc::allocSymmetric(machine, ghost_bytes);
    g.hGhostBase = splitc::allocSymmetric(machine, ghost_bytes);
    g.stageBase = splitc::allocSymmetric(machine, 2 * ghost_bytes);

    // Deterministic initial field values.
    for (PeId pe = 0; pe < g.pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t i = 0; i < n; ++i) {
            const double e0 = 0.25 + 0.001 * i + 0.1 * pe;
            const double h0 = 0.75 - 0.001 * i + 0.05 * pe;
            storage.writeU64(g.eValsBase + Addr{i} * 8,
                             std::bit_cast<std::uint64_t>(e0));
            storage.writeU64(g.hValsBase + Addr{i} * 8,
                             std::bit_cast<std::uint64_t>(h0));
        }
    }

    // Generate the E-update edges. Remote producers live in a small
    // neighborhood of processors (pe +/- 1, pe +/- 2), as in the
    // original EM3D distribution: the bounded candidate set makes
    // ghost-node reuse substantial (each remote value is referenced
    // several times per step), while the multiple interleaved target
    // PEs expose the repeated annex set-up that separates the Get /
    // Put / Bulk versions (§8).
    std::vector<PeId> neighbors;
    Rng rng(config.seed);
    for (PeId pe = 0; pe < g.pes; ++pe) {
        neighbors.clear();
        for (int d : {-2, -1, 1, 2}) {
            const PeId q = static_cast<PeId>(
                (static_cast<int>(pe) + d + 2 * static_cast<int>(g.pes)) %
                g.pes);
            if (q != pe &&
                std::find(neighbors.begin(), neighbors.end(), q) ==
                    neighbors.end()) {
                neighbors.push_back(q);
            }
        }
        auto &side = g.perPe[pe].e;
        for (std::uint32_t i = 0; i < n; ++i) {
            for (std::uint32_t d = 0; d < config.degree; ++d) {
                Edge edge;
                edge.dstIdx = i;
                const bool remote = !neighbors.empty() &&
                    rng.nextBool(config.remoteFraction);
                edge.srcPe = remote
                    ? neighbors[rng.nextBounded(neighbors.size())]
                    : pe;
                edge.srcIdx =
                    static_cast<std::uint32_t>(rng.nextBounded(n));
                edge.weight = 0.01 + 0.98 * rng.nextDouble();
                side.edges.push_back(edge);
            }
        }
    }

    // The H-update edge set is the transpose: if E(pe, i) depends on
    // H(q, j) with weight w, then H(q, j) depends on E(pe, i).
    for (PeId pe = 0; pe < g.pes; ++pe) {
        for (const auto &edge : g.perPe[pe].e.edges) {
            Edge back;
            back.dstIdx = edge.srcIdx;
            back.srcPe = pe;
            back.srcIdx = edge.dstIdx;
            back.weight = edge.weight * 0.5;
            g.perPe[edge.srcPe].h.edges.push_back(back);
        }
    }
    // Group the transposed edges by destination node for the
    // accumulate-then-writeback compute loop.
    for (PeId pe = 0; pe < g.pes; ++pe) {
        auto &edges = g.perPe[pe].h.edges;
        std::stable_sort(edges.begin(), edges.end(),
                         [](const Edge &a, const Edge &b) {
                             return a.dstIdx < b.dstIdx;
                         });
    }

    for (PeId pe = 0; pe < g.pes; ++pe) {
        resolveSide(g.perPe[pe].e, pe, g.hValsBase, g.eGhostBase);
        resolveSide(g.perPe[pe].h, pe, g.eValsBase, g.hGhostBase);
    }

    buildProducerViews(g, /*e_side=*/true);
    buildProducerViews(g, /*e_side=*/false);

    return g;
}

std::uint64_t
Graph::edgesPerPe() const
{
    std::uint64_t total = 0;
    for (const auto &pp : perPe)
        total += pp.e.edges.size() + pp.h.edges.size();
    return total / pes;
}

double
Graph::checksum(machine::Machine &machine) const
{
    double sum = 0;
    for (PeId pe = 0; pe < pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t i = 0; i < config.nodesPerPe; ++i) {
            sum += std::bit_cast<double>(
                storage.readU64(eValsBase + Addr{i} * 8));
            sum += std::bit_cast<double>(
                storage.readU64(hValsBase + Addr{i} * 8));
        }
    }
    return sum;
}

} // namespace t3dsim::em3d
