/**
 * @file
 * §2.2/§2.3 derived node parameters: the micro-benchmark conclusions
 * the paper states in prose — cache geometry, memory access cost,
 * write-buffer size, absence of TLB effects, and the memory stream
 * bandwidth comparison with the workstation (~220 vs ~110 MB/s).
 */

#include <iostream>

#include "machine/machine.hh"
#include "machine/workstation.hh"
#include "probes/stride.hh"
#include "probes/table.hh"

using namespace t3dsim;

namespace
{

/** Stream 1 MB at line stride and report MB/s. */
template <typename LoadFn, typename NowFn>
double
streamBandwidth(LoadFn &&load, NowFn &&now)
{
    const std::size_t bytes = 1 * MiB;
    for (Addr a = 0; a < bytes; a += 32) // warm TLB / pages
        load(a);
    const Cycles t0 = now();
    for (Addr a = 0; a < bytes; a += 32)
        load(a);
    const double secs = cyclesToNs(now() - t0) * 1e-9;
    return (double(bytes) / 1e6) / secs;
}

} // namespace

int
main()
{
    std::cout << "Node parameters derived from the probes "
                 "(Sec. 2.2/2.3)\n";

    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    machine::Workstation ws;

    // Cache size: last array size whose stride-8 sweep is all hits.
    auto points = probes::strideProbe(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); },
        0, 4 * KiB, 64 * KiB);
    std::uint64_t cache_size = 0;
    for (std::uint64_t array = 4 * KiB; array <= 64 * KiB;
         array *= 2) {
        const auto *p = probes::findPoint(points, array, 8);
        if (p && p->avgCyclesPerOp < 2.0)
            cache_size = array;
    }

    // Line size: stride at which the miss rate saturates.
    const auto *miss16 = probes::findPoint(points, 64 * KiB, 16);
    const auto *miss32 = probes::findPoint(points, 64 * KiB, 32);
    const auto *miss64 = probes::findPoint(points, 64 * KiB, 64);

    const double t3d_stream = streamBandwidth(
        [&](Addr a) { node.core().loadU64(a); },
        [&] { return node.clock().now(); });
    const double ws_stream = streamBandwidth(
        [&](Addr a) { ws.loadU64(a); },
        [&] { return ws.clock().now(); });

    probes::Table t({"parameter", "model", "paper"});
    t.addRow("L1 data cache size",
             std::to_string(cache_size / KiB) + " KB", "8 KB");
    t.addRow("L1 line size (miss saturates)",
             miss32 && miss64 &&
                     miss32->avgCyclesPerOp > 0.95 * miss64->avgCyclesPerOp &&
                     miss16->avgCyclesPerOp < 0.8 * miss32->avgCyclesPerOp
                 ? "32 B"
                 : "?",
             "32 B");
    t.addRow("memory access (cycles)",
             miss32 ? miss32->avgCyclesPerOp : -1, "22-23 cycles");
    t.addRow("T3D memory stream", t3d_stream, "~220 MB/s");
    t.addRow("workstation memory stream", ws_stream, "~110 MB/s");
    t.addRow("T3D TLB misses over 32 MB sweep",
             std::to_string(node.tlb().misses()),
             "none observable (huge pages)");
    t.print();

    return 0;
}
