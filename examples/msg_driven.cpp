/**
 * @file
 * Message-driven execution (§7): a pipeline of PEs where each stage
 * starts computing as soon as its input data has arrived
 * (store_sync), rather than waiting for a global barrier — and a
 * demonstration of the shared-memory Active-Message layer, including
 * the atomic remote byte write that fixes the §4.5 mismatch.
 */

#include <iostream>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

using namespace t3dsim;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

int
main()
{
    constexpr std::uint32_t pes = 8;
    constexpr std::uint32_t words = 16;

    machine::Machine machine(machine::MachineConfig::t3d(pes));
    const Addr buf = 0x10000;

    // Stage p waits for `words` quadwords from stage p-1, increments
    // them, and streams them to stage p+1. Stage 0 seeds the
    // pipeline. No barriers anywhere: pure message-driven flow.
    auto finish = splitc::runSpmd(machine, [&](Proc &p) -> ProcTask {
        auto &core = p.node().core();
        if (p.pe() == 0) {
            for (std::uint32_t i = 0; i < words; ++i)
                p.storeU64(GlobalAddr::make(1, buf + 8 * i), i);
        } else {
            co_await p.storeSync(words * 8);
            if (p.pe() + 1 < pes) {
                for (std::uint32_t i = 0; i < words; ++i) {
                    const std::uint64_t v = core.loadU64(buf + 8 * i);
                    p.storeU64(
                        GlobalAddr::make(p.pe() + 1, buf + 8 * i),
                        v + 1);
                }
            }
        }
        co_return;
    });

    // The last stage's data has been incremented once per hop.
    auto &last = machine.node(pes - 1).storage();
    std::cout << "last stage received:";
    for (std::uint32_t i = 0; i < 4; ++i)
        std::cout << " " << last.readU64(buf + 8 * i);
    std::cout << " ... (expect i + " << pes - 2 << ")\n";
    std::cout << "pipeline latency: "
              << cyclesToUs(*std::max_element(finish.begin(),
                                              finish.end()))
              << " us\n\n";

    // --- Active Messages: atomic remote byte writes (§4.5/§7.4) ---
    machine::Machine m2(machine::MachineConfig::t3d(4));
    m2.node(3).storage().writeU64(0x20000, 0);

    splitc::runSpmd(m2, [&](Proc &p) -> ProcTask {
        auto word = GlobalAddr::make(3, 0x20000);
        if (p.pe() < 3) {
            // Three PEs write three different bytes of one word.
            p.amWriteByte(word + p.pe(), 0x11 * (p.pe() + 1));
            co_await p.barrier();
        } else {
            co_await p.barrier();
            while (p.amPoll()) {
            }
            p.node().mb();
        }
        co_return;
    });

    std::cout << "AM byte writes into one shared word: 0x" << std::hex
              << m2.node(3).storage().readU64(0x20000) << std::dec
              << " (expect 0x332211 — no §4.5 clobbering)\n";
    return 0;
}
