/**
 * @file
 * Quickstart: build a modeled CRAY-T3D, run an SPMD Split-C program
 * on it, and look at the cost of the communication primitives.
 *
 * Every PE allocates a counter, PE 0 reads and writes the others'
 * counters through global pointers, then everyone meets at a
 * barrier. The printed costs are simulated T3D cycles/nanoseconds,
 * not host time.
 */

#include <iostream>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"
#include "splitc/spread.hh"

using namespace t3dsim;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

int
main()
{
    // An 8-PE T3D with the paper's calibration.
    machine::Machine machine(machine::MachineConfig::t3d(8));

    // A spread array of one counter per PE (symmetric allocation).
    auto counters =
        splitc::SpreadArray<std::uint64_t>::allocate(machine, 8);

    auto finish = splitc::runSpmd(machine, [&](Proc &p) -> ProcTask {
        // Everyone initializes its own counter (local write).
        p.writeU64(counters.at(p.pe()).addr(), 100 + p.pe());
        co_await p.barrier();

        if (p.pe() == 0) {
            // Blocking remote read (§4): uncached read + annex.
            Cycles t0 = p.now();
            const std::uint64_t v = p.readU64(counters.at(3).addr());
            std::cout << "remote read of PE3's counter = " << v
                      << " took " << cyclesToNs(p.now() - t0)
                      << " ns (paper: ~850 ns)\n";

            // Split-phase get (§5): prefetch-queue backed.
            const Addr scratch = 0x1000;
            t0 = p.now();
            for (PeId pe = 1; pe < 8; ++pe)
                p.getU64(counters.at(pe).addr(), scratch + 8 * pe);
            p.sync();
            std::cout << "7 pipelined gets took "
                      << cyclesToNs(p.now() - t0) << " ns ("
                      << cyclesToNs(p.now() - t0) / 7 << " ns each)\n";

            // Non-blocking puts (§5.3).
            t0 = p.now();
            for (PeId pe = 1; pe < 8; ++pe)
                p.putU64(counters.at(pe).addr(), 200 + pe);
            p.sync();
            std::cout << "7 puts + sync took "
                      << cyclesToNs(p.now() - t0) << " ns\n";
        }
        co_await p.barrier();

        // Everyone checks the value PE0 put into its counter.
        if (p.pe() != 0) {
            const std::uint64_t mine =
                p.readU64(counters.at(p.pe()).addr());
            if (mine != 200 + p.pe())
                std::cout << "PE" << p.pe() << ": unexpected value "
                          << mine << "\n";
        }
        co_return;
    });

    std::cout << "simulated run completed at "
              << cyclesToUs(*std::max_element(finish.begin(),
                                              finish.end()))
              << " us\n";
    return 0;
}
