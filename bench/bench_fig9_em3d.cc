/**
 * @file
 * Figure 9: EM3D microseconds per edge vs. percentage of remote
 * edges, for the six program versions, on 32 PEs with the paper's
 * synthetic kernel graph (500 nodes of degree 20 per processor;
 * 16,000 nodes total).
 *
 * Usage: bench_fig9_em3d [--quick] [--counters[=PATH]] [--trace[=PATH]]
 *   --quick shrinks the graph (100 nodes/PE, degree 8, 8 PEs) so the
 *   bench finishes in seconds; the full run matches the paper's
 *   parameters.
 *   --counters / --trace enable the observability layer for the last
 *   cell of the sweep (100% remote, Bulk) and write the counter /
 *   Chrome-trace reports to PATH (defaults: fig9.counters.json,
 *   fig9.trace.json). The same switches are available for any run via
 *   the T3DSIM_COUNTERS / T3DSIM_TRACE environment variables; either
 *   way the simulated timing is unchanged.
 */

#include <array>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "em3d/em3d.hh"
#include "machine/config.hh"
#include "probes/table.hh"

using namespace t3dsim;

int
main(int argc, char **argv)
{
    bool quick = false;
    probes::ObsConfig observe;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(arg, "--counters", 10) == 0) {
            observe.counters = true;
            observe.countersPath =
                arg[10] == '=' ? arg + 11 : "fig9.counters.json";
        } else if (std::strncmp(arg, "--trace", 7) == 0) {
            observe.trace = true;
            observe.tracePath =
                arg[7] == '=' ? arg + 8 : "fig9.trace.json";
        }
    }

    em3d::Config cfg;
    std::uint32_t pes = 32;
    if (quick) {
        cfg.nodesPerPe = 100;
        cfg.degree = 8;
        pes = 8;
    }

    std::cout << "Figure 9: EM3D time per edge (us), "
              << cfg.nodesPerPe << " nodes/PE of degree " << cfg.degree
              << " on " << pes << " PEs\n";

    probes::Table t({"% remote", "Simple", "Bundle", "Unroll", "Get",
                     "Put", "Bulk"});
    const double fractions[] = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
    for (double f : fractions) {
        cfg.remoteFraction = f;
        std::array<std::string, 6> us;
        int i = 0;
        for (em3d::Version v : em3d::allVersions) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          em3d::run(cfg, v, pes).usPerEdge);
            us[i++] = buf;
        }
        t.addRow(int(f * 100), us[0], us[1], us[2], us[3], us[4],
                 us[5]);
    }
    t.print();

    std::cout
        << "paper landmarks (Sec. 8): 0.37 us/edge all-local "
           "(5.5 MFlops/PE);\n"
        << "ordering at higher remote fractions: Simple > Bundle > "
           "Unroll > Get > Put > Bulk\n";

    if (observe.counters || observe.trace) {
        // Rerun one representative cell (20% remote, Bulk — the
        // paper's headline configuration) with observability on and
        // dump the reports. Counter bumps never perturb simulated
        // timing, so the cell reproduces the sweep's number exactly.
        cfg.remoteFraction = 0.2;
        machine::MachineConfig mc = machine::MachineConfig::t3d(pes);
        mc.observe = observe;
        const auto r = em3d::run(cfg, em3d::Version::Bulk, mc);
        std::printf("\nobserved rerun (20%% remote, Bulk): %.3f "
                    "us/edge over %llu cycles\n",
                    r.usPerEdge,
                    static_cast<unsigned long long>(r.elapsed));
        if (observe.counters)
            std::cout << "counters -> " << observe.countersPath
                      << "\n";
        if (observe.trace)
            std::cout << "trace    -> " << observe.tracePath
                      << " (load in https://ui.perfetto.dev)\n";
    }
    return 0;
}
