/**
 * @file
 * Unit tests for the Alpha byte-manipulation instruction helpers.
 */

#include <gtest/gtest.h>

#include "alpha/byte_ops.hh"

namespace
{

using namespace t3dsim::alpha;

constexpr std::uint64_t word = 0x8877665544332211ull;

TEST(ByteOps, Extbl)
{
    EXPECT_EQ(extbl(word, 0), 0x11u);
    EXPECT_EQ(extbl(word, 3), 0x44u);
    EXPECT_EQ(extbl(word, 7), 0x88u);
    EXPECT_EQ(extbl(word, 8), 0x11u) << "index wraps mod 8";
}

TEST(ByteOps, Extwl)
{
    EXPECT_EQ(extwl(word, 0), 0x2211u);
    EXPECT_EQ(extwl(word, 2), 0x4433u);
    EXPECT_EQ(extwl(word, 6), 0x8877u);
}

TEST(ByteOps, Insbl)
{
    EXPECT_EQ(insbl(0xab, 0), 0xabull);
    EXPECT_EQ(insbl(0xab, 5), 0xab0000000000ull);
    EXPECT_EQ(insbl(0x1234, 0), 0x34ull) << "only the low byte";
}

TEST(ByteOps, Mskbl)
{
    EXPECT_EQ(mskbl(word, 0), 0x8877665544332200ull);
    EXPECT_EQ(mskbl(word, 7), 0x0077665544332211ull);
}

TEST(ByteOps, Zap)
{
    EXPECT_EQ(zap(word, 0x01), 0x8877665544332200ull);
    EXPECT_EQ(zap(word, 0xff), 0ull);
    EXPECT_EQ(zap(word, 0x00), word);
}

TEST(ByteOps, Zapnot)
{
    EXPECT_EQ(zapnot(word, 0xff), word);
    EXPECT_EQ(zapnot(word, 0x01), 0x11ull);
    EXPECT_EQ(zapnot(word, 0x0f), 0x44332211ull);
}

TEST(ByteOps, MergeByte)
{
    EXPECT_EQ(mergeByte(word, 0, 0xaa), 0x88776655443322aaull);
    EXPECT_EQ(mergeByte(word, 7, 0xaa), 0xaa77665544332211ull);
}

/** Property: merge then extract returns the merged byte. */
TEST(ByteOps, MergeExtractRoundTrip)
{
    for (unsigned idx = 0; idx < 8; ++idx) {
        for (unsigned v = 0; v < 256; v += 17) {
            auto merged =
                mergeByte(word, idx, static_cast<std::uint8_t>(v));
            EXPECT_EQ(extbl(merged, idx), v);
            // Other bytes untouched.
            for (unsigned other = 0; other < 8; ++other) {
                if (other != idx)
                    EXPECT_EQ(extbl(merged, other), extbl(word, other));
            }
        }
    }
}

} // namespace
