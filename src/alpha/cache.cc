#include "alpha/cache.hh"

#include <bit>
#include <cstring>

#include "sim/logging.hh"

namespace t3dsim::alpha
{

DirectMappedCache::DirectMappedCache(std::uint64_t size_bytes,
                                     std::uint64_t line_bytes)
    : _numLines(size_bytes / line_bytes), _lineBytes(line_bytes),
      _indexMask(_numLines - 1), _lines(_numLines)
{
    T3D_ASSERT(std::has_single_bit(size_bytes),
               "cache size must be a power of two");
    T3D_ASSERT(std::has_single_bit(line_bytes),
               "cache line size must be a power of two");
    T3D_ASSERT(size_bytes >= line_bytes, "cache smaller than one line");
    for (auto &line : _lines)
        line.data.resize(_lineBytes, 0);
}

std::uint64_t
DirectMappedCache::indexOf(Addr pa) const
{
    return (pa / _lineBytes) & _indexMask;
}

std::uint64_t
DirectMappedCache::tagOf(Addr pa) const
{
    return pa / _lineBytes / _numLines;
}

bool
DirectMappedCache::probe(Addr pa) const
{
    const Line &line = _lines[indexOf(pa)];
    return line.valid && line.tag == tagOf(pa);
}

void
DirectMappedCache::fill(Addr pa, const std::uint8_t *line_data)
{
    Line &line = _lines[indexOf(pa)];
    line.valid = true;
    line.tag = tagOf(pa);
    std::memcpy(line.data.data(), line_data, _lineBytes);
}

void
DirectMappedCache::read(Addr pa, void *dst, std::size_t len) const
{
    T3D_ASSERT(probe(pa), "reading a line that is not cached: pa=", pa);
    const Line &line = _lines[indexOf(pa)];
    std::size_t off = pa & (_lineBytes - 1);
    T3D_ASSERT(off + len <= _lineBytes, "cache read crosses line");
    std::memcpy(dst, line.data.data() + off, len);
}

bool
DirectMappedCache::updateIfPresent(Addr pa, const void *src,
                                   std::size_t len)
{
    if (!probe(pa))
        return false;
    Line &line = _lines[indexOf(pa)];
    std::size_t off = pa & (_lineBytes - 1);
    T3D_ASSERT(off + len <= _lineBytes, "cache write crosses line");
    std::memcpy(line.data.data() + off, src, len);
    return true;
}

void
DirectMappedCache::invalidate(Addr pa)
{
    Line &line = _lines[indexOf(pa)];
    if (line.valid && line.tag == tagOf(pa))
        line.valid = false;
}

void
DirectMappedCache::invalidateAll()
{
    for (auto &line : _lines)
        line.valid = false;
}

std::uint64_t
DirectMappedCache::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : _lines)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace t3dsim::alpha
