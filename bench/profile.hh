/**
 * @file
 * Shared helpers for the bench binaries: rendering a stride-probe
 * latency profile as the paper's figures tabulate it.
 */

#ifndef T3DSIM_BENCH_PROFILE_HH
#define T3DSIM_BENCH_PROFILE_HH

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "probes/stride.hh"
#include "sim/types.hh"

namespace t3dsim::bench
{

/** "64", "16K", "2M" style size label. */
inline std::string
sizeLabel(std::uint64_t bytes)
{
    if (bytes >= MiB && bytes % MiB == 0)
        return std::to_string(bytes / MiB) + "M";
    if (bytes >= KiB && bytes % KiB == 0)
        return std::to_string(bytes / KiB) + "K";
    return std::to_string(bytes);
}

/** Print a (array size x stride) ns-per-op matrix. */
inline void
printProfile(const std::string &title,
             const std::vector<probes::StridePoint> &points,
             std::uint64_t min_array = 4 * KiB)
{
    std::cout << "\n== " << title << " ==\n";
    std::cout << "rows: array size; cols: stride; cell: avg ns/op\n";

    std::vector<std::uint64_t> strides;
    std::uint64_t max_array = 0;
    for (const auto &p : points)
        max_array = std::max(max_array, p.arrayBytes);
    for (const auto &p : points) {
        if (p.arrayBytes == max_array)
            strides.push_back(p.strideBytes);
    }

    std::cout << "  array\\stride";
    for (auto s : strides)
        std::cout << "\t" << sizeLabel(s);
    std::cout << "\n";

    for (std::uint64_t array = min_array; array <= max_array;
         array *= 2) {
        std::cout << "  " << sizeLabel(array);
        for (auto s : strides) {
            const auto *p = probes::findPoint(points, array, s);
            if (!p) {
                std::cout << "\t-";
                continue;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f", p->avgNsPerOp);
            std::cout << "\t" << buf;
        }
        std::cout << "\n";
    }
}

} // namespace t3dsim::bench

#endif // T3DSIM_BENCH_PROFILE_HH
