# Empty compiler generated dependencies file for proc_edge_test.
# This may be replaced when dependencies are built.
