/**
 * @file
 * EM3D demo (§8): run the six optimization variants of the
 * electromagnetic wave kernel on a modeled T3D and watch the
 * communication cost fall as the implementation graduates from
 * blocking reads to ghost nodes, pipelined gets, puts, and bulk
 * transfers.
 */

#include <cstring>
#include <iostream>

#include "em3d/em3d.hh"
#include "probes/table.hh"

using namespace t3dsim;

int
main(int argc, char **argv)
{
    em3d::Config cfg;
    cfg.nodesPerPe = 200;
    cfg.degree = 10;
    cfg.remoteFraction = 0.4;
    std::uint32_t pes = 16;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--remote=", 9) == 0)
            cfg.remoteFraction = std::atof(argv[i] + 9);
        else if (std::strncmp(argv[i], "--pes=", 6) == 0)
            pes = static_cast<std::uint32_t>(std::atoi(argv[i] + 6));
    }

    std::cout << "EM3D: " << cfg.nodesPerPe << " nodes/PE, degree "
              << cfg.degree << ", " << cfg.remoteFraction * 100
              << "% remote edges, " << pes << " PEs\n\n";

    probes::Table t({"version", "us/edge", "MFlops/PE", "vs Simple",
                     "checksum"});
    double simple_us = 0;
    for (em3d::Version v : em3d::allVersions) {
        const auto r = em3d::run(cfg, v, pes);
        if (v == em3d::Version::Simple)
            simple_us = r.usPerEdge;
        t.addRow(em3d::versionName(v), r.usPerEdge,
                 2.0 / r.usPerEdge, // 2 flops per edge
                 simple_us / r.usPerEdge, r.checksum);
    }
    t.print();

    std::cout << "\nall checksums must agree: the versions differ "
                 "only in how values move, never in what is "
                 "computed.\n";
    return 0;
}
