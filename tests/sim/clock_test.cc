/**
 * @file
 * Unit tests for the per-PE logical clock.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace
{

using t3dsim::Clock;

TEST(Clock, StartsAtZero)
{
    Clock c;
    EXPECT_EQ(c.now(), 0u);
}

TEST(Clock, Advance)
{
    Clock c;
    c.advance(10);
    c.advance(5);
    EXPECT_EQ(c.now(), 15u);
}

TEST(Clock, AdvanceTo)
{
    Clock c;
    c.advanceTo(100);
    EXPECT_EQ(c.now(), 100u);
}

TEST(Clock, AdvanceToBackwardsPanics)
{
    t3dsim::detail::setThrowOnError(true);
    Clock c;
    c.advance(50);
    EXPECT_THROW(c.advanceTo(49), std::logic_error);
    t3dsim::detail::setThrowOnError(false);
}

TEST(Clock, SyncToOnlyMovesForward)
{
    Clock c;
    c.advance(50);
    c.syncTo(40); // no-op
    EXPECT_EQ(c.now(), 50u);
    c.syncTo(60);
    EXPECT_EQ(c.now(), 60u);
}

TEST(Clock, NsConversion)
{
    Clock c;
    c.advance(150); // 150 cycles at 6.667 ns
    EXPECT_NEAR(c.nowNs(), 1000.0, 1.0); // ~1 us
}

TEST(Clock, Reset)
{
    Clock c;
    c.advance(7);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(TimeConversion, RoundTrip)
{
    using namespace t3dsim;
    EXPECT_EQ(nsToCycles(cyclesToNs(22)), 22u);
    EXPECT_NEAR(cyclesToNs(22), 146.7, 0.5);   // ~145 ns (§2.2)
    EXPECT_NEAR(cyclesToUs(150), 1.0, 0.01);   // ~1 us
    EXPECT_NEAR(usToCycles(180.0), 27000.0, 2.0); // BLT startup
}

} // namespace
