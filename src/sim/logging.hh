/**
 * @file
 * Error reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations, fatal() for user-caused configuration errors,
 * warn()/inform() for status messages.
 */

#ifndef T3DSIM_SIM_LOGGING_HH
#define T3DSIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace t3dsim
{

namespace detail
{

/** Compose a message from stream-style arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/**
 * Make panic()/fatal() throw std::logic_error / std::runtime_error
 * instead of terminating. Used by tests to exercise error paths.
 */
void setThrowOnError(bool enable);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on a condition that indicates a simulator bug. */
#define T3D_PANIC(...)                                                     \
    ::t3dsim::detail::panicImpl(__FILE__, __LINE__,                        \
        ::t3dsim::detail::composeMessage(__VA_ARGS__))

/** Exit cleanly on a condition caused by invalid user input. */
#define T3D_FATAL(...)                                                     \
    ::t3dsim::detail::fatalImpl(__FILE__, __LINE__,                        \
        ::t3dsim::detail::composeMessage(__VA_ARGS__))

/**
 * Exit cleanly when a condition caused by invalid user input holds.
 * The typed-error counterpart of T3D_ASSERT: use it for conditions a
 * workload can trigger with legal API calls (bad lengths, draining
 * an empty queue, a receiver that never frees an AM slot), keeping
 * T3D_ASSERT for genuine simulator invariants.
 */
#define T3D_FATAL_IF(cond, ...)                                            \
    do {                                                                   \
        if (cond) {                                                        \
            ::t3dsim::detail::fatalImpl(__FILE__, __LINE__,                \
                ::t3dsim::detail::composeMessage(__VA_ARGS__));            \
        }                                                                  \
    } while (0)

/** Panic unless a simulator invariant holds. */
#define T3D_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::t3dsim::detail::panicImpl(__FILE__, __LINE__,                \
                ::t3dsim::detail::composeMessage(                          \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));       \
        }                                                                  \
    } while (0)

/** Non-fatal warning to stderr. */
#define T3D_WARN(...)                                                      \
    ::t3dsim::detail::warnImpl(::t3dsim::detail::composeMessage(__VA_ARGS__))

/** Informational message to stderr. */
#define T3D_INFORM(...)                                                    \
    ::t3dsim::detail::informImpl(                                          \
        ::t3dsim::detail::composeMessage(__VA_ARGS__))

} // namespace t3dsim

#endif // T3DSIM_SIM_LOGGING_HH
