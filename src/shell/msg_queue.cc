#include "shell/msg_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

MessageQueue::MessageQueue(const ShellConfig &config)
    : _config(config)
{
    T3D_FATAL_IF(config.msgQueueCapacity == 0,
                 "ShellConfig::msgQueueCapacity must be nonzero: with "
                 "no hardware slots every delivery would land in the "
                 "overflow region, which receivers never observe "
                 "directly, so delivered messages would be invisible "
                 "and receivers would spin forever");
}

void
MessageQueue::deliver(Cycles arrive, const std::uint64_t words[4])
{
    Entry entry;
    entry.msg.arrival = arrive;
    std::copy(words, words + 4, entry.msg.words.begin());

    // Keep concat(_hw, _spill) ordered by arrival so the receiver
    // drains messages in delivery order.
    auto by_arrival = [](Cycles t, const Entry &e) {
        return t < e.msg.arrival;
    };

    if (_hw.size() < _config.msgQueueCapacity) {
        // Hardware segment has room (and by the invariant the spill
        // region is empty): plain sorted insert.
        auto pos =
            std::upper_bound(_hw.begin(), _hw.end(), arrive, by_arrival);
        _hw.insert(pos, entry);
    } else if (!_hw.empty() && arrive < _hw.back().msg.arrival) {
        // The newcomer sorts into the full hardware segment: it
        // takes its place there and the youngest hardware entry is
        // demoted to the overflow region.
        Entry demoted = _hw.back();
        _hw.pop_back();
        if (!demoted.spilled) {
            // Count only the first trip into the overflow region: a
            // refilled entry keeps its spilled marking (its one drain
            // charge is still pending), so demoting it again must not
            // double-count.
            demoted.spilled = true;
            ++_spilled;
            T3D_COUNT(_ctr, msgSpills);
        }
        _spill.push_front(demoted);
        auto pos =
            std::upper_bound(_hw.begin(), _hw.end(), arrive, by_arrival);
        _hw.insert(pos, entry);
    } else {
        // Hardware segment full and the newcomer is youngest-or-tied:
        // system software parks it in the DRAM overflow region.
        entry.spilled = true;
        ++_spilled;
        T3D_COUNT(_ctr, msgSpills);
        auto pos = std::upper_bound(_spill.begin(), _spill.end(), arrive,
                                    by_arrival);
        _spill.insert(pos, entry);
    }

    ++_delivered;
    if (_onDeliver)
        _onDeliver();
}

std::optional<Cycles>
MessageQueue::headArrival() const
{
    if (_hw.empty())
        return std::nullopt;
    return _hw.front().msg.arrival;
}

std::pair<Message, Cycles>
MessageQueue::dequeue(Cycles now, bool handler_mode)
{
    T3D_FATAL_IF(!hasMessage(), "dequeue from an empty message queue");
    Entry entry = _hw.front();
    _hw.pop_front();

    // System software refills the drained hardware slot from the
    // overflow region (the entry keeps its spilled marking).
    if (!_spill.empty()) {
        _hw.push_back(_spill.front());
        _spill.pop_front();
    }

    Cycles done =
        std::max(now, entry.msg.arrival) + _config.msgInterruptCycles;
    if (handler_mode)
        done += _config.msgHandlerCycles;
    if (entry.spilled)
        done += _config.msgSpillDrainCycles;
    T3D_COUNT(_ctr, msgInterrupts);
    T3D_TRACE(_trace, span(_pe, "msg_recv", entry.msg.arrival, done));
    return {entry.msg, done};
}

} // namespace t3dsim::shell
