/**
 * @file
 * Per-primitive cost models fitted from counter-carrying sweeps
 * (docs/MODEL.md §2-§3).
 *
 * The model prices the 29-counter taxonomy: every counter has
 * exactly one disposition —
 *
 *  - **priced**: a CostTerm with a fitted (or assumed) cycles-per-
 *    unit coefficient; prediction contributes beta · count.
 *  - **direct**: the counter already holds cycles (wbStallCycles,
 *    bltSetupCycles, bltTransferCycles, barrierWaitCycles);
 *    prediction contributes the value at coefficient 1.
 *  - **folded**: beta 0 with a note naming the term whose fitted
 *    coefficient absorbs it (e.g. annexHits rides inside
 *    remote_read because every fixed-target remote read bumps both,
 *    making them collinear in any sweep).
 *
 * Fitting is residual-ordered: fit groups run in a fixed order, and
 * each group solves a small no-intercept least-squares system over
 * its sweeps' points after subtracting the contribution of every
 * already-priced counter. That isolates coupled costs (remoteReads
 * vs torusHops are separable only by pooling a fixed-distance op-
 * count sweep with a fixed-op-count distance sweep).
 *
 * On top of the per-counter terms the model keeps four headline
 * curve fits from the paper's figures (BLT read/write startup+
 * bandwidth, bulk-get-via-prefetch bandwidth, prefetch pipeline
 * fill) plus the barrier scaling fit, from which the Fig. 8 BLT
 * crossover point is solved rather than assumed.
 */

#ifndef T3DSIM_MODEL_PRIMITIVES_HH
#define T3DSIM_MODEL_PRIMITIVES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "model/fit.hh"
#include "model/json.hh"
#include "model/sweep.hh"

namespace t3dsim::model
{

/** One priced counter of the taxonomy. */
struct CostTerm
{
    /** Model-facing name ("remote_read", "l1_hit", ...). */
    std::string name;

    /** Counter this term prices (probes::PerfCounters field name). */
    std::string counter;

    /** Fitted cycles per counted unit. */
    double beta = 0;

    /** True when beta came from a sweep fit (vs assumed/folded). */
    bool fitted = false;

    /**
     * True for limit-path counters (spills, overflows) the model
     * deliberately does not price: the composer flags a prediction
     * whenever such a counter is nonzero, because the linear
     * composition is known to break there.
     */
    bool flagOnNonzero = false;

    /** Source sweep names, comma separated; empty when assumed. */
    std::string sweeps;

    /** Paper anchor (figure / table / section). */
    std::string paper;

    /** Free-form provenance note. */
    std::string note;

    /** Residual diagnostics of the group fit that set beta. */
    FitQuality quality{};
};

/** A complete fitted model. */
struct CostModel
{
    std::vector<CostTerm> terms;

    /** Counters whose value is already cycles (coefficient 1). */
    std::vector<std::string> directCycleCounters;

    /** Headline curves (x in bytes unless noted). */
    LinearFit bltRead;          ///< Fig. 8: startup + cycles/byte
    LinearFit bltWrite;         ///< Fig. 8 companion
    LinearFit bulkGetPrefetch;  ///< bulk get via prefetch pipeline
    LinearFit prefetchGroup;    ///< x = group size, one sync group

    /** One-barrier latency vs torus size (x = PEs). */
    ScalingFit barrierScaling;

    /** Solved Fig. 8 crossover: BLT beats prefetch above this. */
    double bltCrossoverBytes = 0;

    const CostTerm *termForCounter(const std::string &counter) const;

    /** Cycles per unit of a counter; 0 when unpriced. */
    double beta(const std::string &counter) const;

    bool isDirect(const std::string &counter) const;
};

/** Non-fatal diagnostics of a fitCostModel run. */
struct FitReport
{
    std::vector<std::string> warnings;
};

/**
 * Fit the cost model from sweeps (measureAll() or any
 * t3dsim-sweeps-v1 file). Missing sweeps leave the affected terms
 * at their assumed coefficients and add a warning.
 */
CostModel fitCostModel(const std::vector<Sweep> &sweeps,
                       FitReport *report = nullptr);

/** The 29-counter disposition with assumed coefficients, unfitted. */
CostModel defaultCostModel();

/** Write schema t3dsim-model-v1. */
void writeModelJson(std::ostream &os, const CostModel &model);

/** Parse a t3dsim-model-v1 document (inverse of writeModelJson). */
bool readModelJson(const Json &doc, CostModel &model,
                   std::string *error);

/**
 * The serving fast path's model entry (docs/TASKGRAPH.md): load a
 * fitted t3dsim-model-v1 file from @p path, or fall back to
 * defaultCostModel() when @p path is empty. False + @p error when a
 * named file is missing or malformed — a server must fail loudly
 * rather than silently serve assumed coefficients.
 */
bool loadCostModelFile(const std::string &path, CostModel &model,
                       std::string &error);

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_PRIMITIVES_HH
