/**
 * @file
 * Conservative lookahead for the host-parallel scheduler.
 *
 * The parallel scheduler executes PEs in windows of W simulated
 * cycles (DESIGN.md §9). W must be a lower bound on the time it
 * takes any PE's action to influence *another* PE's wake-up or
 * timestamps, so that everything a PE does before the window horizon
 * is already determined by state merged at the window boundary.
 *
 * The influence paths the shell can generate, and their floors:
 *
 *  - signaling store / remote write line: at least
 *    writeInjectBaseCycles of injection plus one network hop before
 *    the receiver's ArrivalLog timestamp can exist;
 *  - user-level message: msgSendCycles of PAL send plus one hop;
 *  - barrier: the earliest another PE can observe a completed
 *    generation is barrierLatencyCycles after the last arrival.
 *
 * Atomic fetch&inc and swap are *not* bounded by W — their
 * round-trip influence is value-based, not time-based — so the
 * parallel scheduler serializes them through a grant protocol
 * instead of relying on the lookahead (DESIGN.md §9).
 *
 * W also seeds the *adaptive* horizon
 * (SplitcConfig::adaptiveLookahead): instead of the global T + W,
 * shard i runs under H_i = W + min over the other nonempty shards'
 * front keys. Every cross-shard influence on shard i originates at
 * or after some other shard's front and takes at least W to land, so
 * H_i is sound; and since the globally smallest front is "other" to
 * every shard but its own, H_i >= T + W — adaptivity only ever
 * widens. A shard alone with work gets an unbounded horizon and runs
 * to its next park in one window, which is what makes the 1-thread
 * ParallelScheduler overhead over the sequential scheduler small
 * (bench_sim_speed records the ratio).
 */

#ifndef T3DSIM_SPLITC_LOOKAHEAD_HH
#define T3DSIM_SPLITC_LOOKAHEAD_HH

#include "machine/config.hh"
#include "sim/types.hh"

namespace t3dsim::splitc
{

/**
 * Minimum cross-PE interaction latency of @p config: the window
 * width the parallel scheduler may use. Always at least 1.
 */
Cycles conservativeLookahead(const machine::MachineConfig &config);

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_LOOKAHEAD_HH
