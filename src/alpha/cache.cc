#include "alpha/cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace t3dsim::alpha
{

DirectMappedCache::DirectMappedCache(std::uint64_t size_bytes,
                                     std::uint64_t line_bytes)
    : _numLines(size_bytes / line_bytes), _lineBytes(line_bytes),
      _indexMask(_numLines - 1),
      _lineShift(static_cast<unsigned>(std::countr_zero(line_bytes))),
      _tagShift(static_cast<unsigned>(std::countr_zero(line_bytes)) +
                static_cast<unsigned>(std::countr_zero(_numLines))),
      _lines(_numLines), _data(size_bytes, 0)
{
    T3D_ASSERT(std::has_single_bit(size_bytes),
               "cache size must be a power of two");
    T3D_ASSERT(std::has_single_bit(line_bytes),
               "cache line size must be a power of two");
    T3D_ASSERT(size_bytes >= line_bytes, "cache smaller than one line");
}

void
DirectMappedCache::read(Addr pa, void *dst, std::size_t len) const
{
    T3D_ASSERT(probe(pa), "reading a line that is not cached: pa=", pa);
    std::size_t off = pa & (_lineBytes - 1);
    T3D_ASSERT(off + len <= _lineBytes, "cache read crosses line");
    std::memcpy(dst, lineData(indexOf(pa)) + off, len);
}

void
DirectMappedCache::invalidateAll()
{
    for (auto &line : _lines)
        line.valid = false;
}

std::uint64_t
DirectMappedCache::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : _lines)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace t3dsim::alpha
