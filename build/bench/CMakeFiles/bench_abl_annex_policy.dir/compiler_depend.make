# Empty compiler generated dependencies file for bench_abl_annex_policy.
# This may be replaced when dependencies are built.
