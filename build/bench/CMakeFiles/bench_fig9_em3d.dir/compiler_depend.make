# Empty compiler generated dependencies file for bench_fig9_em3d.
# This may be replaced when dependencies are built.
