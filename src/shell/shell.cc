#include "shell/shell.hh"

namespace t3dsim::shell
{

Shell::Shell(const ShellConfig &config, PeId local_pe, MachinePort &machine,
             alpha::AlphaCore &core)
    : _config(config), _localPe(local_pe), _core(core), _annex(local_pe),
      _prefetch(_config, local_pe, machine, core),
      _remote(_config, local_pe, machine, core),
      _blt(_config, local_pe, machine, core), _messages(_config)
{
}

void
Shell::setAnnex(unsigned idx, const AnnexEntry &entry)
{
    // Updated at user level with store-conditional at a measured
    // cost typical of off-chip access, 23 cycles (§3.2).
    _core.charge(_config.annexUpdateCycles);
    _annex.set(idx, entry);
}

} // namespace t3dsim::shell
