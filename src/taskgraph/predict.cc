#include "taskgraph/predict.hh"

#include <algorithm>
#include <map>

#include "model/primitives.hh"
#include "splitc/config.hh"

namespace t3dsim::taskgraph
{

namespace
{

/** Accumulates one PE's cost for one level, bucketed for the
 *  response breakdown. */
struct LevelCost
{
    std::map<std::string, double> buckets;

    void
    add(const std::string &bucket, double cycles)
    {
        if (cycles != 0)
            buckets[bucket] += cycles;
    }

    double
    total() const
    {
        double sum = 0;
        for (const auto &[name, cycles] : buckets)
            sum += cycles;
        return sum;
    }
};

double
lines(std::uint64_t words)
{
    return static_cast<double>((words + 3) / 4);
}

/** Priced word-granular memory traffic: @p words loads (or the
 *  write-buffer line retires for stores). */
double
loadCycles(const model::CostModel &model, std::uint64_t words)
{
    const double misses = lines(words);
    const double hits = static_cast<double>(words) - misses;
    return model.beta("l1Hits") * hits + model.beta("l1Misses") * misses;
}

double
storeLineCycles(const model::CostModel &model, std::uint64_t words)
{
    return model.beta("wbRetires") * lines(words);
}

} // namespace

model::Prediction
predictGraph(const TaskGraph &graph, const Plan &plan,
             const model::CostModel &model)
{
    const splitc::SplitcConfig splitc_defaults;

    // Per-task out-words, to price phase-A staging.
    std::vector<std::uint64_t> outWords(graph.tasks.size(), 0);
    std::vector<std::uint64_t> inWords(graph.tasks.size(), 0);
    for (const LoweredEdge &le : plan.loweredEdges) {
        outWords[graph.edges[le.edge].src] += le.words;
        inWords[graph.edges[le.edge].dst] += le.words;
    }

    model::Prediction pred;
    std::map<std::string, double> totals;

    for (std::uint32_t level = 0; level < plan.levels; ++level) {
        double level_max = 0;
        const LevelCost *argmax = nullptr;
        std::vector<LevelCost> costs(plan.pes);
        for (PeId pe = 0; pe < plan.pes; ++pe) {
            LevelCost &c = costs[pe];
            const PeLevelWork &work = plan.work[pe][level];
            for (std::uint32_t t : work.tasks) {
                const Task &task = graph.tasks[t];
                c.add("compute",
                      static_cast<double>(
                          task.cycles +
                          task.flops * plan.options.flopCycles));
                c.add("fold", loadCycles(model, inWords[t]));
                c.add("stage",
                      storeLineCycles(model, outWords[t] + 1));
            }
            for (std::uint32_t ei : work.push) {
                const LoweredEdge &le = plan.loweredEdges[ei];
                const double reread = loadCycles(model, le.words);
                switch (le.mech) {
                  case Mechanism::Store:
                  case Mechanism::Put:
                    c.add(mechanismName(le.mech),
                          reread + model.beta("remoteWriteLines") *
                                       lines(le.words));
                    break;
                  case Mechanism::Am:
                    c.add("am",
                          reread +
                              model.beta("fetchIncRoundTrips") +
                              2 * model.beta("remoteWriteLines") +
                              static_cast<double>(
                                  splitc_defaults.amDepositOverheadCycles));
                    break;
                  case Mechanism::Message:
                    c.add("message", reread + model.beta("msgSends"));
                    break;
                  default:
                    break;
                }
            }
            for (std::uint32_t ei : work.pull) {
                const LoweredEdge &le = plan.loweredEdges[ei];
                const double bytes = static_cast<double>(le.words) * 8;
                if (le.mech == Mechanism::Blt)
                    c.add("blt", model.bltRead.eval(bytes));
                else
                    c.add("get", model.bulkGetPrefetch.eval(bytes));
            }
            c.add("am",
                  static_cast<double>(work.expectAms) *
                      static_cast<double>(
                          splitc_defaults.amDispatchOverheadCycles));
            c.add("message", static_cast<double>(work.expectMessages) *
                                 model.beta("msgInterrupts"));
            // Two barriers bound every superstep (phase A -> exchange
            // -> next level), priced by the fitted P-scaling.
            c.add("barrier",
                  2 * model.barrierScaling.eval(
                          static_cast<double>(plan.pes)));

            const double total = c.total();
            if (total > level_max || argmax == nullptr) {
                level_max = total;
                argmax = &c;
            }
        }
        pred.cycles += level_max;
        if (argmax != nullptr) {
            for (const auto &[bucket, cycles] : argmax->buckets)
                totals[bucket] += cycles;
        }
    }

    pred.breakdown.assign(totals.begin(), totals.end());
    std::sort(pred.breakdown.begin(), pred.breakdown.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return pred;
}

} // namespace t3dsim::taskgraph
