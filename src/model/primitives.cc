#include "model/primitives.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace t3dsim::model
{

namespace
{

/**
 * One residual-ordered fit group: the counters it prices and the
 * sweeps whose pooled points identify them. Groups run in order;
 * each subtracts every earlier-priced counter's contribution before
 * solving, so a group's sweeps may freely contain activity that an
 * earlier group already explained (a put stream still retires write-
 * buffer lines; a get group still stores its results locally).
 */
struct FitGroup
{
    const char *name;
    std::vector<const char *> counters;
    std::vector<const char *> sweeps;
};

const std::vector<FitGroup> &
fitGroups()
{
    static const std::vector<FitGroup> groups = {
        {"local_read_hit", {"l1Hits"}, {"local_read_hit"}},
        {"local_write",
         {"wbRetires", "wbMerges"},
         {"local_write_lines", "local_write_merged"}},
        {"local_read_miss", {"l1Misses"}, {"local_read_miss"}},
        {"dram_page_miss", {"dramPageMisses"}, {"local_read_offpage"}},
        {"remote_read",
         {"remoteReads", "torusHops"},
         {"splitc_read_fixed", "splitc_read_distance"}},
        {"annex_update", {"annexFaults"}, {"splitc_read_alternate"}},
        {"remote_write", {"remoteWriteLines"}, {"splitc_put_stream"}},
        {"prefetch", {"prefetchIssues"}, {"splitc_get_groups"}},
        {"prefetch_stall", {"prefetchFullStalls"}, {"splitc_get_deep"}},
        {"message_send", {"msgSends"}, {"msg_send"}},
        {"message_dispatch", {"msgInterrupts"}, {"msg_dispatch"}},
        {"fetch_inc", {"fetchIncRoundTrips"}, {"fetch_inc"}},
        {"barrier", {"barriers"}, {"barrier_pes"}},
    };
    return groups;
}

CostTerm
makeTerm(const char *name, const char *counter, double beta,
         const char *paper, const char *note = "",
         bool flagOnNonzero = false)
{
    CostTerm t;
    t.name = name;
    t.counter = counter;
    t.beta = beta;
    t.paper = paper;
    t.note = note;
    t.flagOnNonzero = flagOnNonzero;
    return t;
}

/** Priced + direct contribution of one point, model terms only. */
double
pricedContribution(const CostModel &model, const SweepPoint &p,
                   const std::vector<const char *> &exceptCounters)
{
    double sum = 0;
    for (const auto &[name, value] : p.counters) {
        bool skipped = false;
        for (const char *c : exceptCounters) {
            if (name == c) {
                skipped = true;
                break;
            }
        }
        if (skipped)
            continue;
        if (model.isDirect(name))
            sum += value;
        else
            sum += model.beta(name) * value;
    }
    return sum;
}

} // namespace

const CostTerm *
CostModel::termForCounter(const std::string &counter) const
{
    for (const CostTerm &t : terms) {
        if (t.counter == counter)
            return &t;
    }
    return nullptr;
}

double
CostModel::beta(const std::string &counter) const
{
    const CostTerm *t = termForCounter(counter);
    return t ? t->beta : 0;
}

bool
CostModel::isDirect(const std::string &counter) const
{
    return std::find(directCycleCounters.begin(),
                     directCycleCounters.end(),
                     counter) != directCycleCounters.end();
}

CostModel
defaultCostModel()
{
    CostModel m;
    m.directCycleCounters = {"wbStallCycles", "bltSetupCycles",
                             "bltTransferCycles",
                             "barrierWaitCycles"};
    m.terms = {
        makeTerm("l1_hit", "l1Hits", 1, "Fig. 1"),
        makeTerm("l1_miss", "l1Misses", 23, "Fig. 1",
                 "includes the DRAM page-hit access behind the miss"),
        makeTerm("tlb_miss", "tlbMisses", 35, "Fig. 1",
                 "assumed Tlb::Config::missPenaltyCycles; the T3D's "
                 "4 MiB pages keep this near zero in applications"),
        makeTerm("wb_merge", "wbMerges", 1, "Fig. 5"),
        makeTerm("wb_stall", "wbStalls", 0, "Fig. 5",
                 "folded: stall cycles carried by wbStallCycles"),
        makeTerm("wb_retire", "wbRetires", 7, "Fig. 5",
                 "store issue plus the overlapped line drain"),
        makeTerm("dram_page_hit", "dramPageHits", 0, "Fig. 1",
                 "folded into l1_miss and wb_retire"),
        makeTerm("dram_page_miss", "dramPageMisses", 6, "Fig. 1",
                 "off-page penalty over the page-hit access"),
        makeTerm("annex_hit", "annexHits", 0, "§3",
                 "folded into remote_read / remote_write (every "
                 "remote access performs the annex lookup)"),
        makeTerm("annex_update", "annexFaults", 23, "§3"),
        makeTerm("prefetch_issue", "prefetchIssues", 30, "Fig. 6",
                 "steady-state pipelined cost per fetched word"),
        makeTerm("prefetch_drain", "prefetchDrains", 0, "Fig. 6",
                 "folded into prefetch_issue (issues == drains)"),
        makeTerm("prefetch_full_stall", "prefetchFullStalls", 25,
                 "Fig. 6"),
        makeTerm("blt_transfer", "bltTransfers", 0, "Fig. 8",
                 "folded: cycles carried by bltSetupCycles and "
                 "bltTransferCycles"),
        makeTerm("fetch_inc", "fetchIncRoundTrips", 142, "Tab. 4"),
        makeTerm("barrier", "barriers", 10, "§7",
                 "start/end overhead; the wait (latency + skew) is "
                 "carried by barrierWaitCycles"),
        makeTerm("msg_send", "msgSends", 122, "Tab. 4"),
        makeTerm("msg_interrupt", "msgInterrupts", 3750, "Tab. 4",
                 "~25 us interrupt dispatch at 150 MHz"),
        makeTerm("msg_spill", "msgSpills", 0, "§7.3", "limit path",
                 true),
        makeTerm("prefetch_spill", "prefetchSpills", 0, "Fig. 6",
                 "limit path", true),
        makeTerm("blt_engine_stall", "bltEngineStalls", 0, "§6.2",
                 "limit path", true),
        makeTerm("am_overflow", "amOverflows", 0, "§7.4",
                 "limit path", true),
        makeTerm("remote_read", "remoteReads", 88, "Fig. 4",
                 "blocking uncached read at zero hops"),
        makeTerm("remote_write_line", "remoteWriteLines", 17,
                 "Fig. 5/7",
                 "steady-state per injected line in a put stream"),
        makeTerm("torus_hop", "torusHops", 2, "Fig. 4"),
    };
    return m;
}

CostModel
fitCostModel(const std::vector<Sweep> &sweeps, FitReport *report)
{
    CostModel model = defaultCostModel();
    const auto warn = [&](const std::string &w) {
        if (report)
            report->warnings.push_back(w);
    };

    for (const FitGroup &group : fitGroups()) {
        std::vector<const SweepPoint *> pts;
        std::string sources;
        for (const char *name : group.sweeps) {
            const Sweep *s = findSweep(sweeps, name);
            if (!s) {
                warn(std::string(group.name) + ": sweep " + name +
                     " missing");
                continue;
            }
            if (!sources.empty())
                sources += ",";
            sources += name;
            for (const SweepPoint &p : s->points)
                pts.push_back(&p);
        }
        if (pts.empty()) {
            warn(std::string(group.name) +
                 ": no sweep data, keeping assumed coefficients");
            continue;
        }

        std::vector<std::vector<double>> rows;
        std::vector<double> y;
        rows.reserve(pts.size());
        y.reserve(pts.size());
        for (const SweepPoint *p : pts) {
            std::vector<double> row;
            row.reserve(group.counters.size());
            for (const char *c : group.counters)
                row.push_back(p->counter(c));
            rows.push_back(std::move(row));
            y.push_back(p->cycles -
                        pricedContribution(model, *p, group.counters));
        }

        std::vector<double> beta;
        if (!solveLeastSquares(rows, y, beta)) {
            warn(std::string(group.name) +
                 ": singular system, keeping assumed coefficients");
            continue;
        }

        for (std::size_t j = 0; j < group.counters.size(); ++j) {
            for (CostTerm &t : model.terms) {
                if (t.counter == group.counters[j]) {
                    if (beta[j] < 0) {
                        warn(std::string(group.name) + ": " +
                             t.counter + " fitted negative (" +
                             std::to_string(beta[j]) +
                             "), clamped to 0");
                        beta[j] = 0;
                    }
                    t.beta = beta[j];
                    t.fitted = true;
                    t.sweeps = sources;
                }
            }
        }

        // Quality: does the full model (all priced counters + the
        // freshly fitted group) explain the group's total cycles?
        std::vector<double> predicted, observed;
        for (const SweepPoint *p : pts) {
            predicted.push_back(pricedContribution(model, *p, {}));
            observed.push_back(p->cycles);
        }
        const FitQuality q = qualityFromPairs(predicted, observed);
        for (const char *c : group.counters) {
            for (CostTerm &t : model.terms) {
                if (t.counter == c)
                    t.quality = q;
            }
        }
    }

    // Headline curves.
    if (const Sweep *s = findSweep(sweeps, "blt_read"))
        model.bltRead = fitLinear(s->xyPoints());
    else
        warn("blt_read sweep missing");
    if (const Sweep *s = findSweep(sweeps, "blt_write"))
        model.bltWrite = fitLinear(s->xyPoints());
    if (const Sweep *s = findSweep(sweeps, "bulk_get_prefetch"))
        model.bulkGetPrefetch = fitLinear(s->xyPoints());
    else
        warn("bulk_get_prefetch sweep missing");
    if (const Sweep *s = findSweep(sweeps, "prefetch_group"))
        model.prefetchGroup = fitLinear(s->xyPoints());
    if (const Sweep *s = findSweep(sweeps, "barrier_pes"))
        model.barrierScaling = fitScaling(s->xyPoints());

    // Fig. 8 crossover: solve prefetch-pipe vs BLT cost equality.
    const double slopeGap =
        model.bulkGetPrefetch.slope - model.bltRead.slope;
    if (slopeGap > 0 &&
        model.bltRead.intercept > model.bulkGetPrefetch.intercept) {
        model.bltCrossoverBytes =
            (model.bltRead.intercept - model.bulkGetPrefetch.intercept) /
            slopeGap;
    }
    return model;
}

namespace
{

void
writeLinearFit(std::ostream &os, const char *name,
               const LinearFit &fit, bool trailingComma)
{
    os << "    \"" << name << "\": {\"intercept\": " << fit.intercept
       << ", \"slope\": " << fit.slope << ", \"r2\": " << fit.quality.r2
       << ", \"points\": " << fit.quality.points << "}"
       << (trailingComma ? "," : "") << "\n";
}

bool
readLinearFit(const Json &j, LinearFit &fit)
{
    if (!j.isObject())
        return false;
    fit.intercept = j.numberOr("intercept", 0);
    fit.slope = j.numberOr("slope", 0);
    fit.quality.r2 = j.numberOr("r2", 0);
    fit.quality.points =
        static_cast<std::size_t>(j.numberOr("points", 0));
    return true;
}

} // namespace

void
writeModelJson(std::ostream &os, const CostModel &model)
{
    os.precision(17);
    os << "{\n  \"schema\": \"t3dsim-model-v1\",\n  \"terms\": [\n";
    for (std::size_t i = 0; i < model.terms.size(); ++i) {
        const CostTerm &t = model.terms[i];
        os << "    {\"name\": \"" << t.name << "\", \"counter\": \""
           << t.counter << "\", \"cycles_per_unit\": " << t.beta
           << ", \"fitted\": " << (t.fitted ? "true" : "false")
           << ", \"flag_on_nonzero\": "
           << (t.flagOnNonzero ? "true" : "false");
        if (!t.sweeps.empty())
            os << ", \"sweeps\": \"" << t.sweeps << "\"";
        if (!t.paper.empty())
            os << ", \"paper\": \"" << t.paper << "\"";
        if (!t.note.empty())
            os << ", \"note\": \"" << t.note << "\"";
        if (t.quality.points > 0) {
            os << ", \"fit\": {\"points\": " << t.quality.points
               << ", \"r2\": " << t.quality.r2
               << ", \"median_rel_err\": " << t.quality.medianRelErr
               << ", \"max_rel_err\": " << t.quality.maxRelErr << "}";
        }
        os << "}" << (i + 1 < model.terms.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"direct_cycle_counters\": [";
    for (std::size_t i = 0; i < model.directCycleCounters.size(); ++i) {
        os << "\"" << model.directCycleCounters[i] << "\""
           << (i + 1 < model.directCycleCounters.size() ? ", " : "");
    }
    os << "],\n  \"curves\": {\n";
    writeLinearFit(os, "blt_read", model.bltRead, true);
    writeLinearFit(os, "blt_write", model.bltWrite, true);
    writeLinearFit(os, "bulk_get_prefetch", model.bulkGetPrefetch,
                   true);
    writeLinearFit(os, "prefetch_group", model.prefetchGroup, false);
    os << "  },\n  \"barrier_scaling\": {\"term\": \""
       << scalingTermName(model.barrierScaling.term)
       << "\", \"intercept\": " << model.barrierScaling.intercept
       << ", \"slope\": " << model.barrierScaling.slope
       << ", \"r2\": " << model.barrierScaling.quality.r2 << "},\n"
       << "  \"blt_crossover_bytes\": " << model.bltCrossoverBytes
       << "\n}\n";
}

bool
readModelJson(const Json &doc, CostModel &model, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    if (!doc.isObject())
        return fail("not a JSON object");
    if (doc["schema"].str() != "t3dsim-model-v1")
        return fail("schema is not t3dsim-model-v1");

    model = CostModel{};
    const Json &terms = doc["terms"];
    if (!terms.isArray())
        return fail("missing \"terms\" array");
    for (const Json &jt : terms.array()) {
        CostTerm t;
        t.name = jt["name"].str();
        t.counter = jt["counter"].str();
        if (t.name.empty() || t.counter.empty())
            return fail("term without name/counter");
        if (!jt["cycles_per_unit"].isNumber())
            return fail("term " + t.name + " without cycles_per_unit");
        t.beta = jt["cycles_per_unit"].number();
        t.fitted = jt["fitted"].boolean();
        t.flagOnNonzero = jt["flag_on_nonzero"].boolean();
        t.sweeps = jt["sweeps"].str();
        t.paper = jt["paper"].str();
        t.note = jt["note"].str();
        const Json &fit = jt["fit"];
        if (fit.isObject()) {
            t.quality.points =
                static_cast<std::size_t>(fit.numberOr("points", 0));
            t.quality.r2 = fit.numberOr("r2", 0);
            t.quality.medianRelErr = fit.numberOr("median_rel_err", 0);
            t.quality.maxRelErr = fit.numberOr("max_rel_err", 0);
        }
        model.terms.push_back(std::move(t));
    }
    const Json &direct = doc["direct_cycle_counters"];
    if (!direct.isArray())
        return fail("missing \"direct_cycle_counters\"");
    for (const Json &jd : direct.array())
        model.directCycleCounters.push_back(jd.str());

    const Json &curves = doc["curves"];
    readLinearFit(curves["blt_read"], model.bltRead);
    readLinearFit(curves["blt_write"], model.bltWrite);
    readLinearFit(curves["bulk_get_prefetch"], model.bulkGetPrefetch);
    readLinearFit(curves["prefetch_group"], model.prefetchGroup);

    const Json &scaling = doc["barrier_scaling"];
    if (scaling.isObject()) {
        ScalingTerm term = ScalingTerm::Constant;
        if (!scalingTermFromName(scaling["term"].str(), term))
            return fail("unknown barrier scaling term");
        model.barrierScaling.term = term;
        model.barrierScaling.intercept =
            scaling.numberOr("intercept", 0);
        model.barrierScaling.slope = scaling.numberOr("slope", 0);
        model.barrierScaling.quality.r2 = scaling.numberOr("r2", 0);
    }
    model.bltCrossoverBytes = doc.numberOr("blt_crossover_bytes", 0);
    if (error)
        error->clear();
    return true;
}

bool
loadCostModelFile(const std::string &path, CostModel &model,
                  std::string &error)
{
    if (path.empty()) {
        model = defaultCostModel();
        error.clear();
        return true;
    }
    std::string parse_err;
    const Json doc = Json::parseFile(path, &parse_err);
    if (!parse_err.empty()) {
        error = path + ": " + parse_err;
        return false;
    }
    if (!readModelJson(doc, model, &error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace t3dsim::model
