#include "stress/generator.hh"

#include <algorithm>
#include <array>
#include <ostream>
#include <vector>

#include "machine/node.hh"
#include "sim/logging.hh"
#include "splitc/executor.hh"
#include "splitc/global_ptr.hh"
#include "splitc/proc.hh"

namespace t3dsim::stress
{

namespace
{

/** User AM tag (must be >= the runtime's reserved range). */
constexpr std::uint64_t kAmTag = 20;

/** Per-receiver-per-round caps that keep the corpus race-free and
 *  the simulated time bounded (docs/STRESS.md). */
constexpr std::uint32_t kAmCapPerRound = 32;  // < amQueueSlots
constexpr std::uint32_t kMsgCapPerRound = 3;  // 25 us interrupt each

/** SplitMix64: the plan is a pure function of this stream. */
struct Rng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }
};

std::size_t
bankBytes(const StressConfig &cfg)
{
    return std::size_t{cfg.pes} * kStripeWords * 8;
}

/** Address of word @p word of data bank @p bank. */
Addr
dataWordAddr(const StressConfig &cfg, const Layout &lay, int bank,
             std::uint32_t word)
{
    return lay.dataBase + Addr(bank) * bankBytes(cfg) + Addr(word) * 8;
}

/** Address of write slot @p slot of @p writer's stripe in @p bank. */
Addr
stripeSlotAddr(const StressConfig &cfg, const Layout &lay, int bank,
               PeId writer, std::uint32_t slot)
{
    return dataWordAddr(cfg, lay, bank, writer * kStripeWords + slot);
}

/** Address of @p writer's BLT landing stripe in @p bank. */
Addr
bigStripeAddr(const StressConfig &cfg, const Layout &lay, int bank,
              PeId writer)
{
    return lay.bigBase +
           Addr(bank) * cfg.pes * kBigStripeBytes +
           Addr(writer) * kBigStripeBytes;
}

/** Order-sensitive accumulate into result cell @p cell (untimed:
 *  host bookkeeping folded into the checksummed memory image). */
void
accumulate(mem::Storage &storage, const Layout &lay, std::uint32_t cell,
           std::uint64_t v)
{
    const Addr a = lay.accumBase + Addr(cell) * 8;
    storage.writeU64(a, storage.readU64(a) * 1099511628211ull ^ v);
}

/** Commutative accumulate, for values whose arrival order is
 *  timing-tied (two messages landing on the same cycle drain in
 *  delivery order, which the schedulers canonicalize differently). */
void
accumulateCommutative(mem::Storage &storage, const Layout &lay,
                      std::uint32_t cell, std::uint64_t v)
{
    const Addr a = lay.accumBase + Addr(cell) * 8;
    storage.writeU64(a, storage.readU64(a) + v * 0x9e3779b97f4a7c15ull);
}

} // namespace

Layout
Layout::of(const StressConfig &cfg)
{
    const auto align = [](Addr a) {
        return (a + Addr{0xFFF}) & ~Addr{0xFFF};
    };
    Layout lay;
    lay.dataBase = kDataBase;
    Addr end = lay.dataBase + 2 * bankBytes(cfg);
    lay.bigBase = std::max(kBigBase, align(end));
    end = lay.bigBase + 2 * Addr{cfg.pes} * kBigStripeBytes;
    lay.constBase = std::max(kConstBase, align(end));
    end = lay.constBase + Addr{kConstWords} * 8;
    lay.scratchBase = std::max(kScratchBase, align(end));
    end = lay.scratchBase + Addr{cfg.opsPerRound} * kScratchSlotBytes;
    lay.bltScratch = std::max(kBltScratch, align(end));
    end = lay.bltScratch + kBigStripeBytes;
    lay.accumBase = std::max(kAccumBase, align(end));
    end = lay.accumBase + Addr{kAccumCells} * 8;
    lay.swapBase = std::max(kSwapBase, align(end));
    return lay;
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
    case OpKind::RemoteRead: return "remote_read";
    case OpKind::RemoteWrite: return "remote_write";
    case OpKind::Put: return "put";
    case OpKind::Get: return "get";
    case OpKind::SignalStore: return "signal_store";
    case OpKind::Prefetch: return "prefetch";
    case OpKind::BltGet: return "blt_get";
    case OpKind::BltPut: return "blt_put";
    case OpKind::FetchInc: return "fetch_inc";
    case OpKind::Swap: return "swap";
    case OpKind::AmDeposit: return "am_deposit";
    case OpKind::SendMsg: return "send_msg";
    case OpKind::Compute: return "compute";
    }
    return "?";
}

Plan
Plan::build(const StressConfig &raw)
{
    StressConfig cfg = raw;
    // 8192 PEs keeps the per-PE BLT landing region (2 * pes * 4 KiB)
    // plus everything below it inside the 128 MiB local segment.
    cfg.pes = std::clamp<std::uint32_t>(cfg.pes, 2, 8192);
    cfg.rounds = std::max<std::uint32_t>(cfg.rounds, 1);
    cfg.opsPerRound =
        std::clamp<std::uint32_t>(cfg.opsPerRound, 1, kStripeWords);

    Plan plan;
    plan.cfg = cfg;
    plan.layout = Layout::of(cfg);
    Rng rng{cfg.seed * 0x243f6a8885a308d3ull + 1};

    const std::uint32_t bank_words = cfg.pes * kStripeWords;
    for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
        RoundPlan round;
        round.ops.resize(cfg.pes);
        round.storeBytesIn.assign(cfg.pes, 0);
        round.msgsIn.assign(cfg.pes, 0);
        round.amsIn.assign(cfg.pes, 0);

        // One AM sender and one message sender per receiver per
        // round: AM tickets then follow the sender's program order,
        // and message deliveries land consecutively in arrival order
        // (the sender never suspends mid-round), so the receiver's
        // dequeue order — and with it the interrupt-charge timing —
        // is scheduler-invariant. See the header comment on
        // contention canonicalization.
        constexpr PeId kNoSender = ~PeId{0};
        std::vector<PeId> am_sender(cfg.pes, kNoSender);
        std::vector<PeId> msg_sender(cfg.pes, kNoSender);

        // AM flood pair: chosen before the op draws so every normal
        // AmDeposit draw targeting the flooded receiver collapses
        // onto the same sender (single-sender canonicalization), and
        // counted into amsIn up front so the kAmCapPerRound check
        // bounds the combined total.
        if (cfg.amFloodDeposits > 0) {
            const PeId sender = PeId(rng.below(cfg.pes));
            PeId receiver = PeId(rng.below(cfg.pes - 1));
            if (receiver >= sender)
                ++receiver;
            am_sender[receiver] = sender;
            Op op;
            op.kind = OpKind::AmDeposit;
            op.target = receiver;
            for (std::uint32_t k = 0; k < cfg.amFloodDeposits; ++k) {
                op.slot = cfg.opsPerRound + k;
                op.value = rng.next();
                round.ops[sender].push_back(op);
            }
            round.amsIn[receiver] += cfg.amFloodDeposits;
        }

        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            bool blt_get_used = false, blt_put_used = false;
            for (std::uint32_t i = 0; i < cfg.opsPerRound; ++i) {
                Op op;
                op.slot = i;
                // Any target but self.
                op.target = PeId(rng.below(cfg.pes - 1));
                if (op.target >= pe)
                    ++op.target;
                op.value = rng.next();

                const std::uint64_t draw = rng.below(100);
                if (draw < 14) {
                    op.kind = OpKind::RemoteRead;
                    op.word = std::uint32_t(rng.below(bank_words));
                } else if (draw < 28) {
                    op.kind = OpKind::RemoteWrite;
                } else if (draw < 40) {
                    op.kind = OpKind::Put;
                } else if (draw < 52) {
                    op.kind = OpKind::Get;
                    op.word = std::uint32_t(rng.below(bank_words));
                } else if (draw < 66) {
                    op.kind = OpKind::SignalStore;
                    round.storeBytesIn[op.target] += 8;
                } else if (draw < 74) {
                    op.kind = OpKind::Prefetch;
                    op.len = 1 + std::uint32_t(rng.below(16));
                    op.word = std::uint32_t(
                        rng.below(bank_words - op.len + 1));
                } else if (draw < 80) {
                    op.kind = OpKind::Compute;
                } else if (draw < 86) {
                    op.kind = OpKind::FetchInc;
                } else if (draw < 92) {
                    // The swapped cell is private to this PE on the
                    // target, so the returned chain is order-stable.
                    op.kind = OpKind::Swap;
                    op.word = pe;
                } else if (draw < 96 &&
                           round.amsIn[op.target] < kAmCapPerRound &&
                           (am_sender[op.target] == kNoSender ||
                            am_sender[op.target] == pe)) {
                    op.kind = OpKind::AmDeposit;
                    am_sender[op.target] = pe;
                    ++round.amsIn[op.target];
                } else if (draw < 98 &&
                           round.msgsIn[op.target] < kMsgCapPerRound &&
                           (msg_sender[op.target] == kNoSender ||
                            msg_sender[op.target] == pe)) {
                    op.kind = OpKind::SendMsg;
                    msg_sender[op.target] = pe;
                    ++round.msgsIn[op.target];
                } else if (draw < 99 && !blt_get_used) {
                    op.kind = OpKind::BltGet;
                    blt_get_used = true;
                } else if (!blt_put_used) {
                    op.kind = OpKind::BltPut;
                    blt_put_used = true;
                } else {
                    // Capped draw: fall back to a read.
                    op.kind = OpKind::RemoteRead;
                    op.word = std::uint32_t(rng.below(bank_words));
                }
                round.ops[pe].push_back(op);
            }
        }
        plan.rounds.push_back(std::move(round));
    }
    return plan;
}

void
Plan::print(std::ostream &os) const
{
    os << "plan seed=" << cfg.seed << " pes=" << cfg.pes
       << " rounds=" << cfg.rounds << " ops=" << cfg.opsPerRound
       << "\n";
    for (std::uint32_t r = 0; r < rounds.size(); ++r) {
        const RoundPlan &round = rounds[r];
        for (PeId pe = 0; pe < cfg.pes; ++pe) {
            for (std::uint32_t i = 0; i < round.ops[pe].size(); ++i) {
                const Op &op = round.ops[pe][i];
                os << "  r" << r << " pe" << pe << " op" << i << ": "
                   << opKindName(op.kind) << " -> pe" << op.target;
                if (op.kind == OpKind::Prefetch)
                    os << " word " << op.word << " len " << op.len;
                else if (op.kind == OpKind::RemoteRead ||
                         op.kind == OpKind::Get)
                    os << " word " << op.word;
                else if (op.kind == OpKind::Swap)
                    os << " cell " << op.word;
                os << " value 0x" << std::hex << op.value << std::dec
                   << "\n";
            }
        }
        os << "  r" << r << " waits:";
        for (PeId pe = 0; pe < cfg.pes; ++pe)
            os << " pe" << pe << "(store " << round.storeBytesIn[pe]
               << "B, msg " << round.msgsIn[pe] << ", am "
               << round.amsIn[pe] << ")";
        os << "\n";
    }
}

std::vector<Cycles>
runPlan(machine::Machine &machine, const Plan &plan,
        const splitc::SplitcConfig &splitc_cfg)
{
    using splitc::GlobalAddr;
    using splitc::Proc;
    using splitc::ProcTask;

    const StressConfig &cfg = plan.cfg;
    const Layout &lay = plan.layout;
    T3D_FATAL_IF(machine.numPes() != cfg.pes,
                 "machine has ", machine.numPes(),
                 " PEs but the plan wants ", cfg.pes);

    // Host-side AM progress, one cell per PE; each cell is only ever
    // touched by its owning PE's handler (which runs on the owner's
    // shard thread), so the vector is race-free under the parallel
    // scheduler.
    std::vector<std::uint64_t> am_handled(cfg.pes, 0);

    return splitc::runSpmd(
        machine,
        [&](Proc &p) -> ProcTask {
            const PeId me = p.pe();
            auto &storage = p.node().storage();

            // Seed the read-only source region (untimed host fill;
            // identical cost in both schedulers: none).
            Rng init{cfg.seed ^ (0x9e3779b97f4a7c15ull * (me + 1))};
            for (std::uint32_t w = 0; w < kConstWords; ++w)
                storage.writeU64(lay.constBase + Addr(w) * 8, init.next());

            p.registerAmHandler(
                kAmTag,
                [&am_handled, &lay](Proc &self,
                              const std::array<std::uint64_t, 4> &a) {
                    accumulate(self.node().storage(), lay, 4,
                               a[0] ^ a[1] * 31 ^ a[2] * 7 ^ a[3]);
                    ++am_handled[self.pe()];
                });

            co_await p.barrier();

            std::uint64_t am_expected = 0;
            for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
                const RoundPlan &round = plan.rounds[r];
                const int bank = int(r & 1), prev = bank ^ 1;

                for (const Op &op : round.ops[me]) {
                    switch (op.kind) {
                    case OpKind::RemoteRead:
                        accumulate(storage, lay, 0,
                                   p.readU64(GlobalAddr::make(
                                       op.target,
                                       dataWordAddr(cfg, lay, prev,
                                                    op.word))));
                        break;
                    case OpKind::RemoteWrite:
                        p.writeU64(GlobalAddr::make(
                                       op.target,
                                       stripeSlotAddr(cfg, lay, bank, me,
                                                      op.slot)),
                                   op.value);
                        break;
                    case OpKind::Put:
                        p.putU64(GlobalAddr::make(
                                     op.target,
                                     stripeSlotAddr(cfg, lay, bank, me,
                                                    op.slot)),
                                 op.value);
                        break;
                    case OpKind::Get:
                        p.getU64(GlobalAddr::make(
                                     op.target,
                                     dataWordAddr(cfg, lay, prev, op.word)),
                                 lay.scratchBase +
                                     Addr(op.slot) * kScratchSlotBytes);
                        break;
                    case OpKind::SignalStore:
                        p.storeU64(GlobalAddr::make(
                                       op.target,
                                       stripeSlotAddr(cfg, lay, bank, me,
                                                      op.slot)),
                                   op.value);
                        break;
                    case OpKind::Prefetch:
                        p.bulkReadPrefetch(
                            lay.scratchBase +
                                Addr(op.slot) * kScratchSlotBytes,
                            GlobalAddr::make(
                                op.target,
                                dataWordAddr(cfg, lay, prev, op.word)),
                            std::size_t{op.len} * 8);
                        break;
                    case OpKind::BltGet:
                        p.bulkReadBlt(lay.bltScratch,
                                      GlobalAddr::make(op.target,
                                                       lay.constBase),
                                      kBigStripeBytes);
                        break;
                    case OpKind::BltPut:
                        p.bulkWriteBlt(
                            GlobalAddr::make(
                                op.target,
                                bigStripeAddr(cfg, lay, bank, me)),
                            lay.constBase, kBigStripeBytes);
                        break;
                    case OpKind::FetchInc:
                        // The returned count depends on how the
                        // scheduler interleaved concurrent bumps —
                        // deterministic per scheduler, but
                        // canonicalized differently (header comment)
                        // — so exercise the round trip without
                        // folding the value.
                        (void)p.fetchInc(op.target, 1);
                        accumulate(storage, lay, 1, 1);
                        break;
                    case OpKind::Swap:
                        accumulate(
                            storage, lay, 2,
                            p.atomicSwap(
                                GlobalAddr::make(
                                    op.target,
                                    lay.swapBase + Addr(op.word) * 8),
                                op.value));
                        break;
                    case OpKind::AmDeposit:
                        p.amDeposit(op.target, kAmTag,
                                    {op.value, me, r, op.slot});
                        break;
                    case OpKind::SendMsg:
                        p.sendMessage(op.target,
                                      {op.value, me, r, op.slot});
                        break;
                    case OpKind::Compute:
                        p.compute(20 + Cycles(op.value % 480));
                        break;
                    }
                }

                // Round epilogue: complete split-phase traffic, then
                // consume exactly what the plan says arrives here.
                p.sync();
                if (round.storeBytesIn[me] != 0)
                    co_await p.storeSync(round.storeBytesIn[me]);
                for (std::uint32_t i = 0; i < round.msgsIn[me]; ++i) {
                    co_await p.waitMessage();
                    const auto msg = p.takeMessage(false);
                    accumulateCommutative(
                        storage, lay, 3,
                        msg.words[0] ^ msg.words[1] * 31 ^
                            msg.words[2] * 7 ^ msg.words[3]);
                }
                am_expected += round.amsIn[me];
                while (am_handled[me] < am_expected) {
                    co_await p.amWait();
                    while (p.amPoll()) {
                    }
                }
                co_await p.barrier();
            }
            co_return;
        },
        splitc_cfg);
}

namespace
{

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/**
 * Fold @p n zero bytes into an FNV-1a state: XOR with zero is the
 * identity, so each byte contributes only the prime multiply —
 * h * prime^n, computed by square-and-multiply. Lets the checksum
 * skip absent storage chunks (which read back as zero) in O(log n)
 * instead of materializing or scanning them, while producing exactly
 * the value a byte-by-byte fold over zeros would.
 */
std::uint64_t
fnvFoldZeros(std::uint64_t h, std::uint64_t n)
{
    std::uint64_t p = kFnvPrime;
    while (n) {
        if (n & 1)
            h *= p;
        p *= p;
        n >>= 1;
    }
    return h;
}

} // namespace

std::uint64_t
memoryChecksum(machine::Machine &machine, const Plan &plan)
{
    const StressConfig &cfg = plan.cfg;
    const Layout &lay = plan.layout;
    std::uint64_t h = 14695981039346656037ull;

    // Chunk-at-a-time sparse fold: present chunks hash their bytes,
    // absent chunks fast-forward as runs of zeros. Large-P regions
    // (the BLT landing banks are 2 * pes * 4 KiB) are mostly
    // untouched, and this keeps the checksum from materializing them.
    const auto fold = [&](mem::Storage &storage, Addr base,
                          std::size_t len) {
        Addr a = base;
        std::size_t remaining = len;
        while (remaining > 0) {
            std::size_t span = 0;
            const std::uint8_t *p =
                storage.peekSpanConcurrent(a, remaining, span);
            if (p) {
                for (std::size_t i = 0; i < span; ++i) {
                    h ^= p[i];
                    h *= kFnvPrime;
                }
            } else {
                h = fnvFoldZeros(h, span);
            }
            a += span;
            remaining -= span;
        }
    };

    for (PeId pe = 0; pe < cfg.pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        fold(storage, lay.dataBase, 2 * bankBytes(cfg));
        fold(storage, lay.bigBase, 2 * cfg.pes * kBigStripeBytes);
        fold(storage, lay.scratchBase,
             std::size_t{cfg.opsPerRound} * kScratchSlotBytes);
        fold(storage, lay.bltScratch, kBigStripeBytes);
        fold(storage, lay.accumBase, kAccumCells * 8);
        fold(storage, lay.swapBase, std::size_t{cfg.pes} * 8);
    }
    return h;
}

} // namespace t3dsim::stress
