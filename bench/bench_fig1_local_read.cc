/**
 * @file
 * Figure 1: local read latency vs. stride for array sizes 4 KB-8 MB,
 * on the T3D node (left) and the DEC Alpha workstation (right).
 *
 * Reveals: the 8 KB direct-mapped L1 and its 32-byte lines, the
 * 145 ns memory access, the 16 KB DRAM-page and 64 KB bank effects,
 * the absence of an L2 and of TLB costs on the T3D; and the L1/L2/
 * memory bands plus the 8 KB-stride TLB inflection on the
 * workstation.
 *
 * Usage: bench_fig1_local_read [--machine=t3d|workstation|both]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "machine/machine.hh"
#include "machine/workstation.hh"
#include "probes/stride.hh"

#include "profile.hh"
#include "probes/table.hh"

using namespace t3dsim;



int
main(int argc, char **argv)
{
    std::string which = "both";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--machine=", 10) == 0)
            which = argv[i] + 10;
    }

    std::cout << "Figure 1: local memory read latency (sawtooth "
                 "stride probe, ns per read)\n";

    if (which == "t3d" || which == "both") {
        machine::Machine m(machine::MachineConfig::t3d(2));
        auto &node = m.node(0);
        auto points = probes::strideProbe(
            [&](Addr a) { node.core().loadU64(a); },
            [&] { return node.clock().now(); },
            0, 4 * KiB, 8 * MiB);
        bench::printProfile("CRAY-T3D node", points);

        probes::Table key({"landmark", "model", "paper (Sec. 2.2)"});
        auto at = [&](std::uint64_t a, std::uint64_t s) {
            const auto *p = probes::findPoint(points, a, s);
            return p ? p->avgNsPerOp : -1.0;
        };
        key.addRow("cache hit (<=8K array)", at(8 * KiB, 8),
                   "6.67 ns");
        key.addRow("memory access (64K/32)", at(64 * KiB, 32),
                   "145 ns (22 cy)");
        key.addRow("off-page (1M/16K)", at(1 * MiB, 16 * KiB),
                   "205 ns (31 cy)");
        key.addRow("same-bank (1M/64K)", at(1 * MiB, 64 * KiB),
                   "264 ns (40 cy)");
        key.print();
    }

    if (which == "workstation" || which == "both") {
        machine::Workstation ws;
        auto points = probes::strideProbe(
            [&](Addr a) { ws.loadU64(a); },
            [&] { return ws.clock().now(); },
            0, 4 * KiB, 8 * MiB);
        bench::printProfile("DEC Alpha workstation", points);

        probes::Table key({"landmark", "model", "paper (Sec. 2.2)"});
        auto at = [&](std::uint64_t a, std::uint64_t s) {
            const auto *p = probes::findPoint(points, a, s);
            return p ? p->avgNsPerOp : -1.0;
        };
        key.addRow("L1 band (8K/8)", at(8 * KiB, 8), "6.67 ns");
        key.addRow("L2 band (256K/32)", at(256 * KiB, 32),
                   "~60 ns");
        key.addRow("memory band (8M/32)", at(8 * MiB, 32),
                   "300 ns (45 cy)");
        key.addRow("TLB inflection (8M/8K)", at(8 * MiB, 8 * KiB),
                   "rise at 8 KB page size");
        key.print();
    }

    return 0;
}
