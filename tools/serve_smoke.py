#!/usr/bin/env python3
"""Serve smoke: drive t3d-serve with a concurrent job batch.

Pushes a >= 64-job batch (simulate + predict over a pool of distinct
graphs, so most jobs are repeats) through `t3d-serve` at each host
thread count, and asserts

  - every response is ok and answers arrive for every job id;
  - results are bit-identical to standalone execution (`--once`) and
    across every thread count;
  - the cache short-circuits repeats: the server's stats line must
    report exactly one simulation (prediction) per distinct graph,
    everything else cache hits;
  - a jobs/sec floor, recorded per thread count and mode into
    BENCH_serve.json (schema t3dsim-serve-v1).

Run from the repo root after building bench_serve:

    python3 tools/serve_smoke.py --serve build/bench/t3d-serve
"""

import argparse
import json
import re
import subprocess
import sys
import time

STATS_RE = re.compile(
    r"jobs=(\d+) simulations=(\d+) predictions=(\d+) "
    r"cache_hits=(\d+) errors=(\d+)")


def graph(index: int) -> dict:
    """A small fork/join DAG; index varies the weights so each one is
    a distinct cache key."""
    base = 50 + 17 * index
    return {
        "name": f"smoke-{index}",
        "tasks": [
            {"id": "src", "cycles": base},
            {"id": "l", "cycles": base + 40},
            {"id": "r", "cycles": base + 90},
            {"id": "wide", "cycles": base + 10},
            {"id": "sink", "cycles": 25},
        ],
        "edges": [
            {"src": "src", "dst": "l", "bytes": 128},
            {"src": "src", "dst": "r", "bytes": 1500},
            {"src": "src", "dst": "wide", "bytes": 12000},
            {"src": "l", "dst": "sink", "bytes": 64},
            {"src": "r", "dst": "sink", "bytes": 64},
            {"src": "wide", "dst": "sink", "bytes": 64},
        ],
    }


def job_line(job_id: str, mode: str, index: int) -> str:
    return json.dumps({
        "id": job_id, "mode": mode, "pes": 8, "graph": graph(index),
    })


def payload_fields(response: dict) -> dict:
    """The executed result, minus routing/cache fields."""
    return {k: v for k, v in response.items()
            if k not in ("id", "cache")}


def run_batch(serve: str, threads: int, lines: list[str]):
    """Feed the whole batch at once; returns (responses by id,
    stats dict, wall seconds)."""
    start = time.monotonic()
    proc = subprocess.run(
        [serve, f"--threads={threads}"],
        input="\n".join(lines) + "\n",
        capture_output=True, text=True, check=True)
    wall = time.monotonic() - start
    responses = {}
    for line in proc.stdout.splitlines():
        r = json.loads(line)
        assert r.get("ok") is True, f"job failed: {line}"
        responses[r["id"]] = r
    m = STATS_RE.search(proc.stderr)
    assert m, f"no stats line on stderr: {proc.stderr!r}"
    stats = dict(zip(
        ("jobs", "simulations", "predictions", "cache_hits", "errors"),
        (int(g) for g in m.groups())))
    return responses, stats, wall


def run_once(serve: str, line: str) -> dict:
    proc = subprocess.run(
        [serve, "--once"], input=line + "\n",
        capture_output=True, text=True, check=True)
    r = json.loads(proc.stdout.strip())
    assert r.get("ok") is True, proc.stdout
    return r


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", default="build/bench/t3d-serve")
    ap.add_argument("--jobs", type=int, default=64,
                    help="batch size per mode (>= 64 per the serve "
                         "acceptance bar)")
    ap.add_argument("--unique", type=int, default=8,
                    help="distinct graphs per batch; the rest repeat")
    ap.add_argument("--threads", default="1,2,4,8")
    ap.add_argument("--floor", type=float, default=20.0,
                    help="minimum jobs/sec per thread count and mode")
    ap.add_argument("--out", default="BENCH_serve.json")
    args = ap.parse_args()

    thread_counts = [int(t) for t in args.threads.split(",")]
    batches = {
        mode: [job_line(f"{mode}{i}", mode, i % args.unique)
               for i in range(args.jobs)]
        for mode in ("simulate", "predict")
    }

    # Standalone references: one --once run per distinct simulate
    # graph, the bit-identity baseline for every served answer.
    reference = {
        i: payload_fields(run_once(
            args.serve, job_line(f"ref{i}", "simulate", i)))
        for i in range(args.unique)
    }

    sweep = []
    golden = {}  # job id -> payload, pinned across thread counts
    for threads in thread_counts:
        row = {"threads": threads, "modes": {}}
        for mode, lines in batches.items():
            responses, stats, wall = run_batch(args.serve, threads,
                                               lines)
            assert len(responses) == args.jobs, (
                f"{mode}@{threads}: {len(responses)} responses")
            assert stats["errors"] == 0, stats
            executed = stats["simulations" if mode == "simulate"
                             else "predictions"]
            assert executed == args.unique, (
                f"{mode}@{threads}: cache failed to short-circuit: "
                f"{stats}")
            assert stats["cache_hits"] == args.jobs - args.unique, stats

            for job_id, r in responses.items():
                payload = payload_fields(r)
                if mode == "simulate":
                    index = int(job_id.removeprefix(mode)) % args.unique
                    assert payload == reference[index], (
                        f"{job_id}@{threads} diverges from --once")
                if job_id in golden:
                    assert golden[job_id] == payload, (
                        f"{job_id}: differs between thread counts")
                golden[job_id] = payload

            rate = args.jobs / wall if wall > 0 else float("inf")
            assert rate >= args.floor, (
                f"{mode}@{threads}: {rate:.1f} jobs/s under floor "
                f"{args.floor}")
            row["modes"][mode] = {
                "jobs_per_s": round(rate, 1),
                "wall_s": round(wall, 4),
                "cache_hits": stats["cache_hits"],
                "executed": executed,
            }
        sweep.append(row)
        print(f"threads={threads}: " + ", ".join(
            f"{m} {row['modes'][m]['jobs_per_s']} jobs/s"
            for m in row["modes"]))

    out = {
        "schema": "t3dsim-serve-v1",
        "jobs_per_mode": args.jobs,
        "unique_graphs": args.unique,
        "floor_jobs_per_s": args.floor,
        "bit_identical_to_standalone": True,
        "sweep": sweep,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}: {args.jobs} jobs x "
          f"{len(thread_counts)} thread counts x 2 modes, "
          "bit-identical to standalone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
