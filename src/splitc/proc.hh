/**
 * @file
 * Per-PE Split-C runtime handle: the language primitives of §1.1
 * compiled onto the T3D shell exactly as the paper's implementation
 * maps them (§3-§7):
 *
 *  - read / write   -> uncached remote reads; remote writes with MB +
 *                      status-bit poll (§4.4)
 *  - get / put      -> binding prefetch + target-address table;
 *                      non-blocking writes (§5.4)
 *  - store          -> pipelined one-way writes with a receiver-side
 *                      arrived-bytes account (§7.1)
 *  - bulk_*         -> mechanism selection between uncached reads,
 *                      prefetch pipelining and the BLT (§6.3)
 *  - barrier        -> write drain + hardware fuzzy barrier (§7.5)
 *  - Active Messages-> fetch&increment + stores into a remote queue
 *                      (§7.4), including the remote byte-write fix
 *                      for the §4.5 semantic mismatch
 */

#ifndef T3DSIM_SPLITC_PROC_HH
#define T3DSIM_SPLITC_PROC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "machine/machine.hh"
#include "machine/node.hh"
#include "shell/annex.hh"
#include "splitc/config.hh"
#include "splitc/executor.hh"
#include "splitc/global_ptr.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::splitc
{

/** Active-Message handler: runs on the owning PE. */
using AmHandler =
    std::function<void(Proc &, const std::array<std::uint64_t, 4> &)>;

/** The per-PE runtime. Created by the Scheduler; one per node. */
class Proc
{
  public:
    Proc(Scheduler &sched, machine::Machine &machine, machine::Node &node,
         const SplitcConfig &config);

    Proc(const Proc &) = delete;
    Proc &operator=(const Proc &) = delete;

    /** @name Identity */
    /// @{
    PeId pe() const { return _node.pe(); }
    std::uint32_t procs() const { return _machine.numPes(); }
    machine::Node &node() { return _node; }
    Clock &clock() { return _node.clock(); }
    Cycles now() const { return _node.clock().now(); }
    const SplitcConfig &config() const { return _config; }
    /// @}

    /** @name Local storage management (untimed) */
    /// @{
    /** Allocate on this PE; returns a global address to it. */
    GlobalAddr allocLocal(std::size_t bytes, std::size_t align = 8);

    /** Global address of a local address on this PE. */
    GlobalAddr
    globalize(Addr local) const
    {
        return GlobalAddr::make(_node.pe(), local);
    }
    /// @}

    /** @name Blocking global access (§4.4) */
    /// @{
    std::uint64_t readU64(GlobalAddr src);
    void writeU64(GlobalAddr dst, std::uint64_t value);
    double readF64(GlobalAddr src);
    void writeF64(GlobalAddr dst, double value);

    /**
     * Byte read/write through a global pointer. The write is the
     * §4.5 trap: a non-atomic remote read-modify-write. See
     * amWriteByte() for the correct (Active-Message) version.
     */
    std::uint8_t readU8(GlobalAddr src);
    void writeU8(GlobalAddr dst, std::uint8_t value);
    /// @}

    /** @name Split-phase access (§5.4) */
    /// @{
    /** x := *P — initiate a get of @p src into local @p local_dst. */
    void getU64(GlobalAddr src, Addr local_dst);

    /** *P := x — initiate a put. */
    void putU64(GlobalAddr dst, std::uint64_t value);
    void putF64(GlobalAddr dst, double value);

    /** Wait for all outstanding gets and puts (§5.1). */
    void sync();
    /// @}

    /** @name Signaling stores (§7.1) */
    /// @{
    /** P :- x — one-way store; completion observed via *_store_sync. */
    void storeU64(GlobalAddr dst, std::uint64_t value);
    void storeF64(GlobalAddr dst, double value);

    /** Barrier + completion of all stores issued before it. */
    BarrierAwaiter allStoreSync();

    /** Wait until @p bytes more store data has arrived locally. */
    StoreSyncAwaiter storeSync(std::uint64_t bytes);
    /// @}

    /** @name Bulk transfer (§6.3) */
    /// @{
    /** Mechanism-selecting Split-C bulk_read / bulk_write. */
    void bulkRead(Addr local_dst, GlobalAddr src, std::size_t bytes);
    void bulkWrite(GlobalAddr dst, Addr local_src, std::size_t bytes);

    /** Split-phase bulk; completion via sync(). */
    void bulkGet(Addr local_dst, GlobalAddr src, std::size_t bytes);
    void bulkPut(GlobalAddr dst, Addr local_src, std::size_t bytes);

    /** Mechanism-forced variants (the §6.2 micro-benchmarks). */
    void bulkReadUncached(Addr local_dst, GlobalAddr src,
                          std::size_t bytes);
    void bulkReadCached(Addr local_dst, GlobalAddr src,
                        std::size_t bytes);
    void bulkReadPrefetch(Addr local_dst, GlobalAddr src,
                          std::size_t bytes);
    void bulkReadBlt(Addr local_dst, GlobalAddr src, std::size_t bytes);
    void bulkWriteStores(GlobalAddr dst, Addr local_src,
                         std::size_t bytes);
    void bulkWriteBlt(GlobalAddr dst, Addr local_src, std::size_t bytes);
    /// @}

    /** @name Synchronization (§7.5) */
    /// @{
    /** Full barrier: start-barrier immediately followed by end. */
    BarrierAwaiter barrier();

    /**
     * Fuzzy barrier, first half: wait for outstanding stores,
     * perform the start-barrier instruction (notifying the other
     * processors), and return — code placed between start and end
     * overlaps with the synchronization (§7.5).
     */
    void startBarrier();

    /** Fuzzy barrier, second half: wait for every PE's start. */
    BarrierAwaiter endBarrier();
    /// @}

    /** @name User-level messages (§7.3) */
    /// @{
    void sendMessage(PeId dst, const std::array<std::uint64_t, 4> &words);
    MessageAwaiter waitMessage();

    /** Dequeue the head message, charging interrupt (+handler). */
    shell::Message takeMessage(bool handler_mode);
    /// @}

    /** @name Shared-memory Active Messages (§7.4) */
    /// @{
    /** Register the handler run by amPoll for @p tag. */
    void registerAmHandler(std::uint64_t tag, AmHandler handler);

    /** Deposit (tag, args) into @p dst's AM queue; one-way. */
    void amDeposit(PeId dst, std::uint64_t tag,
                   const std::array<std::uint64_t, 4> &args);

    /** Dispatch one pending AM if present. @return true if one ran. */
    bool amPoll();

    /** Wait until at least one AM deposit has arrived. */
    StoreSyncAwaiter amWait();

    /** Correct remote byte write via an AM to the owner (§4.5/§7.4). */
    void amWriteByte(GlobalAddr dst, std::uint8_t value);

    /** Remote fetch&increment (§7.4). */
    std::uint64_t fetchInc(PeId dst, unsigned reg);

    /** Remote atomic swap through the shell (§1.2). */
    std::uint64_t atomicSwap(GlobalAddr dst, std::uint64_t new_value);
    /// @}

    /** Charge @p cycles of local computation. */
    void compute(Cycles cycles) { _node.core().charge(cycles); }

    /** @name Statistics */
    /// @{
    std::uint64_t annexUpdates() const { return _annexUpdates; }
    std::uint64_t getsIssued() const { return _getsIssued; }
    std::uint64_t putsIssued() const { return _putsIssued; }
    std::uint64_t storesIssued() const { return _storesIssued; }
    /// @}

    /** @name Internal (awaitables / scheduler) */
    /// @{
    Scheduler &scheduler() { return _sched; }

    /** End-barrier poll; true if the generation has completed. */
    bool barrierReady();

    /** Scheduler wake path: the parked end-barrier has completed. */
    void clearBarrierWait() { _barrierActive = false; }

    /**
     * Observability: account the barrier that just completed on this
     * PE (wait cycles since startBarrier and a trace span). Called on
     * whichever path finished the barrier — barrierReady() or the
     * scheduler's completeBarrier() wake.
     */
    void noteBarrierComplete();

    /** Store-sync bookkeeping. */
    std::uint64_t storeWatermark() const { return _storeWatermark; }
    void advanceStoreWatermark(std::uint64_t b) { _storeWatermark += b; }
    std::uint64_t amWatermark() const { return _amWatermark; }
    void advanceAmWatermark(std::uint64_t n) { _amWatermark += n; }

    /** Deposits this PE rerouted into a receiver's overflow ring. */
    std::uint64_t amOverflows() const { return _amOverflows; }
    /// @}

    /**
     * Select / program the annex register for @p dst under the
     * configured policy; returns the annex index to use. Charges
     * policy costs (§3.4).
     */
    unsigned annexFor(PeId dst,
                      shell::ReadMode mode = shell::ReadMode::Uncached);

    /** Annexed virtual address for (annex index, local offset). */
    static Addr
    vaFor(unsigned idx, Addr offset)
    {
        return alpha::makeAnnexedVa(idx, offset);
    }

  private:
    /** Pop every outstanding get and store results to their targets. */
    void drainGets();

    /** Signaling-store common path. */
    void storeBytesSignaling(GlobalAddr dst, const void *src,
                             std::size_t len);

    /** Byte offset of AM queue slot @p slot in node memory. */
    Addr amSlotAddr(std::uint64_t slot) const;

    /** Address of slot @p slot of the DRAM overflow ring (placed
     *  directly after the primary queue). */
    Addr amOverflowSlotAddr(std::uint64_t slot) const;

    Scheduler &_sched;
    machine::Machine &_machine;
    machine::Node &_node;
    SplitcConfig _config;

    /** @name Annex policy state */
    /// @{
    /** SingleReload: PE currently loaded in annex register 1. */
    PeId _annexCurrent;
    bool _annexValid = false;
    shell::ReadMode _annexMode = shell::ReadMode::Uncached;

    /** HashedTable: mirror of table-managed entries (idx -> pe). */
    std::unordered_map<unsigned, PeId> _annexTable;
    std::uint64_t _annexUpdates = 0;
    /// @}

    /** get: target local addresses, FIFO-parallel to the prefetch
     *  queue (§5.4). */
    sim::RingBuffer<Addr> _getTable;

    bool _putsOutstanding = false;

    /** Fuzzy-barrier state: generation we arrived in. */
    std::uint32_t _barrierGen = 0;
    bool _barrierActive = false;

    /** When this PE performed its start-barrier (observability). */
    Cycles _barrierArrive = 0;

    /** Node counters (null when disabled) and machine trace sink. */
    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;

    /** BLT completion pending from a split-phase bulkGet/bulkPut. */
    Cycles _bltPending = 0;

    std::uint64_t _storeWatermark = 0;
    std::uint64_t _amWatermark = 0;

    /** AM receive cursor (next ticket to dispatch). */
    std::uint64_t _amHead = 0;

    /** Overflow-ring recovery cursor: spilled deposits this receiver
     *  has drained. The ring is indexed by claim order (the sender
     *  side counts claims in Scheduler::amFlow), so this addresses
     *  the oldest undispatched spill. */
    std::uint64_t _amSpillHead = 0;

    /** Deposits rerouted into a receiver's overflow ring. */
    std::uint64_t _amOverflows = 0;

    std::unordered_map<std::uint64_t, AmHandler> _amHandlers;

    std::uint64_t _getsIssued = 0;
    std::uint64_t _putsIssued = 0;
    std::uint64_t _storesIssued = 0;
};

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_PROC_HH
