/**
 * @file
 * Figure 7: non-blocking remote write cost vs. stride.
 *
 * Below the 32-byte line size the write buffer merges; line-distinct
 * stores stream at ~115 ns (17 cycles) limited by shell injection;
 * 16 KB+ strides expose remote DRAM page misses through the
 * injection window's backpressure. The Split-C put (~300 ns) adds
 * annex set-up and checks.
 */

#include <iostream>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "probes/stride.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

#include "profile.hh"

using namespace t3dsim;
using shell::ReadMode;

int
main()
{
    std::cout << "Figure 7: non-blocking remote write cost (ns per "
                 "write)\n";

    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &n0 = m.node(0);
    n0.shell().setAnnex(1, {1, ReadMode::Uncached});
    const Addr base = alpha::makeAnnexedVa(1, 0);

    auto points = probes::strideProbe(
        [&](Addr a) { n0.storeU64(a, 7); },
        [&] { return n0.clock().now(); },
        base, 4 * KiB, 4 * MiB);
    n0.waitRemoteWrites();
    bench::printProfile("non-blocking remote writes", points);

    // Split-C put with per-access annex churn (alternating targets).
    machine::Machine m2(machine::MachineConfig::t3d(3));
    double put_ns = 0;
    splitc::runSpmd(m2, [&](splitc::Proc &p) -> splitc::ProcTask {
        if (p.pe() != 0)
            co_return;
        p.putU64(splitc::GlobalAddr::make(1, 0), 0); // warm
        p.putU64(splitc::GlobalAddr::make(2, 0), 0);
        p.sync();
        const int n = 64;
        const Cycles t0 = p.now();
        for (int i = 0; i < n; ++i)
            p.putU64(splitc::GlobalAddr::make(1 + (i % 2),
                                              Addr(64 + 32 * i)),
                     i);
        put_ns = cyclesToNs(p.now() - t0) / n;
        p.sync();
        co_return;
    });

    auto at = [&](std::uint64_t a, std::uint64_t s) {
        const auto *p = probes::findPoint(points, a, s);
        return p ? p->avgNsPerOp : -1.0;
    };

    probes::Table key({"landmark", "model (ns)", "paper (Sec. 5.3)"});
    key.addRow("merged writes (64K/8)", at(64 * KiB, 8),
               "write merging (as Fig. 2)");
    key.addRow("line-distinct (64K/32)", at(64 * KiB, 32),
               "115 ns (17 cy)");
    key.addRow("off-page (1M/16K)", at(1 * MiB, 16 * KiB),
               "higher (remote DRAM page miss)");
    key.addRow("Split-C put", put_ns, "~300 ns (45 cy)");
    key.print();

    return 0;
}
