# Empty compiler generated dependencies file for t3dsim_machine.
# This may be replaced when dependencies are built.
