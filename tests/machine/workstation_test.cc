/**
 * @file
 * Tests of the DEC Alpha workstation model against Figure 1 (right):
 * three latency bands (L1 / 512 KB L2 / ~300 ns memory) and the TLB
 * inflection at 8 KB stride.
 */

#include <gtest/gtest.h>

#include "machine/workstation.hh"
#include "probes/stride.hh"

namespace
{

using namespace t3dsim;
using machine::Workstation;

TEST(Workstation, L1HitIsOneCycle)
{
    Workstation ws;
    ws.storage().writeU64(0x1000, 1);
    ws.loadU64(0x1000);
    const Cycles t0 = ws.clock().now();
    ws.loadU64(0x1000);
    EXPECT_EQ(ws.clock().now() - t0, 1u);
}

TEST(Workstation, L2HitBand)
{
    Workstation ws;
    ws.storage().writeU64(0x1000, 1);
    ws.loadU64(0x1000);            // fills L1 + L2
    ws.l1().invalidate(0x1000);    // force L1 miss, L2 hit
    const Cycles t0 = ws.clock().now();
    ws.loadU64(0x1000);
    EXPECT_EQ(ws.clock().now() - t0, 9u) << "board-cache latency";
}

TEST(Workstation, MemoryAccessNear300ns)
{
    Workstation ws;
    // Two consecutive lines: second access opens page already.
    ws.loadU64(0x100000);
    const Cycles t0 = ws.clock().now();
    ws.loadU64(0x100040); // different line, same DRAM page, TLB hit
    EXPECT_NEAR(cyclesToNs(ws.clock().now() - t0), 300.0, 10.0);
}

TEST(Workstation, Figure1RightProfile)
{
    Workstation ws;
    auto points = probes::strideProbe(
        [&](Addr a) { ws.loadU64(a); },
        [&] { return ws.clock().now(); },
        0, 4 * KiB, 2 * MiB);

    // Band 1: fits in L1.
    auto *p = probes::findPoint(points, 8 * KiB, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 1.0, 0.1);

    // Band 2: fits in 512 KB L2; line stride -> every L1 miss, L2 hit.
    p = probes::findPoint(points, 256 * KiB, 32);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 9.0, 1.0);

    // Band 3: exceeds L2 -> memory latency (~45 cycles).
    p = probes::findPoint(points, 2 * MiB, 32);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->avgCyclesPerOp, 40.0);

    // TLB inflection: at 8 KB stride a 2 MB array touches 256 pages
    // against 32 TLB entries -> every access adds the full miss
    // penalty, against 1/8th of it at 1 KB stride.
    auto *below = probes::findPoint(points, 2 * MiB, 1 * KiB);
    auto *at = probes::findPoint(points, 2 * MiB, 8 * KiB);
    ASSERT_NE(below, nullptr);
    ASSERT_NE(at, nullptr);
    EXPECT_GT(at->avgCyclesPerOp, below->avgCyclesPerOp + 20.0)
        << "§2.2: inflection at the 8 KB page size";
}

TEST(Workstation, StreamBandwidthAboutHalfOfT3d)
{
    // §2.2: the T3D can stream ~220 MB/s from memory, the
    // workstation about half that. Stream = line-stride read sweep.
    Workstation ws;
    const std::size_t bytes = 1 * MiB;
    // Warm-up (TLB) then measure.
    for (Addr a = 0; a < bytes; a += 32)
        ws.loadU64(a);
    const Cycles t0 = ws.clock().now();
    for (Addr a = 0; a < bytes; a += 32)
        ws.loadU64(a);
    const double secs = cyclesToNs(ws.clock().now() - t0) * 1e-9;
    const double mbps = (bytes / 1e6) / secs;
    EXPECT_GT(mbps, 80.0);
    EXPECT_LT(mbps, 140.0);
}

TEST(Workstation, WriteBufferStillMerges)
{
    // Merged (stride-8) stores must be distinctly cheaper than
    // line-distinct (stride-32) stores against the slower memory.
    Workstation ws;
    Cycles merged = 0, distinct = 0;
    for (int i = 0; i < 64; ++i) {
        const Cycles t0 = ws.clock().now();
        ws.storeU64(Addr(0x10000) + 8 * i, i);
        merged += ws.clock().now() - t0;
    }
    ws.mb();
    for (int i = 0; i < 64; ++i) {
        const Cycles t0 = ws.clock().now();
        ws.storeU64(Addr(0x40000) + 32 * i, i);
        distinct += ws.clock().now() - t0;
    }
    EXPECT_LT(double(merged) * 1.3, double(distinct));
}

} // namespace
