#include "alpha/core.hh"

#include <algorithm>

#include "alpha/address.hh"
#include "alpha/byte_ops.hh"
#include "sim/logging.hh"

namespace t3dsim::alpha
{

AlphaCore::AlphaCore(const CoreConfig &config, Clock &clock, Tlb &tlb,
                     DirectMappedCache &dcache, WriteBuffer &wb,
                     mem::DramController &dram, mem::Storage &storage,
                     DirectMappedCache *l2)
    : _config(config), _clock(clock), _tlb(tlb), _dcache(dcache), _wb(wb),
      _dram(dram), _storage(storage), _l2(l2)
{
}

void
AlphaCore::loadBytes(Addr va, void *dst, std::size_t len)
{
    ++_loads;
    _wb.commitUpTo(_clock.now());
    _clock.advance(_tlb.access(va));

    const Addr pa = paOfVa(va);
    if (_dcache.probe(pa)) {
        ++_cacheHits;
        T3D_COUNT(_ctr, l1Hits);
        _clock.advance(_config.loadHitCycles);
        _dcache.read(pa, dst, len);
        return;
    }
    ++_cacheMisses;
    T3D_COUNT(_ctr, l1Misses);

    // A pending write-buffer entry for this line must reach memory
    // before the miss can be serviced; the load stalls on the drain.
    if (_wb.holdsLine(_clock.now(), pa)) {
        Cycles done = _wb.drainAll(_clock.now());
        _clock.advanceTo(done);
        _wb.commitUpTo(done);
    }

    const Addr line_pa = pa & ~(_dcache.lineBytes() - 1);
    const std::size_t line_bytes = _dcache.lineBytes();
    // Stack buffer: a heap allocation per miss dominates the host
    // profile. Lines are hardware-small.
    std::uint8_t line[256];
    T3D_ASSERT(line_bytes <= sizeof(line),
               "cache line larger than fill buffer");

    if (_l2 && _l2->probe(pa)) {
        _clock.advance(_config.l2HitCycles);
        _l2->read(line_pa, line, line_bytes);
    } else {
        // The annex index is consumed before memory: DRAM sees only
        // the 27-bit segment offset, so synonyms share bank state.
        auto access = _dram.access(_clock.now(), offsetOfPa(line_pa));
        _clock.advanceTo(access.complete);
        _storage.readBlock(offsetOfPa(line_pa), line, line_bytes);
        if (_l2)
            _l2->fill(line_pa, line);
    }

    _dcache.fill(line_pa, line);
    _dcache.read(pa, dst, len);
}

void
AlphaCore::storeBytes(Addr va, const void *src, std::size_t len)
{
    ++_stores;
    _wb.commitUpTo(_clock.now());
    _clock.advance(_tlb.access(va));

    const Addr pa = paOfVa(va);
    // Write-through, no write-allocate: update any cached copies...
    _dcache.updateIfPresent(pa, src, len);
    if (_l2)
        _l2->updateIfPresent(pa, src, len);
    // ...and hand the store to the write buffer. The tag is
    // one-shot: it applies only to the store it was latched for.
    _clock.advance(_wb.write(_clock.now(), pa, src, len, _storeTag));
    _storeTag = 0;
}

std::uint64_t
AlphaCore::loadU64(Addr va)
{
    T3D_FATAL_IF((va & 7) != 0, "unaligned LDQ: va=", va);
    std::uint64_t v = 0;
    loadBytes(va, &v, sizeof(v));
    return v;
}

std::uint32_t
AlphaCore::loadU32(Addr va)
{
    T3D_FATAL_IF((va & 3) != 0, "unaligned LDL: va=", va);
    std::uint32_t v = 0;
    loadBytes(va, &v, sizeof(v));
    return v;
}

void
AlphaCore::storeU64(Addr va, std::uint64_t value)
{
    T3D_FATAL_IF((va & 7) != 0, "unaligned STQ: va=", va);
    storeBytes(va, &value, sizeof(value));
}

void
AlphaCore::storeU32(Addr va, std::uint32_t value)
{
    T3D_FATAL_IF((va & 3) != 0, "unaligned STL: va=", va);
    storeBytes(va, &value, sizeof(value));
}

std::uint8_t
AlphaCore::loadU8(Addr va)
{
    const Addr aligned = va & ~Addr{7};
    std::uint64_t word = loadU64(aligned);
    chargeRegOps(1); // EXTBL
    return static_cast<std::uint8_t>(
        extbl(word, static_cast<unsigned>(va & 7)));
}

void
AlphaCore::storeU8(Addr va, std::uint8_t value)
{
    // The 21064 has no byte stores: read-modify-write the containing
    // quadword. NOT atomic (§4.5).
    const Addr aligned = va & ~Addr{7};
    std::uint64_t word = loadU64(aligned);
    chargeRegOps(2); // MSKBL + INSBL
    word = mergeByte(word, static_cast<unsigned>(va & 7), value);
    storeU64(aligned, word);
}

void
AlphaCore::mb()
{
    Cycles done = _wb.drainAll(_clock.now());
    _clock.advance(_config.mbCycles);
    _clock.syncTo(done);
    _wb.commitUpTo(_clock.now());
}

void
AlphaCore::flushLine(Addr va)
{
    const Addr pa = paOfVa(va);
    _dcache.invalidate(pa);
    _clock.advance(_config.flushLineCycles);
}

void
AlphaCore::flushAll()
{
    _dcache.invalidateAll();
    _clock.advance(_config.flushAllCycles);
}

std::uint64_t
AlphaCore::peekU64(Addr va) const
{
    const Addr pa = paOfVa(va);
    std::uint64_t v = 0;
    if (_dcache.probe(pa)) {
        _dcache.read(pa, &v, sizeof(v));
        return v;
    }
    v = _storage.readU64(offsetOfPa(pa));
    // Overlay pending write-buffer bytes (the core's own view).
    auto &wb = const_cast<WriteBuffer &>(_wb);
    wb.forward(_clock.now(), pa, &v, sizeof(v));
    return v;
}

void
AlphaCore::pokeU64(Addr va, std::uint64_t value)
{
    const Addr pa = paOfVa(va);
    _storage.writeU64(offsetOfPa(pa), value);
    _dcache.updateIfPresent(pa, &value, sizeof(value));
    if (_l2)
        _l2->updateIfPresent(pa, &value, sizeof(value));
}

} // namespace t3dsim::alpha
