/**
 * @file
 * Tests for the parallel scheduler's conservative lookahead.
 *
 * W must be positive (a zero-width window cannot make progress) and
 * must not exceed any latency along which one PE's action can reach
 * another PE's wake-up machinery: signaling-store arrival, message
 * delivery, and barrier completion. (fetch&inc / swap are serialized
 * by the grant protocol, not bounded by W — see lookahead.hh.)
 *
 * The adaptive-horizon tests pin the second half of the contract:
 * widening a shard's window to W past the other shards' front keys
 * must never move a simulated timestamp (bit-identical to both the
 * sequential reference and the fixed-horizon parallel runs), and a
 * comm-sparse phase must actually widen (lookaheadWidenings() > 0) —
 * otherwise the adaptive path is dead code.
 */

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/lookahead.hh"
#include "splitc/parallel_executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::conservativeLookahead;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

/** Every wake-capable cross-PE latency @p config can generate. */
std::vector<Cycles>
crossPeLatencies(const MachineConfig &config)
{
    const Cycles min_transit =
        config.numPes > 1 ? config.hopCycles : Cycles{0};
    return {
        config.shell.writeInjectBaseCycles + min_transit,
        config.shell.msgSendCycles + min_transit,
        config.shell.barrierLatencyCycles,
    };
}

void
expectConservative(const MachineConfig &config)
{
    const Cycles w = conservativeLookahead(config);
    EXPECT_GE(w, 1u);
    for (Cycles latency : crossPeLatencies(config)) {
        if (latency > 0) {
            EXPECT_LE(w, latency)
                << "lookahead exceeds a cross-PE influence path";
        }
    }
}

TEST(Lookahead, DefaultT3dConfig)
{
    const MachineConfig config = MachineConfig::t3d();
    const Cycles w = conservativeLookahead(config);
    // writeInjectBaseCycles (5) + one hop (2) is the shortest
    // cross-PE path of the calibrated machine.
    EXPECT_EQ(w, config.shell.writeInjectBaseCycles + config.hopCycles);
    expectConservative(config);
}

TEST(Lookahead, ScalesAcrossMachineSizes)
{
    for (std::uint32_t pes : {2u, 4u, 32u, 256u, 512u})
        expectConservative(MachineConfig::t3d(pes));
}

TEST(Lookahead, DegenerateSinglePe)
{
    // One PE: no cross-PE path exists; the window must still be
    // positive so the (trivially sequential) run advances.
    const MachineConfig config = MachineConfig::t3d(1);
    EXPECT_GE(conservativeLookahead(config), 1u);
    expectConservative(config);
}

TEST(Lookahead, ZeroHopNetwork)
{
    MachineConfig config = MachineConfig::t3d(8);
    config.hopCycles = 0;
    const Cycles w = conservativeLookahead(config);
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, config.shell.writeInjectBaseCycles);
    expectConservative(config);
}

TEST(Lookahead, DegenerateZeroCostShell)
{
    // Even a config with every relevant cost zeroed must yield a
    // positive window.
    MachineConfig config = MachineConfig::t3d(4);
    config.hopCycles = 0;
    config.shell.writeInjectBaseCycles = 0;
    config.shell.msgSendCycles = 0;
    config.shell.barrierLatencyCycles = 0;
    EXPECT_EQ(conservativeLookahead(config), 1u);
}

TEST(Lookahead, TracksTheCheapestPath)
{
    // Make the barrier the cheapest path; W must follow it down.
    MachineConfig config = MachineConfig::t3d(16);
    config.shell.barrierLatencyCycles = 3;
    EXPECT_EQ(conservativeLookahead(config), 3u);
    expectConservative(config);
}

// ---------------------------------------------------------------------
// Adaptive lookahead (SplitcConfig::adaptiveLookahead)
// ---------------------------------------------------------------------

splitc::SplitcConfig
schedConfig(int host_threads, bool adaptive)
{
    splitc::SplitcConfig cfg;
    cfg.hostThreads = host_threads;
    cfg.adaptiveLookahead = adaptive;
    return cfg;
}

/**
 * A program with both horizon regimes on the critical path: a
 * comm-sparse stretch of skewed pure compute (where the adaptive
 * horizon should run far past T + W) followed by a comm-dense ghost
 * exchange (where the other shards' fronts pin the horizon near the
 * conservative one).
 */
std::vector<Cycles>
runMixedPhases(std::uint32_t pes, const splitc::SplitcConfig &cfg)
{
    Machine m(MachineConfig::t3d(pes));
    constexpr Addr ghostBase = 0x50000;

    return runSpmd(m, [&](Proc &p) -> ProcTask {
        for (int round = 0; round < 3; ++round) {
            p.compute((p.procs() - p.pe()) * 211 + round * 17);
            co_await p.barrier();
        }
        for (int it = 0; it < 3; ++it) {
            const PeId dst = (p.pe() + 1) % p.procs();
            p.storeU64(GlobalAddr::make(dst, ghostBase + Addr(it) * 8),
                       (std::uint64_t(p.pe()) << 16) ^
                           std::uint64_t(it));
            co_await p.storeSync(8);
            p.compute(20 + (p.pe() % 3) * 9);
            co_await p.barrier();
        }
        co_return;
    }, cfg);
}

TEST(Lookahead, AdaptiveTimingMatchesSequential)
{
    // Adaptivity on and off must both reproduce the sequential
    // reference bit-identically at every thread count.
    for (std::uint32_t pes : {8u, 16u}) {
        const auto seq = runMixedPhases(pes, schedConfig(-1, false));
        ASSERT_EQ(seq.size(), pes);
        for (int threads : {1, 2, 4, 8}) {
            EXPECT_EQ(runMixedPhases(pes, schedConfig(threads, true)),
                      seq)
                << pes << " PEs, " << threads
                << " host threads, adaptive on";
            EXPECT_EQ(runMixedPhases(pes, schedConfig(threads, false)),
                      seq)
                << pes << " PEs, " << threads
                << " host threads, adaptive off";
        }
    }
}

TEST(Lookahead, CommSparsePhaseWidensWindows)
{
    // A producer staggers two store wake-ups ~400 cycles apart, so
    // at the next window boundary the early consumer's shard holds
    // the unique globally-minimal front: its adaptive horizon is
    // pinned by the *late* consumer's front and must exceed T + W —
    // deterministically, since horizons come from the window-start
    // front snapshot — and still not move a single timestamp.
    // (16 PEs over 4 shards: PE 0 -> shard 0, PE 4 -> shard 1,
    // PE 8 -> shard 2.)
    constexpr Addr flagBase = 0x50000;
    const auto program = [](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.compute(400);
            p.storeU64(GlobalAddr::make(4, flagBase), 0x11);
            p.compute(400);
            p.storeU64(GlobalAddr::make(8, flagBase), 0x22);
        } else if (p.pe() == 4 || p.pe() == 8) {
            co_await p.storeSync(8);
            p.compute(25);
        }
        co_return;
    };

    std::vector<Cycles> fixed_times;
    {
        Machine m(MachineConfig::t3d(16));
        splitc::ParallelScheduler sched(m, schedConfig(4, false), 4);
        fixed_times = sched.run(program);
        EXPECT_EQ(sched.lookaheadWidenings(), 0u)
            << "fixed horizons must never count as widened";
    }
    {
        Machine m(MachineConfig::t3d(16));
        splitc::ParallelScheduler sched(m, schedConfig(4, true), 4);
        const auto adaptive_times = sched.run(program);
        EXPECT_GT(sched.lookaheadWidenings(), 0u)
            << "comm-sparse phase never widened a window";
        EXPECT_EQ(adaptive_times, fixed_times);
    }
}

TEST(Lookahead, TwoHopReflectionStaysSequential)
{
    // A shard's own in-window send can wake a peer whose reply lands
    // back *below* where an over-wide horizon would let the shard
    // run: the send at F reaches the peer at >= F + W and the reply
    // returns at >= F + 2W. Regression for the adaptive horizon's
    // F_i + 2W cap: PE 0 kicks a consumer on the other shard, then
    // ping-pongs with its shard sibling PE 1 while polling for the
    // consumer's Active-Message reply. PE 3 retires immediately and
    // the consumer parks waiting for the kick, so the other shard's
    // heap is empty at the critical window — an unbounded "no other
    // front" horizon would run the entire poll loop before the reply
    // exists, dispatching the AM in the wrong round (or never) and
    // shifting PE 0's finish time. (4 PEs over 2 shards: PEs 0-1 on
    // shard 0, PEs 2-3 on shard 1.)
    constexpr Addr kickAddr = 0x50000;
    constexpr Addr pongAddr = 0x50100;
    constexpr std::uint64_t tagReply = 77;
    constexpr int rounds = 40;

    std::uint64_t handled = 0;
    const auto program = [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.registerAmHandler(
                tagReply,
                [&](Proc &, const std::array<std::uint64_t, 4> &) {
                    ++handled;
                });
            for (int r = 0; r < rounds; ++r) {
                // The kick goes out mid-loop, after the other shard
                // has drained (PE 2 parked on it, PE 3 retired) — an
                // unbounded horizon would already be running this
                // whole loop in one window by then.
                if (r == 10)
                    p.storeU64(GlobalAddr::make(2, kickAddr), 0x11);
                p.compute(60);
                p.storeU64(GlobalAddr::make(1, pongAddr), 1);
                co_await p.storeSync(8);
                p.amPoll();
            }
        } else if (p.pe() == 1) {
            for (int r = 0; r < rounds; ++r) {
                co_await p.storeSync(8);
                p.storeU64(GlobalAddr::make(0, pongAddr), 1);
            }
        } else if (p.pe() == 2) {
            co_await p.storeSync(8);
            p.amDeposit(0, tagReply, {1, 0, 0, 0});
        }
        co_return;
    };

    Machine seq_m(MachineConfig::t3d(4));
    const auto seq = runSpmd(seq_m, program, schedConfig(-1, false));
    const std::uint64_t seq_handled = handled;
    EXPECT_EQ(seq_handled, 1u) << "the reply AM must dispatch in-loop";

    for (int threads : {2, 4}) {
        Machine m(MachineConfig::t3d(4));
        handled = 0;
        splitc::ParallelScheduler sched(m, schedConfig(threads, true),
                                        threads);
        EXPECT_EQ(sched.run(program), seq)
            << threads << " host threads, adaptive on";
        EXPECT_EQ(handled, seq_handled)
            << threads << " host threads, adaptive on";
    }
}

TEST(Lookahead, SoloShardRunsUnbounded)
{
    // One shard owning every PE has no "other" front to bound it:
    // with adaptivity on, every dispatched window is widened and the
    // run needs only a handful of windows (this is what keeps the
    // 1-thread ParallelScheduler overhead near the sequential
    // scheduler's cost; bench_sim_speed records the ratio).
    Machine m(MachineConfig::t3d(8));
    splitc::ParallelScheduler sched(m, schedConfig(1, true), 1);
    const auto times = sched.run([](Proc &p) -> ProcTask {
        for (int round = 0; round < 3; ++round) {
            p.compute(100 + p.pe() * 11);
            co_await p.barrier();
        }
        co_return;
    });
    ASSERT_EQ(times.size(), 8u);
    EXPECT_GT(sched.lookaheadWidenings(), 0u);
}

} // namespace
