file(REMOVE_RECURSE
  "CMakeFiles/fetch_inc_test.dir/fetch_inc_test.cc.o"
  "CMakeFiles/fetch_inc_test.dir/fetch_inc_test.cc.o.d"
  "fetch_inc_test"
  "fetch_inc_test.pdb"
  "fetch_inc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_inc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
