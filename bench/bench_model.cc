/**
 * @file
 * `t3d-model` — the analytical-model CLI (docs/MODEL.md §7): measure
 * the micro-sweeps, fit the per-primitive cost model, validate the
 * composed predictions against simulated app ladders, and answer
 * extrapolation questions ("predicted cycles at 256K PEs?") in host
 * milliseconds instead of simulation hours.
 *
 *   t3d-model sweeps [--out=F]
 *       Run the counter-isolated micro-sweeps on fresh machines and
 *       write a t3dsim-sweeps-v1 file (default model_sweeps.json).
 *
 *   t3d-model fit [--sweeps=F] [--out=F]
 *       Fit the cost model (re-measuring when --sweeps is absent)
 *       and write a t3dsim-model-v1 file (default model_fit.json);
 *       prints every fitted coefficient with residual diagnostics.
 *
 *   t3d-model validate [--quick] [--pes=A,B] [--model=F] [--out=F]
 *                      [--band=PCT]
 *       Simulate the em3d/bsort/qcd ladders at each PE count, diff
 *       against the composed predictions, print the error-band table
 *       and write BENCH_model_validate.json. Exits non-zero when the
 *       median |error| exceeds the band (default 10%).
 *
 *   t3d-model extrapolate --pes=N [--workload=W] [--train=A,B,C]
 *                         [--scale=K] [--model=F]
 *       Fit per-rung signature scaling over small training tori,
 *       evaluate the composition at N PEs (and K x problem size) and
 *       report predicted cycles, host-memory footprint to simulate
 *       at that scale, and the model evaluation cost.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "model/apps_sig.hh"
#include "model/compose.hh"
#include "model/measure.hh"
#include "model/primitives.hh"
#include "model/sweep.hh"
#include "model/validate.hh"

using namespace t3dsim;

namespace
{

std::vector<std::uint32_t>
parsePeList(const std::string &s)
{
    std::vector<std::uint32_t> pes;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        pes.push_back(std::uint32_t(std::stoul(item)));
    return pes;
}

/** Measure + fit, or load a t3dsim-model-v1 file when given. */
bool
obtainModel(const std::string &model_path, model::CostModel &cost,
            std::vector<model::Sweep> *sweeps_out = nullptr)
{
    if (!model_path.empty()) {
        std::string error;
        const model::Json doc = model::Json::parseFile(model_path,
                                                       &error);
        if (!model::readModelJson(doc, cost, &error)) {
            std::cerr << "error: " << model_path << ": " << error
                      << "\n";
            return false;
        }
        return true;
    }
    std::string error;
    std::vector<model::Sweep> sweeps = model::measureAll(&error);
    if (sweeps.empty()) {
        std::cerr << "error: sweeps failed: " << error << "\n";
        return false;
    }
    model::FitReport report;
    cost = model::fitCostModel(sweeps, &report);
    for (const std::string &w : report.warnings)
        std::cerr << "fit warning: " << w << "\n";
    if (sweeps_out)
        *sweeps_out = std::move(sweeps);
    return true;
}

int
cmdSweeps(const std::string &out_path)
{
    std::string error;
    const std::vector<model::Sweep> sweeps = model::measureAll(&error);
    if (sweeps.empty()) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    model::writeSweepsJson(os, sweeps);
    std::size_t points = 0;
    for (const model::Sweep &s : sweeps)
        points += s.points.size();
    std::cout << "wrote " << out_path << " (" << sweeps.size()
              << " sweeps, " << points << " points)\n";
    return os ? 0 : 1;
}

int
cmdFit(const std::string &sweeps_path, const std::string &out_path)
{
    std::vector<model::Sweep> sweeps;
    std::string error;
    if (!sweeps_path.empty()) {
        const model::Json doc = model::Json::parseFile(sweeps_path,
                                                       &error);
        if (!model::readSweepsJson(doc, sweeps, &error)) {
            std::cerr << "error: " << sweeps_path << ": " << error
                      << "\n";
            return 1;
        }
    } else {
        sweeps = model::measureAll(&error);
        if (sweeps.empty()) {
            std::cerr << "error: sweeps failed: " << error << "\n";
            return 1;
        }
    }

    model::FitReport report;
    const model::CostModel cost = model::fitCostModel(sweeps, &report);

    std::printf("%-22s %-20s %12s  %s\n", "term", "counter",
                "cycles/unit", "source");
    for (const model::CostTerm &t : cost.terms) {
        std::printf("%-22s %-20s %12.3f  %s%s\n", t.name.c_str(),
                    t.counter.c_str(), t.beta,
                    t.fitted ? "fit" : "assumed",
                    t.sweeps.empty() ? ""
                                     : (" [" + t.sweeps + "]").c_str());
    }
    std::printf("BLT read: %.0f + %.3f/byte; bulk-get prefetch: "
                "%.0f + %.3f/byte; crossover %.0f bytes\n",
                cost.bltRead.intercept, cost.bltRead.slope,
                cost.bulkGetPrefetch.intercept,
                cost.bulkGetPrefetch.slope, cost.bltCrossoverBytes);
    for (const std::string &w : report.warnings)
        std::cerr << "warning: " << w << "\n";

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    model::writeModelJson(os, cost);
    std::cout << "wrote " << out_path << "\n";
    return os ? 0 : 1;
}

/** Mean nanoseconds per predict() call over the validation rows. */
double
timePredictions(const model::CostModel &cost,
                const std::vector<model::LadderPoint> &points)
{
    if (points.empty())
        return 0;
    const int reps = 1000;
    double acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        for (const model::LadderPoint &pt : points)
            acc += model::predict(cost, pt.sig).cycles;
    }
    const auto t1 = std::chrono::steady_clock::now();
    volatile double sink = acc;
    (void)sink;
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count()) /
        (double(reps) * double(points.size()));
}

int
cmdValidate(bool quick, std::string pes_list,
            const std::string &model_path, std::string out_path,
            double band_pct)
{
    if (pes_list.empty())
        pes_list = quick ? "32" : "32,256";
    if (out_path.empty())
        out_path = "BENCH_model_validate.json";
    const std::vector<std::uint32_t> pe_counts =
        parsePeList(pes_list);

    model::CostModel cost;
    if (!obtainModel(model_path, cost))
        return 1;

    // Simulate every ladder once, keeping the points for timing.
    std::vector<model::LadderPoint> all_points;
    std::vector<model::ErrorRow> rows;
    em3d::Config em3d_cfg;
    apps::bsort::Config bsort_cfg;
    apps::qcd::Config qcd_cfg;
    if (quick)
        em3d_cfg.nodesPerPe = 100;
    for (std::uint32_t pes : pe_counts) {
        for (auto &&ladder :
             {model::runEm3dLadder(pes, em3d_cfg),
              model::runBsortLadder(pes, bsort_cfg),
              model::runQcdLadder(pes, qcd_cfg)}) {
            auto batch = model::validateLadder(cost, ladder);
            rows.insert(rows.end(), batch.begin(), batch.end());
            all_points.insert(all_points.end(), ladder.begin(),
                              ladder.end());
        }
    }
    const model::ValidationReport report =
        model::summarize(std::move(rows), band_pct);
    std::cout << model::reportMarkdown(report);

    const double ns_per_predict = timePredictions(cost, all_points);
    std::printf("model eval: %.0f ns/prediction\n", ns_per_predict);

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    os.precision(17);
    os << "{\n  \"bench\": \"model_validate\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"band_pct\": " << band_pct << ",\n"
       << "  \"median_abs_error_pct\": " << report.medianAbsErrorPct
       << ",\n  \"max_abs_error_pct\": " << report.maxAbsErrorPct
       << ",\n  \"flagged_rows\": " << report.flaggedRows
       << ",\n  \"ns_per_prediction\": " << ns_per_predict
       << ",\n  \"per_workload_median_pct\": {";
    for (std::size_t i = 0; i < report.perWorkloadMedian.size(); ++i) {
        const auto &[name, median] = report.perWorkloadMedian[i];
        os << (i ? ", " : "") << "\"" << name << "\": " << median;
    }
    os << "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
        const model::ErrorRow &r = report.rows[i];
        os << "    {\"workload\": \"" << r.workload
           << "\", \"rung\": \"" << r.rung << "\", \"pes\": " << r.pes
           << ", \"sim_cycles\": " << r.simulatedCycles
           << ", \"predicted_cycles\": " << r.predictedCycles
           << ", \"error_pct\": " << r.errorPct
           << ", \"flags\": " << r.flags.size() << "}"
           << (i + 1 < report.rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    const bool pass = report.medianAbsErrorPct <= band_pct;
    std::cout << "validate: "
              << (pass ? "PASS" : "FAIL (median above band)") << "\n";
    return pass ? 0 : 1;
}

int
cmdExtrapolate(double target_pes, const std::string &workload,
               std::string train_list, double scale,
               const std::string &model_path)
{
    if (train_list.empty())
        train_list = "8,16,32,64";
    const std::vector<std::uint32_t> train = parsePeList(train_list);

    model::CostModel cost;
    if (!obtainModel(model_path, cost))
        return 1;

    // Host-memory footprint of *simulating* at the target scale:
    // fit residentModelBytes of a bare machine against torus size.
    std::vector<model::FitPoint> foot;
    for (std::uint32_t pes : train) {
        machine::Machine m(machine::MachineConfig::t3d(pes));
        foot.push_back({double(pes), double(m.residentModelBytes())});
    }
    const model::ScalingFit foot_fit = model::fitScaling(foot);

    // Train signatures per rung at each torus size.
    struct Trained
    {
        std::vector<model::Signature> sigs; // one per train size
    };
    std::vector<Trained> rungs;
    std::vector<std::string> labels;
    for (std::uint32_t pes : train) {
        std::vector<model::LadderPoint> points;
        if (workload.empty() || workload == "em3d") {
            auto l = model::runEm3dLadder(pes);
            points.insert(points.end(), l.begin(), l.end());
        }
        if (workload.empty() || workload == "bsort") {
            auto l = model::runBsortLadder(pes);
            points.insert(points.end(), l.begin(), l.end());
        }
        if (workload.empty() || workload == "qcd") {
            auto l = model::runQcdLadder(pes);
            points.insert(points.end(), l.begin(), l.end());
        }
        if (rungs.empty()) {
            rungs.resize(points.size());
            for (const model::LadderPoint &pt : points)
                labels.push_back(pt.sig.workload + "/" + pt.sig.rung);
        }
        for (std::size_t i = 0;
             i < points.size() && i < rungs.size(); ++i)
            rungs[i].sigs.push_back(points[i].sig);
    }
    if (rungs.empty()) {
        std::cerr << "error: unknown workload '" << workload << "'\n";
        return 1;
    }

    // The extrapolation itself: fit scaling, evaluate, compose —
    // timed, because answering fast IS the feature.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::pair<std::string, model::Prediction>> predictions;
    for (std::size_t i = 0; i < rungs.size(); ++i) {
        const model::SignatureModel sm =
            model::fitSignatureScaling(rungs[i].sigs);
        model::Signature sig = sm.at(target_pes);
        if (scale != 1.0) {
            // Problem size scales the per-PE work linearly (both the
            // counted ops and the closed-form compute).
            for (auto &[name, value] : sig.perPe)
                value *= scale;
            sig.computeCyclesPerPe *= scale;
        }
        predictions.emplace_back(labels[i],
                                 model::predict(cost, sig));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double eval_ms =
        double(std::chrono::duration_cast<std::chrono::microseconds>(
                   t1 - t0)
                   .count()) /
        1000.0;

    std::printf("extrapolation to %.0f PEs (problem scale %.1fx), "
                "trained on %s:\n",
                target_pes, scale, train_list.c_str());
    for (const auto &[label, pred] : predictions) {
        std::printf("  %-18s %16.0f cycles (%.3f s at 150 MHz)%s\n",
                    label.c_str(), pred.cycles,
                    pred.cycles / 150.0e6,
                    pred.flags.empty() ? "" : "  [flagged]");
        for (const std::string &f : pred.flags)
            std::printf("    flag: %s\n", f.c_str());
    }
    const double foot_bytes = foot_fit.eval(target_pes);
    std::printf("simulation footprint at %.0f PEs: ~%.1f GiB "
                "(%s fit over bare machines)\n",
                target_pes, foot_bytes / double(1024 * MiB),
                model::scalingTermName(foot_fit.term));
    std::printf("model evaluation: %.2f ms for %zu rungs\n", eval_ms,
                predictions.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cmd = argc > 1 ? argv[1] : "";
    bool quick = false;
    std::string out_path, sweeps_path, model_path, pes_list,
        train_list, workload;
    double band_pct = 10.0, target_pes = 0, scale = 1.0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--sweeps=", 0) == 0)
            sweeps_path = arg.substr(9);
        else if (arg.rfind("--model=", 0) == 0)
            model_path = arg.substr(8);
        else if (arg.rfind("--pes=", 0) == 0)
            pes_list = arg.substr(6);
        else if (arg.rfind("--train=", 0) == 0)
            train_list = arg.substr(8);
        else if (arg.rfind("--workload=", 0) == 0)
            workload = arg.substr(11);
        else if (arg.rfind("--band=", 0) == 0)
            band_pct = std::stod(arg.substr(7));
        else if (arg.rfind("--scale=", 0) == 0)
            scale = std::stod(arg.substr(8));
        else {
            std::cerr << "error: unknown option " << arg << "\n";
            return 2;
        }
    }

    if (cmd == "sweeps")
        return cmdSweeps(out_path.empty() ? "model_sweeps.json"
                                          : out_path);
    if (cmd == "fit")
        return cmdFit(sweeps_path,
                      out_path.empty() ? "model_fit.json" : out_path);
    if (cmd == "validate")
        return cmdValidate(quick, pes_list, model_path, out_path,
                           band_pct);
    if (cmd == "extrapolate") {
        if (pes_list.empty()) {
            std::cerr << "error: extrapolate needs --pes=N\n";
            return 2;
        }
        target_pes = std::stod(pes_list);
        return cmdExtrapolate(target_pes, workload, train_list, scale,
                              model_path);
    }
    std::cerr
        << "usage: t3d-model <sweeps|fit|validate|extrapolate> "
           "[options]\n"
           "  sweeps       [--out=F]\n"
           "  fit          [--sweeps=F] [--out=F]\n"
           "  validate     [--quick] [--pes=A,B] [--model=F] "
           "[--out=F] [--band=PCT]\n"
           "  extrapolate  --pes=N [--workload=W] [--train=A,B,C] "
           "[--scale=K] [--model=F]\n"
           "docs/MODEL.md has the handbook.\n";
    return cmd.empty() ? 2 : 2;
}
