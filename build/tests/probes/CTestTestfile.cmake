# CMake generated Testfile for 
# Source directory: /root/repo/tests/probes
# Build directory: /root/repo/build/tests/probes
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/probes/stride_probe_test[1]_include.cmake")
include("/root/repo/build/tests/probes/table_test[1]_include.cmake")
