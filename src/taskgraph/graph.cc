#include "taskgraph/graph.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "model/json.hh"

namespace t3dsim::taskgraph
{

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Auto:
        return "auto";
      case Mechanism::Local:
        return "local";
      case Mechanism::Store:
        return "store";
      case Mechanism::Put:
        return "put";
      case Mechanism::Get:
        return "get";
      case Mechanism::Blt:
        return "blt";
      case Mechanism::Am:
        return "am";
      case Mechanism::Message:
        return "message";
    }
    return "?";
}

std::uint64_t
fnv1aBytes(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

bool
mechanismFromName(const std::string &name, Mechanism &out)
{
    for (Mechanism m :
         {Mechanism::Auto, Mechanism::Local, Mechanism::Store,
          Mechanism::Put, Mechanism::Get, Mechanism::Blt, Mechanism::Am,
          Mechanism::Message}) {
        if (name == mechanismName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

/** A non-negative integral number member, with typed diagnostics. */
bool
uintField(const model::Json &obj, const std::string &key,
          const std::string &where, std::uint64_t fallback,
          std::uint64_t &out, std::string &err)
{
    if (!obj.has(key)) {
        out = fallback;
        return true;
    }
    const model::Json &v = obj[key];
    if (!v.isNumber() || v.number() < 0 ||
        v.number() != static_cast<double>(
                          static_cast<std::uint64_t>(v.number()))) {
        err = where + ": '" + key + "' must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(v.number());
    return true;
}

} // namespace

bool
TaskGraph::parse(const model::Json &doc, TaskGraph &out, std::string &err)
{
    out = TaskGraph{};
    if (!doc.isObject()) {
        err = "graph: top level must be a JSON object";
        return false;
    }
    if (doc.has("name")) {
        if (!doc["name"].isString()) {
            err = "graph: 'name' must be a string";
            return false;
        }
        out.name = doc["name"].str();
    }

    const model::Json &tasks = doc["tasks"];
    if (!tasks.isArray() || tasks.array().empty()) {
        err = "graph: 'tasks' must be a non-empty array";
        return false;
    }
    std::unordered_map<std::string, std::uint32_t> byId;
    out.tasks.reserve(tasks.array().size());
    for (std::size_t i = 0; i < tasks.array().size(); ++i) {
        const model::Json &t = tasks.array()[i];
        const std::string where = "task " + std::to_string(i);
        if (!t.isObject()) {
            err = where + ": must be an object";
            return false;
        }
        Task task;
        if (!t.has("id") || !t["id"].isString() || t["id"].str().empty()) {
            err = where + ": missing id";
            return false;
        }
        task.id = t["id"].str();
        if (!byId.emplace(task.id, static_cast<std::uint32_t>(i)).second) {
            err = where + ": duplicate task id '" + task.id + "'";
            return false;
        }
        if (!uintField(t, "cycles", where, 0, task.cycles, err) ||
            !uintField(t, "flops", where, 0, task.flops, err))
            return false;
        if (t.has("pe")) {
            const model::Json &pe = t["pe"];
            if (!pe.isNumber() ||
                pe.number() != static_cast<double>(
                                   static_cast<std::int64_t>(pe.number()))) {
                err = where + ": 'pe' must be an integer";
                return false;
            }
            task.pe = static_cast<std::int32_t>(pe.number());
        }
        out.tasks.push_back(std::move(task));
    }

    const model::Json &edges = doc["edges"];
    if (doc.has("edges") && !edges.isArray()) {
        err = "graph: 'edges' must be an array";
        return false;
    }
    if (edges.isArray()) {
        out.edges.reserve(edges.array().size());
        for (std::size_t i = 0; i < edges.array().size(); ++i) {
            const model::Json &e = edges.array()[i];
            const std::string where = "edge " + std::to_string(i);
            if (!e.isObject()) {
                err = where + ": must be an object";
                return false;
            }
            Edge edge;
            for (const char *end : {"src", "dst"}) {
                if (!e.has(end) || !e[end].isString()) {
                    err = where + ": missing '" + end + "' task id";
                    return false;
                }
                auto it = byId.find(e[end].str());
                if (it == byId.end()) {
                    err = where + ": unknown " + end + " task '" +
                          e[end].str() + "'";
                    return false;
                }
                (end[0] == 's' ? edge.src : edge.dst) = it->second;
            }
            if (!uintField(e, "bytes", where, 0, edge.bytes, err))
                return false;
            if (e.has("mech")) {
                if (!e["mech"].isString() ||
                    !mechanismFromName(e["mech"].str(), edge.mech)) {
                    err = where + ": unknown mechanism '" +
                          e["mech"].str() + "'";
                    return false;
                }
            }
            out.edges.push_back(edge);
        }
    }
    return true;
}

bool
TaskGraph::parseText(const std::string &text, TaskGraph &out,
                     std::string &err)
{
    std::string parse_err;
    model::Json doc = model::Json::parse(text, &parse_err);
    if (!parse_err.empty()) {
        err = "bad JSON: " + parse_err;
        return false;
    }
    return parse(doc, out, err);
}

bool
TaskGraph::validate(std::uint32_t pes, std::string &err)
{
    if (pes == 0) {
        err = "graph: machine must have at least one PE";
        return false;
    }
    if (tasks.empty()) {
        err = "graph: 'tasks' must be a non-empty array";
        return false;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &t = tasks[i];
        if (t.pe >= 0 && static_cast<std::uint32_t>(t.pe) >= pes) {
            err = "task " + std::to_string(i) + " ('" + t.id + "'): pe " +
                  std::to_string(t.pe) + " out of range for " +
                  std::to_string(pes) + " PEs";
            return false;
        }
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const Edge &e = edges[i];
        const std::string where = "edge " + std::to_string(i);
        if (e.src >= tasks.size() || e.dst >= tasks.size()) {
            err = where + ": dangling endpoint (task index out of range)";
            return false;
        }
        if (e.src == e.dst) {
            err = where + ": self-loop on task '" + tasks[e.src].id + "'";
            return false;
        }
        if (e.mech == Mechanism::Am && e.bytes > 24) {
            err = where + ": am payload is capped at 24 bytes (got " +
                  std::to_string(e.bytes) + ")";
            return false;
        }
        if (e.mech == Mechanism::Message && e.bytes > 24) {
            err = where + ": message payload is capped at 24 bytes (got " +
                  std::to_string(e.bytes) + ")";
            return false;
        }
    }

    // Kahn's algorithm in task-index order: detects cycles and yields
    // the longest-path level for every task (the superstep the
    // lowering schedules it into).
    std::vector<std::uint32_t> indegree(tasks.size(), 0);
    std::vector<std::vector<std::uint32_t>> out_edges(tasks.size());
    for (std::uint32_t i = 0; i < edges.size(); ++i) {
        ++indegree[edges[i].dst];
        out_edges[edges[i].src].push_back(i);
    }
    std::vector<std::uint32_t> frontier;
    for (std::uint32_t t = 0; t < tasks.size(); ++t) {
        tasks[t].level = 0;
        if (indegree[t] == 0)
            frontier.push_back(t);
    }
    std::size_t processed = 0;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
        const std::uint32_t t = frontier[head];
        ++processed;
        for (std::uint32_t ei : out_edges[t]) {
            const std::uint32_t dst = edges[ei].dst;
            tasks[dst].level =
                std::max(tasks[dst].level, tasks[t].level + 1);
            if (--indegree[dst] == 0)
                frontier.push_back(dst);
        }
    }
    if (processed != tasks.size()) {
        for (std::uint32_t t = 0; t < tasks.size(); ++t) {
            if (indegree[t] != 0) {
                err = "graph: cycle through task '" + tasks[t].id + "'";
                return false;
            }
        }
    }
    return true;
}

std::uint64_t
TaskGraph::contentHash() const
{
    std::ostringstream os;
    os << "g1|" << name << '|';
    for (const Task &t : tasks)
        os << 't' << t.id << ',' << t.cycles << ',' << t.flops << ','
           << t.pe << ';';
    for (const Edge &e : edges)
        os << 'e' << e.src << ',' << e.dst << ',' << e.bytes << ','
           << mechanismName(e.mech) << ';';
    const std::string s = os.str();
    return fnv1aBytes(s.data(), s.size());
}

} // namespace t3dsim::taskgraph
