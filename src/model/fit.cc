#include "model/fit.hh"

#include <cmath>

namespace t3dsim::model
{

const char *
scalingTermName(ScalingTerm t)
{
    switch (t) {
      case ScalingTerm::Constant: return "const";
      case ScalingTerm::Log2: return "log2";
      case ScalingTerm::Sqrt: return "sqrt";
      case ScalingTerm::Linear: return "linear";
      case ScalingTerm::PLogP: return "plogp";
      case ScalingTerm::Inverse: return "inverse";
    }
    return "?";
}

bool
scalingTermFromName(const std::string &name, ScalingTerm &out)
{
    for (ScalingTerm t : {ScalingTerm::Constant, ScalingTerm::Log2,
                          ScalingTerm::Sqrt, ScalingTerm::Linear,
                          ScalingTerm::PLogP, ScalingTerm::Inverse}) {
        if (name == scalingTermName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

double
scalingTermValue(ScalingTerm t, double p)
{
    switch (t) {
      case ScalingTerm::Constant:
        return 0;
      case ScalingTerm::Log2:
        return p > 1 ? std::log2(p) : 0;
      case ScalingTerm::Sqrt:
        return std::sqrt(p);
      case ScalingTerm::Linear:
        return p;
      case ScalingTerm::PLogP:
        return p > 1 ? p * std::log2(p) : 0;
      case ScalingTerm::Inverse:
        return p != 0 ? 1.0 / p : 0;
    }
    return 0;
}

namespace
{

/** OLS of y on t, returning (intercept, slope). */
void
ols(const std::vector<FitPoint> &pts,
    double (*transform)(double, const void *), const void *ctx,
    double &intercept, double &slope)
{
    const std::size_t n = pts.size();
    if (n == 0) {
        intercept = slope = 0;
        return;
    }
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const FitPoint &p : pts) {
        const double t = transform(p.x, ctx);
        sx += t;
        sy += p.y;
        sxx += t * t;
        sxy += t * p.y;
    }
    const double det = n * sxx - sx * sx;
    if (std::abs(det) < 1e-12 * (sxx * n + 1)) {
        slope = 0;
        intercept = sy / n;
        return;
    }
    slope = (n * sxy - sx * sy) / det;
    intercept = (sy - slope * sx) / n;
}

double
sumSquaredError(const std::vector<FitPoint> &pts, double intercept,
                double slope,
                double (*transform)(double, const void *),
                const void *ctx)
{
    double ss = 0;
    for (const FitPoint &p : pts) {
        const double e = intercept + slope * transform(p.x, ctx) - p.y;
        ss += e * e;
    }
    return ss;
}

} // namespace

LinearFit
fitLinear(const std::vector<FitPoint> &points)
{
    LinearFit fit;
    const auto identity = +[](double x, const void *) { return x; };
    ols(points, identity, nullptr, fit.intercept, fit.slope);
    fit.quality = residuals(
        points, [&](double x) { return fit.eval(x); });
    return fit;
}

ScalingFit
fitScaling(const std::vector<FitPoint> &points)
{
    ScalingFit best;
    bool first = true;
    double bestSs = 0;
    for (ScalingTerm term :
         {ScalingTerm::Constant, ScalingTerm::Log2, ScalingTerm::Sqrt,
          ScalingTerm::Linear, ScalingTerm::PLogP,
          ScalingTerm::Inverse}) {
        const auto transform = +[](double x, const void *ctx) {
            return scalingTermValue(
                *static_cast<const ScalingTerm *>(ctx), x);
        };
        ScalingFit fit;
        fit.term = term;
        ols(points, transform, &term, fit.intercept, fit.slope);
        const double ss = sumSquaredError(points, fit.intercept,
                                          fit.slope, transform, &term);
        // Prefer the simpler term unless a later one is a real
        // improvement, so exact-constant sweeps don't pick up noise
        // terms with near-zero slopes.
        if (first || ss < bestSs * (1.0 - 1e-9)) {
            best = fit;
            bestSs = ss;
            first = false;
        }
    }
    best.quality = residuals(
        points, [&](double x) { return best.eval(x); });
    return best;
}

bool
solveLeastSquares(const std::vector<std::vector<double>> &rows,
                  const std::vector<double> &y,
                  std::vector<double> &beta)
{
    const std::size_t n = rows.size();
    const std::size_t k = n ? rows[0].size() : 0;
    beta.assign(k, 0.0);
    if (k == 0 || n < k || y.size() != n)
        return false;

    // Normal equations: A = XᵀX (k×k), b = Xᵀy.
    std::vector<std::vector<double>> a(k, std::vector<double>(k, 0));
    std::vector<double> b(k, 0);
    double scale = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            b[p] += rows[i][p] * y[i];
            for (std::size_t q = 0; q < k; ++q)
                a[p][q] += rows[i][p] * rows[i][q];
        }
    }
    for (std::size_t p = 0; p < k; ++p)
        scale = std::max(scale, std::abs(a[p][p]));
    if (scale <= 0)
        return false;

    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < k; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < k; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-9 * scale) {
            beta.assign(k, 0.0);
            return false;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t r = col + 1; r < k; ++r) {
            const double f = a[r][col] / a[col][col];
            for (std::size_t c = col; c < k; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    for (std::size_t col = k; col-- > 0;) {
        double s = b[col];
        for (std::size_t c = col + 1; c < k; ++c)
            s -= a[col][c] * beta[c];
        beta[col] = s / a[col][col];
    }
    return true;
}

double
medianAbsRelError(const std::vector<double> &predicted,
                  const std::vector<double> &observed)
{
    std::vector<double> rel;
    const std::size_t n =
        std::min(predicted.size(), observed.size());
    for (std::size_t i = 0; i < n; ++i) {
        const double denom =
            std::abs(observed[i]) > 1 ? std::abs(observed[i]) : 1;
        rel.push_back(std::abs(predicted[i] - observed[i]) / denom);
    }
    if (rel.empty())
        return 0;
    std::sort(rel.begin(), rel.end());
    return rel[rel.size() / 2];
}

FitQuality
qualityFromPairs(const std::vector<double> &predicted,
                 const std::vector<double> &observed)
{
    std::vector<FitPoint> pts;
    const std::size_t n =
        std::min(predicted.size(), observed.size());
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pts.push_back({predicted[i], observed[i]});
    return residuals(pts, [](double pred) { return pred; });
}

} // namespace t3dsim::model
