#include "model/compose.hh"

#include <algorithm>

#include "probes/counters.hh"

namespace t3dsim::model
{

double
Signature::counter(const std::string &name) const
{
    for (const auto &[k, v] : perPe) {
        if (k == name)
            return v;
    }
    return 0;
}

void
Signature::setCounter(const std::string &name, double value)
{
    for (auto &[k, v] : perPe) {
        if (k == name) {
            v = value;
            return;
        }
    }
    perPe.emplace_back(name, value);
}

Signature
signatureFromTotals(const probes::PerfCounters &totals,
                    std::uint32_t pes)
{
    Signature sig;
    sig.pes = pes;
    const auto &infos = probes::PerfCounters::infos();
    for (std::size_t i = 0; i < probes::PerfCounters::numCounters;
         ++i) {
        const double v = double(totals.value(i));
        if (v != 0)
            sig.perPe.emplace_back(infos[i].name,
                                   v / double(pes ? pes : 1));
    }
    return sig;
}

Prediction
predict(const CostModel &model, const Signature &sig)
{
    Prediction pred;
    if (sig.computeCyclesPerPe != 0) {
        pred.breakdown.emplace_back("compute",
                                    sig.computeCyclesPerPe);
        pred.cycles += sig.computeCyclesPerPe;
    }
    for (const auto &[name, value] : sig.perPe) {
        if (value == 0)
            continue;
        if (model.isDirect(name)) {
            pred.breakdown.emplace_back("direct:" + name, value);
            pred.cycles += value;
            continue;
        }
        const CostTerm *term = model.termForCounter(name);
        if (!term) {
            pred.flags.push_back("counter " + name +
                                 " unknown to the model");
            continue;
        }
        if (term->flagOnNonzero && value > 0) {
            pred.flags.push_back(
                term->counter + " nonzero (" +
                std::to_string(value) +
                "/PE): limit path, linear composition unreliable");
        }
        if (term->beta == 0)
            continue;
        const double cycles = term->beta * value;
        pred.breakdown.emplace_back(term->name, cycles);
        pred.cycles += cycles;
    }
    std::sort(pred.breakdown.begin(), pred.breakdown.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return pred;
}

SignatureModel
fitSignatureScaling(const std::vector<Signature> &measured)
{
    SignatureModel sm;
    if (measured.empty())
        return sm;
    sm.workload = measured.front().workload;
    sm.rung = measured.front().rung;
    for (const Signature &sig : measured)
        sm.trainedPes.push_back(sig.pes);

    // Union of counter names across the measured signatures (a
    // counter absent at small P may appear at large P).
    std::vector<std::string> names;
    for (const Signature &sig : measured) {
        for (const auto &[name, value] : sig.perPe) {
            if (std::find(names.begin(), names.end(), name) ==
                names.end())
                names.push_back(name);
        }
    }

    for (const std::string &name : names) {
        std::vector<FitPoint> pts;
        for (const Signature &sig : measured)
            pts.push_back({sig.pes, sig.counter(name)});
        sm.counterFits.emplace_back(name, fitScaling(pts));
    }

    std::vector<FitPoint> compute;
    for (const Signature &sig : measured)
        compute.push_back({sig.pes, sig.computeCyclesPerPe});
    sm.computeFit = fitScaling(compute);
    return sm;
}

Signature
SignatureModel::at(double pes) const
{
    Signature sig;
    sig.workload = workload;
    sig.rung = rung;
    sig.pes = pes;
    for (const auto &[name, fit] : counterFits) {
        const double v = fit.eval(pes);
        if (v > 0)
            sig.perPe.emplace_back(name, v);
    }
    sig.computeCyclesPerPe = std::max(0.0, computeFit.eval(pes));
    return sig;
}

} // namespace t3dsim::model
