/**
 * @file
 * Unit tests for the sparse backing storage.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "mem/storage.hh"
#include "sim/logging.hh"

namespace
{

using t3dsim::Addr;
using t3dsim::mem::Storage;

TEST(Storage, ZeroFilledByDefault)
{
    Storage s;
    EXPECT_EQ(s.readU8(0), 0u);
    EXPECT_EQ(s.readU64(4096), 0u);
    EXPECT_EQ(s.chunksAllocated(), 0u) << "reads must not materialize";
}

TEST(Storage, ByteRoundTrip)
{
    Storage s;
    s.writeU8(17, 0xab);
    EXPECT_EQ(s.readU8(17), 0xab);
    EXPECT_EQ(s.readU8(16), 0u);
    EXPECT_EQ(s.readU8(18), 0u);
}

TEST(Storage, WordRoundTrips)
{
    Storage s;
    s.writeU32(100, 0xdeadbeef);
    EXPECT_EQ(s.readU32(100), 0xdeadbeefu);
    s.writeU64(200, 0x0123456789abcdefull);
    EXPECT_EQ(s.readU64(200), 0x0123456789abcdefull);
}

TEST(Storage, LittleEndianLayout)
{
    Storage s;
    s.writeU64(0, 0x0807060504030201ull);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(s.readU8(i), i + 1);
}

TEST(Storage, UnalignedAccess)
{
    Storage s;
    s.writeU64(3, 0x1122334455667788ull);
    EXPECT_EQ(s.readU64(3), 0x1122334455667788ull);
    EXPECT_EQ(s.readU32(5), 0x33445566u);
}

TEST(Storage, BlockAcrossChunkBoundary)
{
    Storage s;
    const Addr boundary = Storage::chunkBytes;
    std::vector<std::uint8_t> src(4096);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7);

    s.writeBlock(boundary - 2048, src.data(), src.size());
    std::vector<std::uint8_t> dst(src.size());
    s.readBlock(boundary - 2048, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_EQ(s.chunksAllocated(), 2u);
}

TEST(Storage, ReadBlockFromUntouchedIsZero)
{
    Storage s;
    std::uint8_t buf[16];
    std::memset(buf, 0xff, sizeof(buf));
    s.readBlock(12345, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0u);
}

TEST(Storage, SparseAllocation)
{
    Storage s;
    s.writeU8(0, 1);
    s.writeU8(10 * Storage::chunkBytes, 2);
    EXPECT_EQ(s.chunksAllocated(), 2u);
}

TEST(Storage, OutOfRangePanics)
{
    t3dsim::detail::setThrowOnError(true);
    Storage s(1024);
    EXPECT_THROW(s.readU8(1024), std::runtime_error);
    EXPECT_THROW(s.writeU64(1020, 1), std::runtime_error);
    EXPECT_NO_THROW(s.writeU64(1016, 1));
    t3dsim::detail::setThrowOnError(false);
}

TEST(Storage, Limit)
{
    Storage s(4096);
    EXPECT_EQ(s.limit(), 4096u);
}

} // namespace
