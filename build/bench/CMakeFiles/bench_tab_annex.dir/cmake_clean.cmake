file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_annex.dir/bench_tab_annex.cc.o"
  "CMakeFiles/bench_tab_annex.dir/bench_tab_annex.cc.o.d"
  "bench_tab_annex"
  "bench_tab_annex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_annex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
