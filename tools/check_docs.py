#!/usr/bin/env python3
"""Docs audit: every relative markdown link and anchor must resolve.

Walks the repo's markdown files (root + docs/), extracts inline
links, and checks that

  - relative file targets exist (README.md, docs/MODEL.md, src paths
    referenced as links, ...);
  - intra-document anchors (#section) match a heading in the target
    file, using GitHub's slug rules (lowercase, spaces to dashes,
    punctuation dropped);
  - no file contains an obviously stale test-count claim (the suite
    prints its real count in CI; docs must not hard-code a different
    one when --tests=N is passed, or when --ctest-dir points at a
    configured build whose `ctest -N` total is the ground truth);
  - changelog-style files (CHANGES.md, ROADMAP.md) may keep
    historical per-PR counts, but their *largest* claimed count must
    match the current suite — that is exactly the drift this check
    exists to catch (a PR adding tests while a doc still quotes the
    previous total).

External http(s) links are not fetched — CI must not depend on the
network — only checked for empty targets. Exits non-zero listing
every broken link.
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.M)
CODE_FENCE_RE = re.compile(r"```.*?```", re.S)
TEST_COUNT_RE = re.compile(r"[~]?(\d{3,4})\s+(?:tier-1\s+)?tests")

# Changelog-style files record historical per-PR test counts on
# purpose; every claim being current applies only elsewhere, but the
# newest (largest) claim in these files must still be current.
TEST_COUNT_EXEMPT = {"CHANGES.md", "ROADMAP.md"}

# Transient work-order files quote the counts of whatever PR they
# were written against; they are not documentation of the suite.
TEST_COUNT_SKIP = {"ISSUE.md", "REVIEW.md"}


def ctest_total(build_dir: str) -> int:
    """The suite's real size: `ctest -N` in a configured build dir
    prints 'Total Tests: N' as its last line."""
    out = subprocess.run(
        ["ctest", "-N"], cwd=build_dir, capture_output=True,
        text=True, check=True).stdout
    m = re.search(r"Total Tests:\s*(\d+)", out)
    if not m:
        raise RuntimeError(
            f"ctest -N in {build_dir} printed no 'Total Tests:' line")
    return int(m.group(1))


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation (no
    replacement dash), spaces to dashes, doubles preserved."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def headings_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        body = CODE_FENCE_RE.sub("", f.read())
    slugs = set()
    for m in HEADING_RE.finditer(body):
        slugs.add(slugify(m.group(1)))
    return slugs


def markdown_files(root: str):
    for base in (root, os.path.join(root, "docs")):
        if not os.path.isdir(base):
            continue
        for name in sorted(os.listdir(base)):
            if name.endswith(".md"):
                yield os.path.join(base, name)


def check(root: str, expected_tests: int | None) -> int:
    errors = []
    for path in markdown_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            body = CODE_FENCE_RE.sub("", f.read())

        for m in LINK_RE.finditer(body):
            target = m.group(2)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if slugify(target[1:]) not in headings_of(path):
                    errors.append(f"{rel}: broken anchor {target}")
                continue
            file_part, _, anchor = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if slugify(anchor) not in headings_of(resolved):
                    errors.append(
                        f"{rel}: broken anchor {target}")

        if (expected_tests is not None
                and os.path.basename(path) not in TEST_COUNT_SKIP):
            claims = [int(m.group(1))
                      for m in TEST_COUNT_RE.finditer(body)]
            if os.path.basename(path) in TEST_COUNT_EXEMPT:
                # History may quote old totals, but the newest claim
                # must match the suite as it stands.
                if claims and max(claims) != expected_tests:
                    errors.append(
                        f"{rel}: newest test count {max(claims)} "
                        f"out of date (suite has {expected_tests})")
            else:
                for claimed in claims:
                    if claimed != expected_tests:
                        errors.append(
                            f"{rel}: stale test count {claimed} "
                            f"(suite has {expected_tests})")

    for e in errors:
        print("FAIL:", e)
    if not errors:
        print("docs OK:", len(list(markdown_files(root))),
              "markdown files checked")
    return 1 if errors else 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".")
    ap.add_argument("--tests", type=int, default=None,
                    help="expected tier-1 test count; docs claiming "
                         "a different count fail the audit")
    ap.add_argument("--ctest-dir", default=None,
                    help="configured build directory; runs `ctest -N` "
                         "there and audits doc counts against its "
                         "Total Tests line")
    args = ap.parse_args()
    expected = args.tests
    if args.ctest_dir is not None:
        actual = ctest_total(args.ctest_dir)
        if expected is not None and expected != actual:
            print(f"FAIL: --tests={expected} but ctest -N "
                  f"reports {actual}")
            sys.exit(1)
        expected = actual
    sys.exit(check(args.root, expected))


if __name__ == "__main__":
    main()
