/**
 * @file
 * RingBuffer: a contiguous circular double-ended queue.
 *
 * The shell's FIFOs (write buffer, message queue, prefetch queue, BLT
 * completion list, remote-write window, get table) were std::deque,
 * whose libstdc++ implementation eagerly allocates a map plus one
 * 512-byte block per deque — two heap allocations per queue at
 * construction, even when the queue is never touched. At 64K PEs the
 * Machine holds hundreds of thousands of such queues and their
 * construction/destruction dominates the run (gprof: ~40% of the 4K-PE
 * EM3D case in Machine setup/teardown and _M_push_back_aux).
 *
 * RingBuffer allocates nothing until the first push, grows by
 * power-of-two doubling, and keeps its storage on clear() so a queue
 * that drains and refills every round reaches a steady state with
 * zero allocator traffic. Indexing is mask-based; iterators are
 * random-access so the sorted-insert call sites (message arrival
 * order, BLT completion times) keep using std::upper_bound /
 * std::lower_bound + insert().
 */

#ifndef T3DSIM_SIM_RING_HH
#define T3DSIM_SIM_RING_HH

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <memory>
#include <new>
#include <utility>

#include "sim/logging.hh"

namespace t3dsim::sim
{

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    RingBuffer(const RingBuffer &other) { assignFrom(other); }

    RingBuffer(RingBuffer &&other) noexcept
        : _data(other._data), _cap(other._cap), _head(other._head),
          _size(other._size)
    {
        other._data = nullptr;
        other._cap = other._head = other._size = 0;
    }

    RingBuffer &
    operator=(const RingBuffer &other)
    {
        if (this != &other) {
            destroyAll();
            assignFrom(other);
        }
        return *this;
    }

    RingBuffer &
    operator=(RingBuffer &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            release();
            _data = other._data;
            _cap = other._cap;
            _head = other._head;
            _size = other._size;
            other._data = nullptr;
            other._cap = other._head = other._size = 0;
        }
        return *this;
    }

    ~RingBuffer()
    {
        destroyAll();
        release();
    }

    bool empty() const { return _size == 0; }
    std::size_t size() const { return _size; }

    // The accessors are the shell's hottest loads, so their
    // bounds/empty guards (which also cover front()/back() and the
    // null _data of a never-grown buffer) compile out of release
    // builds; pop_front/pop_back stay guarded unconditionally.
    T &
    operator[](std::size_t i)
    {
#ifndef NDEBUG
        T3D_ASSERT(i < _size, "RingBuffer index ", i,
                   " out of range (size ", _size, ")");
#endif
        return _data[(_head + i) & (_cap - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
#ifndef NDEBUG
        T3D_ASSERT(i < _size, "RingBuffer index ", i,
                   " out of range (size ", _size, ")");
#endif
        return _data[(_head + i) & (_cap - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[_size - 1]; }
    const T &back() const { return (*this)[_size - 1]; }

    void
    push_back(const T &value)
    {
        emplace_back(value);
    }

    void
    push_back(T &&value)
    {
        emplace_back(std::move(value));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (_size == _cap)
            grow();
        T *slot = _data + ((_head + _size) & (_cap - 1));
        std::construct_at(slot, std::forward<Args>(args)...);
        ++_size;
        return *slot;
    }

    void
    push_front(const T &value)
    {
        if (_size == _cap)
            grow();
        _head = (_head + _cap - 1) & (_cap - 1);
        std::construct_at(_data + _head, value);
        ++_size;
    }

    void
    pop_front()
    {
        T3D_ASSERT(_size != 0, "pop_front on an empty RingBuffer");
        std::destroy_at(_data + _head);
        _head = (_head + 1) & (_cap - 1);
        --_size;
    }

    void
    pop_back()
    {
        T3D_ASSERT(_size != 0, "pop_back on an empty RingBuffer");
        std::destroy_at(_data + ((_head + _size - 1) & (_cap - 1)));
        --_size;
    }

    /** Drop every element; capacity (and its allocation) is kept. */
    void
    clear()
    {
        destroyAll();
        _head = 0;
        _size = 0;
    }

    /** @name Random-access iteration (logical order, front to back) */
    /// @{
    template <typename Ring, typename Value>
    class Iter
    {
      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = Value *;
        using reference = Value &;

        Iter() = default;
        Iter(Ring *ring, std::size_t idx) : _ring(ring), _idx(idx) {}

        /** iterator -> const_iterator. */
        operator Iter<const RingBuffer, const T>() const
        {
            return {_ring, _idx};
        }

        reference operator*() const { return (*_ring)[_idx]; }
        pointer operator->() const { return &(*_ring)[_idx]; }
        reference operator[](difference_type n) const
        {
            return (*_ring)[_idx + n];
        }

        Iter &operator++() { ++_idx; return *this; }
        Iter operator++(int) { Iter t = *this; ++_idx; return t; }
        Iter &operator--() { --_idx; return *this; }
        Iter operator--(int) { Iter t = *this; --_idx; return t; }
        Iter &operator+=(difference_type n) { _idx += n; return *this; }
        Iter &operator-=(difference_type n) { _idx -= n; return *this; }

        friend Iter operator+(Iter it, difference_type n)
        {
            it += n;
            return it;
        }
        friend Iter operator+(difference_type n, Iter it)
        {
            it += n;
            return it;
        }
        friend Iter operator-(Iter it, difference_type n)
        {
            it -= n;
            return it;
        }
        friend difference_type operator-(const Iter &a, const Iter &b)
        {
            return difference_type(a._idx) - difference_type(b._idx);
        }

        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a._idx == b._idx;
        }
        friend auto operator<=>(const Iter &a, const Iter &b)
        {
            return a._idx <=> b._idx;
        }

        std::size_t index() const { return _idx; }

      private:
        Ring *_ring = nullptr;
        std::size_t _idx = 0;
    };

    using iterator = Iter<RingBuffer, T>;
    using const_iterator = Iter<const RingBuffer, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, _size}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, _size}; }
    /// @}

    /** Insert @p value before @p pos (for sorted insertion after
     *  std::upper_bound / std::lower_bound). */
    iterator
    insert(iterator pos, const T &value)
    {
        const std::size_t at = pos.index();
        if (_size == _cap) {
            // grow() reallocates before the copy, so a @p value that
            // aliases this buffer (self-insert) would dangle; detach
            // it first. The non-growing path copies straight in.
            T detached = value;
            push_back(std::move(detached));
        } else {
            push_back(value);
        }
        std::rotate(begin() + at, end() - 1, end());
        return {this, at};
    }

  private:
    void
    grow()
    {
        const std::size_t new_cap = _cap == 0 ? 8 : _cap * 2;
        T *fresh = static_cast<T *>(
            ::operator new(new_cap * sizeof(T), std::align_val_t{
                                                    alignof(T)}));
        for (std::size_t i = 0; i < _size; ++i) {
            T *src = _data + ((_head + i) & (_cap - 1));
            std::construct_at(fresh + i, std::move(*src));
            std::destroy_at(src);
        }
        release();
        _data = fresh;
        _cap = new_cap;
        _head = 0;
    }

    void
    destroyAll()
    {
        for (std::size_t i = 0; i < _size; ++i)
            std::destroy_at(_data + ((_head + i) & (_cap - 1)));
        _size = 0;
    }

    void
    release()
    {
        if (_data)
            ::operator delete(_data, std::align_val_t{alignof(T)});
        _data = nullptr;
        _cap = 0;
        _head = 0;
    }

    void
    assignFrom(const RingBuffer &other)
    {
        for (std::size_t i = 0; i < other._size; ++i)
            push_back(other[i]);
    }

    T *_data = nullptr;
    std::size_t _cap = 0; ///< always zero or a power of two
    std::size_t _head = 0;
    std::size_t _size = 0;
};

} // namespace t3dsim::sim

#endif // T3DSIM_SIM_RING_HH
