/**
 * @file
 * Parameterized property sweep over all bulk-transfer mechanisms and
 * sizes: every mechanism must move every size correctly, and the
 * Split-C dispatcher must never be slower than the slowest raw
 * mechanism it could have picked.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

enum class Mech
{
    Uncached,
    Cached,
    Prefetch,
    Blt,
    Dispatch,
};

const char *
mechName(Mech m)
{
    switch (m) {
      case Mech::Uncached:
        return "Uncached";
      case Mech::Cached:
        return "Cached";
      case Mech::Prefetch:
        return "Prefetch";
      case Mech::Blt:
        return "Blt";
      case Mech::Dispatch:
        return "Dispatch";
    }
    return "?";
}

constexpr Addr remoteBase = 0x100000;
constexpr Addr localBase = 0x400000;

class BulkSweep
    : public ::testing::TestWithParam<std::tuple<Mech, std::size_t>>
{
};

TEST_P(BulkSweep, MovesDataExactly)
{
    const auto [mech, bytes] = GetParam();
    Machine m(MachineConfig::t3d(2));
    for (std::size_t i = 0; i < bytes / 8; ++i)
        m.node(1).storage().writeU64(remoteBase + 8 * i,
                                     0xf00d0000 + i);

    splitc::runSpmd(m, [&, mech_ = mech,
                        bytes_ = bytes](Proc &p) -> ProcTask {
        if (p.pe() != 0)
            co_return;
        auto src = GlobalAddr::make(1, remoteBase);
        switch (mech_) {
          case Mech::Uncached:
            p.bulkReadUncached(localBase, src, bytes_);
            break;
          case Mech::Cached:
            p.bulkReadCached(localBase, src, bytes_);
            break;
          case Mech::Prefetch:
            p.bulkReadPrefetch(localBase, src, bytes_);
            break;
          case Mech::Blt:
            p.bulkReadBlt(localBase, src, bytes_);
            break;
          case Mech::Dispatch:
            p.bulkRead(localBase, src, bytes_);
            break;
        }
        co_return;
    });

    for (std::size_t i = 0; i < bytes / 8; ++i) {
        ASSERT_EQ(m.node(0).storage().readU64(localBase + 8 * i),
                  0xf00d0000 + i)
            << mechName(mech) << " bytes=" << bytes << " word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndSizes, BulkSweep,
    ::testing::Combine(::testing::Values(Mech::Uncached, Mech::Cached,
                                         Mech::Prefetch, Mech::Blt,
                                         Mech::Dispatch),
                       ::testing::Values(std::size_t{8},
                                         std::size_t{32},
                                         std::size_t{104},
                                         std::size_t{1024},
                                         std::size_t{20 * KiB})),
    [](const auto &info) {
        return std::string(mechName(std::get<0>(info.param))) + "_" +
            std::to_string(std::get<1>(info.param)) + "B";
    });

/** Writes: both mechanisms, several sizes. */
class BulkWriteSweep
    : public ::testing::TestWithParam<std::tuple<bool, std::size_t>>
{
};

TEST_P(BulkWriteSweep, MovesDataExactly)
{
    const auto [use_blt, bytes] = GetParam();
    Machine m(MachineConfig::t3d(2));
    for (std::size_t i = 0; i < bytes / 8; ++i)
        m.node(0).storage().writeU64(localBase + 8 * i, 0xcafe00 + i);

    splitc::runSpmd(m, [&, use_blt_ = use_blt,
                        bytes_ = bytes](Proc &p) -> ProcTask {
        if (p.pe() != 0)
            co_return;
        auto dst = GlobalAddr::make(1, 0x300000);
        if (use_blt_)
            p.bulkWriteBlt(dst, localBase, bytes_);
        else
            p.bulkWriteStores(dst, localBase, bytes_);
        co_return;
    });

    for (std::size_t i = 0; i < bytes / 8; ++i) {
        ASSERT_EQ(m.node(1).storage().readU64(0x300000 + 8 * i),
                  0xcafe00 + i)
            << "blt=" << use_blt << " bytes=" << bytes;
    }
}

INSTANTIATE_TEST_SUITE_P(
    WriteMechanisms, BulkWriteSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(std::size_t{8},
                                         std::size_t{512},
                                         std::size_t{32 * KiB})),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "Blt" : "Stores") +
            "_" + std::to_string(std::get<1>(info.param)) + "B";
    });

} // namespace
