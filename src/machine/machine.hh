/**
 * @file
 * The assembled CRAY-T3D: N nodes on a 3-D torus plus the wired-OR
 * barrier network.
 */

#ifndef T3DSIM_MACHINE_MACHINE_HH
#define T3DSIM_MACHINE_MACHINE_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "machine/config.hh"
#include "machine/node.hh"
#include "net/torus.hh"
#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/barrier.hh"
#include "shell/ports.hh"
#include "sim/types.hh"

namespace t3dsim::machine
{

/**
 * Redirects remote-memory accesses while installed (see
 * Machine::setRemoteRouter). The host-parallel scheduler uses this
 * to interpose proxies on cross-shard accesses; route() returning
 * null means "use the destination node directly".
 */
class RemoteAccessRouter
{
  public:
    virtual ~RemoteAccessRouter() = default;

    /** Port override for accesses to @p dst, or null for the node. */
    virtual shell::RemoteMemoryPort *route(PeId dst) = 0;
};

/** A whole T3D. */
class Machine : public shell::MachinePort
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig::t3d());

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    Node &node(PeId pe);
    const MachineConfig &config() const { return _config; }
    net::Torus &torus() { return _torus; }
    shell::BarrierNetwork &barrier() { return _barrier; }

    /** @name shell::MachinePort */
    /// @{
    Cycles transitCycles(PeId src, PeId dst) const override;
    shell::RemoteMemoryPort &remoteMemory(PeId pe) override;
    std::uint32_t numPes() const override { return _config.numPes; }
    /// @}

    /**
     * Install (or clear, with null) a remote-access router. While a
     * router is installed every remoteMemory() lookup consults it
     * first. Owned by the caller; must outlive its installation.
     */
    void setRemoteRouter(RemoteAccessRouter *router)
    {
        _remoteRouter = router;
    }

    /**
     * Host bytes resident for the modeled machine state: every
     * node's lazily-materialized components plus the barrier
     * network (see DESIGN.md §11). Serial-only (walks node
     * internals); intended for capacity reporting, not hot paths.
     */
    std::size_t residentModelBytes() const;

    /**
     * Replay one route recording that observeTransit deferred into a
     * shard's CounterBatch (probes/batch.hh). Serial phases only —
     * mutates the machine-wide torus tallies and, on traced runs,
     * emits the per-dimension torus counter samples stamped with
     * @p when (the source clock captured at observation time).
     */
    void recordDeferredRoute(PeId src, PeId dst, Cycles when) const;

    /** @name Observability (see docs/OBSERVABILITY.md) */
    /// @{
    /** Effective switches (config merged with the environment). */
    const probes::ObsConfig &observe() const { return _obs; }

    bool countersEnabled() const { return _countersOn; }

    /** The machine-wide trace sink; null unless tracing is on. */
    probes::TraceSink *trace() const { return _trace.get(); }

    /** Sum of every node's counter record. */
    probes::PerfCounters totalCounters() const;

    /** Machine-wide counter report (schema t3dsim-counters-v1). */
    void writeCounterJson(std::ostream &os) const;

    /** Counter report as CSV (one row per PE plus totals). */
    void writeCounterCsv(std::ostream &os) const;

    /** Chrome trace-event JSON of the recorded shell events. */
    void writeTraceJson(std::ostream &os) const;

    /**
     * Write the configured countersPath / tracePath dumps, if any.
     * Called by the SPMD executor when a run finishes; safe to call
     * repeatedly or with observability off (does nothing).
     */
    void flushObservability() const;
    /// @}

  private:
    /** Route/hop accounting for one transit (observability on). */
    void observeTransit(PeId src, PeId dst) const;

    MachineConfig _config;
    net::Torus _torus;
    shell::BarrierNetwork _barrier;
    std::vector<std::unique_ptr<Node>> _nodes;

    probes::ObsConfig _obs;
    std::unique_ptr<probes::TraceSink> _trace;
    bool _countersOn = false;

    /** True when transitCycles must account routes (either channel). */
    bool _transitObs = false;

    RemoteAccessRouter *_remoteRouter = nullptr;
};

} // namespace t3dsim::machine

#endif // T3DSIM_MACHINE_MACHINE_HH
