# Empty compiler generated dependencies file for bench_tab_prefetch_breakdown.
# This may be replaced when dependencies are built.
