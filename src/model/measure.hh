/**
 * @file
 * Micro-sweep runners: drive the simulated machine through one
 * isolated primitive at a time and record (size, elapsed cycles,
 * counter deltas) points the fitter can price (docs/MODEL.md §2).
 *
 * Each sweep uses the same measurement idiom as the corresponding
 * bench_fig* bench (raw annexed loads for the hardware mechanisms,
 * splitc::runSpmd for the language-level primitives) but snapshots
 * the measuring node's PerfCounters around exactly the timed
 * region, so warm-up traffic never pollutes the deltas. Machines
 * are tiny (2-64 PEs) and every sweep completes in host
 * milliseconds.
 */

#ifndef T3DSIM_MODEL_MEASURE_HH
#define T3DSIM_MODEL_MEASURE_HH

#include <string>
#include <vector>

#include "model/sweep.hh"

namespace t3dsim::model
{

/**
 * Run every micro-sweep the fitter knows how to price (the fit
 * groups of primitives.cc plus the headline curves).
 *
 * @return the sweeps, or an empty vector with *error set when the
 *         build or environment has counters disabled (the fitter
 *         would see all-zero deltas).
 */
std::vector<Sweep> measureAll(std::string *error = nullptr);

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_MEASURE_HH
