#include "sim/rng.hh"

#include "sim/logging.hh"

namespace t3dsim
{

namespace
{

/** SplitMix64 step used to expand the seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    T3D_ASSERT(bound > 0, "nextBounded needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace t3dsim
