#include "model/measure.hh"

#include <array>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "probes/counters.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace t3dsim::model
{

namespace
{

using machine::Machine;
using machine::MachineConfig;
using probes::PerfCounters;

MachineConfig
countedConfig(std::uint32_t pes)
{
    MachineConfig config = MachineConfig::t3d(pes);
    config.observe.counters = true;
    return config;
}

splitc::SplitcConfig
sequentialConfig()
{
    splitc::SplitcConfig config;
    config.hostThreads = -1; // deterministic single-host-thread runs
    return config;
}

/** Nonzero counter deltas between two snapshots, scaled. */
std::vector<std::pair<std::string, double>>
counterDelta(const PerfCounters &before, const PerfCounters &after,
             double scale = 1.0)
{
    std::vector<std::pair<std::string, double>> out;
    const auto &infos = PerfCounters::infos();
    for (std::size_t i = 0; i < PerfCounters::numCounters; ++i) {
        const double d =
            double(after.value(i)) - double(before.value(i));
        if (d != 0)
            out.emplace_back(infos[i].name, d * scale);
    }
    return out;
}

SweepPoint
makePoint(double x, Cycles elapsed, const PerfCounters &before,
          const PerfCounters &after, double scale = 1.0)
{
    SweepPoint p;
    p.x = x;
    p.cycles = double(elapsed) * scale;
    p.counters = counterDelta(before, after, scale);
    return p;
}

Sweep
localReadHit()
{
    Machine m(countedConfig(2));
    auto &n0 = m.node(0);
    for (unsigned i = 0; i < 8; ++i)
        n0.loadU64(0x1000 + 8 * i); // warm two lines
    Sweep s{"local_read_hit", "reads", {}, "warmed cached loads"};
    for (unsigned n : {32u, 64u, 128u, 256u, 512u}) {
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned i = 0; i < n; ++i)
            n0.loadU64(0x1000 + 8 * (i % 8));
        s.points.push_back(
            makePoint(n, n0.clock().now() - t0, before, n0.counters()));
    }
    return s;
}

Sweep
localWriteLines()
{
    Machine m(countedConfig(2));
    auto &n0 = m.node(0);
    n0.storeU64(0x4000, 1); // warm page + TLB
    n0.mb();
    Sweep s{"local_write_lines", "lines",
            {}, "one store per 32 B line, MB drain included"};
    for (unsigned n : {16u, 32u, 64u, 128u}) {
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned i = 0; i < n; ++i)
            n0.storeU64(0x4000 + 32 * (i % 512), i);
        n0.mb();
        s.points.push_back(
            makePoint(n, n0.clock().now() - t0, before, n0.counters()));
    }
    return s;
}

Sweep
localWriteMerged()
{
    Machine m(countedConfig(2));
    auto &n0 = m.node(0);
    n0.storeU64(0x8000, 1);
    n0.mb();
    Sweep s{"local_write_merged", "stores",
            {}, "sequential stores, four per line merge in the WB"};
    for (unsigned n : {64u, 128u, 256u, 512u}) {
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned i = 0; i < n; ++i)
            n0.storeU64(0x8000 + 8 * (i % 2048), i);
        n0.mb();
        s.points.push_back(
            makePoint(n, n0.clock().now() - t0, before, n0.counters()));
    }
    return s;
}

Sweep
localReadMiss()
{
    Machine m(countedConfig(2));
    auto &n0 = m.node(0);
    constexpr Addr base = 0x20000;
    n0.loadU64(base); // warm TLB + DRAM page
    Sweep s{"local_read_miss", "reads",
            {}, "16 KiB region: every load misses L1, hits the page"};
    for (unsigned n : {32u, 64u, 128u, 256u}) {
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned i = 0; i < n; ++i)
            n0.loadU64(base + 32 * (i % 512));
        s.points.push_back(
            makePoint(n, n0.clock().now() - t0, before, n0.counters()));
    }
    return s;
}

Sweep
localReadOffpage()
{
    Machine m(countedConfig(2));
    auto &n0 = m.node(0);
    constexpr Addr base = 0x400000; // 4 MiB aligned: one TLB page
    n0.loadU64(base);
    Sweep s{"local_read_offpage", "reads",
            {}, "16 KiB stride: every load misses L1 and the DRAM page"};
    for (unsigned n : {32u, 64u, 128u, 256u}) {
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned i = 0; i < n; ++i)
            n0.loadU64(base + 16 * KiB * (i % 128));
        s.points.push_back(
            makePoint(n, n0.clock().now() - t0, before, n0.counters()));
    }
    return s;
}

Sweep
splitcReadFixed()
{
    Machine m(countedConfig(2));
    Sweep s{"splitc_read_fixed", "reads",
            {}, "blocking Split-C reads, fixed adjacent target"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.readU64(splitc::GlobalAddr::make(1, 0)); // warm
            for (unsigned n : {8u, 16u, 32u, 64u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i)
                    p.readU64(splitc::GlobalAddr::make(1, 0));
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
splitcReadDistance()
{
    Machine m(countedConfig(64)); // 4x4x4 torus
    Sweep s{"splitc_read_distance", "hops",
            {}, "fixed read count, target distance varies"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            constexpr unsigned reads = 16;
            for (PeId target : {1u, 4u, 5u, 16u, 21u, 42u, 63u}) {
                p.readU64(splitc::GlobalAddr::make(target, 0)); // warm
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < reads; ++i)
                    p.readU64(splitc::GlobalAddr::make(target, 0));
                s.points.push_back(
                    makePoint(double(m.torus().hops(0, target)),
                              p.now() - t0, before,
                              p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
splitcReadAlternate()
{
    Machine m(countedConfig(4));
    Sweep s{"splitc_read_alternate", "reads",
            {}, "alternating targets: every read refaults the annex"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.readU64(splitc::GlobalAddr::make(1, 0));
            p.readU64(splitc::GlobalAddr::make(2, 0)); // warm both
            for (unsigned n : {8u, 16u, 32u, 64u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i)
                    p.readU64(
                        splitc::GlobalAddr::make(1 + (i & 1), 0));
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
splitcPutStream()
{
    Machine m(countedConfig(2));
    Sweep s{"splitc_put_stream", "puts",
            {}, "one put per remote line, sync included"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.putU64(splitc::GlobalAddr::make(1, 0), 1); // warm
            p.sync();
            // Long runs: the final sync's pipeline-drain wait is a
            // constant tail, and the no-intercept group fit needs it
            // small relative to the per-line stream cost.
            for (unsigned n : {64u, 128u, 256u, 512u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i)
                    p.putU64(
                        splitc::GlobalAddr::make(1, 32 * (i % 256)),
                        i);
                p.sync();
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
splitcGetGroups()
{
    Machine m(countedConfig(2));
    Sweep s{"splitc_get_groups", "gets",
            {}, "pipelined gets in groups of 8"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.readU64(splitc::GlobalAddr::make(1, 0)); // warm
            for (unsigned n : {16u, 32u, 64u, 128u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i) {
                    p.getU64(splitc::GlobalAddr::make(1, 8 * (i % 8)),
                             0x100 + 8 * (i % 8));
                    if (i % 8 == 7)
                        p.sync();
                }
                p.sync();
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
splitcGetDeep()
{
    Machine m(countedConfig(2));
    Sweep s{"splitc_get_deep", "gets",
            {}, "groups of 64 overflow the 16-slot prefetch queue"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.readU64(splitc::GlobalAddr::make(1, 0)); // warm
            for (unsigned n : {64u, 128u, 256u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i) {
                    p.getU64(splitc::GlobalAddr::make(1, 8 * (i % 8)),
                             0x100 + 8 * (i % 8));
                    if (i % 64 == 63)
                        p.sync();
                }
                p.sync();
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

void
messagingSweeps(Sweep &send, Sweep &dispatch)
{
    Machine m(countedConfig(2));
    const std::array<std::uint64_t, 4> words = {1, 2, 3, 4};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            for (unsigned n : {4u, 8u, 16u, 32u}) {
                co_await p.barrier();
                if (p.pe() == 0) {
                    const PerfCounters before = p.node().counters();
                    const Cycles t0 = p.now();
                    for (unsigned i = 0; i < n; ++i)
                        p.sendMessage(1, words);
                    send.points.push_back(
                        makePoint(n, p.now() - t0, before,
                                  p.node().counters()));
                }
                co_await p.barrier();
                if (p.pe() == 1) {
                    const PerfCounters before = p.node().counters();
                    const Cycles t0 = p.now();
                    for (unsigned i = 0; i < n; ++i)
                        p.takeMessage(false);
                    dispatch.points.push_back(
                        makePoint(n, p.now() - t0, before,
                                  p.node().counters()));
                }
            }
            co_return;
        },
        sequentialConfig());
}

Sweep
fetchIncSweep()
{
    Machine m(countedConfig(2));
    Sweep s{"fetch_inc", "ops", {}, "remote fetch&inc round trips"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.fetchInc(1, 0); // warm
            for (unsigned n : {4u, 8u, 16u, 32u}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                for (unsigned i = 0; i < n; ++i)
                    p.fetchInc(1, 0);
                s.points.push_back(makePoint(n, p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
barrierSweep()
{
    Sweep s{"barrier_pes", "pes",
            {}, "per-barrier cycles, all PEs arriving together"};
    for (std::uint32_t pes : {2u, 4u, 8u, 16u, 32u, 64u}) {
        Machine m(countedConfig(pes));
        splitc::runSpmd(
            m,
            [&](splitc::Proc &p) -> splitc::ProcTask {
                co_await p.barrier(); // warm
                constexpr unsigned reps = 8;
                PerfCounters before;
                Cycles t0 = 0;
                if (p.pe() == 0) {
                    before = p.node().counters();
                    t0 = p.now();
                }
                for (unsigned k = 0; k < reps; ++k)
                    co_await p.barrier();
                if (p.pe() == 0) {
                    s.points.push_back(
                        makePoint(pes, p.now() - t0, before,
                                  p.node().counters(), 1.0 / reps));
                }
                co_return;
            },
            sequentialConfig());
    }
    return s;
}

Sweep
bltSweep(bool write)
{
    Machine m(countedConfig(2));
    Sweep s{write ? "blt_write" : "blt_read", "bytes",
            {}, "block-transfer engine size sweep"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            for (std::size_t bytes :
                 {4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                if (write)
                    p.bulkWriteBlt(
                        splitc::GlobalAddr::make(1, 0x100000),
                        0x400000, bytes);
                else
                    p.bulkReadBlt(
                        0x400000,
                        splitc::GlobalAddr::make(1, 0x100000), bytes);
                p.node().mb();
                s.points.push_back(makePoint(double(bytes),
                                             p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
bulkGetPrefetchSweep()
{
    Machine m(countedConfig(2));
    Sweep s{"bulk_get_prefetch", "bytes",
            {}, "bulk read through the prefetch pipeline"};
    splitc::runSpmd(
        m,
        [&](splitc::Proc &p) -> splitc::ProcTask {
            if (p.pe() != 0)
                co_return;
            p.readU64(splitc::GlobalAddr::make(1, 0)); // warm
            for (std::size_t bytes :
                 {512ul, 2 * KiB, 8 * KiB, 32 * KiB, 64 * KiB}) {
                const PerfCounters before = p.node().counters();
                const Cycles t0 = p.now();
                p.bulkReadPrefetch(
                    0x400000, splitc::GlobalAddr::make(1, 0x100000),
                    bytes);
                p.node().mb();
                s.points.push_back(makePoint(double(bytes),
                                             p.now() - t0, before,
                                             p.node().counters()));
            }
            co_return;
        },
        sequentialConfig());
    return s;
}

Sweep
prefetchGroupSweep()
{
    Sweep s{"prefetch_group", "group",
            {}, "raw fetch/pop group: cycles for one sync group"};
    for (unsigned group : {1u, 2u, 4u, 8u, 12u, 16u}) {
        Machine m(countedConfig(2));
        auto &n0 = m.node(0);
        n0.shell().setAnnex(1, {1, shell::ReadMode::Uncached});
        n0.loadU64(alpha::makeAnnexedVa(1, 0)); // warm
        constexpr unsigned reps = 16;
        const PerfCounters before = n0.counters();
        const Cycles t0 = n0.clock().now();
        for (unsigned r = 0; r < reps; ++r) {
            for (unsigned i = 0; i < group; ++i)
                n0.fetchHint(alpha::makeAnnexedVa(1, 8 * i));
            if (n0.shell().prefetch().needsMbBeforePop())
                n0.mb();
            for (unsigned i = 0; i < group; ++i)
                n0.core().storeU64(0x100 + 8 * i, n0.popPrefetch());
        }
        s.points.push_back(makePoint(group, n0.clock().now() - t0,
                                     before, n0.counters(),
                                     1.0 / reps));
    }
    return s;
}

} // namespace

std::vector<Sweep>
measureAll(std::string *error)
{
    {
        Machine probe(countedConfig(2));
        if (!probe.countersEnabled()) {
            if (error)
                *error = "perf counters are disabled (build with "
                         "T3DSIM_COUNTERS=ON and do not set "
                         "T3DSIM_COUNTERS=0 in the environment)";
            return {};
        }
    }

    std::vector<Sweep> sweeps;
    sweeps.push_back(localReadHit());
    sweeps.push_back(localWriteLines());
    sweeps.push_back(localWriteMerged());
    sweeps.push_back(localReadMiss());
    sweeps.push_back(localReadOffpage());
    sweeps.push_back(splitcReadFixed());
    sweeps.push_back(splitcReadDistance());
    sweeps.push_back(splitcReadAlternate());
    sweeps.push_back(splitcPutStream());
    sweeps.push_back(splitcGetGroups());
    sweeps.push_back(splitcGetDeep());

    Sweep send{"msg_send", "messages", {}, "user-level sends, PE0"};
    Sweep dispatch{"msg_dispatch", "messages",
                   {}, "queued message dispatch, PE1"};
    messagingSweeps(send, dispatch);
    sweeps.push_back(std::move(send));
    sweeps.push_back(std::move(dispatch));

    sweeps.push_back(fetchIncSweep());
    sweeps.push_back(barrierSweep());
    sweeps.push_back(bltSweep(false));
    sweeps.push_back(bltSweep(true));
    sweeps.push_back(bulkGetPrefetchSweep());
    sweeps.push_back(prefetchGroupSweep());
    if (error)
        error->clear();
    return sweeps;
}

} // namespace t3dsim::model
