/**
 * @file
 * Sweep files — the interchange format between the benches (which
 * measure) and the fitter (which turns measurements into per-
 * primitive cost models). Schema `t3dsim-sweeps-v1`:
 *
 * ```json
 * {
 *   "schema": "t3dsim-sweeps-v1",
 *   "sweeps": [
 *     {"primitive": "splitc_read_fixed", "x_unit": "reads",
 *      "points": [
 *        {"x": 16, "cycles": 2080,
 *         "counters": {"remoteReads": 16, "torusHops": 32}},
 *        ...]}
 *   ]
 * }
 * ```
 *
 * `x` is the primitive's natural size axis (ops for latency
 * primitives, bytes for the BLT, PEs for the barrier); `cycles` is
 * the simulated elapsed cycles of the whole x-unit run, so a linear
 * fit's intercept is the startup and its slope the per-unit cost.
 * `counters` carries the machine-total PerfCounters deltas of the
 * run (the 29-counter taxonomy, docs/OBSERVABILITY.md) — the
 * fitter prices counters, not opaque op counts, so sweeps written
 * by any bench with counters on are ingestible. `t3d-model sweeps`
 * writes one; `t3d-model fit --sweeps=F` ingests it (docs/MODEL.md).
 */

#ifndef T3DSIM_MODEL_SWEEP_HH
#define T3DSIM_MODEL_SWEEP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "model/fit.hh"
#include "model/json.hh"

namespace t3dsim::model
{

/** One measured point of a sweep. */
struct SweepPoint
{
    double x = 0;

    /** Simulated elapsed cycles of the whole run of x units. */
    double cycles = 0;

    /** Machine-total counter deltas ((name, value); sorted not
     *  required, duplicates not allowed). */
    std::vector<std::pair<std::string, double>> counters;

    /** Delta of one counter; 0 when absent. */
    double counter(const std::string &name) const;
};

/** One measured sweep of one primitive. */
struct Sweep
{
    std::string primitive;

    /** What x counts: "reads", "bytes", "pes", "group", ... */
    std::string xUnit;

    std::vector<SweepPoint> points;

    /** Optional free-form note carried into reports. */
    std::string note;

    /** (x, cycles) projection for plain curve fitting. */
    std::vector<FitPoint> xyPoints() const;
};

/** Write sweeps as schema t3dsim-sweeps-v1. */
void writeSweepsJson(std::ostream &os,
                     const std::vector<Sweep> &sweeps);

/**
 * Parse a t3dsim-sweeps-v1 document.
 * @return false (with *error set) on schema mismatch or parse
 *         failure; sweeps is left empty.
 */
bool readSweepsJson(const Json &doc, std::vector<Sweep> &sweeps,
                    std::string *error);

/** Find a sweep by primitive name; null when absent. */
const Sweep *findSweep(const std::vector<Sweep> &sweeps,
                       const std::string &primitive);

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_SWEEP_HH
