/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**,
 * seeded through SplitMix64). Used by workload generators so every
 * experiment is exactly reproducible from its seed.
 */

#ifndef T3DSIM_SIM_RNG_HH
#define T3DSIM_SIM_RNG_HH

#include <cstdint>

namespace t3dsim
{

/** xoshiro256** generator with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

  private:
    std::uint64_t _state[4];
};

} // namespace t3dsim

#endif // T3DSIM_SIM_RNG_HH
