/**
 * @file
 * Unit tests for the DTB Annex register file (§3.2/§3.4).
 */

#include <gtest/gtest.h>

#include "shell/annex.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using shell::AnnexEntry;
using shell::AnnexFile;
using shell::ReadMode;

TEST(Annex, EntryZeroIsLocal)
{
    AnnexFile annex(5);
    EXPECT_EQ(annex.peOf(0), 5u);
    EXPECT_TRUE(annex.isProgrammed(0));
}

TEST(Annex, EntryZeroCannotBeRetargeted)
{
    detail::setThrowOnError(true);
    AnnexFile annex(5);
    EXPECT_THROW(annex.set(0, {7, ReadMode::Uncached}),
                 std::runtime_error);
    // Changing only the mode of entry 0 is allowed.
    EXPECT_NO_THROW(annex.set(0, {5, ReadMode::Cached}));
    detail::setThrowOnError(false);
}

TEST(Annex, SetAndGet)
{
    AnnexFile annex(0);
    annex.set(3, {17, ReadMode::Cached});
    EXPECT_EQ(annex.peOf(3), 17u);
    EXPECT_EQ(annex.get(3).readMode, ReadMode::Cached);
    EXPECT_TRUE(annex.isProgrammed(3));
    EXPECT_FALSE(annex.isProgrammed(4));
}

TEST(Annex, UpdateCount)
{
    AnnexFile annex(0);
    annex.set(1, {1, ReadMode::Uncached});
    annex.set(1, {2, ReadMode::Uncached});
    annex.set(2, {3, ReadMode::Uncached});
    EXPECT_EQ(annex.updates(), 3u);
}

TEST(Annex, SynonymDetection)
{
    AnnexFile annex(0);
    EXPECT_FALSE(annex.hasSynonyms()) << "only entry 0 programmed";
    annex.set(1, {7, ReadMode::Uncached});
    EXPECT_FALSE(annex.hasSynonyms());
    annex.set(2, {7, ReadMode::Uncached});
    EXPECT_TRUE(annex.hasSynonyms()) << "entries 1 and 2 both name 7";
}

TEST(Annex, SynonymWithLocalEntryZero)
{
    AnnexFile annex(4);
    annex.set(1, {4, ReadMode::Uncached}); // aliases entry 0
    EXPECT_TRUE(annex.hasSynonyms());
}

TEST(Annex, OutOfRangePanics)
{
    detail::setThrowOnError(true);
    AnnexFile annex(0);
    EXPECT_THROW(annex.get(32), std::runtime_error);
    EXPECT_THROW(annex.set(99, {1, ReadMode::Uncached}),
                 std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
