#include "shell/fetch_inc.hh"

#include "sim/logging.hh"

namespace t3dsim::shell
{

std::uint64_t
FetchIncRegisters::fetchInc(unsigned reg)
{
    T3D_FATAL_IF(reg >= numRegs, "fetch&inc register out of range: ", reg);
    return _regs[reg]++;
}

void
FetchIncRegisters::set(unsigned reg, std::uint64_t value)
{
    T3D_FATAL_IF(reg >= numRegs, "fetch&inc register out of range: ", reg);
    _regs[reg] = value;
}

std::uint64_t
FetchIncRegisters::get(unsigned reg) const
{
    T3D_FATAL_IF(reg >= numRegs, "fetch&inc register out of range: ", reg);
    return _regs[reg];
}

} // namespace t3dsim::shell
