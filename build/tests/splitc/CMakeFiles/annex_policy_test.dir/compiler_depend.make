# Empty compiler generated dependencies file for annex_policy_test.
# This may be replaced when dependencies are built.
