file(REMOVE_RECURSE
  "CMakeFiles/proc_edge_test.dir/proc_edge_test.cc.o"
  "CMakeFiles/proc_edge_test.dir/proc_edge_test.cc.o.d"
  "proc_edge_test"
  "proc_edge_test.pdb"
  "proc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
