/**
 * @file
 * Per-application counter signatures for the composer: closed-form
 * compute terms (the p.compute() charges the 29-counter taxonomy
 * deliberately does not count) and ladder runners that execute every
 * rung of a workload on a counted machine and return (signature,
 * simulated cycles) pairs the validator can diff (docs/MODEL.md §5).
 *
 * The compute closed forms are derived from the apps' charge sites,
 * not fitted — each one mirrors the p.compute() calls in the app's
 * run.cc exactly, so a drift between app and formula is a bug the
 * validator will surface as a systematic error band.
 */

#ifndef T3DSIM_MODEL_APPS_SIG_HH
#define T3DSIM_MODEL_APPS_SIG_HH

#include <cstdint>
#include <vector>

#include "apps/bsort/bsort.hh"
#include "apps/qcd/qcd.hh"
#include "apps/variant.hh"
#include "em3d/em3d.hh"
#include "model/compose.hh"

namespace t3dsim::model
{

/** One measured ladder rung: signature plus the simulated truth. */
struct LadderPoint
{
    Signature sig;

    /** Simulated elapsed cycles of the run (the validation truth). */
    double simulatedCycles = 0;
};

/** @name Closed-form per-PE compute charges (cycles)
 *
 * Mirrors of the apps' p.compute() call sites; see each app's
 * run.cc. These are per-PE *means* (bsort's receive counts vary by
 * a few keys per PE around keysPerPe).
 */
/// @{

/**
 * EM3D: per iteration, computeCycles per edge plus the 4-cycle
 * node-loop overhead per destination node on both sides.
 */
double em3dComputePerPe(const em3d::Config &config,
                        em3d::Version version,
                        std::uint64_t edges_per_pe_per_iter);

/**
 * bsort: classify pass (classifyCycles per owned key) plus
 * 64/radixBits radix passes of count+scatter bookkeeping per
 * received key and one cycle per bucket prefix-sum entry.
 */
double bsortComputePerPe(const apps::bsort::Config &config);

/**
 * qcd: siteUpdateCycles per site per sweep; the Bulk rung adds
 * packCycles per staged and per unpacked halo value (one parity
 * half of the halo per half-step, two half-steps per sweep).
 */
double qcdComputePerPe(const apps::qcd::Config &config,
                       apps::Variant variant);

/// @}

/** @name Ladder runners
 *
 * Each runs every rung of the workload at @p pes on a fresh counted
 * machine (MachineConfig::t3d with observe.counters, sequential
 * scheduler) and returns one LadderPoint per rung, in ladder order.
 * EM3D runs its six Figure 9 versions; bsort and qcd the five
 * apps::Variant rungs.
 */
/// @{
std::vector<LadderPoint> runEm3dLadder(std::uint32_t pes,
                                       const em3d::Config &config = {});
std::vector<LadderPoint>
runBsortLadder(std::uint32_t pes,
               const apps::bsort::Config &config = {});
std::vector<LadderPoint>
runQcdLadder(std::uint32_t pes, const apps::qcd::Config &config = {});
/// @}

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_APPS_SIG_HH
