/**
 * @file
 * Interfaces through which one node's shell reaches the rest of the
 * machine. The machine layer implements these; shell components stay
 * independently testable against mocks.
 */

#ifndef T3DSIM_SHELL_PORTS_HH
#define T3DSIM_SHELL_PORTS_HH

#include <cstdint>

#include "sim/types.hh"

namespace t3dsim::shell
{

/**
 * The memory side of one node as seen from the network: requests
 * arrive with a timestamp, are serviced against that node's DRAM
 * timing and backing storage, and report their completion time.
 *
 * Timing is tracked per *requester stream*: each remote PE sees its
 * own DRAM page/bank state on the target, which models the page
 * locality of its own access pattern (what the paper's single-
 * requester probes measure) while ignoring cross-PE queueing. A
 * per-PE-logical-clock model cannot order concurrent requesters
 * faithfully, so contention is deliberately left out (see
 * DESIGN.md).
 */
class RemoteMemoryPort
{
  public:
    virtual ~RemoteMemoryPort() = default;

    /**
     * Service a remote read of @p len bytes at segment offset
     * @p offset arriving at time @p arrive.
     * @return Completion time at the remote memory.
     */
    virtual Cycles serviceRead(Cycles arrive, Addr offset, void *dst,
                               std::size_t len, PeId requester) = 0;

    /**
     * Service a remote write. In cache-invalidate mode (always on in
     * the Split-C implementation, §4.4) the owning node's cache line
     * is flushed so its processor cannot read a stale copy.
     */
    virtual Cycles serviceWrite(Cycles arrive, Addr offset,
                                const void *src, std::size_t len,
                                bool cache_inval, PeId requester) = 0;

    /**
     * Service a masked line write (drained write-buffer entry):
     * byte i of @p data is stored at line_offset + i iff bit i of
     * @p byte_mask is set. One DRAM access is charged.
     */
    virtual Cycles serviceWriteMasked(Cycles arrive, Addr line_offset,
                                      const std::uint8_t *data,
                                      std::uint32_t byte_mask,
                                      bool cache_inval,
                                      PeId requester) = 0;

    /**
     * Atomic swap between the requester's shell register and memory.
     * @return Completion time; @p old_value receives the pre-swap
     *         contents.
     */
    virtual Cycles serviceSwap(Cycles arrive, Addr offset,
                               std::uint64_t new_value,
                               std::uint64_t &old_value,
                               PeId requester) = 0;

    /**
     * Atomic fetch-and-increment of shell register @p reg (0 or 1).
     * @return Completion time; @p old_value receives the pre-
     *         increment value.
     */
    virtual Cycles serviceFetchInc(Cycles arrive, unsigned reg,
                                   std::uint64_t &old_value) = 0;

    /**
     * Deliver a user-level message (§7.3). The receiving node's OS
     * charges the interrupt cost when its processor next interacts
     * with the queue.
     */
    virtual void serviceMessage(Cycles arrive,
                                const std::uint64_t words[4]) = 0;

    /**
     * Untimed bulk data access for the block-transfer engine, which
     * computes its own streaming time (§6.2). Writes invalidate any
     * affected cache lines on the owning node.
     */
    virtual void bulkReadRaw(Addr offset, void *dst, std::size_t len) = 0;
    virtual void bulkWriteRaw(Addr offset, const void *src,
                              std::size_t len) = 0;
};

/** Machine-level services available to every shell. */
class MachinePort
{
  public:
    virtual ~MachinePort() = default;

    /** One-way network transit time between two PEs. */
    virtual Cycles transitCycles(PeId src, PeId dst) const = 0;

    /** Memory side of node @p pe. */
    virtual RemoteMemoryPort &remoteMemory(PeId pe) = 0;

    /** Number of PEs in the machine. */
    virtual std::uint32_t numPes() const = 0;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_PORTS_HH
