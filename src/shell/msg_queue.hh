/**
 * @file
 * User-level message queue, receiver side (§7.3).
 *
 * Sends are cheap (a 122-cycle PAL call, charged by the
 * RemoteEngine); receives are expensive: the arriving message
 * interrupts the processor (25 us) before landing in the user-level
 * queue, and dispatching to a user message handler costs a further
 * 33 us. Those costs are charged to the *receiving* processor when
 * it takes a message out of the queue.
 */

#ifndef T3DSIM_SHELL_MSG_QUEUE_HH
#define T3DSIM_SHELL_MSG_QUEUE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/config.hh"
#include "sim/types.hh"

namespace t3dsim::shell
{

/** A four-word T3D network message. */
struct Message
{
    /** Network arrival time at the receiving node. */
    Cycles arrival = 0;

    std::array<std::uint64_t, 4> words{};
};

/** Per-node user-level receive queue. */
class MessageQueue
{
  public:
    explicit MessageQueue(const ShellConfig &config);

    /** Network-side delivery of an arriving message. */
    void deliver(Cycles arrive, const std::uint64_t words[4]);

    /** True if a message is queued (regardless of arrival time). */
    bool hasMessage() const { return !_queue.empty(); }

    /** Arrival time of the queue head, if any. */
    std::optional<Cycles> headArrival() const;

    /**
     * Dequeue the head message and compute the time the receiving
     * processor is done absorbing it:
     *   max(now, arrival) + interrupt (+ handler dispatch when
     *   @p handler_mode).
     *
     * The caller advances its clock to the returned time.
     */
    std::pair<Message, Cycles> dequeue(Cycles now, bool handler_mode);

    std::size_t depth() const { return _queue.size(); }
    std::uint64_t delivered() const { return _delivered; }

    /**
     * Install a host-side hook fired after every deliver(). Used by
     * the SPMD executor to wake a parked receiver event-driven
     * instead of polling the queue; must not touch simulated state.
     */
    void
    setDeliveryListener(std::function<void()> listener)
    {
        _onDeliver = std::move(listener);
    }

    /** Remove the deliver() hook. */
    void clearDeliveryListener() { _onDeliver = nullptr; }

    /**
     * Attach the receiving node's counters and the machine trace
     * sink. The queue doesn't know its PE, so the shell passes it.
     */
    void
    setObservability(probes::PerfCounters *ctr, probes::TraceSink *trace,
                     PeId pe)
    {
        _ctr = ctr;
        _trace = trace;
        _pe = pe;
    }

  private:
    const ShellConfig &_config;
    std::deque<Message> _queue;
    std::uint64_t _delivered = 0;
    std::function<void()> _onDeliver;

    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;
    PeId _pe = 0;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_MSG_QUEUE_HH
