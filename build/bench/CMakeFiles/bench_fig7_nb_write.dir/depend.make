# Empty dependencies file for bench_fig7_nb_write.
# This may be replaced when dependencies are built.
