file(REMOVE_RECURSE
  "CMakeFiles/getput_test.dir/getput_test.cc.o"
  "CMakeFiles/getput_test.dir/getput_test.cc.o.d"
  "getput_test"
  "getput_test.pdb"
  "getput_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
