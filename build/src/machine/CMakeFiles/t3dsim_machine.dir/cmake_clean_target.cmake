file(REMOVE_RECURSE
  "libt3dsim_machine.a"
)
