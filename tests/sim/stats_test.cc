/**
 * @file
 * Unit tests for RunningStat and Histogram.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace
{

using t3dsim::Histogram;
using t3dsim::RunningStat;

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.mean(), 31.0 / 8.0, 1e-12);
}

TEST(RunningStat, VarianceMatchesDirectFormula)
{
    RunningStat s;
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    double mean = 0;
    for (double x : xs)
        mean += x;
    mean /= 8;
    double var = 0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= 8;

    for (double x : xs)
        s.add(x);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BucketsAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);  // bucket 0 (inclusive lower edge)
    h.add(1.99); // bucket 0
    h.add(2.0);  // bucket 1
    h.add(9.99); // bucket 4
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 10.0, 2);
    h.add(-1.0);
    h.add(10.0); // hi is exclusive
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RenderMentionsNonEmptyBuckets)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(3.5);
    const std::string text = h.render();
    EXPECT_NE(text.find("[0, 1)"), std::string::npos);
    EXPECT_NE(text.find("[3, 4)"), std::string::npos);
    EXPECT_EQ(text.find("[1, 2)"), std::string::npos);
}

} // namespace
