/**
 * @file
 * Unit tests for Split-C global pointers (§3.1/§3.3): representation,
 * extraction/construction, null test, local and global arithmetic.
 */

#include <gtest/gtest.h>

#include "splitc/global_ptr.hh"

namespace
{

using namespace t3dsim;
using splitc::GlobalAddr;
using splitc::GlobalPtr;

TEST(GlobalAddr, MakeAndExtract)
{
    auto a = GlobalAddr::make(17, 0x1234);
    EXPECT_EQ(a.pe(), 17u);
    EXPECT_EQ(a.local(), 0x1234u);
}

TEST(GlobalAddr, RepresentationLayout)
{
    // §3.3: processor in the upper 16 bits, local address below.
    auto a = GlobalAddr::make(3, 0x100);
    EXPECT_EQ(a.bits(), (std::uint64_t{3} << 48) | 0x100);
}

TEST(GlobalAddr, TransferRoundTrip)
{
    auto a = GlobalAddr::make(9, 0xabcd);
    auto b = GlobalAddr::fromBits(a.bits());
    EXPECT_EQ(a, b);
}

TEST(GlobalAddr, NullTest)
{
    GlobalAddr null;
    EXPECT_TRUE(null.isNull());
    EXPECT_FALSE(GlobalAddr::make(0, 8).isNull());
    EXPECT_FALSE(GlobalAddr::make(1, 0).isNull());
}

TEST(GlobalAddr, LocalArithmeticStaysOnPe)
{
    auto a = GlobalAddr::make(5, 0x100);
    auto b = a.addLocal(0x40);
    EXPECT_EQ(b.pe(), 5u);
    EXPECT_EQ(b.local(), 0x140u);
    auto c = b.addLocal(-0x40);
    EXPECT_EQ(c, a);
}

TEST(GlobalAddr, LocalArithmeticNeverOverflowsIntoPe)
{
    // §3.3: bit 42 of any virtual address is zero, so in-range local
    // arithmetic cannot touch the processor field.
    auto a = GlobalAddr::make(5, (Addr{1} << 40));
    auto b = a.addLocal(1 << 20);
    EXPECT_EQ(b.pe(), 5u);
}

TEST(GlobalAddr, GlobalArithmeticPeVariesFastest)
{
    // Element i+1 is on the next processor, same offset.
    auto a = GlobalAddr::make(0, 0x100);
    auto b = a.addGlobal(1, 8, /*procs=*/4);
    EXPECT_EQ(b.pe(), 1u);
    EXPECT_EQ(b.local(), 0x100u);
}

TEST(GlobalAddr, GlobalArithmeticWrapsToNextOffset)
{
    // §3.1: "addresses wrap around from the last processor to the
    // next offset on the first processor."
    auto a = GlobalAddr::make(3, 0x100);
    auto b = a.addGlobal(1, 8, 4);
    EXPECT_EQ(b.pe(), 0u);
    EXPECT_EQ(b.local(), 0x108u);
}

TEST(GlobalAddr, GlobalArithmeticNegativeWraps)
{
    auto a = GlobalAddr::make(0, 0x108);
    auto b = a.addGlobal(-1, 8, 4);
    EXPECT_EQ(b.pe(), 3u);
    EXPECT_EQ(b.local(), 0x100u);
}

TEST(GlobalAddr, GlobalArithmeticManySteps)
{
    auto a = GlobalAddr::make(0, 0);
    auto b = a.addGlobal(11, 8, 4); // 11 = 2*4 + 3
    EXPECT_EQ(b.pe(), 3u);
    EXPECT_EQ(b.local(), 16u);
}

/** Property: +n then -n is the identity for global arithmetic. */
class GlobalArith : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(GlobalArith, RoundTrip)
{
    const std::int64_t n = GetParam();
    auto a = GlobalAddr::make(2, 0x1000);
    for (std::uint32_t procs : {4u, 7u, 32u}) {
        auto b = a.addGlobal(n, 8, procs).addGlobal(-n, 8, procs);
        EXPECT_EQ(b, a) << "n=" << n << " procs=" << procs;
    }
}

INSTANTIATE_TEST_SUITE_P(Deltas, GlobalArith,
                         ::testing::Values(0, 1, 3, 31, 32, 33, 100,
                                           1000));

TEST(GlobalPtr, TypedArithmetic)
{
    auto p = GlobalPtr<double>::make(1, 0x100);
    auto q = p + 3;
    EXPECT_EQ(q.local(), 0x100u + 24u);
    EXPECT_EQ((q - 3), p);
    q += 1;
    EXPECT_EQ(q.local(), 0x100u + 32u);
}

TEST(GlobalPtr, TypedGlobalArithmetic)
{
    auto p = GlobalPtr<std::uint64_t>::make(3, 0);
    auto q = p.addGlobal(2, 4);
    EXPECT_EQ(q.pe(), 1u);
    EXPECT_EQ(q.local(), 8u);
}

TEST(GlobalPtr, Comparisons)
{
    auto p = GlobalPtr<int>::make(1, 0x100);
    auto q = GlobalPtr<int>::make(1, 0x104);
    EXPECT_LT(p, q);
    EXPECT_EQ(p, GlobalPtr<int>::make(1, 0x100));
}

} // namespace
