/**
 * @file
 * Timestamped shell-event trace (the observability layer's "when did
 * it happen" half; see docs/OBSERVABILITY.md).
 *
 * Shell components record spans (remote reads, write injections, BLT
 * transfers, barrier waits, message receives) and instants onto one
 * machine-wide TraceSink; writeJson() exports Chrome trace-event
 * JSON — one thread track per PE, one counter track per torus
 * dimension — loadable in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Recording only *reads* clocks; it never advances one, so a traced
 * run's simulated schedule is identical to an untraced run (pinned
 * by tests/splitc/obs_invariance_test.cc). Timestamps are converted
 * to microseconds (the Chrome "ts" unit) at export time with pure
 * integer arithmetic, so output is bit-reproducible.
 */

#ifndef T3DSIM_PROBES_TRACE_HH
#define T3DSIM_PROBES_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::probes
{

/** Machine-wide recorder of timestamped shell events. */
class TraceSink
{
  private:
    enum class Kind : std::uint8_t { Span, Instant, Counter };

    struct Event
    {
        const char *name;     ///< static string; not owned
        const char *argName;  ///< optional static string
        std::uint64_t arg;    ///< span argument or counter value
        Cycles start;
        Cycles end;
        PeId tid;
        Kind kind;
    };

  public:
    /**
     * A shard-local event buffer for host-parallel runs (the trace
     * twin of probes::CounterBatch). While a batch is installed on a
     * thread, every record call on that thread appends to the batch
     * instead of the shared sink; the scheduler's controller flushes
     * each shard's batch serially at the window merge. Timestamps
     * come from simulated clocks, so batching reorders only the
     * host-side storage of events, never their simulated times.
     */
    class Batch
    {
        friend class TraceSink;

      public:
        std::size_t pending() const { return _events.size(); }

      private:
        std::vector<Event> _events;
    };

    /** Install @p batch (or null) as this thread's trace buffer. */
    static void installBatch(Batch *batch) { tlsBatch = batch; }

    /** The calling thread's installed batch, or null. */
    static Batch *installedBatch() { return tlsBatch; }

    explicit TraceSink(std::uint32_t num_pes,
                       std::size_t event_cap = 1u << 20)
        : _numPes(num_pes), _cap(event_cap)
    {
    }

    /**
     * Serially drain a shard's batch into the sink. The event cap is
     * applied here (batched appends are never dropped early), so
     * eventCount() + dropped() match a sequential run's totals;
     * *which* events survive a capped run may differ, since shards
     * flush in shard order rather than global record order.
     */
    void
    flush(Batch &batch)
    {
        for (const Event &event : batch._events) {
            if (_events.size() >= _cap)
                ++_dropped;
            else
                _events.push_back(event);
        }
        batch._events.clear();
    }

    /** @name Recording (inline; called from shell hot paths) */
    /// @{
    /** Duration event [start, end] on PE @p pe's track. */
    void
    span(PeId pe, const char *name, Cycles start, Cycles end)
    {
        record(Kind::Span, pe, name, start, end, nullptr, 0);
    }

    /** Span with one integer argument (e.g. the destination PE). */
    void
    span(PeId pe, const char *name, Cycles start, Cycles end,
         const char *arg_name, std::uint64_t arg)
    {
        record(Kind::Span, pe, name, start, end, arg_name, arg);
    }

    /** Zero-duration marker on PE @p pe's track. */
    void
    instant(PeId pe, const char *name, Cycles when)
    {
        record(Kind::Instant, pe, name, when, when, nullptr, 0);
    }

    /** Sample of a named counter track (e.g. "torus.x"). */
    void
    counter(const char *track, Cycles when, std::uint64_t value)
    {
        record(Kind::Counter, 0, track, when, when, nullptr, value);
    }
    /// @}

    std::size_t eventCount() const { return _events.size(); }
    std::size_t dropped() const { return _dropped; }
    std::uint32_t numPes() const { return _numPes; }

    /** Export everything as Chrome trace-event JSON. */
    void writeJson(std::ostream &os) const;

    /** writeJson() to @p path; false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    void
    record(Kind kind, PeId tid, const char *name, Cycles start,
           Cycles end, const char *arg_name, std::uint64_t arg)
    {
        if (Batch *batch = tlsBatch) {
            batch->_events.push_back(
                {name, arg_name, arg, start, end, tid, kind});
            return;
        }
        if (_events.size() >= _cap) {
            ++_dropped;
            return;
        }
        _events.push_back({name, arg_name, arg, start, end, tid, kind});
    }

    inline static thread_local Batch *tlsBatch = nullptr;

    std::uint32_t _numPes;
    std::size_t _cap;
    std::vector<Event> _events;
    std::size_t _dropped = 0;
};

} // namespace t3dsim::probes

#endif // T3DSIM_PROBES_TRACE_HH
