#include "probes/trace.hh"

#include <fstream>
#include <ostream>

namespace t3dsim::probes
{

namespace
{

/**
 * Print a cycle count as Chrome's "ts" unit (microseconds) with
 * picosecond precision, using only integer arithmetic so the output
 * is reproducible across hosts and compilers.
 */
void
writeUs(std::ostream &os, Cycles c)
{
    const std::uint64_t ps = c * psPerCycle;
    const std::uint64_t whole = ps / 1000000;
    std::uint64_t frac = ps % 1000000;
    os << whole << '.';
    for (std::uint64_t digit = 100000; digit >= 1; digit /= 10)
        os << frac / digit % 10;
}

} // namespace

void
TraceSink::writeJson(std::ostream &os) const
{
    os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";

    // Track metadata: one named thread per PE under one process.
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"args\": {\"name\": \"t3dsim\"}}";
    for (std::uint32_t pe = 0; pe < _numPes; ++pe) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
              "\"tid\": "
           << pe << ", \"args\": {\"name\": \"PE " << pe << "\"}}";
    }

    for (const Event &e : _events) {
        os << ",\n{\"name\": \"" << e.name << "\", ";
        switch (e.kind) {
          case Kind::Span:
            os << "\"cat\": \"shell\", \"ph\": \"X\", \"pid\": 0, "
                  "\"tid\": "
               << e.tid << ", \"ts\": ";
            writeUs(os, e.start);
            os << ", \"dur\": ";
            writeUs(os, e.end - e.start);
            if (e.argName)
                os << ", \"args\": {\"" << e.argName << "\": " << e.arg
                   << "}";
            break;
          case Kind::Instant:
            os << "\"cat\": \"shell\", \"ph\": \"i\", \"s\": \"t\", "
                  "\"pid\": 0, \"tid\": "
               << e.tid << ", \"ts\": ";
            writeUs(os, e.start);
            break;
          case Kind::Counter:
            os << "\"ph\": \"C\", \"pid\": 0, \"ts\": ";
            writeUs(os, e.start);
            os << ", \"args\": {\"traversals\": " << e.arg << "}";
            break;
        }
        os << "}";
    }

    os << "\n],\n\"otherData\": {\"droppedEvents\": " << _dropped
       << "}\n}\n";
}

bool
TraceSink::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return bool(os);
}

} // namespace t3dsim::probes
