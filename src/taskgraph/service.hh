/**
 * @file
 * The batch simulation service behind `t3d-serve` (docs/TASKGRAPH.md
 * "Server protocol"): a worker pool that executes line-delimited
 * JSON jobs — parse, validate, lower, then either exact simulation
 * (run.hh) or the analytical fast path (predict.hh) — with a
 * result cache keyed by (graph hash, machine hash, mode). Repeat
 * jobs coalesce: the first becomes the leader and computes, every
 * concurrent or later duplicate waits and answers from the cache
 * without re-simulating (pinned by tests/taskgraph/service_test.cc).
 */

#ifndef T3DSIM_TASKGRAPH_SERVICE_HH
#define T3DSIM_TASKGRAPH_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/primitives.hh"

namespace t3dsim::taskgraph
{

struct ServiceOptions
{
    /** Worker threads draining the job queue. */
    unsigned workers = 1;

    /** Cost model for `"mode": "predict"` jobs. */
    model::CostModel model;

    /** When non-empty, jobs with `"trace": true` write their Chrome
     *  trace JSON under this directory and the response names the
     *  file. */
    std::string traceDir;
};

/**
 * The long-running job service. Construct, submit() lines from any
 * thread, and responses arrive on the callback (from worker threads,
 * serialized per call but in completion order). drain() blocks until
 * the queue and every in-flight job are done; the destructor stops
 * the pool.
 */
class JobService
{
  public:
    /** @param tag Caller's routing cookie, echoed verbatim (t3d-serve
     *  uses it to route socket responses to the right connection). */
    using ResponseFn =
        std::function<void(std::uint64_t tag, const std::string &line)>;

    JobService(ServiceOptions options, ResponseFn on_response);
    ~JobService();

    JobService(const JobService &) = delete;
    JobService &operator=(const JobService &) = delete;

    /** Enqueue one request line (one JSON object). */
    void submit(std::string line, std::uint64_t tag = 0);

    /** Block until every submitted job has been answered. */
    void drain();

    struct Stats
    {
        std::uint64_t jobs = 0;         ///< requests answered
        std::uint64_t simulations = 0;  ///< exact runs executed
        std::uint64_t predictions = 0;  ///< model evaluations executed
        std::uint64_t cacheHits = 0;    ///< answered without executing
        std::uint64_t errors = 0;       ///< rejected requests
    };
    Stats stats() const;

    /**
     * Synchronous one-shot execution of a single request line,
     * bypassing queue and cache (t3d-serve --once; the standalone
     * reference the smoke test compares server batches against).
     */
    static std::string runStandalone(const std::string &line,
                                     const model::CostModel &model,
                                     const std::string &trace_dir);

  private:
    struct CacheEntry
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        std::string payload;  ///< response fragment past the id/cache
    };

    struct Job
    {
        std::string line;
        std::uint64_t tag = 0;
    };

    void workerMain();
    void process(const Job &job);

    ServiceOptions _options;
    ResponseFn _onResponse;

    mutable std::mutex _m;
    std::condition_variable _wake;   ///< workers: queue or stop
    std::condition_variable _idle;   ///< drain(): all done
    std::deque<Job> _queue;
    std::uint64_t _inFlight = 0;
    bool _stop = false;
    Stats _stats;
    std::map<std::string, std::shared_ptr<CacheEntry>> _cache;

    std::vector<std::thread> _workers;
};

} // namespace t3dsim::taskgraph

#endif // T3DSIM_TASKGRAPH_SERVICE_HH
