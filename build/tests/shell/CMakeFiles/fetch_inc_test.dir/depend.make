# Empty dependencies file for fetch_inc_test.
# This may be replaced when dependencies are built.
