/**
 * @file
 * The DEC Alpha workstation used for comparison in Figure 1: the
 * same 21064 core with an 8 KB L1, a 512 KB board-level L2, standard
 * 8 KB pages, and a slower (300 ns) but otherwise conventional
 * memory system (§2.2).
 */

#ifndef T3DSIM_MACHINE_WORKSTATION_HH
#define T3DSIM_MACHINE_WORKSTATION_HH

#include <cstdint>

#include "alpha/cache.hh"
#include "alpha/core.hh"
#include "alpha/tlb.hh"
#include "alpha/write_buffer.hh"
#include "machine/config.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace t3dsim::machine
{

/** A single-node Alpha workstation. */
class Workstation : public alpha::DrainPort
{
  public:
    explicit Workstation(
        const WorkstationConfig &config = WorkstationConfig::dec3000());

    Workstation(const Workstation &) = delete;
    Workstation &operator=(const Workstation &) = delete;

    /** @name Timed memory operations */
    /// @{
    std::uint64_t loadU64(Addr va) { return _core.loadU64(va); }
    void storeU64(Addr va, std::uint64_t v) { _core.storeU64(va, v); }
    void mb() { _core.mb(); }
    /// @}

    Clock &clock() { return _clock; }
    alpha::AlphaCore &core() { return _core; }
    mem::Storage &storage() { return _storage; }
    alpha::Tlb &tlb() { return _tlb; }
    alpha::DirectMappedCache &l1() { return _l1; }
    alpha::DirectMappedCache &l2() { return _l2; }

    /** @name alpha::DrainPort (write buffer drains to local DRAM) */
    /// @{
    DrainResult drainLine(Cycles ready, Addr pa, const std::uint8_t *data,
                          std::uint32_t byte_mask,
                          std::uint32_t tag) override;
    void commitLine(Addr pa, const std::uint8_t *data,
                    std::uint32_t byte_mask) override;
    /// @}

  private:
    WorkstationConfig _config;
    Clock _clock;
    mem::Storage _storage;
    mem::DramController _dram;
    alpha::Tlb _tlb;
    alpha::DirectMappedCache _l1;
    alpha::DirectMappedCache _l2;
    alpha::WriteBuffer _wb;
    alpha::AlphaCore _core;
};

} // namespace t3dsim::machine

#endif // T3DSIM_MACHINE_WORKSTATION_HH
