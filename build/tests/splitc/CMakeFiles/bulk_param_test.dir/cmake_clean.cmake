file(REMOVE_RECURSE
  "CMakeFiles/bulk_param_test.dir/bulk_param_test.cc.o"
  "CMakeFiles/bulk_param_test.dir/bulk_param_test.cc.o.d"
  "bulk_param_test"
  "bulk_param_test.pdb"
  "bulk_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
