/**
 * @file
 * Integration tests of the remote read/write paths against the §4
 * measurements: uncached read ~91 cycles, cached read ~114 cycles,
 * blocking write ~130 cycles, non-blocking write throughput ~17
 * cycles, cached-read incoherence, remote-write cache invalidation.
 */

#include <gtest/gtest.h>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using shell::AnnexEntry;
using shell::ReadMode;

struct RemoteAccessTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(8)};
    machine::Node &n0 = m.node(0);
    machine::Node &n1 = m.node(1);

    /** Annexed VA on node 0 reaching node 1 via annex register 1. */
    Addr
    remoteVa(Addr offset, ReadMode mode = ReadMode::Uncached)
    {
        n0.shell().setAnnex(1, {1, mode});
        return alpha::makeAnnexedVa(1, offset);
    }
};

TEST_F(RemoteAccessTest, UncachedReadLatencyNear91Cycles)
{
    n1.storage().writeU64(0x1000, 0xbeef);
    const Addr va = remoteVa(0x1000);
    // Warm the remote DRAM page.
    n0.loadU64(va);
    const Cycles t0 = n0.clock().now();
    EXPECT_EQ(n0.loadU64(va), 0xbeefu);
    const Cycles latency = n0.clock().now() - t0;
    EXPECT_NEAR(static_cast<double>(latency), 91.0, 6.0);
    // ~610 ns (§4.2).
    EXPECT_NEAR(cyclesToNs(latency), 610.0, 40.0);
}

TEST_F(RemoteAccessTest, UncachedReadDoesNotTouchCache)
{
    n1.storage().writeU64(0x1000, 1);
    const Addr va = remoteVa(0x1000);
    n0.loadU64(va);
    EXPECT_FALSE(n0.dcache().probe(alpha::paOfVa(va)));
}

TEST_F(RemoteAccessTest, CachedReadLatencyNear114Cycles)
{
    n1.storage().writeU64(0x2000, 7);
    const Addr va = remoteVa(0x2000, ReadMode::Cached);
    n0.loadU64(va); // warm remote page
    n0.dcache().invalidate(alpha::paOfVa(va));
    const Cycles t0 = n0.clock().now();
    EXPECT_EQ(n0.loadU64(va), 7u);
    EXPECT_NEAR(static_cast<double>(n0.clock().now() - t0), 114.0, 8.0);
}

TEST_F(RemoteAccessTest, CachedReadFillsLineAndHitsLocally)
{
    n1.storage().writeU64(0x2000, 7);
    n1.storage().writeU64(0x2008, 8);
    const Addr va = remoteVa(0x2000, ReadMode::Cached);
    n0.loadU64(va);
    EXPECT_TRUE(n0.dcache().probe(alpha::paOfVa(va)));
    // The adjacent word now hits the local cache: ~1 cycle.
    const Cycles t0 = n0.clock().now();
    EXPECT_EQ(n0.loadU64(va + 8), 8u);
    EXPECT_LE(n0.clock().now() - t0, 2u);
}

TEST_F(RemoteAccessTest, CachedReadsAreIncoherent)
{
    // §4.4: if the owner updates the line, remote cached copies go
    // stale — there is no hardware coherence.
    n1.storage().writeU64(0x2000, 1);
    const Addr va = remoteVa(0x2000, ReadMode::Cached);
    EXPECT_EQ(n0.loadU64(va), 1u);

    // Owner updates its memory (write-through + drain).
    n1.core().storeU64(0x2000, 99);
    n1.core().mb();
    EXPECT_EQ(n1.storage().readU64(0x2000), 99u);

    // Reader still sees the stale cached copy.
    EXPECT_EQ(n0.loadU64(va), 1u) << "stale value expected";

    // After an explicit flush the fresh value is fetched.
    n0.core().flushLine(va);
    EXPECT_EQ(n0.loadU64(va), 99u);
}

TEST_F(RemoteAccessTest, RemoteWriteMovesData)
{
    const Addr va = remoteVa(0x3000);
    n0.storeU64(va, 0x1234);
    n0.waitRemoteWrites();
    EXPECT_EQ(n1.storage().readU64(0x3000), 0x1234u);
}

TEST_F(RemoteAccessTest, BlockingWriteLatencyNear130Cycles)
{
    const Addr va = remoteVa(0x3000);
    // Warm the remote page.
    n0.storeU64(va, 1);
    n0.waitRemoteWrites();
    const Cycles t0 = n0.clock().now();
    n0.storeU64(va + 64, 2);
    n0.waitRemoteWrites();
    const Cycles latency = n0.clock().now() - t0;
    EXPECT_NEAR(static_cast<double>(latency), 130.0, 15.0);
    EXPECT_NEAR(cyclesToNs(latency), 850.0, 100.0);
}

TEST_F(RemoteAccessTest, NonBlockingWriteThroughputNear17Cycles)
{
    // §5.3: line-distinct remote stores sustain ~115 ns (17 cycles).
    const Addr va = remoteVa(0x10000);
    for (int i = 0; i < 32; ++i) // warm up
        n0.storeU64(va + 32 * i, i);
    const Cycles t0 = n0.clock().now();
    const int n = 128;
    for (int i = 0; i < n; ++i)
        n0.storeU64(va + 0x1000 + 32 * i, i);
    const double per_write =
        double(n0.clock().now() - t0) / n;
    EXPECT_NEAR(per_write, 17.0, 3.0);
    n0.waitRemoteWrites();
}

TEST_F(RemoteAccessTest, StatusBitRequiresMbFirst)
{
    // §4.3: the status bit is CLEAR while the write still sits in
    // the write buffer, so polling without MB returns too early.
    const Addr va = remoteVa(0x4000);
    n0.storeU64(va, 42);
    EXPECT_FALSE(
        n0.shell().remote().writesOutstanding(n0.clock().now()))
        << "write still in WB: status bit misleadingly clear";
    n0.mb();
    EXPECT_TRUE(
        n0.shell().remote().writesOutstanding(n0.clock().now()))
        << "after MB the write has left the processor";
    n0.waitRemoteWrites();
    EXPECT_FALSE(
        n0.shell().remote().writesOutstanding(n0.clock().now()));
}

TEST_F(RemoteAccessTest, RemoteWriteInvalidatesOwnerCache)
{
    // §4.4 cache-invalidate mode: the owner's cached copy of the
    // target line is flushed when a remote write arrives.
    n1.storage().writeU64(0x5000, 1);
    n1.core().loadU64(0x5000);
    EXPECT_TRUE(n1.dcache().probe(0x5000));

    const Addr va = remoteVa(0x5000);
    n0.storeU64(va, 2);
    n0.waitRemoteWrites();
    EXPECT_FALSE(n1.dcache().probe(0x5000));
    EXPECT_EQ(n1.core().loadU64(0x5000), 2u);
}

TEST_F(RemoteAccessTest, RemoteOffPageReadsCostMore)
{
    const Addr va = remoteVa(0x0);
    // Warm-up then measure at 64 KB stride (same remote bank).
    Cycles prev = 0;
    double in_page = 0, off_page = 0;
    n0.loadU64(va);
    prev = n0.clock().now();
    n0.loadU64(va + 8);
    in_page = double(n0.clock().now() - prev);
    prev = n0.clock().now();
    n0.loadU64(va + 64 * KiB);
    off_page = double(n0.clock().now() - prev);
    EXPECT_GT(off_page, in_page + 10.0)
        << "§4.2: off-page remote reads cost ~15 extra cycles";
}

TEST_F(RemoteAccessTest, SwapExchangesValues)
{
    n1.storage().writeU64(0x6000, 111);
    n0.shell().setAnnex(1, {1, ReadMode::Swap});
    const Addr va = alpha::makeAnnexedVa(1, 0x6000);
    EXPECT_EQ(n0.swap(va, 222), 111u);
    EXPECT_EQ(n1.storage().readU64(0x6000), 222u);
}

TEST_F(RemoteAccessTest, FetchIncIsAboutOneMicrosecond)
{
    const Cycles t0 = n0.clock().now();
    EXPECT_EQ(n0.shell().remote().fetchInc(1, 0), 0u);
    EXPECT_EQ(n0.shell().remote().fetchInc(1, 0), 1u);
    const double us = cyclesToUs(n0.clock().now() - t0) / 2.0;
    EXPECT_NEAR(us, 1.0, 0.15) << "§7.4: ~1 us per fetch&increment";
}

TEST_F(RemoteAccessTest, AnnexUpdateCosts23Cycles)
{
    const Cycles t0 = n0.clock().now();
    n0.shell().setAnnex(2, {3, ReadMode::Uncached});
    EXPECT_EQ(n0.clock().now() - t0, 23u);
}

} // namespace
