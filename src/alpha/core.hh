/**
 * @file
 * Alpha 21064 core model for *local* memory operations.
 *
 * Composes TLB, data cache, optional board-level L2 cache (DEC
 * workstation only), write buffer and DRAM into an instruction-level
 * API. Each call charges cycles to the node's clock and moves real
 * bytes. Remote (annexed) accesses are not handled here — the node
 * routes them to the shell (§4) — but synonym physical addresses that
 * resolve to the local PE do flow through this path, which is what
 * makes the §3.4 write-buffer hazard reproducible.
 */

#ifndef T3DSIM_ALPHA_CORE_HH
#define T3DSIM_ALPHA_CORE_HH

#include <cstdint>

#include "alpha/cache.hh"
#include "alpha/tlb.hh"
#include "alpha/write_buffer.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "probes/counters.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace t3dsim::alpha
{

/** Per-instruction cost parameters of the 21064 core. */
struct CoreConfig
{
    /** Streamed load-hit cost; probe measures 6.67 ns/read (§2.2). */
    Cycles loadHitCycles = 1;

    /** Store issue into cache + write buffer (§2.3, ~20 ns merged). */
    Cycles storeIssueCycles = 3;

    /** Base cost of the memory-barrier instruction (§5.2 table). */
    Cycles mbCycles = 4;

    /** Register-to-register operation (byte manipulation etc.). */
    Cycles regOpCycles = 1;

    /** Cache-line flush, equivalent to a main-memory access (§4.4). */
    Cycles flushLineCycles = 23;

    /** Whole-cache flush (batched, cheaper than per-line; §6.2 fn 3). */
    Cycles flushAllCycles = 320;

    /** Board-level cache hit latency (workstation only). */
    Cycles l2HitCycles = 9;
};

/** The core. Owns no components; the node wires them in. */
class AlphaCore
{
  public:
    /**
     * @param l2 Board-level cache, or nullptr (T3D has none, §2.2).
     */
    AlphaCore(const CoreConfig &config, Clock &clock, Tlb &tlb,
              DirectMappedCache &dcache, WriteBuffer &wb,
              mem::DramController &dram, mem::Storage &storage,
              DirectMappedCache *l2 = nullptr);

    /** @name Timed local memory operations (charge the clock) */
    /// @{
    std::uint64_t loadU64(Addr va);
    std::uint32_t loadU32(Addr va);
    void storeU64(Addr va, std::uint64_t value);
    void storeU32(Addr va, std::uint32_t value);

    /** Byte load: aligned LDQ + EXTBL (the 21064 has no byte loads). */
    std::uint8_t loadU8(Addr va);

    /**
     * Byte store: LDQ + MSKBL/INSBL + STQ read-modify-write. Not
     * atomic — the §4.5 clobbering hazard lives here.
     */
    void storeU8(Addr va, std::uint8_t value);
    /// @}

    /**
     * Memory barrier: force the write buffer to memory and stall
     * until it is empty (§4.3, §5.2).
     */
    void mb();

    /** Charge @p n register-operation cycles. */
    void
    chargeRegOps(unsigned n)
    {
        _clock.advance(Cycles{n} * _config.regOpCycles);
    }

    /**
     * Routing tag attached to the NEXT store only (the annex-
     * resolved destination, latched at translation time; consumed by
     * the store and reset to 0). The node sets this before issuing
     * annexed stores; 0 means plain local.
     */
    void setStoreTag(std::uint32_t tag) { _storeTag = tag; }
    std::uint32_t storeTag() const { return _storeTag; }

    /** Charge an arbitrary number of cycles (shell primitives). */
    void charge(Cycles cycles) { _clock.advance(cycles); }

    /** Flush (invalidate) the cache line holding @p va; 23 cycles. */
    void flushLine(Addr va);

    /** Flush the whole data cache (batched cost). */
    void flushAll();

    /** @name Untimed debug/backdoor access (test & loader support) */
    /// @{
    std::uint64_t peekU64(Addr va) const;
    void pokeU64(Addr va, std::uint64_t value);
    /// @}

    Clock &clock() { return _clock; }
    const CoreConfig &config() const { return _config; }
    Tlb &tlb() { return _tlb; }
    DirectMappedCache &dcache() { return _dcache; }
    WriteBuffer &writeBuffer() { return _wb; }
    mem::Storage &storage() { return _storage; }
    mem::DramController &dram() { return _dram; }

    /** Attach (or detach, with nullptr) the node's event counters. */
    void setCounters(probes::PerfCounters *ctr) { _ctr = ctr; }

    /** Statistics. */
    std::uint64_t loads() const { return _loads; }
    std::uint64_t stores() const { return _stores; }
    std::uint64_t cacheHits() const { return _cacheHits; }
    std::uint64_t cacheMisses() const { return _cacheMisses; }

  private:
    /** Common load path; @p len must not cross a cache line. */
    void loadBytes(Addr va, void *dst, std::size_t len);

    /** Common store path; @p len must not cross a cache line. */
    void storeBytes(Addr va, const void *src, std::size_t len);

    CoreConfig _config;
    Clock &_clock;
    Tlb &_tlb;
    DirectMappedCache &_dcache;
    WriteBuffer &_wb;
    mem::DramController &_dram;
    mem::Storage &_storage;
    DirectMappedCache *_l2;

    probes::PerfCounters *_ctr = nullptr;

    std::uint32_t _storeTag = 0;

    std::uint64_t _loads = 0;
    std::uint64_t _stores = 0;
    std::uint64_t _cacheHits = 0;
    std::uint64_t _cacheMisses = 0;
};

} // namespace t3dsim::alpha

#endif // T3DSIM_ALPHA_CORE_HH
