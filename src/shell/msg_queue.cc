#include "shell/msg_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace t3dsim::shell
{

MessageQueue::MessageQueue(const ShellConfig &config)
    : _config(config)
{
}

void
MessageQueue::deliver(Cycles arrive, const std::uint64_t words[4])
{
    Message msg;
    msg.arrival = arrive;
    std::copy(words, words + 4, msg.words.begin());
    // Keep the queue ordered by arrival so the receiver drains
    // messages in delivery order.
    auto pos = std::upper_bound(
        _queue.begin(), _queue.end(), arrive,
        [](Cycles t, const Message &m) { return t < m.arrival; });
    _queue.insert(pos, msg);
    ++_delivered;
    if (_onDeliver)
        _onDeliver();
}

std::optional<Cycles>
MessageQueue::headArrival() const
{
    if (_queue.empty())
        return std::nullopt;
    return _queue.front().arrival;
}

std::pair<Message, Cycles>
MessageQueue::dequeue(Cycles now, bool handler_mode)
{
    T3D_ASSERT(hasMessage(), "dequeue from an empty message queue");
    Message msg = _queue.front();
    _queue.pop_front();

    Cycles done = std::max(now, msg.arrival) + _config.msgInterruptCycles;
    if (handler_mode)
        done += _config.msgHandlerCycles;
    T3D_COUNT(_ctr, msgInterrupts);
    T3D_TRACE(_trace, span(_pe, "msg_recv", msg.arrival, done));
    return {msg, done};
}

} // namespace t3dsim::shell
