/**
 * @file
 * Shared plumbing for the application sweep benches
 * (bench_app_bsort, bench_app_qcd): ladder-row bookkeeping, the full
 * per-variant counter breakdown as JSON, and the sequential-vs-
 * parallel differential every app must pass before its numbers are
 * worth publishing. See docs/APPS.md for the reporting contract.
 */

#ifndef T3DSIM_BENCH_APP_BENCH_HH
#define T3DSIM_BENCH_APP_BENCH_HH

#include <cstdint>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "apps/variant.hh"
#include "probes/counters.hh"
#include "splitc/config.hh"

namespace t3dsim::appbench
{

/** One (variant, PE count) measurement of an app ladder. */
struct LadderRow
{
    const char *variant = "";
    std::uint32_t pes = 0;
    std::uint64_t simCycles = 0;

    /** App-specific normalization (us/key, us/site-update, ...). */
    double perUnit = 0;

    std::uint64_t checksum = 0;

    /** The app's own validation verdict (sorted / converged). */
    bool valid = false;

    probes::PerfCounters counters{};
    bool countersValid = false;
};

/** Emit the full counter taxonomy of @p c as one JSON object. */
inline void
writeCounterObject(std::ostream &os, const probes::PerfCounters &c)
{
    const auto &infos = probes::PerfCounters::infos();
    os << "{";
    for (std::size_t i = 0; i < probes::PerfCounters::numCounters;
         ++i) {
        os << "\"" << infos[i].name << "\": " << c.value(i)
           << (i + 1 < probes::PerfCounters::numCounters ? ", " : "");
    }
    os << "}";
}

/** Emit the ladder as a JSON array under 17-digit precision. */
inline void
writeLadderJson(std::ostream &os, const std::vector<LadderRow> &rows,
                const char *per_unit_key)
{
    os << "  \"ladder\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const LadderRow &r = rows[i];
        os << "    {\"variant\": \"" << r.variant
           << "\", \"pes\": " << r.pes
           << ", \"sim_cycles\": " << r.simCycles << ", \""
           << per_unit_key << "\": " << r.perUnit
           << ", \"checksum\": " << r.checksum
           << ", \"valid\": " << (r.valid ? "true" : "false");
        if (r.countersValid) {
            os << ", \"counters\": ";
            writeCounterObject(os, r.counters);
        }
        os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]";
}

/** Host-thread counts exercised by the differential. */
inline const std::vector<int> &
differentialThreads()
{
    static const std::vector<int> threads = {1, 2, 4, 8};
    return threads;
}

/**
 * The determinism contract behind every published number: the same
 * run under the sequential scheduler, the parallel scheduler at
 * 1/2/4/8 host threads, and with counters off must finish at the
 * same simulated cycle with the same checksum.
 *
 * @param run_fn (const splitc::SplitcConfig &, bool counters) ->
 *               LadderRow (only simCycles/checksum/valid are used).
 * @return true if every leg agreed; diagnostics go to stderr.
 */
template <typename RunFn>
bool
runDifferential(const char *label, RunFn &&run_fn)
{
    splitc::SplitcConfig seq;
    seq.hostThreads = -1;
    const LadderRow base = run_fn(seq, true);
    if (!base.valid) {
        std::cerr << "FAIL " << label
                  << ": sequential baseline failed validation\n";
        return false;
    }

    bool ok = true;
    const auto check = [&](const LadderRow &r, const std::string &leg) {
        if (r.simCycles != base.simCycles ||
            r.checksum != base.checksum || !r.valid) {
            std::cerr << "FAIL " << label << ": " << leg
                      << " diverged (cycles " << r.simCycles << " vs "
                      << base.simCycles << ", checksum " << r.checksum
                      << " vs " << base.checksum << ")\n";
            ok = false;
        }
    };

    for (int n : differentialThreads()) {
        splitc::SplitcConfig par;
        par.hostThreads = n;
        check(run_fn(par, true),
              std::to_string(n) + " host threads");
    }
    check(run_fn(seq, false), "counters off");
    return ok;
}

} // namespace t3dsim::appbench

#endif // T3DSIM_BENCH_APP_BENCH_HH
