/**
 * @file
 * Per-node fetch&increment registers (§7.4).
 *
 * Each node's shell provides two fetch&increment registers used to
 * build N-to-1 queues (message queues, work counters) out of shared
 * memory primitives. Remote access costs roughly a remote read; the
 * RemoteEngine charges the requester, this class is the (atomic)
 * register state plus the small shell-side service cost.
 */

#ifndef T3DSIM_SHELL_FETCH_INC_HH
#define T3DSIM_SHELL_FETCH_INC_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace t3dsim::shell
{

/** The two shell-resident fetch&increment registers of one node. */
class FetchIncRegisters
{
  public:
    /** Number of registers per node (§1.2: two). */
    static constexpr unsigned numRegs = 2;

    /** Shell-side service cost of one fetch&increment. */
    static constexpr Cycles serviceCycles = 5;

    /** Atomically return the current value and increment. */
    std::uint64_t fetchInc(unsigned reg);

    /** Set register @p reg (initialization). */
    void set(unsigned reg, std::uint64_t value);

    /** Read register @p reg without modifying it. */
    std::uint64_t get(unsigned reg) const;

  private:
    std::array<std::uint64_t, numRegs> _regs{};
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_FETCH_INC_HH
