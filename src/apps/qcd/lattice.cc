#include "apps/qcd/qcd.hh"

#include <bit>

#include "sim/logging.hh"
#include "splitc/spread.hh"

namespace t3dsim::apps::qcd
{

double
phi0(std::uint64_t seed, std::uint32_t gx, std::uint32_t gy,
     std::uint32_t gz, std::uint32_t gt)
{
    // One SplitMix64 step over a per-site nonce, mapped to [0, 1):
    // regenerable anywhere (reference sweep, examples) without
    // carrying the field around.
    std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (gx + 1)) ^
        (0xbf58476d1ce4e5b9ull * (gy + 1)) ^
        (0x94d049bb133111ebull * (gz + 1)) ^
        (0xd6e8feb86659fd93ull * (gt + 1));
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Plan
Plan::build(machine::Machine &machine, const Config &config)
{
    Plan plan;
    plan.config = config;
    plan.pes = machine.numPes();

    // Red-black parity only decouples the half-steps when every
    // global dimension is even; even local dims guarantee that for
    // any process grid (T is not distributed, so lt must be even on
    // its own).
    T3D_ASSERT(config.lx % 2 == 0 && config.ly % 2 == 0 &&
                   config.lz % 2 == 0 && config.lt % 2 == 0,
               "qcd local dims must all be even for red/black parity");

    const auto &torus = machine.torus();
    plan.px = torus.dimX();
    plan.py = torus.dimY();
    plan.pz = torus.dimZ();

    plan.coordOf.resize(plan.pes);
    plan.nbrOf.resize(plan.pes);
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        const net::Coord c = torus.coordOf(pe);
        plan.coordOf[pe] = {c.x, c.y, c.z};
        const auto wrap = [](std::uint32_t v, int d,
                             std::uint32_t dim) {
            return static_cast<std::uint32_t>((v + dim + d) % dim);
        };
        plan.nbrOf[pe] = {
            torus.peAt({wrap(c.x, +1, plan.px), c.y, c.z}),
            torus.peAt({wrap(c.x, -1, plan.px), c.y, c.z}),
            torus.peAt({c.x, wrap(c.y, +1, plan.py), c.z}),
            torus.peAt({c.x, wrap(c.y, -1, plan.py), c.z}),
            torus.peAt({c.x, c.y, wrap(c.z, +1, plan.pz)}),
            torus.peAt({c.x, c.y, wrap(c.z, -1, plan.pz)}),
        };
    }

    plan.nsites = config.lx * config.ly * config.lz * config.lt;
    const std::uint32_t face_x = config.ly * config.lz * config.lt;
    const std::uint32_t face_y = config.lx * config.lz * config.lt;
    const std::uint32_t face_z = config.lx * config.ly * config.lt;
    plan.faceSites = {face_x, face_x, face_y, face_y, face_z, face_z};
    std::uint32_t at = 0;
    for (std::uint32_t f = 0; f < numFaces; ++f) {
        plan.faceFirst[f] = at;
        at += plan.faceSites[f];
    }
    plan.haloTotal = at;

    plan.phiBase =
        splitc::allocSymmetric(machine, std::size_t{plan.nsites} * 8);
    plan.haloBase =
        splitc::allocSymmetric(machine, std::size_t{plan.haloTotal} * 8);
    plan.stageBase =
        splitc::allocSymmetric(machine, std::size_t{plan.haloTotal} * 8);
    plan.bulkRecvBase =
        splitc::allocSymmetric(machine, std::size_t{plan.haloTotal} * 8);

    // Deterministic initial field.
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        const GridCoord c = plan.coordOf[pe];
        for (std::uint32_t x = 0; x < config.lx; ++x)
            for (std::uint32_t y = 0; y < config.ly; ++y)
                for (std::uint32_t z = 0; z < config.lz; ++z)
                    for (std::uint32_t t = 0; t < config.lt; ++t) {
                        const double v = phi0(
                            config.seed, c.cx * config.lx + x,
                            c.cy * config.ly + y, c.cz * config.lz + z,
                            t);
                        storage.writeU64(
                            plan.phiBase +
                                Addr{plan.siteIdx(x, y, z, t)} * 8,
                            std::bit_cast<std::uint64_t>(v));
                    }
    }

    return plan;
}

std::vector<double>
Plan::reference() const
{
    const Config &c = config;
    std::vector<double> phi(std::size_t{pes} * nsites);
    for (PeId pe = 0; pe < pes; ++pe) {
        const GridCoord gc = coordOf[pe];
        for (std::uint32_t x = 0; x < c.lx; ++x)
            for (std::uint32_t y = 0; y < c.ly; ++y)
                for (std::uint32_t z = 0; z < c.lz; ++z)
                    for (std::uint32_t t = 0; t < c.lt; ++t)
                        phi[std::size_t{pe} * nsites +
                            siteIdx(x, y, z, t)] =
                            phi0(c.seed, gc.cx * c.lx + x,
                                 gc.cy * c.ly + y, gc.cz * c.lz + z, t);
    }

    // Neighbour access across the block boundary goes through the
    // same nbrOf table as the simulated kernel; within a half-step
    // all eight neighbours have the opposite parity (global dims are
    // even), so the in-place update order cannot matter.
    const auto site = [&](PeId pe, std::uint32_t x, std::uint32_t y,
                          std::uint32_t z, std::uint32_t t) -> double & {
        return phi[std::size_t{pe} * nsites + siteIdx(x, y, z, t)];
    };

    for (std::uint32_t sweep = 0; sweep < c.sweeps; ++sweep) {
        for (std::uint32_t par = 0; par < 2; ++par) {
            for (PeId pe = 0; pe < pes; ++pe) {
                const GridCoord gc = coordOf[pe];
                for (std::uint32_t x = 0; x < c.lx; ++x)
                    for (std::uint32_t y = 0; y < c.ly; ++y)
                        for (std::uint32_t z = 0; z < c.lz; ++z)
                            for (std::uint32_t t = 0; t < c.lt; ++t) {
                                const std::uint32_t gx =
                                    gc.cx * c.lx + x;
                                const std::uint32_t gy =
                                    gc.cy * c.ly + y;
                                const std::uint32_t gz =
                                    gc.cz * c.lz + z;
                                if (((gx + gy + gz + t) & 1) != par)
                                    continue;
                                const double n[8] = {
                                    x + 1 < c.lx
                                        ? site(pe, x + 1, y, z, t)
                                        : site(nbrOf[pe][0], 0, y, z,
                                               t),
                                    x > 0 ? site(pe, x - 1, y, z, t)
                                          : site(nbrOf[pe][1],
                                                 c.lx - 1, y, z, t),
                                    y + 1 < c.ly
                                        ? site(pe, x, y + 1, z, t)
                                        : site(nbrOf[pe][2], x, 0, z,
                                               t),
                                    y > 0 ? site(pe, x, y - 1, z, t)
                                          : site(nbrOf[pe][3], x,
                                                 c.ly - 1, z, t),
                                    z + 1 < c.lz
                                        ? site(pe, x, y, z + 1, t)
                                        : site(nbrOf[pe][4], x, y, 0,
                                               t),
                                    z > 0 ? site(pe, x, y, z - 1, t)
                                          : site(nbrOf[pe][5], x, y,
                                                 c.lz - 1, t),
                                    site(pe, x, y, z,
                                         t + 1 < c.lt ? t + 1 : 0),
                                    site(pe, x, y, z,
                                         t > 0 ? t - 1 : c.lt - 1),
                                };
                                double &v = site(pe, x, y, z, t);
                                v = relaxSite(v, n, c.omega);
                            }
            }
        }
    }
    return phi;
}

} // namespace t3dsim::apps::qcd
