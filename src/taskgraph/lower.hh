/**
 * @file
 * Lowering: from a validated TaskGraph to an executable Plan — PE
 * placement, per-edge mechanism choice and memory layout, and the
 * level-synchronized schedule the runtime (run.cc) and the analytic
 * predictor (predict.cc) both consume.
 *
 * The schedule is BSP-style on purpose: each topological level is a
 * superstep (compute phase, barrier, exchange phase, all_store_sync).
 * docs/STRESS.md documents why a free-running ready-queue runtime
 * cannot stay bit-identical across the sequential and host-parallel
 * schedulers (multi-sender AM/message contention canonicalizes
 * differently); level barriers use exactly the app-suite idioms that
 * the determinism tests already pin, so a task-graph run is
 * reproducible at any host thread count.
 */

#ifndef T3DSIM_TASKGRAPH_LOWER_HH
#define T3DSIM_TASKGRAPH_LOWER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "taskgraph/graph.hh"

namespace t3dsim::taskgraph
{

/** Knobs for placement and mechanism selection. */
struct LowerOptions
{
    std::uint32_t pes = 8;

    /** Auto-mechanism size thresholds (docs/TASKGRAPH.md). The BLT
     *  crossover default is the fitted ~9.5 KB break-even from the
     *  analytical model (docs/MODEL.md "BLT crossover"), not the
     *  shell's configured pipeline caps. */
    std::uint64_t storeMaxBytes = 256;
    std::uint64_t putMaxBytes = 2048;
    std::uint64_t bltCrossoverBytes = 9728;

    /** Cycles charged per task flop. */
    std::uint64_t flopCycles = 1;
};

/** One edge after mechanism choice and layout. */
struct LoweredEdge
{
    std::uint32_t edge = 0;  ///< index into TaskGraph::edges
    Mechanism mech = Mechanism::Local;
    PeId srcPe = 0;
    PeId dstPe = 0;
    std::uint32_t level = 0;     ///< producer's level (delivery step)
    std::uint32_t words = 0;     ///< ceil(bytes / 8)
    Addr stagingAddr = 0;        ///< producer-side payload, on srcPe
    Addr bufAddr = 0;            ///< consumer-side payload, on dstPe
};

/** One PE's slice of one superstep. All vectors are in
 *  deterministic (task/edge index) order. */
struct PeLevelWork
{
    std::vector<std::uint32_t> tasks;  ///< my task indices this level
    std::vector<std::uint32_t> push;   ///< lowered-edge idx, src == me
                                       ///< (Store/Put/Am/Message)
    std::vector<std::uint32_t> pull;   ///< lowered-edge idx, dst == me
                                       ///< (Get/Blt)
    std::uint32_t expectMessages = 0;  ///< message edges into me
    std::uint32_t expectAms = 0;       ///< am edges into me
};

/** The executable plan for one (graph, machine-size) pair. */
struct Plan
{
    std::uint32_t pes = 0;
    std::uint32_t levels = 0;
    LowerOptions options;

    std::vector<LoweredEdge> loweredEdges;  ///< parallel to edges
    std::vector<PeId> placement;            ///< task index -> PE

    /** [pe][level] work lists. */
    std::vector<std::vector<PeLevelWork>> work;

    /** Per task: where its folded result word lands (on its PE). */
    std::vector<Addr> taskResultAddr;

    /**
     * Build the plan: greedy deterministic placement of unpinned
     * tasks (least accumulated compute weight, lowest PE id wins
     * ties), mechanism choice by size for Auto edges, memory layout,
     * and the single-sender validation for Am/Message edges (at most
     * one sending PE per (receiver PE, level) and mechanism —
     * docs/STRESS.md "Contention canonicalization"). The graph must
     * already have passed validate(options.pes).
     */
    static bool build(const TaskGraph &graph, const LowerOptions &options,
                      Plan &out, std::string &err);
};

} // namespace t3dsim::taskgraph

#endif // T3DSIM_TASKGRAPH_LOWER_HH
