/**
 * @file
 * Unit tests for the page-mode DRAM timing model against the §2.2
 * numbers: 22-cycle in-page access, +9 off-page, +9 more same-bank
 * (40-cycle / 264 ns worst case), 16 KB pages, 4 banks.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/types.hh"

namespace
{

using t3dsim::Cycles;
using t3dsim::KiB;
using t3dsim::mem::DramConfig;
using t3dsim::mem::DramController;

TEST(Dram, BankAndRowMapping)
{
    DramController dram;
    // Banks interleave at 16 KB granularity.
    EXPECT_EQ(dram.bankOf(0), 0u);
    EXPECT_EQ(dram.bankOf(16 * KiB), 1u);
    EXPECT_EQ(dram.bankOf(32 * KiB), 2u);
    EXPECT_EQ(dram.bankOf(48 * KiB), 3u);
    EXPECT_EQ(dram.bankOf(64 * KiB), 0u);
    // Rows advance every 64 KB.
    EXPECT_EQ(dram.rowOf(0), 0u);
    EXPECT_EQ(dram.rowOf(64 * KiB - 1), 0u);
    EXPECT_EQ(dram.rowOf(64 * KiB), 1u);
}

TEST(Dram, FirstAccessIsOffPage)
{
    DramController dram;
    auto a = dram.access(0, 0);
    EXPECT_TRUE(a.offPage);
    EXPECT_EQ(a.latency, 22u + 9u);
}

TEST(Dram, InPageAccessIs22Cycles)
{
    DramController dram;
    dram.access(0, 0); // opens the row
    auto a = dram.access(1000, 64);
    EXPECT_FALSE(a.offPage);
    EXPECT_EQ(a.latency, 22u);
}

TEST(Dram, SixteenKStrideRotatesBanksOffPage)
{
    DramController dram;
    // Open rows in all four banks first (row 0 everywhere).
    for (int b = 0; b < 4; ++b)
        dram.access(Cycles{1000} * b, Cycles{16} * KiB * b);
    // Continue the 16 KB stride: each access returns to a bank whose
    // open row no longer matches -> off-page but different bank.
    Cycles t = 100000;
    auto a = dram.access(t, 64 * KiB); // bank 0, row 1
    EXPECT_TRUE(a.offPage);
    EXPECT_EQ(a.latency, 31u); // 22 + 9, no same-bank penalty
}

TEST(Dram, SameBankOffPageIsFullMemoryCycle)
{
    DramController dram;
    dram.access(0, 0);                         // bank 0, row 0
    auto a = dram.access(100000, 64 * KiB);    // bank 0, row 1
    EXPECT_TRUE(a.offPage);
    EXPECT_EQ(a.latency, 40u); // 22 + 9 + 9 = 264 ns worst case
}

TEST(Dram, BankBusyDelaysBackToBack)
{
    DramController dram;
    dram.access(0, 0); // off-page, holds bank until completion (31)
    auto a = dram.access(0, 64 * KiB); // same bank, requested at t=0
    EXPECT_EQ(a.start, 31u) << "must wait for the bank";
    EXPECT_EQ(a.complete, 31u + 40u);
}

TEST(Dram, PipelinedInPageAccesses)
{
    DramConfig cfg;
    DramController dram(cfg);
    dram.access(0, 0); // open row
    // In-page accesses occupy the bank only ~5 cycles: issued
    // back-to-back, they start 5 cycles apart.
    auto a1 = dram.access(100, 8);
    auto a2 = dram.access(100, 16);
    auto a3 = dram.access(100, 24);
    EXPECT_EQ(a2.start - a1.start, cfg.pipelinedBusyCycles);
    EXPECT_EQ(a3.start - a2.start, cfg.pipelinedBusyCycles);
}

TEST(Dram, ResetForgetsRows)
{
    DramController dram;
    dram.access(0, 0);
    dram.reset();
    auto a = dram.access(1000, 64);
    EXPECT_TRUE(a.offPage);
}

/** Property sweep: latency is always one of the three §2.2 levels. */
class DramLatencyLevels : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramLatencyLevels, OnlyThreeLatencyLevels)
{
    DramController dram;
    const std::uint64_t stride = GetParam();
    Cycles t = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        auto a = dram.access(t, i * stride);
        t = a.complete + 100; // quiesce between accesses
        EXPECT_TRUE(a.latency == 22 || a.latency == 31 ||
                    a.latency == 40)
            << "stride=" << stride << " i=" << i
            << " latency=" << a.latency;
    }
}

INSTANTIATE_TEST_SUITE_P(Strides, DramLatencyLevels,
                         ::testing::Values(8, 64, 1024, 8 * KiB,
                                           16 * KiB, 32 * KiB, 64 * KiB,
                                           128 * KiB));

/** Property: steady-state stride latency matches the §2.2 profile. */
TEST(Dram, StrideLatencyProfile)
{
    struct Case
    {
        std::uint64_t stride;
        Cycles expected;
    };
    // Small strides amortize the one off-page access per 16 KB page;
    // at 16 KB+ every access is off-page ("with each subsequent
    // load", §2.2); at 64 KB+ every access also hits the same bank.
    const Case cases[] = {
        {64, 22},           {4 * KiB, 24},  {8 * KiB, 26},
        {16 * KiB, 31},     {32 * KiB, 31}, {64 * KiB, 40},
        {128 * KiB, 40},
    };
    for (const auto &c : cases) {
        DramController dram;
        const std::uint64_t array = 1024 * KiB;
        Cycles t = 0;
        // Warm-up pass.
        for (std::uint64_t a = 0; a < array; a += c.stride)
            t = dram.access(t, a).complete + 50;
        // Measured pass.
        Cycles total = 0;
        std::uint64_t n = 0;
        for (std::uint64_t a = 0; a < array; a += c.stride) {
            auto acc = dram.access(t, a);
            t = acc.complete + 50;
            total += acc.latency;
            ++n;
        }
        EXPECT_EQ(total / n, c.expected) << "stride=" << c.stride;
    }
}

} // namespace
