/**
 * @file
 * Tests for the parallel scheduler's conservative lookahead.
 *
 * W must be positive (a zero-width window cannot make progress) and
 * must not exceed any latency along which one PE's action can reach
 * another PE's wake-up machinery: signaling-store arrival, message
 * delivery, and barrier completion. (fetch&inc / swap are serialized
 * by the grant protocol, not bounded by W — see lookahead.hh.)
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "splitc/lookahead.hh"

namespace
{

using namespace t3dsim;
using machine::MachineConfig;
using splitc::conservativeLookahead;

/** Every wake-capable cross-PE latency @p config can generate. */
std::vector<Cycles>
crossPeLatencies(const MachineConfig &config)
{
    const Cycles min_transit =
        config.numPes > 1 ? config.hopCycles : Cycles{0};
    return {
        config.shell.writeInjectBaseCycles + min_transit,
        config.shell.msgSendCycles + min_transit,
        config.shell.barrierLatencyCycles,
    };
}

void
expectConservative(const MachineConfig &config)
{
    const Cycles w = conservativeLookahead(config);
    EXPECT_GE(w, 1u);
    for (Cycles latency : crossPeLatencies(config)) {
        if (latency > 0) {
            EXPECT_LE(w, latency)
                << "lookahead exceeds a cross-PE influence path";
        }
    }
}

TEST(Lookahead, DefaultT3dConfig)
{
    const MachineConfig config = MachineConfig::t3d();
    const Cycles w = conservativeLookahead(config);
    // writeInjectBaseCycles (5) + one hop (2) is the shortest
    // cross-PE path of the calibrated machine.
    EXPECT_EQ(w, config.shell.writeInjectBaseCycles + config.hopCycles);
    expectConservative(config);
}

TEST(Lookahead, ScalesAcrossMachineSizes)
{
    for (std::uint32_t pes : {2u, 4u, 32u, 256u, 512u})
        expectConservative(MachineConfig::t3d(pes));
}

TEST(Lookahead, DegenerateSinglePe)
{
    // One PE: no cross-PE path exists; the window must still be
    // positive so the (trivially sequential) run advances.
    const MachineConfig config = MachineConfig::t3d(1);
    EXPECT_GE(conservativeLookahead(config), 1u);
    expectConservative(config);
}

TEST(Lookahead, ZeroHopNetwork)
{
    MachineConfig config = MachineConfig::t3d(8);
    config.hopCycles = 0;
    const Cycles w = conservativeLookahead(config);
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, config.shell.writeInjectBaseCycles);
    expectConservative(config);
}

TEST(Lookahead, DegenerateZeroCostShell)
{
    // Even a config with every relevant cost zeroed must yield a
    // positive window.
    MachineConfig config = MachineConfig::t3d(4);
    config.hopCycles = 0;
    config.shell.writeInjectBaseCycles = 0;
    config.shell.msgSendCycles = 0;
    config.shell.barrierLatencyCycles = 0;
    EXPECT_EQ(conservativeLookahead(config), 1u);
}

TEST(Lookahead, TracksTheCheapestPath)
{
    // Make the barrier the cheapest path; W must follow it down.
    MachineConfig config = MachineConfig::t3d(16);
    config.shell.barrierLatencyCycles = 3;
    EXPECT_EQ(conservativeLookahead(config), 3u);
    expectConservative(config);
}

} // namespace
