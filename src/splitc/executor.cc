#include "splitc/executor.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "splitc/parallel_executor.hh"
#include "splitc/proc.hh"
#include "sim/logging.hh"

namespace t3dsim::splitc
{

// ---------------------------------------------------------------------
// Awaitables
// ---------------------------------------------------------------------

bool
BarrierAwaiter::await_ready() const noexcept
{
    // The arrival was recorded by startBarrier(); the awaiter only
    // asks whether the generation has already completed.
    return proc.barrierReady();
}

void
BarrierAwaiter::await_suspend(std::coroutine_handle<>) const
{
    proc.scheduler().parkBarrier(proc.pe());
}

bool
StoreSyncAwaiter::await_ready() const noexcept
{
    auto &log = amLog ? proc.node().amArrivals()
                      : proc.node().storeArrivals();
    auto when = log.timeOfCumulative(targetCumulative);
    if (!when)
        return false;
    proc.clock().syncTo(*when);
    proc.node().core().charge(proc.config().storeSyncPollCycles);
    return true;
}

void
StoreSyncAwaiter::await_suspend(std::coroutine_handle<>) const
{
    proc.scheduler().parkStoreWait(proc.pe(), targetCumulative, amLog);
}

bool
MessageAwaiter::await_ready() const noexcept
{
    return proc.node().shell().messages().hasMessage();
}

void
MessageAwaiter::await_suspend(std::coroutine_handle<>) const
{
    proc.scheduler().parkMessageWait(proc.pe());
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

Scheduler::Scheduler(machine::Machine &machine, const SplitcConfig &config)
    : _machine(machine), _config(config)
{
    _slots.resize(machine.numPes());
    _amFlow.resize(machine.numPes());
    for (PeId pe = 0; pe < machine.numPes(); ++pe) {
        _slots[pe].proc = std::make_unique<Proc>(*this, machine,
                                                 machine.node(pe), config);
    }
}

Scheduler::~Scheduler() = default;

Proc &
Scheduler::proc(PeId pe)
{
    T3D_ASSERT(pe < _slots.size(), "proc index out of range: ", pe);
    return *_slots[pe].proc;
}

void
Scheduler::parkBarrier(PeId pe)
{
    _slots[pe].state = ProcState::BarrierWait;
    _barrierWaiters.push_back(pe);
}

void
Scheduler::parkStoreWait(PeId pe, std::uint64_t target_cumulative,
                         bool am_log)
{
    _slots[pe].state = ProcState::StoreWait;
    _slots[pe].storeTarget = target_cumulative;
    _slots[pe].storeTargetAmLog = am_log;
}

void
Scheduler::parkMessageWait(PeId pe)
{
    _slots[pe].state = ProcState::MessageWait;
}

void
Scheduler::barrierArrive(PeId pe, Cycles when)
{
    auto exit = _machine.barrier().arrive(pe, when);
    if (exit)
        completeBarrier(*exit);
}

void
Scheduler::recordStoreArrival(PeId dst, Cycles when, std::uint64_t bytes)
{
    _machine.node(dst).storeArrivals().record(when, bytes);
}

void
Scheduler::recordAmArrival(PeId dst, Cycles when, std::uint64_t count)
{
    _machine.node(dst).amArrivals().record(when, count);
}

void
Scheduler::amPublishDispatch(PeId pe, bool spilled)
{
    AmFlowCounts &flow = _amFlow[pe];
    ++flow.dispatched;
    if (spilled)
        ++flow.spillsDrained;
}

Scheduler::AmFlowCounts
Scheduler::amFlowVisible(PeId pe)
{
    return _amFlow[pe];
}

void
Scheduler::wakeBarrierWaiter(PeId pe, Cycles exit)
{
    Slot &slot = _slots[pe];
    T3D_ASSERT(slot.state == ProcState::BarrierWait,
               "barrier waiter list holds non-waiting PE ", pe);
    Proc &proc = *slot.proc;
    proc.clock().syncTo(exit);
    proc.node().core().charge(_config.endBarrierCycles);
    proc.clearBarrierWait();
    proc.noteBarrierComplete();
    slot.state = ProcState::Ready;
    markReady(pe);
}

void
Scheduler::completeBarrier(Cycles exit)
{
    for (PeId pe : _barrierWaiters)
        wakeBarrierWaiter(pe, exit);
    _barrierWaiters.clear();
    _machine.barrier().resetGeneration();
}

void
Scheduler::markReady(PeId pe)
{
    _ready.push_back({_slots[pe].proc->now(), pe});
    std::push_heap(_ready.begin(), _ready.end());
}

PeId
Scheduler::popReady()
{
    std::pop_heap(_ready.begin(), _ready.end());
    const PeId pe = _ready.back().pe;
    _ready.pop_back();
    return pe;
}

void
Scheduler::queueWakeupCheck(PeId pe)
{
    Slot &slot = _slots[pe];
    if (slot.wakeQueued)
        return;
    if (slot.state != ProcState::StoreWait &&
        slot.state != ProcState::MessageWait)
        return;
    slot.wakeQueued = true;
    _pendingWakeups.push_back(pe);
}

bool
Scheduler::tryWake(PeId pe)
{
    Slot &slot = _slots[pe];
    slot.wakeQueued = false;
    Proc &proc = *slot.proc;
    switch (slot.state) {
      case ProcState::StoreWait: {
        auto &log = slot.storeTargetAmLog
            ? proc.node().amArrivals()
            : proc.node().storeArrivals();
        auto when = log.timeOfCumulative(slot.storeTarget);
        if (when) {
            proc.clock().syncTo(*when);
            proc.node().core().charge(_config.storeSyncPollCycles);
            slot.state = ProcState::Ready;
            markReady(pe);
            return true;
        }
        break;
      }
      case ProcState::MessageWait:
        if (proc.node().shell().messages().hasMessage()) {
            slot.state = ProcState::Ready;
            markReady(pe);
            return true;
        }
        break;
      default:
        break;
    }
    return false;
}

void
Scheduler::drainPendingWakeups()
{
    for (std::size_t i = 0; i < _pendingWakeups.size(); ++i)
        tryWake(_pendingWakeups[i]);
    _pendingWakeups.clear();
}

void
Scheduler::installHooks()
{
    for (PeId pe = 0; pe < _slots.size(); ++pe) {
        _slots[pe].proc->node().setWakeupHooks(
            [this, pe] { queueWakeupCheck(pe); },
            [this, pe] { queueWakeupCheck(pe); },
            [this, pe] { queueWakeupCheck(pe); });
    }
}

void
Scheduler::removeHooks()
{
    for (auto &slot : _slots)
        slot.proc->node().clearWakeupHooks();
}

void
Scheduler::panicDeadlock(std::size_t done) const
{
    std::size_t barrier_waiters = 0, store_waiters = 0, msg_waiters = 0;
    for (const auto &slot : _slots) {
        barrier_waiters += slot.state == ProcState::BarrierWait ? 1 : 0;
        store_waiters += slot.state == ProcState::StoreWait ? 1 : 0;
        msg_waiters += slot.state == ProcState::MessageWait ? 1 : 0;
    }
    T3D_PANIC("SPMD deadlock: ", done, "/", _slots.size(), " done, ",
              barrier_waiters, " in barrier, ", store_waiters,
              " in store_sync, ", msg_waiters,
              " waiting for messages");
}

bool
Scheduler::resumeSlot(PeId pe)
{
    Slot &slot = _slots[pe];
    T3D_ASSERT(slot.state == ProcState::Ready,
               "ready heap out of sync with slot ", pe);
    auto handle = slot.task.handle();
    handle.resume();

    if (handle.done()) {
        slot.state = ProcState::Done;
        return true;
    }
    if (slot.state == ProcState::Ready) {
        // The coroutine suspended but an awaitable left the slot
        // Ready (woken synchronously): requeue it.
        markReady(pe);
    }
    // Else: the awaitable moved the slot into a wait state; a hook
    // or completeBarrier will requeue it.
    return false;
}

void
Scheduler::mainLoop()
{
    while (_done < _slots.size()) {
        drainPendingWakeups();
        if (_ready.empty()) {
            // Nothing runnable and nothing wakeable: deadlock.
            panicDeadlock(_done);
        }

        const PeId next = popReady();
        if (resumeSlot(next)) {
            auto handle = _slots[next].task.handle();
            if (handle.promise().exception)
                std::rethrow_exception(handle.promise().exception);
            ++_done;
        }
    }
}

std::vector<Cycles>
Scheduler::run(const ProgramFn &program)
{
    T3D_ASSERT(!_running, "scheduler re-entered");
    _running = true;

    // Hooks must come off however we leave (panic paths throw in
    // tests): the machine outlives this scheduler.
    struct HookGuard
    {
        Scheduler &sched;
        ~HookGuard() { sched.removeHooks(); }
    } hook_guard{*this};
    installHooks();

    // BLT staging on this thread bumps into the scheduler's arena
    // (workers of the parallel mainLoop install their shard's own).
    sim::ScratchArenaInstall scratch_install(_scratchArena);

    _ready.clear();
    _ready.reserve(_slots.size());
    _pendingWakeups.clear();
    _done = 0;

    for (PeId pe = 0; pe < _slots.size(); ++pe) {
        Slot &slot = _slots[pe];
        slot.task = program(*slot.proc);
        slot.state = ProcState::Ready;
        slot.wakeQueued = false;
        markReady(pe);
    }

    mainLoop();

    _running = false;

    // End-of-program flush: drain every node's write buffer so
    // backing storage reflects all completed stores.
    for (auto &slot : _slots)
        slot.proc->node().mb();

    // Dump the counter/trace reports configured for this run (no-op
    // with observability off).
    _machine.flushObservability();

    std::vector<Cycles> finish;
    finish.reserve(_slots.size());
    for (auto &slot : _slots)
        finish.push_back(slot.proc->now());
    return finish;
}

namespace
{

/**
 * Resolve the worker-thread count for a run: explicit config wins,
 * otherwise the T3DSIM_HOST_THREADS environment variable. Zero means
 * "sequential scheduler".
 */
unsigned
resolveHostThreads(const SplitcConfig &config)
{
    if (config.hostThreads > 0)
        return static_cast<unsigned>(config.hostThreads);
    if (config.hostThreads < 0)
        return 0;

    const char *env = std::getenv("T3DSIM_HOST_THREADS");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
        T3D_PANIC("T3DSIM_HOST_THREADS must be a non-negative integer, "
                  "got '", env, "'");
    }
    return static_cast<unsigned>(parsed);
}

} // namespace

std::vector<Cycles>
runSpmd(machine::Machine &machine, const ProgramFn &program,
        const SplitcConfig &config)
{
    const unsigned host_threads = resolveHostThreads(config);
    if (host_threads > 0) {
        ParallelScheduler sched(machine, config, host_threads);
        return sched.run(program);
    }
    Scheduler sched(machine, config);
    return sched.run(program);
}

} // namespace t3dsim::splitc
