#include "splitc/lookahead.hh"

#include <algorithm>

namespace t3dsim::splitc
{

Cycles
conservativeLookahead(const machine::MachineConfig &config)
{
    // Minimum transit between two *distinct* PEs. Any torus with
    // more than one node has an adjacent pair, so the floor is one
    // hop; a single-node machine has no cross-PE path at all.
    const Cycles min_transit =
        config.numPes > 1 ? config.hopCycles : Cycles{0};

    const shell::ShellConfig &sh = config.shell;
    const Cycles store_path = sh.writeInjectBaseCycles + min_transit;
    const Cycles message_path = sh.msgSendCycles + min_transit;
    const Cycles barrier_path = sh.barrierLatencyCycles;

    const Cycles w = std::min({store_path, message_path, barrier_path});
    return std::max<Cycles>(w, 1);
}

} // namespace t3dsim::splitc
