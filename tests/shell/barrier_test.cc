/**
 * @file
 * Unit tests for the hardware barrier network (§7.5).
 */

#include <gtest/gtest.h>

#include "shell/barrier.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using shell::BarrierNetwork;

TEST(Barrier, SinglePeCompletesImmediately)
{
    BarrierNetwork b(1, 40);
    auto exit = b.arrive(0, 100);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 140u);
}

TEST(Barrier, ExitIsMaxArrivalPlusLatency)
{
    BarrierNetwork b(3, 40);
    EXPECT_FALSE(b.arrive(0, 100).has_value());
    EXPECT_FALSE(b.arrive(2, 500).has_value());
    auto exit = b.arrive(1, 300);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 540u) << "latest arrival (500) + latency (40)";
}

TEST(Barrier, CompleteFlagAndCount)
{
    BarrierNetwork b(2, 10);
    EXPECT_FALSE(b.complete());
    b.arrive(0, 1);
    EXPECT_EQ(b.arrivedCount(), 1u);
    b.arrive(1, 2);
    EXPECT_TRUE(b.complete());
}

TEST(Barrier, GenerationsReset)
{
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    b.arrive(1, 2);
    EXPECT_EQ(b.generation(), 0u);
    b.resetGeneration();
    EXPECT_EQ(b.generation(), 1u);
    EXPECT_EQ(b.arrivedCount(), 0u);
    // A new round works and its exit reflects only new arrivals.
    b.arrive(1, 1000);
    auto exit = b.arrive(0, 900);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 1010u);
}

TEST(Barrier, DoubleArrivalPanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    EXPECT_THROW(b.arrive(0, 2), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Barrier, ResetWhileIncompletePanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    EXPECT_THROW(b.resetGeneration(), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Barrier, ExitBeforeCompletePanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    EXPECT_THROW(b.exitTime(), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
