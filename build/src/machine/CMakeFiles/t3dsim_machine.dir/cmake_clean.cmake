file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_machine.dir/machine.cc.o"
  "CMakeFiles/t3dsim_machine.dir/machine.cc.o.d"
  "CMakeFiles/t3dsim_machine.dir/node.cc.o"
  "CMakeFiles/t3dsim_machine.dir/node.cc.o.d"
  "CMakeFiles/t3dsim_machine.dir/workstation.cc.o"
  "CMakeFiles/t3dsim_machine.dir/workstation.cc.o.d"
  "libt3dsim_machine.a"
  "libt3dsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
