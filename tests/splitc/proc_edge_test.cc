/**
 * @file
 * Edge cases and failure injection for the Split-C runtime: resource
 * exhaustion, misuse panics, sub-word remote accesses, atomic swap,
 * typed global pointers.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::GlobalAddr;
using splitc::GlobalPtr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

TEST(ProcEdge, AllocatorAlignsAndAdvances)
{
    Machine m(MachineConfig::t3d(2));
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            auto a = p.allocLocal(3);
            auto b = p.allocLocal(8, 64);
            EXPECT_EQ(b.local() % 64, 0u);
            EXPECT_GT(b.local(), a.local());
        }
        co_return;
    });
}

TEST(ProcEdge, AllocatorExhaustionPanics)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(2));
    // The node segment is 128 MB.
    EXPECT_THROW(m.node(0).alloc(Addr{1} << 31), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(ProcEdge, SignalingStoreAcrossLinePanics)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(2));
    EXPECT_THROW(
        runSpmd(m,
                [&](Proc &p) -> ProcTask {
                    if (p.pe() == 0) {
                        // 28 mod 32: an 8-byte store would cross.
                        p.storeU64(GlobalAddr::make(1, 0x1001c), 1);
                    }
                    co_return;
                }),
        std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(ProcEdge, AmDepositToSelfPanics)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(2));
    EXPECT_THROW(
        runSpmd(m,
                [&](Proc &p) -> ProcTask {
                    if (p.pe() == 0)
                        p.amDeposit(0, 20, {1, 2, 3, 4});
                    co_return;
                }),
        std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(ProcEdge, UnknownAmTagPanics)
{
    detail::setThrowOnError(true);
    Machine m(MachineConfig::t3d(2));
    EXPECT_THROW(
        runSpmd(m,
                [&](Proc &p) -> ProcTask {
                    if (p.pe() == 0) {
                        p.amDeposit(1, 999, {0, 0, 0, 0});
                        co_await p.barrier();
                    } else {
                        co_await p.barrier();
                        p.amPoll(); // no handler for 999
                    }
                    co_return;
                }),
        std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(ProcEdge, RemoteSubWordAccess)
{
    Machine m(MachineConfig::t3d(2));
    m.node(1).storage().writeU64(0x30000, 0x8877665544332211ull);
    std::uint8_t byte = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            byte = p.readU8(GlobalAddr::make(1, 0x30005));
            EXPECT_EQ(p.node().loadU32(
                          alpha::makeAnnexedVa(0, 0x0)),
                      0u);
        }
        co_return;
    });
    EXPECT_EQ(byte, 0x66u);
}

TEST(ProcEdge, AtomicSwapThroughRuntime)
{
    Machine m(MachineConfig::t3d(2));
    m.node(1).storage().writeU64(0x30000, 111);
    std::uint64_t old1 = 0, old2 = 0;
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            old1 = p.atomicSwap(GlobalAddr::make(1, 0x30000), 222);
            old2 = p.atomicSwap(GlobalAddr::make(1, 0x30000), 333);
        }
        co_return;
    });
    EXPECT_EQ(old1, 111u);
    EXPECT_EQ(old2, 222u);
    EXPECT_EQ(m.node(1).storage().readU64(0x30000), 333u);
}

TEST(ProcEdge, TypedGlobalPointerTraversal)
{
    Machine m(MachineConfig::t3d(4));
    // A remote array walked with a typed pointer.
    for (int i = 0; i < 8; ++i)
        m.node(2).storage().writeU64(0x30000 + 8 * i, 900 + i);
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            auto ptr = GlobalPtr<std::uint64_t>::make(2, 0x30000);
            std::uint64_t sum = 0;
            for (int i = 0; i < 8; ++i)
                sum += p.readU64((ptr + i).addr());
            EXPECT_EQ(sum, 8u * 900 + 28);
        }
        co_return;
    });
}

TEST(ProcEdge, GlobalArithmeticWalksPes)
{
    Machine m(MachineConfig::t3d(4));
    for (PeId pe = 0; pe < 4; ++pe)
        m.node(pe).storage().writeU64(0x30000, 100 + pe);
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            auto ptr = GlobalPtr<std::uint64_t>::make(0, 0x30000);
            std::uint64_t sum = 0;
            for (int i = 0; i < 4; ++i) {
                sum += p.readU64(ptr.addr());
                ptr = ptr.addGlobal(1, p.procs());
            }
            EXPECT_EQ(sum, 100u + 101 + 102 + 103);
        }
        co_return;
    });
}

TEST(ProcEdge, ComputeAdvancesOnlyOwnClock)
{
    Machine m(MachineConfig::t3d(2));
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0)
            p.compute(12345);
        co_return;
    });
    // +4 for the end-of-run flush.
    EXPECT_EQ(m.node(0).clock().now(), 12349u);
    EXPECT_EQ(m.node(1).clock().now(), 4u);
}

TEST(ProcEdge, StatisticsAccumulate)
{
    Machine m(MachineConfig::t3d(2));
    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.storeU64(GlobalAddr::make(1, 0x30000), 1);
            p.storeU64(GlobalAddr::make(1, 0x30020), 2);
            EXPECT_EQ(p.storesIssued(), 2u);
            EXPECT_GE(p.annexUpdates(), 1u);
        }
        co_return;
    });
}

} // namespace
