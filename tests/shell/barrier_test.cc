/**
 * @file
 * Unit tests for the hardware barrier network (§7.5).
 */

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "shell/barrier.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using shell::BarrierNetwork;

TEST(Barrier, SinglePeCompletesImmediately)
{
    BarrierNetwork b(1, 40);
    auto exit = b.arrive(0, 100);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 140u);
}

TEST(Barrier, ExitIsMaxArrivalPlusLatency)
{
    BarrierNetwork b(3, 40);
    EXPECT_FALSE(b.arrive(0, 100).has_value());
    EXPECT_FALSE(b.arrive(2, 500).has_value());
    auto exit = b.arrive(1, 300);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 540u) << "latest arrival (500) + latency (40)";
}

TEST(Barrier, CompleteFlagAndCount)
{
    BarrierNetwork b(2, 10);
    EXPECT_FALSE(b.complete());
    b.arrive(0, 1);
    EXPECT_EQ(b.arrivedCount(), 1u);
    b.arrive(1, 2);
    EXPECT_TRUE(b.complete());
}

TEST(Barrier, GenerationsReset)
{
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    b.arrive(1, 2);
    EXPECT_EQ(b.generation(), 0u);
    b.resetGeneration();
    EXPECT_EQ(b.generation(), 1u);
    EXPECT_EQ(b.arrivedCount(), 0u);
    // A new round works and its exit reflects only new arrivals.
    b.arrive(1, 1000);
    auto exit = b.arrive(0, 900);
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(*exit, 1010u);
}

TEST(Barrier, DoubleArrivalPanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    EXPECT_THROW(b.arrive(0, 2), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Barrier, ResetWhileIncompletePanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    b.arrive(0, 1);
    EXPECT_THROW(b.resetGeneration(), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Barrier, ExitBeforeCompletePanics)
{
    detail::setThrowOnError(true);
    BarrierNetwork b(2, 10);
    EXPECT_THROW(b.exitTime(), std::logic_error);
    detail::setThrowOnError(false);
}

// ---------------------------------------------------------------------
// Radix-tree equivalence against the flat reference implementation
// ---------------------------------------------------------------------

/**
 * The pre-tree flat implementation: a presence vector, a running
 * count and a running max clamped through the previous generation's
 * exit. The radix tree must reproduce its exit times bit-for-bit.
 */
struct FlatBarrier
{
    std::uint32_t pes;
    Cycles latency;
    std::vector<char> present;
    std::uint32_t count = 0;
    Cycles maxArrival = 0;
    Cycles lastExit = 0;

    FlatBarrier(std::uint32_t pes_, Cycles latency_)
        : pes(pes_), latency(latency_), present(pes_, 0)
    {
    }

    std::optional<Cycles>
    arrive(PeId pe, Cycles when)
    {
        present[pe] = 1;
        ++count;
        maxArrival = std::max({maxArrival, when, lastExit});
        if (count == pes)
            return maxArrival + latency;
        return std::nullopt;
    }

    void
    reset()
    {
        lastExit = maxArrival + latency;
        std::fill(present.begin(), present.end(), 0);
        count = 0;
        maxArrival = 0;
    }
};

TEST(Barrier, RadixTreeMatchesFlatReference)
{
    std::mt19937_64 rng(0x7e57ba221e5ull);
    // Power-of-two PE counts, the radix boundary (63/64/65), and
    // non-power-of-two counts with partial leaf groups and partial
    // tree levels.
    for (std::uint32_t pes :
         {1u, 2u, 5u, 63u, 64u, 65u, 100u, 1000u, 4096u, 4097u}) {
        BarrierNetwork tree(pes, 40);
        FlatBarrier flat(pes, 40);

        std::vector<PeId> order(pes);
        for (PeId pe = 0; pe < pes; ++pe)
            order[pe] = pe;

        Cycles base = 0;
        for (int gen = 0; gen < 6; ++gen) {
            std::shuffle(order.begin(), order.end(), rng);
            std::optional<Cycles> tree_exit, flat_exit;
            for (std::uint32_t i = 0; i < pes; ++i) {
                // Mostly fresh timestamps, with a sprinkling of
                // stale ones from before the previous exit (a PE
                // that reached start-barrier long ago) to exercise
                // the per-arrival clamp.
                Cycles when = base + rng() % 10000;
                if (gen > 0 && rng() % 4 == 0)
                    when = rng() % (tree.lastExitTime() + 1);
                tree_exit = tree.arrive(order[i], when);
                flat_exit = flat.arrive(order[i], when);
                ASSERT_EQ(tree_exit.has_value(), flat_exit.has_value())
                    << pes << " PEs, generation " << gen;
                EXPECT_EQ(tree.arrivedCount(), i + 1);
            }
            ASSERT_TRUE(tree_exit.has_value());
            EXPECT_EQ(*tree_exit, *flat_exit)
                << pes << " PEs, generation " << gen;
            EXPECT_EQ(tree.exitTime(), *flat_exit);
            tree.resetGeneration();
            flat.reset();
            EXPECT_EQ(tree.lastExitTime(), flat.lastExit);
            base = flat.lastExit;
        }
    }
}

TEST(Barrier, TreeStaysSmallAt64KPes)
{
    BarrierNetwork b(65536, 40);
    // ~1K leaf groups + ~1K+16+1 tree nodes: tens of KB, not O(P)
    // presence vectors per generation.
    EXPECT_LT(b.residentBytes(), 64 * KiB);
    EXPECT_EQ(b.arrivedCount(), 0u);
}

} // namespace
