file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bulk.dir/bench_fig8_bulk.cc.o"
  "CMakeFiles/bench_fig8_bulk.dir/bench_fig8_bulk.cc.o.d"
  "bench_fig8_bulk"
  "bench_fig8_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
