/**
 * @file
 * Figure 4: remote read latency vs. stride (adjacent node).
 *
 * Uncached reads ~610 ns (91 cycles), cached reads ~765 ns (114
 * cycles) with local-cache effects for in-cache arrays and the
 * line-prefetch advantage at 8/16-byte strides, the off-page rise at
 * 16 KB strides, and the full Split-C read cost (~850 ns) on top.
 */

#include <iostream>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "probes/stride.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

#include "profile.hh"

using namespace t3dsim;
using shell::ReadMode;

namespace
{

std::vector<probes::StridePoint>
remoteReadProfile(ReadMode mode)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &n0 = m.node(0);
    n0.shell().setAnnex(1, {1, mode});
    const Addr base = alpha::makeAnnexedVa(1, 0);
    return probes::strideProbe(
        [&](Addr a) { n0.loadU64(a); },
        [&] { return n0.clock().now(); },
        base, 4 * KiB, 4 * MiB);
}

} // namespace

int
main()
{
    std::cout << "Figure 4: remote read latency (adjacent node, ns "
                 "per read)\n";

    auto uncached = remoteReadProfile(ReadMode::Uncached);
    bench::printProfile("uncached remote reads", uncached);

    auto cached = remoteReadProfile(ReadMode::Cached);
    bench::printProfile("cached remote reads", cached);

    // Split-C read: the language-level primitive.
    machine::Machine m(machine::MachineConfig::t3d(3));
    double splitc_ns = 0;
    splitc::runSpmd(m, [&](splitc::Proc &p) -> splitc::ProcTask {
        if (p.pe() != 0)
            co_return;
        p.readU64(splitc::GlobalAddr::make(1, 0)); // warm pages
        p.readU64(splitc::GlobalAddr::make(2, 0));
        const int n = 64;
        const Cycles t0 = p.now();
        for (int i = 0; i < n; ++i) {
            // Alternate targets so every access pays the annex
            // set-up, as the paper's end-to-end cost does.
            p.readU64(splitc::GlobalAddr::make(1 + (i % 2),
                                               64 + 8 * (i % 8)));
        }
        splitc_ns = cyclesToNs(p.now() - t0) / n;
        co_return;
    });

    auto at = [](const std::vector<probes::StridePoint> &pts,
                 std::uint64_t a, std::uint64_t s) {
        const auto *p = probes::findPoint(pts, a, s);
        return p ? p->avgNsPerOp : -1.0;
    };

    probes::Table key({"landmark", "model (ns)", "paper (Sec. 4.2)"});
    key.addRow("uncached read (64K/32)", at(uncached, 64 * KiB, 32),
               "610 ns (91 cy)");
    key.addRow("uncached off-page (1M/16K)",
               at(uncached, 1 * MiB, 16 * KiB), "+100 ns (15 cy)");
    key.addRow("cached read, miss (64K/32)", at(cached, 64 * KiB, 32),
               "765 ns (114 cy)");
    key.addRow("cached read, in-cache array (4K/8)",
               at(cached, 4 * KiB, 8), "local cache time");
    key.addRow("cached stride-8 line reuse (64K/8)",
               at(cached, 64 * KiB, 8), "1 miss + 3 hits per line");
    key.addRow("Split-C read (annex + overhead)", splitc_ns,
               "850 ns (128 cy)");
    key.print();

    return 0;
}
