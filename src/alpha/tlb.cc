#include "alpha/tlb.hh"

#include <bit>

#include "sim/logging.hh"

namespace t3dsim::alpha
{

Tlb::Tlb(const Config &config)
    : _config(config)
{
    T3D_ASSERT(_config.entries > 0, "TLB needs entries");
    T3D_ASSERT(_config.pageBytes > 0, "TLB page size must be positive");
    if (std::has_single_bit(_config.pageBytes))
        _pageShift = static_cast<unsigned>(
            std::countr_zero(_config.pageBytes));
}

Cycles
Tlb::accessScan(std::uint64_t page)
{
    if (_entries.empty()) [[unlikely]]
        _entries.resize(_config.entries);
    Entry *victim = &_entries[0];
    for (auto &entry : _entries) {
        if (entry.valid && entry.page == page) {
            entry.lastUse = _useCounter;
            ++_hits;
            _lastHit = static_cast<unsigned>(&entry - _entries.data());
            return 0;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    ++_misses;
    T3D_COUNT(_ctr, tlbMisses);
    victim->valid = true;
    victim->page = page;
    victim->lastUse = _useCounter;
    _lastHit = static_cast<unsigned>(victim - _entries.data());
    return _config.missPenaltyCycles;
}

bool
Tlb::contains(Addr va) const
{
    const std::uint64_t page = pageOf(va);
    for (const auto &entry : _entries) {
        if (entry.valid && entry.page == page)
            return true;
    }
    return false;
}

void
Tlb::flush()
{
    for (auto &entry : _entries)
        entry.valid = false;
    _lastHit = ~0u;
}

} // namespace t3dsim::alpha
