/**
 * @file
 * Tests of the model layer's minimal JSON reader/builder — the
 * parser must accept everything the benches emit and reject the
 * malformed files a user will inevitably hand `t3d-model fit`.
 */

#include <gtest/gtest.h>

#include "model/json.hh"

namespace t3dsim::model
{
namespace
{

TEST(Json, ParsesScalars)
{
    std::string error;
    EXPECT_TRUE(Json::parse("null", &error).isNull());
    EXPECT_TRUE(Json::parse("true").boolean());
    EXPECT_FALSE(Json::parse("false").boolean());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").number(), -1250.0);
    EXPECT_EQ(Json::parse("\"a\\n\\\"b\\\"\"").str(), "a\n\"b\"");
}

TEST(Json, ParsesNestedStructure)
{
    const Json doc = Json::parse(
        R"({"a": [1, 2, {"b": "x"}], "c": {"d": 4.5}, "e": true})");
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc["a"].isArray());
    EXPECT_EQ(doc["a"].array().size(), 3u);
    EXPECT_DOUBLE_EQ(doc["a"].array()[1].number(), 2);
    EXPECT_EQ(doc["a"].array()[2]["b"].str(), "x");
    EXPECT_DOUBLE_EQ(doc["c"].numberOr("d", -1), 4.5);
    EXPECT_DOUBLE_EQ(doc["c"].numberOr("missing", -1), -1);
    EXPECT_TRUE(doc["e"].boolean());
    EXPECT_FALSE(doc.has("zz"));
    EXPECT_TRUE(doc["zz"].isNull());
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
          "{\"a\": 1,}", "[1 2]", "01x"}) {
        std::string error;
        const Json doc = Json::parse(bad, &error);
        EXPECT_TRUE(doc.isNull()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Json, RejectsTrailingGarbage)
{
    std::string error;
    EXPECT_TRUE(Json::parse("{} extra", &error).isNull());
    EXPECT_FALSE(error.empty());
}

TEST(Json, BuildersPreserveInsertionOrder)
{
    Json obj = Json::makeObject();
    obj.set("z", Json::makeNumber(1));
    obj.set("a", Json::makeString("two"));
    obj.set("z", Json::makeNumber(3)); // overwrite keeps position
    ASSERT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_DOUBLE_EQ(obj.members()[0].second.number(), 3);
    EXPECT_EQ(obj.members()[1].first, "a");

    Json arr = Json::makeArray(
        {Json::makeBool(true), Json::makeNull()});
    EXPECT_EQ(arr.array().size(), 2u);
    EXPECT_TRUE(arr.array()[1].isNull());
}

TEST(Json, MissingFileReportsError)
{
    std::string error;
    const Json doc =
        Json::parseFile("/nonexistent/t3d-model.json", &error);
    EXPECT_TRUE(doc.isNull());
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace t3dsim::model
