/**
 * @file
 * The §3.4 physical-synonym probes. Two annex registers naming the
 * same (local) PE create two physical addresses for one location:
 *
 *  - the data cache is safe: synonyms share a cache index and
 *    conflict rather than coexist;
 *  - the write buffer is NOT safe: a read through one synonym
 *    bypasses a pending write through the other ("We have produced
 *    probes that exhibit this unpleasant phenomenon").
 */

#include <gtest/gtest.h>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using shell::ReadMode;

struct SynonymTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(4)};
    machine::Node &n0 = m.node(0);

    void
    SetUp() override
    {
        // Two annex registers naming the local processor.
        n0.shell().setAnnex(1, {0, ReadMode::Uncached});
        n0.shell().setAnnex(2, {0, ReadMode::Uncached});
        ASSERT_TRUE(n0.shell().annex().hasSynonyms());
    }
};

TEST_F(SynonymTest, WriteBufferAdmitsStaleSynonymRead)
{
    const Addr offset = 0x8000;
    n0.storage().writeU64(offset, 0xaaaa); // the "old" value

    const Addr via1 = alpha::makeAnnexedVa(1, offset);
    const Addr via2 = alpha::makeAnnexedVa(2, offset);

    // Write through synonym 1: lands in the write buffer.
    n0.storeU64(via1, 0xbbbb);

    // Immediately read through synonym 2: different physical
    // address, so the write buffer match fails and the read goes to
    // memory — returning the STALE value.
    EXPECT_EQ(n0.loadU64(via2), 0xaaaau)
        << "the paper's unpleasant phenomenon";

    // The same-synonym read would have seen the new value (the probe
    // control case): after MB everything is consistent again.
    n0.mb();
    n0.dcache().invalidate(alpha::paOfVa(via2));
    EXPECT_EQ(n0.loadU64(via2), 0xbbbbu);
}

TEST_F(SynonymTest, SameSynonymReadSeesPendingWrite)
{
    const Addr offset = 0x9000;
    n0.storage().writeU64(offset, 1);
    const Addr via1 = alpha::makeAnnexedVa(1, offset);

    n0.storeU64(via1, 2);
    EXPECT_EQ(n0.loadU64(via1), 2u)
        << "same physical address: WB/cache sees the write";
}

TEST_F(SynonymTest, CacheSynonymsConflictRatherThanAlias)
{
    // §3.4: "two synonyms always map onto the same cache line", so
    // cached copies can never be mutually inconsistent.
    const Addr offset = 0xa000;
    n0.storage().writeU64(offset, 5);

    const Addr via1 = alpha::makeAnnexedVa(1, offset);
    const Addr via2 = alpha::makeAnnexedVa(2, offset);

    n0.loadU64(via1); // cache under PA(1, offset)
    EXPECT_TRUE(n0.dcache().probe(alpha::paOfVa(via1)));

    n0.loadU64(via2); // evicts the first synonym (same index)
    EXPECT_TRUE(n0.dcache().probe(alpha::paOfVa(via2)));
    EXPECT_FALSE(n0.dcache().probe(alpha::paOfVa(via1)))
        << "synonyms never coexist in a direct-mapped cache";
}

TEST_F(SynonymTest, SynonymWritesLandOnSameLocation)
{
    const Addr offset = 0xb000;
    const Addr via1 = alpha::makeAnnexedVa(1, offset);
    const Addr via2 = alpha::makeAnnexedVa(2, offset + 8);

    n0.storeU64(via1, 10);
    n0.storeU64(via2, 20);
    n0.mb();
    EXPECT_EQ(n0.storage().readU64(offset), 10u);
    EXPECT_EQ(n0.storage().readU64(offset + 8), 20u);
}

TEST_F(SynonymTest, HazardVanishesAfterDrain)
{
    const Addr offset = 0xc000;
    n0.storage().writeU64(offset, 1);
    const Addr via1 = alpha::makeAnnexedVa(1, offset);
    const Addr via2 = alpha::makeAnnexedVa(2, offset);

    n0.storeU64(via1, 2);
    n0.mb(); // drain: the write reaches memory
    EXPECT_EQ(n0.loadU64(via2), 2u)
        << "after the buffer drains, synonyms agree";
}

} // namespace
