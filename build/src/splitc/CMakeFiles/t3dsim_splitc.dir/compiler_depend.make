# Empty compiler generated dependencies file for t3dsim_splitc.
# This may be replaced when dependencies are built.
