/**
 * @file
 * Fundamental scalar types shared by every t3dsim component.
 *
 * The simulator is a timing model: components exchange byte-accurate
 * data through backing storage while all costs are expressed in
 * processor cycles of the modeled 150 MHz Alpha 21064 (6.67 ns).
 */

#ifndef T3DSIM_SIM_TYPES_HH
#define T3DSIM_SIM_TYPES_HH

#include <cstdint>

namespace t3dsim
{

/** A (virtual or physical) byte address inside one node. */
using Addr = std::uint64_t;

/** A duration or point in time measured in processor cycles. */
using Cycles = std::uint64_t;

/** Processing element (node) number within the machine. */
using PeId = std::uint32_t;

/** Number of picoseconds per processor cycle at 150 MHz. */
constexpr std::uint64_t psPerCycle = 6667;

/** Convert a cycle count to nanoseconds (rounded to nearest). */
constexpr double
cyclesToNs(Cycles c)
{
    return static_cast<double>(c) * static_cast<double>(psPerCycle) / 1000.0;
}

/** Convert a cycle count to microseconds. */
constexpr double
cyclesToUs(Cycles c)
{
    return cyclesToNs(c) / 1000.0;
}

/** Convert nanoseconds to cycles (rounded to nearest). */
constexpr Cycles
nsToCycles(double ns)
{
    return static_cast<Cycles>(ns * 1000.0 / psPerCycle + 0.5);
}

/** Convert microseconds to cycles (rounded to nearest). */
constexpr Cycles
usToCycles(double us)
{
    return nsToCycles(us * 1000.0);
}

/** Common power-of-two size literals. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;

} // namespace t3dsim

#endif // T3DSIM_SIM_TYPES_HH
