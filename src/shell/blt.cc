#include "shell/blt.hh"

#include <algorithm>
#include <cmath>

#include "sim/arena.hh"
#include "sim/logging.hh"

namespace t3dsim::shell
{

BlockTransferEngine::BlockTransferEngine(const ShellConfig &config,
                                         PeId local_pe,
                                         MachinePort &machine,
                                         alpha::AlphaCore &core)
    : _config(config), _localPe(local_pe), _machine(machine), _core(core)
{
}

Cycles
BlockTransferEngine::invoke()
{
    ++_transfers;
    T3D_COUNT(_ctr, bltTransfers);
    const Cycles t0 = _core.clock().now();
    // The OS call serializes the processor: pending stores drain and
    // the full startup overhead is charged.
    _core.mb();

    // One engine per node (§6.2): if it is still streaming the
    // allowed number of transfers, the OS call blocks until the
    // earliest outstanding one completes.
    while (!_outstanding.empty() &&
           _outstanding.front() <= _core.clock().now()) {
        _outstanding.pop_front();
    }
    if (_config.bltMaxInFlight > 0 &&
        _outstanding.size() >= _config.bltMaxInFlight) {
        ++_engineStalls;
        T3D_COUNT(_ctr, bltEngineStalls);
        const Cycles free_at = _outstanding.front();
        T3D_TRACE(_trace, span(_localPe, "blt_engine_stall",
                               _core.clock().now(), free_at));
        _core.clock().syncTo(free_at);
        _outstanding.pop_front();
    }

    _core.charge(_config.bltStartupCycles);
    T3D_COUNT_ADD(_ctr, bltSetupCycles, _core.clock().now() - t0);
    T3D_TRACE(_trace,
              span(_localPe, "blt_setup", t0, _core.clock().now()));
    return _core.clock().now();
}

void
BlockTransferEngine::noteTransfer(const char *name, Cycles start)
{
    auto pos = std::lower_bound(_outstanding.begin(), _outstanding.end(),
                                _lastCompletion);
    _outstanding.insert(pos, _lastCompletion);
    T3D_COUNT_ADD(_ctr, bltTransferCycles, _lastCompletion - start);
    T3D_TRACE(_trace, span(_localPe, name, start, _lastCompletion));
}

Cycles
BlockTransferEngine::streamCycles(std::size_t len, bool is_read) const
{
    const double per_byte = is_read ? _config.bltReadCyclesPerByte
                                    : _config.bltWriteCyclesPerByte;
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(len) * per_byte));
}

Cycles
BlockTransferEngine::startRead(PeId src, Addr remote_offset,
                               Addr local_offset, std::size_t len)
{
    const Cycles start = invoke();
    const Cycles transit = _machine.transitCycles(_localPe, src);

    // Staging buffer from the per-thread scratch arena: one transfer
    // per scope, dropped on return (DESIGN.md §9).
    sim::ArenaScope scratch;
    std::uint8_t *buf = scratch.alloc(len);
    if (src == _localPe)
        _core.storage().readBlock(remote_offset, buf, len);
    else
        _machine.remoteMemory(src).bulkReadRaw(remote_offset, buf, len);
    _core.storage().writeBlock(local_offset, buf, len);

    // DMA into local memory: any cached copies of the destination
    // are invalidated (the engine is not coherent with the cache).
    const std::uint64_t line = _core.dcache().lineBytes();
    for (Addr a = local_offset & ~(line - 1); a < local_offset + len;
         a += line) {
        _core.dcache().invalidate(a);
    }

    _lastCompletion = start + transit + streamCycles(len, true);
    noteTransfer("blt_read", start);
    return _lastCompletion;
}

Cycles
BlockTransferEngine::startWrite(PeId dst, Addr remote_offset,
                                Addr local_offset, std::size_t len)
{
    const Cycles start = invoke();
    const Cycles transit = _machine.transitCycles(_localPe, dst);

    sim::ArenaScope scratch;
    std::uint8_t *buf = scratch.alloc(len);
    _core.storage().readBlock(local_offset, buf, len);
    if (dst == _localPe)
        _core.storage().writeBlock(remote_offset, buf, len);
    else
        _machine.remoteMemory(dst).bulkWriteRaw(remote_offset, buf, len);

    _lastCompletion = start + transit + streamCycles(len, false);
    noteTransfer("blt_write", start);
    return _lastCompletion;
}

Cycles
BlockTransferEngine::startStridedRead(PeId src, Addr remote_offset,
                                      std::size_t remote_stride,
                                      Addr local_offset,
                                      std::size_t local_stride,
                                      std::size_t elem_bytes,
                                      std::size_t count)
{
    const Cycles start = invoke();
    const Cycles transit = _machine.transitCycles(_localPe, src);

    sim::ArenaScope scratch;
    std::uint8_t *elem = scratch.alloc(elem_bytes);
    for (std::size_t i = 0; i < count; ++i) {
        const Addr roff = remote_offset + i * remote_stride;
        const Addr loff = local_offset + i * local_stride;
        if (src == _localPe)
            _core.storage().readBlock(roff, elem, elem_bytes);
        else
            _machine.remoteMemory(src).bulkReadRaw(roff, elem,
                                                   elem_bytes);
        _core.storage().writeBlock(loff, elem, elem_bytes);
        _core.dcache().invalidate(loff);
    }

    _lastCompletion = start + transit +
        streamCycles(count * elem_bytes, true) +
        Cycles{count} * _config.bltStridedElemCycles;
    noteTransfer("blt_read", start);
    return _lastCompletion;
}

Cycles
BlockTransferEngine::startStridedWrite(PeId dst, Addr remote_offset,
                                       std::size_t remote_stride,
                                       Addr local_offset,
                                       std::size_t local_stride,
                                       std::size_t elem_bytes,
                                       std::size_t count)
{
    const Cycles start = invoke();
    const Cycles transit = _machine.transitCycles(_localPe, dst);

    sim::ArenaScope scratch;
    std::uint8_t *elem = scratch.alloc(elem_bytes);
    for (std::size_t i = 0; i < count; ++i) {
        const Addr roff = remote_offset + i * remote_stride;
        const Addr loff = local_offset + i * local_stride;
        _core.storage().readBlock(loff, elem, elem_bytes);
        if (dst == _localPe)
            _core.storage().writeBlock(roff, elem, elem_bytes);
        else
            _machine.remoteMemory(dst).bulkWriteRaw(roff, elem,
                                                    elem_bytes);
    }

    _lastCompletion = start + transit +
        streamCycles(count * elem_bytes, false) +
        Cycles{count} * _config.bltStridedElemCycles;
    noteTransfer("blt_write", start);
    return _lastCompletion;
}

void
BlockTransferEngine::wait(Cycles completion)
{
    _core.clock().syncTo(completion);
}

} // namespace t3dsim::shell
