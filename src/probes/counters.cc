#include "probes/counters.hh"

#include <cstdlib>
#include <ostream>

namespace t3dsim::probes
{

const std::array<CounterInfo, PerfCounters::numCounters> &
PerfCounters::infos()
{
    static const std::array<CounterInfo, numCounters> table = {{
#define T3D_PERF_COUNTER_INFO(name, unit, site, paper)                      \
    CounterInfo{#name, unit, site, paper},
        T3D_PERF_COUNTERS(T3D_PERF_COUNTER_INFO)
#undef T3D_PERF_COUNTER_INFO
    }};
    return table;
}

PerfCounters
aggregate(const std::vector<PerfCounters> &per_pe)
{
    PerfCounters total;
    for (const auto &c : per_pe)
        total += c;
    return total;
}

namespace
{

void
writeCounterObject(std::ostream &os, const PerfCounters &c,
                   const char *indent)
{
    const auto &infos = PerfCounters::infos();
    os << "{";
    for (std::size_t i = 0; i < PerfCounters::numCounters; ++i) {
        os << (i ? "," : "") << "\n"
           << indent << "  \"" << infos[i].name << "\": " << c.value(i);
    }
    os << "\n" << indent << "}";
}

} // namespace

void
writeCountersJson(std::ostream &os,
                  const std::vector<PerfCounters> &per_pe,
                  const TorusLinkStats *torus)
{
    os << "{\n  \"schema\": \"t3dsim-counters-v1\",\n"
       << "  \"pes\": " << per_pe.size() << ",\n  \"total\": ";
    writeCounterObject(os, aggregate(per_pe), "  ");
    os << ",\n  \"per_pe\": [";
    for (std::size_t pe = 0; pe < per_pe.size(); ++pe) {
        os << (pe ? "," : "") << "\n    ";
        writeCounterObject(os, per_pe[pe], "    ");
    }
    os << "\n  ]";
    if (torus) {
        os << ",\n  \"torus\": {\n    \"dims\": [" << torus->dx << ", "
           << torus->dy << ", " << torus->dz << "],\n"
           << "    \"dim_traversals\": [" << torus->dimTraversals[0]
           << ", " << torus->dimTraversals[1] << ", "
           << torus->dimTraversals[2] << "],\n"
           << "    \"link_traversals\": [";
        for (std::size_t i = 0; i < torus->linkTraversals.size(); ++i)
            os << (i ? ", " : "") << torus->linkTraversals[i];
        os << "]\n  }";
    }
    os << "\n}\n";
}

void
writeCountersCsv(std::ostream &os, const std::vector<PerfCounters> &per_pe)
{
    const auto &infos = PerfCounters::infos();
    os << "pe";
    for (const auto &info : infos)
        os << "," << info.name;
    os << "\n";
    for (std::size_t pe = 0; pe < per_pe.size(); ++pe) {
        os << pe;
        for (std::size_t i = 0; i < PerfCounters::numCounters; ++i)
            os << "," << per_pe[pe].value(i);
        os << "\n";
    }
    const PerfCounters total = aggregate(per_pe);
    os << "total";
    for (std::size_t i = 0; i < PerfCounters::numCounters; ++i)
        os << "," << total.value(i);
    os << "\n";
}

ObsConfig
ObsConfig::fromEnv(ObsConfig base)
{
    const auto apply = [](const char *var, bool &flag, std::string &path) {
        const char *v = std::getenv(var);
        if (!v)
            return;
        const std::string s{v};
        if (s.empty() || s == "0") {
            flag = false;
            return;
        }
        flag = true;
        if (s != "1")
            path = s;
    };
    apply("T3DSIM_COUNTERS", base.counters, base.countersPath);
    apply("T3DSIM_TRACE", base.trace, base.tracePath);
    // A trace destination implies the channel writes somewhere even
    // when only the flag form ("1") was given.
    if (base.trace && base.tracePath.empty())
        base.tracePath = "t3dsim.trace.json";
    if (base.counters && base.countersPath.empty() &&
        std::getenv("T3DSIM_COUNTERS"))
        base.countersPath = "t3dsim.counters.json";
    return base;
}

} // namespace t3dsim::probes
