file(REMOVE_RECURSE
  "libt3dsim_alpha.a"
)
