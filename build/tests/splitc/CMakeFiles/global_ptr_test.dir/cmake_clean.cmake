file(REMOVE_RECURSE
  "CMakeFiles/global_ptr_test.dir/global_ptr_test.cc.o"
  "CMakeFiles/global_ptr_test.dir/global_ptr_test.cc.o.d"
  "global_ptr_test"
  "global_ptr_test.pdb"
  "global_ptr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_ptr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
