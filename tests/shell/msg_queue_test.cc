/**
 * @file
 * Unit tests for the user-level message queue receive side (§7.3).
 */

#include <gtest/gtest.h>

#include "shell/msg_queue.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using shell::MessageQueue;
using shell::ShellConfig;

struct MsgQueueTest : ::testing::Test
{
    ShellConfig cfg;
    MessageQueue q{cfg};

    void
    deliver(Cycles when, std::uint64_t w0)
    {
        std::uint64_t words[4] = {w0, 0, 0, 0};
        q.deliver(when, words);
    }
};

TEST_F(MsgQueueTest, EmptyQueue)
{
    EXPECT_FALSE(q.hasMessage());
    EXPECT_FALSE(q.headArrival().has_value());
    EXPECT_EQ(q.depth(), 0u);
}

TEST_F(MsgQueueTest, DeliverAndDequeue)
{
    deliver(100, 42);
    ASSERT_TRUE(q.hasMessage());
    EXPECT_EQ(q.headArrival().value(), 100u);

    auto [msg, done] = q.dequeue(/*now=*/50, /*handler_mode=*/false);
    EXPECT_EQ(msg.words[0], 42u);
    // Receiver polled before arrival: done = arrival + interrupt.
    EXPECT_EQ(done, 100u + cfg.msgInterruptCycles);
}

TEST_F(MsgQueueTest, LatePollPaysFromNow)
{
    deliver(100, 1);
    auto [msg, done] = q.dequeue(/*now=*/10000, false);
    EXPECT_EQ(done, 10000u + cfg.msgInterruptCycles);
}

TEST_F(MsgQueueTest, HandlerModeAddsDispatchCost)
{
    deliver(0, 1);
    auto [msg, done] = q.dequeue(0, /*handler_mode=*/true);
    EXPECT_EQ(done, cfg.msgInterruptCycles + cfg.msgHandlerCycles);
}

TEST_F(MsgQueueTest, InterruptCostIs25us)
{
    deliver(0, 1);
    auto [msg, done] = q.dequeue(0, false);
    EXPECT_NEAR(cyclesToUs(done), 25.0, 0.1);
}

TEST_F(MsgQueueTest, DeliveryOrderIsByArrival)
{
    deliver(200, 2);
    deliver(100, 1);
    deliver(300, 3);
    auto [m1, d1] = q.dequeue(0, false);
    auto [m2, d2] = q.dequeue(d1, false);
    auto [m3, d3] = q.dequeue(d2, false);
    EXPECT_EQ(m1.words[0], 1u);
    EXPECT_EQ(m2.words[0], 2u);
    EXPECT_EQ(m3.words[0], 3u);
}

TEST_F(MsgQueueTest, DequeueEmptyPanics)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(q.dequeue(0, false), std::logic_error);
    detail::setThrowOnError(false);
}

TEST_F(MsgQueueTest, DeliveredCounter)
{
    deliver(1, 1);
    deliver(2, 2);
    EXPECT_EQ(q.delivered(), 2u);
}

} // namespace
