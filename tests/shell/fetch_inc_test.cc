/**
 * @file
 * Unit tests for the fetch&increment shell registers (§7.4).
 */

#include <gtest/gtest.h>

#include "shell/fetch_inc.hh"
#include "sim/logging.hh"

namespace
{

using namespace t3dsim;
using shell::FetchIncRegisters;

TEST(FetchInc, StartsAtZero)
{
    FetchIncRegisters regs;
    EXPECT_EQ(regs.get(0), 0u);
    EXPECT_EQ(regs.get(1), 0u);
}

TEST(FetchInc, FetchReturnsOldValue)
{
    FetchIncRegisters regs;
    EXPECT_EQ(regs.fetchInc(0), 0u);
    EXPECT_EQ(regs.fetchInc(0), 1u);
    EXPECT_EQ(regs.fetchInc(0), 2u);
    EXPECT_EQ(regs.get(0), 3u);
}

TEST(FetchInc, RegistersAreIndependent)
{
    FetchIncRegisters regs;
    regs.fetchInc(0);
    regs.fetchInc(0);
    EXPECT_EQ(regs.fetchInc(1), 0u);
    EXPECT_EQ(regs.get(0), 2u);
    EXPECT_EQ(regs.get(1), 1u);
}

TEST(FetchInc, SetReseeds)
{
    FetchIncRegisters regs;
    regs.set(1, 100);
    EXPECT_EQ(regs.fetchInc(1), 100u);
    EXPECT_EQ(regs.get(1), 101u);
}

TEST(FetchInc, OutOfRangePanics)
{
    detail::setThrowOnError(true);
    FetchIncRegisters regs;
    EXPECT_THROW(regs.fetchInc(2), std::runtime_error);
    EXPECT_THROW(regs.get(9), std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
