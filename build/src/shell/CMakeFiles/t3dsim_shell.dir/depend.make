# Empty dependencies file for t3dsim_shell.
# This may be replaced when dependencies are built.
