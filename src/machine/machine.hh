/**
 * @file
 * The assembled CRAY-T3D: N nodes on a 3-D torus plus the wired-OR
 * barrier network.
 */

#ifndef T3DSIM_MACHINE_MACHINE_HH
#define T3DSIM_MACHINE_MACHINE_HH

#include <memory>
#include <vector>

#include "machine/config.hh"
#include "machine/node.hh"
#include "net/torus.hh"
#include "shell/barrier.hh"
#include "shell/ports.hh"
#include "sim/types.hh"

namespace t3dsim::machine
{

/** A whole T3D. */
class Machine : public shell::MachinePort
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig::t3d());

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    Node &node(PeId pe);
    const MachineConfig &config() const { return _config; }
    net::Torus &torus() { return _torus; }
    shell::BarrierNetwork &barrier() { return _barrier; }

    /** @name shell::MachinePort */
    /// @{
    Cycles transitCycles(PeId src, PeId dst) const override;
    shell::RemoteMemoryPort &remoteMemory(PeId pe) override;
    std::uint32_t numPes() const override { return _config.numPes; }
    /// @}

  private:
    MachineConfig _config;
    net::Torus _torus;
    shell::BarrierNetwork _barrier;
    std::vector<std::unique_ptr<Node>> _nodes;
};

} // namespace t3dsim::machine

#endif // T3DSIM_MACHINE_MACHINE_HH
