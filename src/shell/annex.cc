#include "shell/annex.hh"

#include "sim/logging.hh"

namespace t3dsim::shell
{

AnnexFile::AnnexFile(PeId local_pe)
    : _localPe(local_pe)
{
    for (auto &entry : _entries)
        entry.pe = local_pe;
    _programmed[0] = true; // entry 0 is always live (local).
}

bool
AnnexFile::isProgrammed(unsigned idx) const
{
    T3D_FATAL_IF(idx >= _entries.size(), "annex index out of range: ", idx);
    return _programmed[idx];
}

void
AnnexFile::set(unsigned idx, const AnnexEntry &entry)
{
    T3D_FATAL_IF(idx >= _entries.size(), "annex index out of range: ", idx);
    T3D_FATAL_IF(idx == 0 && entry.pe != _localPe,
                 "annex entry 0 is hardwired to the local processor");
    _entries[idx] = entry;
    _programmed[idx] = true;
    ++_updates;
}

const AnnexEntry &
AnnexFile::get(unsigned idx) const
{
    T3D_FATAL_IF(idx >= _entries.size(), "annex index out of range: ", idx);
    return _entries[idx];
}

bool
AnnexFile::hasSynonyms() const
{
    for (unsigned i = 0; i < _entries.size(); ++i) {
        if (!_programmed[i])
            continue;
        for (unsigned j = i + 1; j < _entries.size(); ++j) {
            if (_programmed[j] && _entries[i].pe == _entries[j].pe)
                return true;
        }
    }
    return false;
}

} // namespace t3dsim::shell
