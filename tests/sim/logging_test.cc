/**
 * @file
 * Unit tests for the error-reporting helpers in throw mode.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { t3dsim::detail::setThrowOnError(true); }
    void TearDown() override { t3dsim::detail::setThrowOnError(false); }
};

TEST_F(LoggingTest, PanicThrowsLogicError)
{
    EXPECT_THROW(T3D_PANIC("boom ", 42), std::logic_error);
}

TEST_F(LoggingTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(T3D_FATAL("bad config: ", "x"), std::runtime_error);
}

TEST_F(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(T3D_ASSERT(1 + 1 == 2, "unreachable"));
}

TEST_F(LoggingTest, AssertThrowsOnFalse)
{
    EXPECT_THROW(T3D_ASSERT(false, "value=", 7), std::logic_error);
}

TEST_F(LoggingTest, MessageContainsDetails)
{
    try {
        T3D_PANIC("widget ", 3, " exploded");
        FAIL() << "did not throw";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("widget 3 exploded"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(T3D_WARN("just a warning ", 1));
    EXPECT_NO_THROW(T3D_INFORM("fyi ", 2));
}

} // namespace
