/**
 * @file
 * `t3d-serve` — the long-running batch simulation service
 * (docs/TASKGRAPH.md "Server protocol"). Reads one job per line of
 * line-delimited JSON from stdin (or an optional TCP socket), shards
 * jobs across host worker threads, answers each with one JSON line,
 * and caches results by (graph hash, machine hash, mode) so repeat
 * jobs short-circuit without re-simulating.
 *
 *   t3d-serve [--threads=N] [--model=F] [--trace-dir=D] [--port=P]
 *             [--quiet]
 *       Serve jobs from stdin until EOF (and, with --port, from TCP
 *       connections until stdin closes). Responses go to stdout, one
 *       line each, in completion order; a stats summary goes to
 *       stderr at exit unless --quiet.
 *
 *   t3d-serve --once
 *       Read exactly one job line from stdin, execute it
 *       synchronously with no pool and no cache, and print the one
 *       response. The standalone reference tools/serve_smoke.py
 *       compares server batches against.
 *
 * Request lines:  {"id": "j1", "mode": "simulate"|"predict",
 *                  "pes": 8, "host_threads": -1, "trace": false,
 *                  "graph": {...}}           (schema: docs/TASKGRAPH.md)
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define T3D_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "model/primitives.hh"
#include "taskgraph/service.hh"

using namespace t3dsim;

namespace
{

struct Options
{
    unsigned threads = 1;
    std::string modelPath;
    std::string traceDir;
    int port = 0;
    bool once = false;
    bool quiet = false;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = value("--threads=")) {
            opt.threads = unsigned(std::strtoul(v, nullptr, 10));
            if (opt.threads < 1) {
                std::cerr << "error: --threads must be >= 1\n";
                return false;
            }
        } else if (const char *v = value("--model=")) {
            opt.modelPath = v;
        } else if (const char *v = value("--trace-dir=")) {
            opt.traceDir = v;
        } else if (const char *v = value("--port=")) {
            opt.port = int(std::strtol(v, nullptr, 10));
        } else if (arg == "--once") {
            opt.once = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n"
                      << "usage: t3d-serve [--threads=N] [--model=F]"
                         " [--trace-dir=D] [--port=P] [--quiet] |"
                         " --once\n";
            return false;
        }
    }
    return true;
}

/** Serializes response lines from worker threads onto stdout. */
class StdoutSink
{
  public:
    void
    write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(_m);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }

  private:
    std::mutex _m;
};

#if T3D_SERVE_HAVE_SOCKETS

/** Guards concurrent per-connection response writes. */
struct SocketSink
{
    std::mutex m;
    int fd = -1;
};

/** One TCP connection: read job lines, answer on the same socket.
 *  Tags route each response back here through the shared service. */
void
serveConnection(taskgraph::JobService &service, SocketSink &sink)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(sink.fd, chunk, sizeof chunk);
        if (n <= 0)
            break;
        buf.append(chunk, std::size_t(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty())
                service.submit(std::move(line),
                               reinterpret_cast<std::uint64_t>(&sink));
        }
    }
}

/** Accept loop: one thread per connection, answers routed by tag. */
void
listenLoop(int listen_fd, taskgraph::JobService &service,
           std::vector<std::thread> &conn_threads,
           std::vector<std::unique_ptr<SocketSink>> &sinks,
           std::mutex &conn_m)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            break;
        std::lock_guard<std::mutex> lock(conn_m);
        sinks.push_back(std::make_unique<SocketSink>());
        SocketSink &sink = *sinks.back();
        sink.fd = fd;
        conn_threads.emplace_back(
            [&service, &sink] { serveConnection(service, sink); });
    }
}

#endif // T3D_SERVE_HAVE_SOCKETS

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    model::CostModel cost;
    std::string model_err;
    if (!model::loadCostModelFile(opt.modelPath, cost, model_err)) {
        std::cerr << "error: " << model_err << "\n";
        return 1;
    }

    if (opt.once) {
        std::string line;
        if (!std::getline(std::cin, line)) {
            std::cerr << "error: --once expects one job line on"
                         " stdin\n";
            return 2;
        }
        std::cout << taskgraph::JobService::runStandalone(
                         line, cost, opt.traceDir)
                  << "\n";
        return 0;
    }

    StdoutSink stdout_sink;
#if T3D_SERVE_HAVE_SOCKETS
    std::vector<std::unique_ptr<SocketSink>> sinks;
    std::mutex conn_m;
#endif

    taskgraph::ServiceOptions sopt;
    sopt.workers = opt.threads;
    sopt.model = cost;
    sopt.traceDir = opt.traceDir;
    taskgraph::JobService service(
        sopt, [&](std::uint64_t tag, const std::string &line) {
#if T3D_SERVE_HAVE_SOCKETS
            if (tag != 0) {
                auto *sink = reinterpret_cast<SocketSink *>(tag);
                std::lock_guard<std::mutex> lock(sink->m);
                std::string out = line;
                out += '\n';
                const char *p = out.data();
                std::size_t left = out.size();
                while (left > 0) {
                    const ssize_t n = ::write(sink->fd, p, left);
                    if (n <= 0)
                        break;
                    p += n;
                    left -= std::size_t(n);
                }
                return;
            }
#endif
            stdout_sink.write(line);
        });

    int listen_fd = -1;
    std::thread listener;
    std::vector<std::thread> conn_threads;
#if T3D_SERVE_HAVE_SOCKETS
    if (opt.port > 0) {
        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd < 0) {
            std::cerr << "error: socket() failed\n";
            return 1;
        }
        const int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(std::uint16_t(opt.port));
        if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) < 0 ||
            ::listen(listen_fd, 64) < 0) {
            std::cerr << "error: cannot listen on port " << opt.port
                      << "\n";
            return 1;
        }
        if (!opt.quiet)
            std::cerr << "t3d-serve: listening on 127.0.0.1:"
                      << opt.port << "\n";
        listener = std::thread([&] {
            listenLoop(listen_fd, service, conn_threads, sinks,
                       conn_m);
        });
    }
#else
    if (opt.port > 0) {
        std::cerr << "error: --port is not supported on this"
                     " platform\n";
        return 2;
    }
#endif

    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty())
            service.submit(std::move(line));
        line.clear();
    }
    service.drain();

#if T3D_SERVE_HAVE_SOCKETS
    if (listen_fd >= 0) {
        ::shutdown(listen_fd, SHUT_RDWR);
        ::close(listen_fd);
        listener.join();
        std::lock_guard<std::mutex> lock(conn_m);
        for (auto &sink : sinks)
            if (sink->fd >= 0) {
                ::shutdown(sink->fd, SHUT_RDWR);
                ::close(sink->fd);
            }
        for (std::thread &t : conn_threads)
            t.join();
        service.drain();
    }
#endif

    if (!opt.quiet) {
        const taskgraph::JobService::Stats s = service.stats();
        std::cerr << "t3d-serve: jobs=" << s.jobs
                  << " simulations=" << s.simulations
                  << " predictions=" << s.predictions
                  << " cache_hits=" << s.cacheHits
                  << " errors=" << s.errors << "\n";
    }
    return 0;
}
