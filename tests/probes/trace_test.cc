/**
 * @file
 * Chrome trace-event JSON writer tests. The "ts"/"dur" values are
 * produced with pure integer arithmetic (cycles * psPerCycle), so
 * the output is byte-exact and a golden-string comparison is stable
 * across hosts; the machine-level test checks a real 2-PE run
 * produces a loadable trace with the documented track layout.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "probes/trace.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using probes::TraceSink;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

TEST(Trace, GoldenJsonForHandBuiltEvents)
{
    TraceSink sink(2);
    // 91 cycles is the paper's uncached remote read latency; at
    // 6667 ps/cycle it is exactly 606,697 ps = 0.606697 us.
    sink.span(0, "remote_read", 100, 191, "dst", 1);
    sink.instant(1, "annex_update", 50);
    sink.counter("torus.x", 10, 3);

    std::ostringstream os;
    sink.writeJson(os);

    const std::string expected =
        "{\n"
        "\"displayTimeUnit\": \"ns\",\n"
        "\"traceEvents\": [\n"
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"t3dsim\"}},\n"
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": 0, \"args\": {\"name\": \"PE 0\"}},\n"
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": 1, \"args\": {\"name\": \"PE 1\"}},\n"
        "{\"name\": \"remote_read\", \"cat\": \"shell\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": 0, \"ts\": 0.666700, \"dur\": 0.606697, "
        "\"args\": {\"dst\": 1}},\n"
        "{\"name\": \"annex_update\", \"cat\": \"shell\", \"ph\": \"i\", "
        "\"s\": \"t\", \"pid\": 0, \"tid\": 1, \"ts\": 0.333350},\n"
        "{\"name\": \"torus.x\", \"ph\": \"C\", \"pid\": 0, "
        "\"ts\": 0.066670, \"args\": {\"traversals\": 3}}\n"
        "],\n"
        "\"otherData\": {\"droppedEvents\": 0}\n"
        "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Trace, EventCapCountsDrops)
{
    TraceSink sink(1, /*event_cap=*/2);
    sink.instant(0, "a", 1);
    sink.instant(0, "b", 2);
    sink.instant(0, "c", 3);
    EXPECT_EQ(sink.eventCount(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);

    std::ostringstream os;
    sink.writeJson(os);
    EXPECT_NE(os.str().find("\"droppedEvents\": 1"), std::string::npos);
}

#if T3D_OBS_ENABLED

TEST(Trace, MachineMicroRunProducesLoadableTrace)
{
    MachineConfig config = MachineConfig::t3d(2);
    config.observe.trace = true;
    config.observe.tracePath = "/dev/null"; // don't litter the cwd
    Machine m(config);
    ASSERT_NE(m.trace(), nullptr);

    runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.readU64(GlobalAddr::make(1, 0x40000));
            p.writeU64(GlobalAddr::make(1, 0x40008), 7);
        }
        co_await p.barrier();
        co_return;
    });

    EXPECT_GT(m.trace()->eventCount(), 0u);
    EXPECT_EQ(m.trace()->dropped(), 0u);

    std::ostringstream os;
    m.writeTraceJson(os);
    const std::string s = os.str();

    // Structure Perfetto/chrome://tracing requires.
    EXPECT_EQ(s.front(), '{');
    EXPECT_NE(s.find("\"traceEvents\": ["), std::string::npos);
    // Named tracks for both PEs.
    EXPECT_NE(s.find("\"args\": {\"name\": \"PE 0\"}"),
              std::string::npos);
    EXPECT_NE(s.find("\"args\": {\"name\": \"PE 1\"}"),
              std::string::npos);
    // The events this program must have produced.
    EXPECT_NE(s.find("\"remote_read\""), std::string::npos);
    EXPECT_NE(s.find("\"remote_write\""), std::string::npos);
    EXPECT_NE(s.find("\"barrier\""), std::string::npos);
    EXPECT_NE(s.find("\"annex_update\""), std::string::npos);
    // Torus counter samples: PE 0 and 1 are torus neighbours along x.
    EXPECT_NE(s.find("\"torus.x\""), std::string::npos);
    EXPECT_NE(s.find("\"traversals\""), std::string::npos);

    // Every run of the same program yields the identical trace.
    Machine m2(config);
    runSpmd(m2, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.readU64(GlobalAddr::make(1, 0x40000));
            p.writeU64(GlobalAddr::make(1, 0x40008), 7);
        }
        co_await p.barrier();
        co_return;
    });
    std::ostringstream os2;
    m2.writeTraceJson(os2);
    EXPECT_EQ(s, os2.str());
}

#endif // T3D_OBS_ENABLED

} // namespace
