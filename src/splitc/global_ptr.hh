/**
 * @file
 * Split-C global pointers (§3.1/§3.3).
 *
 * A global pointer is a 64-bit value: the local address in the low
 * 48 bits and the processor number in the high 16 bits — the same
 * size as a local pointer, so transfer is free, and because the T3D
 * keeps bit 42 of every virtual address zero, *local* arithmetic on
 * a global pointer is exactly local-pointer arithmetic and can never
 * overflow into the processor field.
 *
 * Supported operations (the full §3.1 menu): dereference (through
 * the runtime), transfer, local and global arithmetic, extraction/
 * construction, and null test.
 */

#ifndef T3DSIM_SPLITC_GLOBAL_PTR_HH
#define T3DSIM_SPLITC_GLOBAL_PTR_HH

#include <compare>
#include <cstdint>

#include "sim/types.hh"

namespace t3dsim::splitc
{

/** Untyped global address: (processor, local address). */
class GlobalAddr
{
  public:
    constexpr GlobalAddr() = default;

    static constexpr GlobalAddr
    make(PeId pe, Addr local)
    {
        return GlobalAddr((std::uint64_t{pe} << peShift) |
                          (local & localMask));
    }

    /** Reconstruct from raw 64-bit representation (transfer). */
    static constexpr GlobalAddr
    fromBits(std::uint64_t bits)
    {
        return GlobalAddr(bits);
    }

    constexpr std::uint64_t bits() const { return _bits; }

    /** Extraction: processor component. */
    constexpr PeId pe() const
    {
        return static_cast<PeId>(_bits >> peShift);
    }

    /** Extraction: local-address component. */
    constexpr Addr local() const { return _bits & localMask; }

    /** Null test: equality with 0, like a standard pointer. */
    constexpr bool isNull() const { return _bits == 0; }

    /**
     * Local addressing: advance by @p delta bytes on the same
     * processor (§3.1). Plain 64-bit addition — the processor field
     * is out of reach of any in-range local address.
     */
    constexpr GlobalAddr
    addLocal(std::int64_t delta) const
    {
        return GlobalAddr(_bits + static_cast<std::uint64_t>(delta));
    }

    /**
     * Global addressing: treat the space as linear with the
     * processor varying fastest; element @p delta away in units of
     * @p elem_bytes on a machine of @p procs processors, wrapping
     * from the last processor to the next offset on the first
     * (§3.1).
     */
    constexpr GlobalAddr
    addGlobal(std::int64_t delta, std::size_t elem_bytes,
              std::uint32_t procs) const
    {
        const std::int64_t linear =
            static_cast<std::int64_t>(pe()) +
            static_cast<std::int64_t>(local() / elem_bytes) * procs +
            delta;
        // Floor division so negative deltas wrap correctly.
        std::int64_t row = linear / procs;
        std::int64_t col = linear % procs;
        if (col < 0) {
            col += procs;
            row -= 1;
        }
        const Addr off_in_elem = local() % elem_bytes;
        return make(static_cast<PeId>(col),
                    static_cast<Addr>(row) * elem_bytes + off_in_elem);
    }

    /** Convenience byte-granular local arithmetic. */
    constexpr GlobalAddr
    operator+(std::int64_t delta) const
    {
        return addLocal(delta);
    }

    constexpr GlobalAddr
    operator-(std::int64_t delta) const
    {
        return addLocal(-delta);
    }

    constexpr auto operator<=>(const GlobalAddr &) const = default;

    static constexpr unsigned peShift = 48;
    static constexpr std::uint64_t localMask =
        (std::uint64_t{1} << peShift) - 1;

  private:
    constexpr explicit GlobalAddr(std::uint64_t bits)
        : _bits(bits)
    {
    }

    std::uint64_t _bits = 0;
};

/** Typed global pointer. */
template <typename T>
class GlobalPtr
{
  public:
    constexpr GlobalPtr() = default;
    constexpr explicit GlobalPtr(GlobalAddr addr)
        : _addr(addr)
    {
    }

    static constexpr GlobalPtr
    make(PeId pe, Addr local)
    {
        return GlobalPtr(GlobalAddr::make(pe, local));
    }

    constexpr GlobalAddr addr() const { return _addr; }
    constexpr PeId pe() const { return _addr.pe(); }
    constexpr Addr local() const { return _addr.local(); }
    constexpr bool isNull() const { return _addr.isNull(); }

    /** Local arithmetic in units of T. */
    constexpr GlobalPtr
    operator+(std::int64_t n) const
    {
        return GlobalPtr(
            _addr.addLocal(n * static_cast<std::int64_t>(sizeof(T))));
    }

    constexpr GlobalPtr
    operator-(std::int64_t n) const
    {
        return *this + (-n);
    }

    GlobalPtr &
    operator+=(std::int64_t n)
    {
        *this = *this + n;
        return *this;
    }

    /** Global (processor-fastest) arithmetic in units of T. */
    constexpr GlobalPtr
    addGlobal(std::int64_t n, std::uint32_t procs) const
    {
        return GlobalPtr(_addr.addGlobal(n, sizeof(T), procs));
    }

    constexpr auto operator<=>(const GlobalPtr &) const = default;

  private:
    GlobalAddr _addr;
};

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_GLOBAL_PTR_HH
