/**
 * @file
 * Host-side simulator throughput (google-benchmark): how fast the
 * model itself executes simulated operations. Not a paper figure —
 * this guards the usability of the library (slow models make the
 * Figure 9 sweeps impractical).
 */

#include <benchmark/benchmark.h>

#include "alpha/address.hh"
#include "em3d/em3d.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"

using namespace t3dsim;

namespace
{

void
BM_LocalCacheHit(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.core().loadU64(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.core().loadU64(0x1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalCacheHit);

void
BM_LocalMiss(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.core().loadU64(a));
        a = (a + 32) % (8 * MiB);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalMiss);

void
BM_LocalStore(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    Addr a = 0;
    for (auto _ : state) {
        node.core().storeU64(a, 1);
        a = (a + 32) % (8 * MiB);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalStore);

void
BM_RemoteUncachedRead(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.shell().setAnnex(1, {1, shell::ReadMode::Uncached});
    const Addr va = alpha::makeAnnexedVa(1, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.loadU64(va));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteUncachedRead);

void
BM_RemoteWrite(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.shell().setAnnex(1, {1, shell::ReadMode::Uncached});
    Addr a = 0;
    for (auto _ : state) {
        node.storeU64(alpha::makeAnnexedVa(1, a), 1);
        a = (a + 32) % (64 * MiB / 2);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteWrite);

void
BM_Em3dIteration(benchmark::State &state)
{
    em3d::Config cfg;
    cfg.nodesPerPe = 50;
    cfg.degree = 5;
    cfg.remoteFraction = 0.3;
    for (auto _ : state) {
        auto result = em3d::run(cfg, em3d::Version::Get, 4);
        benchmark::DoNotOptimize(result.usPerEdge);
    }
}
BENCHMARK(BM_Em3dIteration);

} // namespace

BENCHMARK_MAIN();
