/**
 * @file
 * Hardware global-OR "fuzzy" barrier network (§7.5).
 *
 * The T3D provides a wired-OR barrier: a start-barrier instruction
 * notifies other processors that the synchronization point has been
 * reached; the end-barrier polls until every processor has started
 * and resets the global-OR bit. Code may be placed between start and
 * end (the "fuzzy" part). The paper does not report the raw latency;
 * we assume a small constant (see DESIGN.md).
 *
 * This class is the machine-wide timing state; coroutine suspension
 * is handled by the SPMD executor.
 */

#ifndef T3DSIM_SHELL_BARRIER_HH
#define T3DSIM_SHELL_BARRIER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::shell
{

/** Machine-wide barrier timing state, one generation at a time. */
class BarrierNetwork
{
  public:
    /**
     * @param pes Number of participating processors.
     * @param latency_cycles Propagation latency of the wired OR.
     */
    BarrierNetwork(std::uint32_t pes, Cycles latency_cycles);

    /**
     * Record PE @p pe reaching the barrier (start-barrier) at time
     * @p when. Each PE may arrive once per generation.
     *
     * @return The barrier exit time if this arrival completes the
     *         generation; nullopt otherwise.
     */
    std::optional<Cycles> arrive(PeId pe, Cycles when);

    /** True once every PE has arrived in this generation. */
    bool complete() const { return _arrived == _pes; }

    /** Exit time of the completed generation. */
    Cycles exitTime() const;

    /** Begin the next generation (end-barrier reset). */
    void resetGeneration();

    /** Exit time of the most recently completed generation. */
    Cycles lastExitTime() const { return _lastExit; }

    std::uint32_t generation() const { return _generation; }
    std::uint32_t arrivedCount() const { return _arrived; }
    std::uint32_t numPes() const { return _pes; }
    Cycles latencyCycles() const { return _latency; }

  private:
    std::uint32_t _pes;
    Cycles _latency;
    std::vector<bool> _present;
    std::uint32_t _arrived = 0;
    Cycles _maxArrival = 0;
    std::uint32_t _generation = 0;
    Cycles _lastExit = 0;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_BARRIER_HH
