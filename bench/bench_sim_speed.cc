/**
 * @file
 * Host-side simulator throughput (google-benchmark): how fast the
 * model itself executes simulated operations. Not a paper figure —
 * this guards the usability of the library (slow models make the
 * Figure 9 sweeps impractical).
 *
 * Besides the google-benchmark micro cases, the binary always runs an
 * end-to-end EM3D-sweep throughput case (all six Figure 9 versions)
 * at 32 and 256 PEs and writes the result to BENCH_sim_speed.json so
 * successive PRs can track the host-performance trajectory. Each PE
 * count is measured with the sequential scheduler (the baseline,
 * host_threads = 0 in the report) and with the host-parallel
 * scheduler at 1, 2, 4 and hardware_concurrency() worker threads;
 * every parallel run must reproduce the baseline's sim_cycles and
 * checksum exactly — a divergence is a scheduler bug and fails the
 * binary. Pass --sweep-only to skip the micro benchmarks.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "alpha/address.hh"
#include "em3d/em3d.hh"
#include "machine/machine.hh"
#include "shell/annex.hh"

using namespace t3dsim;

namespace
{

void
BM_LocalCacheHit(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.core().loadU64(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.core().loadU64(0x1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalCacheHit);

void
BM_LocalMiss(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.core().loadU64(a));
        a = (a + 32) % (8 * MiB);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalMiss);

void
BM_LocalStore(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    Addr a = 0;
    for (auto _ : state) {
        node.core().storeU64(a, 1);
        a = (a + 32) % (8 * MiB);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalStore);

void
BM_RemoteUncachedRead(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.shell().setAnnex(1, {1, shell::ReadMode::Uncached});
    const Addr va = alpha::makeAnnexedVa(1, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.loadU64(va));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteUncachedRead);

void
BM_RemoteWrite(benchmark::State &state)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &node = m.node(0);
    node.shell().setAnnex(1, {1, shell::ReadMode::Uncached});
    Addr a = 0;
    for (auto _ : state) {
        node.storeU64(alpha::makeAnnexedVa(1, a), 1);
        a = (a + 32) % (64 * MiB / 2);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteWrite);

void
BM_Em3dIteration(benchmark::State &state)
{
    em3d::Config cfg;
    cfg.nodesPerPe = 50;
    cfg.degree = 5;
    cfg.remoteFraction = 0.3;
    for (auto _ : state) {
        auto result = em3d::run(cfg, em3d::Version::Get, 4);
        benchmark::DoNotOptimize(result.usPerEdge);
    }
}
BENCHMARK(BM_Em3dIteration);

// ---------------------------------------------------------------------
// End-to-end EM3D-sweep throughput (BENCH_sim_speed.json)
// ---------------------------------------------------------------------

/** Sweep workload: small enough to finish quickly at 256 PEs, large
 *  enough that per-run setup does not dominate. */
em3d::Config
sweepConfig()
{
    em3d::Config cfg;
    cfg.nodesPerPe = 32;
    cfg.degree = 4;
    cfg.remoteFraction = 0.2;
    cfg.iterations = 2;
    return cfg;
}

struct SweepOutcome
{
    std::uint32_t pes = 0;

    /** Scheduler worker threads: 0 = sequential baseline. */
    unsigned hostThreads = 0;

    double hostSeconds = 0;

    /** Sum over the six versions of the run's elapsed model time. */
    std::uint64_t simCycles = 0;

    /** simCycles * pes / hostSeconds: every PE advances through the
     *  elapsed window, so this is the aggregate rate at which the
     *  host retires simulated PE-cycles (the gem5 "host rate"). */
    double simPeCyclesPerHostSecond = 0;

    /** Baseline host time / this host time (1.0 for the baseline). */
    double speedupVsSequential = 1.0;

    /** Sum of per-version checksums: a determinism anchor and a
     *  guard against the work being optimized away. */
    double checksum = 0;
};

SweepOutcome
runSweep(std::uint32_t pes, unsigned host_threads)
{
    const em3d::Config cfg = sweepConfig();
    splitc::SplitcConfig scfg;
    // 0 = sequential baseline; force it even if T3DSIM_HOST_THREADS
    // is set in the environment, so the speedup denominator is real.
    scfg.hostThreads =
        host_threads == 0 ? -1 : static_cast<int>(host_threads);

    SweepOutcome out;
    out.pes = pes;
    out.hostThreads = host_threads;

    // One untimed warmup pass (page cache, allocator), then best of
    // three timed passes: the 32-PE case finishes in milliseconds,
    // where cold-start and scheduler noise would dominate a single
    // cold measurement.
    constexpr int timedPasses = 3;
    for (int pass = -1; pass < timedPasses; ++pass) {
        std::uint64_t sim_cycles = 0;
        double checksum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (em3d::Version v : em3d::allVersions) {
            const em3d::Result r = em3d::run(cfg, v, pes, scfg);
            sim_cycles += r.elapsed;
            checksum += r.checksum;
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double host_s =
            std::chrono::duration<double>(t1 - t0).count();
        if (pass < 0)
            continue; // warmup
        if (out.hostSeconds == 0 || host_s < out.hostSeconds)
            out.hostSeconds = host_s;
        // The simulation is deterministic: every pass must produce
        // the same model time and checksum.
        out.simCycles = sim_cycles;
        out.checksum = checksum;
    }
    out.simPeCyclesPerHostSecond =
        double(out.simCycles) * pes / out.hostSeconds;
    return out;
}

/** Worker-thread counts to sweep: 1, 2, 4, and the host's core
 *  count, deduplicated and sorted. */
std::vector<unsigned>
threadSweep()
{
    std::vector<unsigned> sweep = {1, 2, 4};
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores > 0)
        sweep.push_back(cores);
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    return sweep;
}

/** Why the parallel-scheduler sweep was not run ("" = it ran).
 *  hardware_concurrency() reports 0 when the count is unknown; treat
 *  that like a single core rather than publish a speedup the host
 *  cannot have produced. */
std::string
sweepSkippedReason()
{
    if (std::thread::hardware_concurrency() <= 1)
        return "host_cores <= 1: scheduler workers cannot run "
               "concurrently, so speedup_vs_sequential would be a "
               "misleading ~1.0";
    return "";
}

bool
writeSweepJson(const std::vector<SweepOutcome> &cases,
               const std::string &skipped_reason,
               const std::string &path)
{
    const em3d::Config cfg = sweepConfig();
    std::ofstream os(path);
    if (!os)
        return false;
    os.precision(17);
    os << "{\n"
       << "  \"bench\": \"sim_speed_em3d_sweep\",\n"
       << "  \"host_cores\": " << std::thread::hardware_concurrency()
       << ",\n";
    if (!skipped_reason.empty())
        os << "  \"skipped_reason\": \"" << skipped_reason << "\",\n";
    os
       << "  \"config\": {\"nodes_per_pe\": " << cfg.nodesPerPe
       << ", \"degree\": " << cfg.degree
       << ", \"remote_fraction\": " << cfg.remoteFraction
       << ", \"iterations\": " << cfg.iterations
       << ", \"versions\": 6},\n"
       << "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const SweepOutcome &c = cases[i];
        os << "    {\"pes\": " << c.pes
           << ", \"host_threads\": " << c.hostThreads
           << ", \"host_seconds\": " << c.hostSeconds
           << ", \"sim_cycles\": " << c.simCycles
           << ", \"sim_pe_cycles_per_host_second\": "
           << c.simPeCyclesPerHostSecond
           << ", \"speedup_vs_sequential\": " << c.speedupVsSequential
           << ", \"checksum\": " << c.checksum << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return bool(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool sweep_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep-only") == 0) {
            sweep_only = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    if (!sweep_only) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }

    bool diverged = false;
    const std::string skipped_reason = sweepSkippedReason();
    if (!skipped_reason.empty())
        std::cout << "parallel sweep skipped: " << skipped_reason
                  << "\n";
    std::vector<SweepOutcome> cases;
    for (std::uint32_t pes : {32u, 256u}) {
        const SweepOutcome seq = runSweep(pes, 0);
        cases.push_back(seq);
        const std::vector<unsigned> sweep =
            skipped_reason.empty() ? threadSweep()
                                   : std::vector<unsigned>{};
        for (unsigned threads : sweep) {
            SweepOutcome par = runSweep(pes, threads);
            par.speedupVsSequential = seq.hostSeconds / par.hostSeconds;
            // The parallel scheduler claims bit-identical timing:
            // anything else is a bug, not noise.
            if (par.simCycles != seq.simCycles ||
                par.checksum != seq.checksum) {
                std::cerr << "error: parallel run diverged at pes="
                          << pes << " host_threads=" << threads
                          << ": sim_cycles " << par.simCycles
                          << " vs " << seq.simCycles << ", checksum "
                          << par.checksum << " vs " << seq.checksum
                          << "\n";
                diverged = true;
            }
            cases.push_back(par);
        }
        for (const SweepOutcome &c : cases) {
            if (c.pes != pes)
                continue;
            std::cout << "em3d_sweep pes=" << c.pes
                      << " host_threads=" << c.hostThreads
                      << " host_s=" << c.hostSeconds
                      << " sim_cycles=" << c.simCycles
                      << " sim_pe_cycles/s="
                      << c.simPeCyclesPerHostSecond
                      << " speedup=" << c.speedupVsSequential
                      << " checksum=" << c.checksum << "\n";
        }
    }
    if (!writeSweepJson(cases, skipped_reason,
                        "BENCH_sim_speed.json")) {
        std::cerr << "error: could not write BENCH_sim_speed.json\n";
        return 1;
    }
    std::cout << "wrote BENCH_sim_speed.json\n";
    return diverged ? 1 : 0;
}
