# Empty dependencies file for bench_fig1_local_read.
# This may be replaced when dependencies are built.
