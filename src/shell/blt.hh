/**
 * @file
 * Block transfer engine (§6.2).
 *
 * A system-level DMA device that moves large contiguous or strided
 * blocks between local and remote memory. Its defining properties,
 * both modeled:
 *
 *  - invocation requires an operating-system call with an egregious
 *    180 us startup overhead charged to the invoking processor,
 *  - once started it streams at up to 140 MB/s for reads (write
 *    streaming is modeled at 85 MB/s, below the 90 MB/s non-blocking
 *    store path, which is why stores always win for bulk writes).
 *
 * The transfer itself runs asynchronously: start*() returns the DMA
 * completion time so bulk_get/bulk_put can overlap computation;
 * wait() stalls the processor until completion.
 */

#ifndef T3DSIM_SHELL_BLT_HH
#define T3DSIM_SHELL_BLT_HH

#include <cstdint>

#include "alpha/core.hh"
#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/config.hh"
#include "shell/ports.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::shell
{

/** Per-node block transfer engine. */
class BlockTransferEngine
{
  public:
    BlockTransferEngine(const ShellConfig &config, PeId local_pe,
                        MachinePort &machine, alpha::AlphaCore &core);

    /**
     * Start a DMA read of @p len bytes from (@p src, @p remote_offset)
     * into local memory at @p local_offset. Charges the OS startup
     * cost (and a write-buffer drain) to the local clock; moves the
     * data; returns the DMA completion time.
     */
    Cycles startRead(PeId src, Addr remote_offset, Addr local_offset,
                     std::size_t len);

    /** Start a DMA write of local memory to a remote node. */
    Cycles startWrite(PeId dst, Addr remote_offset, Addr local_offset,
                      std::size_t len);

    /**
     * Strided read: @p count elements of @p elem_bytes, advancing the
     * remote address by @p remote_stride and the local address by
     * @p local_stride per element.
     */
    Cycles startStridedRead(PeId src, Addr remote_offset,
                            std::size_t remote_stride, Addr local_offset,
                            std::size_t local_stride,
                            std::size_t elem_bytes, std::size_t count);

    /** Strided write, mirror of startStridedRead. */
    Cycles startStridedWrite(PeId dst, Addr remote_offset,
                             std::size_t remote_stride, Addr local_offset,
                             std::size_t local_stride,
                             std::size_t elem_bytes, std::size_t count);

    /** Stall the local clock until @p completion. */
    void wait(Cycles completion);

    /** Completion time of the most recent transfer. */
    Cycles lastCompletion() const { return _lastCompletion; }

    std::uint64_t transfersStarted() const { return _transfers; }

    /** Invocations that stalled waiting for a busy engine. */
    std::uint64_t engineStalls() const { return _engineStalls; }

    /** Attach the local node's counters and the machine trace sink. */
    void
    setObservability(probes::PerfCounters *ctr, probes::TraceSink *trace)
    {
        _ctr = ctr;
        _trace = trace;
    }

  private:
    /** Common startup accounting; returns the DMA start time. */
    Cycles invoke();

    /** Account the streaming phase of a transfer ending at
     *  _lastCompletion. */
    void noteTransfer(const char *name, Cycles start);

    /** Streaming cycles for @p len bytes in direction @p is_read. */
    Cycles streamCycles(std::size_t len, bool is_read) const;

    const ShellConfig &_config;
    PeId _localPe;
    MachinePort &_machine;
    alpha::AlphaCore &_core;
    Cycles _lastCompletion = 0;
    std::uint64_t _transfers = 0;
    std::uint64_t _engineStalls = 0;

    /** Completion times of transfers still streaming, sorted. The
     *  engine sustains bltMaxInFlight of them; invoking it past that
     *  stalls the caller until the earliest one completes. */
    sim::RingBuffer<Cycles> _outstanding;

    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_BLT_HH
