/**
 * @file
 * Exact execution of a lowered task graph on `t3d::Machine` through
 * the splitc scheduler seams: one SPMD coroutine per PE walks the
 * Plan's supersteps, charging real compute/transfer costs and
 * producing a deterministic value checksum (docs/TASKGRAPH.md
 * "Execution model").
 */

#ifndef T3DSIM_TASKGRAPH_RUN_HH
#define T3DSIM_TASKGRAPH_RUN_HH

#include <cstdint>
#include <string>

#include "taskgraph/lower.hh"

namespace t3dsim::taskgraph
{

struct RunOptions
{
    /** Host threads for the splitc scheduler: -1 sequential, 0 honor
     *  T3DSIM_HOST_THREADS, >= 1 that many ParallelScheduler workers.
     *  Never changes simulated results — only host wall time. */
    int hostThreads = -1;

    /** Enable the shell-event trace; when @p tracePath is non-empty
     *  the Chrome JSON is written there after the run. */
    bool trace = false;
    std::string tracePath;
};

/** What one exact simulation produced. */
struct RunResult
{
    std::uint64_t makespanCycles = 0;  ///< max per-PE finish time
    std::uint64_t finishHash = 0;      ///< FNV over per-PE finish times
    std::uint64_t checksum = 0;        ///< fold of task result values
    std::uint32_t levels = 0;
    std::size_t traceEvents = 0;       ///< 0 unless options.trace
};

/**
 * Run @p plan for @p graph on a fresh MachineConfig::t3d(plan.pes)
 * machine. Deterministic: for a fixed (graph, plan), every scheduler
 * flavor and host thread count returns bit-identical makespan,
 * finishHash and checksum (pinned by tests/taskgraph/run_test.cc).
 */
RunResult simulate(const TaskGraph &graph, const Plan &plan,
                   const RunOptions &options = RunOptions{});

} // namespace t3dsim::taskgraph

#endif // T3DSIM_TASKGRAPH_RUN_HH
