#include "stress/differential.hh"

#include <algorithm>
#include <sstream>

#include "machine/machine.hh"
#include "machine/node.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace t3dsim::stress
{

namespace
{

/** Describe one run configuration for mismatch messages. */
std::string
runName(int host_threads, bool counters_on, bool adaptive = false)
{
    std::ostringstream os;
    if (host_threads < 0)
        os << "sequential";
    else
        os << "parallel(" << host_threads << ")";
    os << (counters_on ? "/counters-on" : "/counters-off");
    if (adaptive)
        os << "/adaptive";
    return os.str();
}

/** Compare @p run against @p ref; append divergences to @p out. */
void
compare(const RunResult &ref, const RunResult &run,
        const std::string &name, std::vector<std::string> &out)
{
    if (run.finish != ref.finish) {
        std::ostringstream os;
        os << name << ": finish times diverge";
        for (std::size_t pe = 0; pe < ref.finish.size(); ++pe)
            if (run.finish[pe] != ref.finish[pe]) {
                os << " (first at pe" << pe << ": " << run.finish[pe]
                   << " != " << ref.finish[pe] << ")";
                break;
            }
        out.push_back(os.str());
    }
    if (run.checksum != ref.checksum) {
        std::ostringstream os;
        os << name << ": memory checksum " << std::hex << run.checksum
           << " != " << ref.checksum;
        out.push_back(os.str());
    }
    // Counter records are compared only between counters-on runs.
    if (!run.counters.empty() && !ref.counters.empty() &&
        run.counters != ref.counters) {
        for (std::size_t pe = 0; pe < ref.counters.size(); ++pe) {
            if (run.counters[pe] == ref.counters[pe])
                continue;
            const auto &infos = probes::PerfCounters::infos();
            for (std::size_t i = 0; i < infos.size(); ++i)
                if (run.counters[pe].value(i) !=
                    ref.counters[pe].value(i)) {
                    std::ostringstream os;
                    os << name << ": counter " << infos[i].name
                       << " at pe" << pe << ": "
                       << run.counters[pe].value(i)
                       << " != " << ref.counters[pe].value(i);
                    out.push_back(os.str());
                }
        }
    }
}

} // namespace

RunResult
runOnce(const Plan &plan, int host_threads, bool counters_on,
        bool adaptive)
{
    machine::MachineConfig mc =
        machine::MachineConfig::t3d(plan.cfg.pes);
    mc.observe.counters = counters_on;

    machine::Machine m(mc);
    splitc::SplitcConfig scfg;
    scfg.hostThreads = host_threads;
    scfg.adaptiveLookahead = adaptive;
    if (plan.cfg.amQueueSlots != 0)
        scfg.amQueueSlots = plan.cfg.amQueueSlots;
    if (plan.cfg.amOverflowSlots != 0)
        scfg.amOverflowSlots = plan.cfg.amOverflowSlots;

    RunResult res;
    res.finish = runPlan(m, plan, scfg);
    res.checksum = memoryChecksum(m, plan);
    if (m.countersEnabled())
        for (PeId pe = 0; pe < plan.cfg.pes; ++pe)
            res.counters.push_back(m.node(pe).counters());
    return res;
}

SeedReport
runDifferential(const StressConfig &cfg,
                const std::vector<int> &thread_counts,
                bool adaptive_legs)
{
    const Plan plan = Plan::build(cfg);

    SeedReport report;
    report.seed = cfg.seed;
    report.reference = runOnce(plan, /*host_threads=*/-1,
                               /*counters_on=*/true);

    compare(report.reference,
            runOnce(plan, -1, /*counters_on=*/false),
            runName(-1, false), report.mismatches);

    for (int threads : thread_counts) {
        compare(report.reference, runOnce(plan, threads, true),
                runName(threads, true), report.mismatches);
        compare(report.reference, runOnce(plan, threads, false),
                runName(threads, false), report.mismatches);
        if (!adaptive_legs)
            continue;
        compare(report.reference,
                runOnce(plan, threads, true, /*adaptive=*/true),
                runName(threads, true, true), report.mismatches);
        compare(report.reference,
                runOnce(plan, threads, false, /*adaptive=*/true),
                runName(threads, false, true), report.mismatches);
    }

    report.pass = report.mismatches.empty();
    return report;
}

SaturateReport
runSaturate()
{
    using splitc::Proc;
    using splitc::ProcTask;

    SaturateReport rep;
    rep.amDeposits = 512;  // 2x the 256-slot primary queue
    rep.msgsSent = 256;    // 4x the shrunken hardware queue

    machine::MachineConfig mc = machine::MachineConfig::t3d(2);
    mc.observe.counters = true;
    mc.shell.msgQueueCapacity = 64;

    machine::Machine m(mc);
    constexpr std::uint64_t tag = 20;
    std::uint64_t handled = 0, received = 0, overflows = 0;

    const auto finish = splitc::runSpmd(m, [&](Proc &p) -> ProcTask {
        p.registerAmHandler(
            tag, [&](Proc &, const std::array<std::uint64_t, 4> &) {
                ++handled;
            });
        if (p.pe() == 0) {
            // Flood a parked receiver: the primary AM queue fills
            // and deposits reroute to the DRAM overflow ring; the
            // hardware message queue fills and messages spill.
            for (std::uint64_t i = 0; i < rep.amDeposits; ++i)
                p.amDeposit(1, tag, {i, 0, 0, 0});
            for (std::uint64_t i = 0; i < rep.msgsSent; ++i)
                p.sendMessage(1, {i, 0, 0, 0});
            overflows = p.amOverflows();
            co_await p.barrier();
        } else {
            co_await p.barrier();
            while (handled < rep.amDeposits) {
                co_await p.amWait();
                while (p.amPoll()) {
                }
            }
            for (std::uint64_t i = 0; i < rep.msgsSent; ++i) {
                co_await p.waitMessage();
                p.takeMessage(false);
                ++received;
            }
        }
        co_return;
    });

    rep.completed = true;
    rep.amHandled = handled;
    rep.msgsReceived = received;
    rep.amOverflows = overflows;
    rep.msgSpills = m.node(1).counters().msgSpills;
    rep.receiverFinish = finish.size() > 1 ? finish[1] : 0;
    return rep;
}

} // namespace t3dsim::stress
