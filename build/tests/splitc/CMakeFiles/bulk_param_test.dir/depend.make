# Empty dependencies file for bulk_param_test.
# This may be replaced when dependencies are built.
