/**
 * @file
 * Scheduler determinism / stress tests.
 *
 * The SPMD executor is a conservative lowest-clock-first discrete
 * event scheduler; its internals (ready queue, wakeup bookkeeping)
 * are host-speed machinery and MUST NOT affect simulated timing.
 * These tests pin that invariant three ways:
 *
 *  1. identical runs produce bit-identical per-PE finish times;
 *  2. finish times match golden values recorded from the seed
 *     implementation (the O(P)-scan scheduler), so any scheduler
 *     rewrite that shifts model time fails loudly;
 *  3. stress shapes — every PE parked in store_sync / barrier /
 *     message-wait at once — exercise the wakeup path where an
 *     indexed scheduler is most tempted to cut corners;
 *  4. the host-parallel scheduler run at 1/2/4/8 worker threads
 *     reproduces the sequential finish times bit-identically for
 *     every shape above (the tentpole invariant of the sharded
 *     lookahead-window scheduler).
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "em3d/em3d.hh"
#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;
using splitc::runSpmd;

/** Scheduler selection: -1 sequential, N >= 1 parallel N threads. */
splitc::SplitcConfig
withHostThreads(int host_threads)
{
    splitc::SplitcConfig cfg;
    cfg.hostThreads = host_threads;
    return cfg;
}

constexpr int kSequential = -1;
constexpr int kThreadSweep[] = {1, 2, 4, 8};

/** FNV-1a over a finish-time vector: one word per PE. */
std::uint64_t
finishHash(const std::vector<Cycles> &finish)
{
    std::uint64_t h = 14695981039346656037ull;
    for (Cycles c : finish) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

// ---------------------------------------------------------------------
// Fig. 9-style EM3D configs
// ---------------------------------------------------------------------

em3d::Config
smallEm3d()
{
    em3d::Config cfg;
    cfg.nodesPerPe = 32;
    cfg.degree = 4;
    cfg.remoteFraction = 0.3;
    cfg.iterations = 2;
    return cfg;
}

TEST(SchedDeterminism, Em3dRunTwiceIdentical)
{
    for (std::uint32_t pes : {4u, 8u}) {
        for (em3d::Version v :
             {em3d::Version::Get, em3d::Version::Put,
              em3d::Version::Bulk}) {
            const auto a = em3d::run(smallEm3d(), v, pes);
            const auto b = em3d::run(smallEm3d(), v, pes);
            EXPECT_EQ(a.elapsed, b.elapsed)
                << em3d::versionName(v) << " at " << pes << " PEs";
            EXPECT_EQ(a.checksum, b.checksum)
                << em3d::versionName(v) << " at " << pes << " PEs";
        }
    }
}

TEST(SchedDeterminism, Em3dMatchesSeedGolden)
{
    // Elapsed model cycles recorded from the seed scheduler
    // (pre-optimization). A change here means an optimization moved
    // simulated time — forbidden.
    struct Golden
    {
        std::uint32_t pes;
        em3d::Version version;
        Cycles elapsed;
    };
    const Golden goldens[] = {
        {4, em3d::Version::Get, 40815},
        {4, em3d::Version::Bulk, 38400},
        {8, em3d::Version::Put, 39527},
    };
    for (const auto &g : goldens) {
        const auto r = em3d::run(smallEm3d(), g.version, g.pes);
        EXPECT_EQ(r.elapsed, g.elapsed)
            << em3d::versionName(g.version) << " at " << g.pes
            << " PEs";
    }
}

// ---------------------------------------------------------------------
// store_sync-driven ghost push (the paper's Put pattern, written
// directly against store/store_sync so the wakeup path is on the
// critical path of every iteration)
// ---------------------------------------------------------------------

std::vector<Cycles>
runStorePush(std::uint32_t pes, int iters,
             const splitc::SplitcConfig &cfg = {})
{
    Machine m(MachineConfig::t3d(pes));
    constexpr Addr valsBase = 0x40000;
    constexpr Addr ghostBase = 0x50000;
    constexpr int wordsPerNeighbor = 4;
    constexpr std::uint32_t neighbors = 2;

    return runSpmd(m, [&](Proc &p) -> ProcTask {
        auto &core = p.node().core();
        for (int it = 0; it < iters; ++it) {
            // Produce this step's values.
            for (int k = 0; k < wordsPerNeighbor; ++k) {
                core.storeU64(valsBase + Addr(k) * 8,
                              (std::uint64_t(p.pe()) << 32) ^
                                  std::uint64_t(it * 31 + k));
            }
            // Push them into two downstream PEs' ghost regions.
            for (std::uint32_t n = 1; n <= neighbors; ++n) {
                const PeId dst = (p.pe() + n) % p.procs();
                for (int k = 0; k < wordsPerNeighbor; ++k) {
                    const std::uint64_t v =
                        core.loadU64(valsBase + Addr(k) * 8);
                    p.storeU64(
                        GlobalAddr::make(
                            dst,
                            ghostBase +
                                Addr(n - 1) * wordsPerNeighbor * 8 +
                                Addr(k) * 8),
                        v);
                }
            }
            // Wait for our own ghosts (pushed by two upstream PEs).
            co_await p.storeSync(neighbors * wordsPerNeighbor * 8);
            // Consume: touch every ghost word.
            std::uint64_t acc = 0;
            for (std::uint32_t g = 0;
                 g < neighbors * wordsPerNeighbor; ++g)
                acc ^= core.loadU64(ghostBase + Addr(g) * 8);
            core.storeU64(valsBase + 0x100, acc);
            p.compute(40 + (p.pe() % 5) * 7); // skewed compute phase
            co_await p.barrier();
        }
        co_return;
    }, cfg);
}

TEST(SchedDeterminism, StorePushFinishTimes)
{
    // Golden finish-time hashes recorded from the seed scheduler.
    struct Golden
    {
        std::uint32_t pes;
        std::uint64_t hash;
    };
    const Golden goldens[] = {
        {4, 6639824912095917541ull},
        {8, 8075835568684726093ull},
        {16, 888021799176107349ull},
        {32, 12136788156465987205ull},
    };
    for (const auto &g : goldens) {
        const auto first = runStorePush(g.pes, 3);
        const auto second = runStorePush(g.pes, 3);
        ASSERT_EQ(first.size(), g.pes);
        EXPECT_EQ(first, second) << "at " << g.pes << " PEs";
        EXPECT_EQ(finishHash(first), g.hash)
            << "at " << g.pes << " PEs";
    }
}

// ---------------------------------------------------------------------
// Many-waiters stress shapes
// ---------------------------------------------------------------------

/** Every PE but 0 parks in store_sync at time ~0; PE 0 computes for
 *  a long stretch, then feeds them all. Exercises mass wakeup from
 *  one producer's resume. */
std::vector<Cycles>
runAllParkedInStoreSync(std::uint32_t pes,
                        const splitc::SplitcConfig &cfg = {})
{
    Machine m(MachineConfig::t3d(pes));
    constexpr Addr ghostBase = 0x50000;

    return runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.compute(50000); // everyone else parks first
            for (PeId dst = 1; dst < p.procs(); ++dst) {
                for (int k = 0; k < 2; ++k)
                    p.storeU64(GlobalAddr::make(
                                   dst, ghostBase + Addr(k) * 8),
                               dst * 1000 + k);
            }
        } else {
            co_await p.storeSync(16);
            EXPECT_EQ(p.node().core().loadU64(ghostBase),
                      std::uint64_t(p.pe()) * 1000);
        }
        co_await p.barrier();
        co_return;
    }, cfg);
}

TEST(SchedDeterminism, AllParkedInStoreSync)
{
    const std::uint64_t golden32 = 18352149539983555205ull;
    const auto first = runAllParkedInStoreSync(32);
    const auto second = runAllParkedInStoreSync(32);
    EXPECT_EQ(first, second);
    EXPECT_EQ(finishHash(first), golden32);
}

/** Every PE but 0 parks waiting for a user-level message. */
std::vector<Cycles>
runAllParkedInMessageWait(std::uint32_t pes,
                          const splitc::SplitcConfig &cfg = {})
{
    Machine m(MachineConfig::t3d(pes));
    return runSpmd(m, [&](Proc &p) -> ProcTask {
        if (p.pe() == 0) {
            p.compute(20000);
            for (PeId dst = 1; dst < p.procs(); ++dst)
                p.sendMessage(dst, {dst, 7, 8, 9});
        } else {
            co_await p.waitMessage();
            const auto msg = p.takeMessage(false);
            EXPECT_EQ(msg.words[0], p.pe());
        }
        co_await p.barrier();
        co_return;
    }, cfg);
}

TEST(SchedDeterminism, AllParkedInMessageWait)
{
    const std::uint64_t golden16 = 11895035035132885093ull;
    const auto first = runAllParkedInMessageWait(16);
    const auto second = runAllParkedInMessageWait(16);
    EXPECT_EQ(first, second);
    EXPECT_EQ(finishHash(first), golden16);
}

/** Every PE parks in the barrier with skewed arrival order (highest
 *  PE arrives first). */
std::vector<Cycles>
runSkewedBarrier(std::uint32_t pes, const splitc::SplitcConfig &cfg = {})
{
    Machine m(MachineConfig::t3d(pes));
    return runSpmd(m, [&](Proc &p) -> ProcTask {
        for (int round = 0; round < 4; ++round) {
            p.compute((p.procs() - p.pe()) * 97 + round * 13);
            co_await p.barrier();
        }
        co_return;
    }, cfg);
}

TEST(SchedDeterminism, SkewedBarrierWaves)
{
    const std::uint64_t golden32 = 6806815936650454565ull;
    const auto first = runSkewedBarrier(32);
    const auto second = runSkewedBarrier(32);
    EXPECT_EQ(first, second);
    EXPECT_EQ(finishHash(first), golden32);
}

// ---------------------------------------------------------------------
// Host-parallel scheduler: every shape above, at 1/2/4/8 worker
// threads, diffed against the sequential reference run
// ---------------------------------------------------------------------

TEST(SchedDeterminism, ParallelEm3dMatchesSequential)
{
    for (std::uint32_t pes : {4u, 8u}) {
        for (em3d::Version v :
             {em3d::Version::Get, em3d::Version::Put,
              em3d::Version::Bulk}) {
            const auto seq = em3d::run(smallEm3d(), v, pes,
                                       withHostThreads(kSequential));
            for (int threads : kThreadSweep) {
                const auto par = em3d::run(smallEm3d(), v, pes,
                                           withHostThreads(threads));
                EXPECT_EQ(par.elapsed, seq.elapsed)
                    << em3d::versionName(v) << " at " << pes
                    << " PEs, " << threads << " host threads";
                EXPECT_EQ(par.checksum, seq.checksum)
                    << em3d::versionName(v) << " at " << pes
                    << " PEs, " << threads << " host threads";
            }
        }
    }
}

TEST(SchedDeterminism, ParallelStorePushMatchesSequential)
{
    for (std::uint32_t pes : {4u, 8u, 16u, 32u}) {
        const auto seq =
            runStorePush(pes, 3, withHostThreads(kSequential));
        for (int threads : kThreadSweep) {
            const auto par =
                runStorePush(pes, 3, withHostThreads(threads));
            EXPECT_EQ(par, seq) << "at " << pes << " PEs, " << threads
                                << " host threads";
        }
    }
}

TEST(SchedDeterminism, ParallelStressShapesMatchSequential)
{
    const auto seq_store =
        runAllParkedInStoreSync(32, withHostThreads(kSequential));
    const auto seq_msg =
        runAllParkedInMessageWait(16, withHostThreads(kSequential));
    const auto seq_barrier =
        runSkewedBarrier(32, withHostThreads(kSequential));
    for (int threads : kThreadSweep) {
        EXPECT_EQ(runAllParkedInStoreSync(32, withHostThreads(threads)),
                  seq_store)
            << threads << " host threads";
        EXPECT_EQ(runAllParkedInMessageWait(16, withHostThreads(threads)),
                  seq_msg)
            << threads << " host threads";
        EXPECT_EQ(runSkewedBarrier(32, withHostThreads(threads)),
                  seq_barrier)
            << threads << " host threads";
    }
}

TEST(SchedDeterminism, ParallelRunsMatchSeedGoldens)
{
    // The golden hashes recorded from the seed scheduler must hold
    // under the parallel scheduler too — same model, same cycles.
    for (int threads : kThreadSweep) {
        EXPECT_EQ(finishHash(runStorePush(32, 3, withHostThreads(threads))),
                  12136788156465987205ull)
            << threads << " host threads";
    }
    const auto r = em3d::run(smallEm3d(), em3d::Version::Get, 4,
                             withHostThreads(4));
    EXPECT_EQ(r.elapsed, 40815u);
}

// Non-power-of-two PE counts leave the barrier radix tree with
// partial leaf groups and partial upper levels, and leave the
// parallel scheduler with uneven shards. Hierarchical aggregation
// must still reproduce the sequential times bit-identically.
TEST(SchedDeterminism, ParallelNonPowerOfTwoPeCounts)
{
    for (std::uint32_t pes : {48u, 100u}) {
        const auto seq_push =
            runStorePush(pes, 2, withHostThreads(kSequential));
        const auto seq_barrier =
            runSkewedBarrier(pes, withHostThreads(kSequential));
        ASSERT_EQ(seq_push.size(), pes);
        for (int threads : kThreadSweep) {
            EXPECT_EQ(runStorePush(pes, 2, withHostThreads(threads)),
                      seq_push)
                << pes << " PEs, " << threads << " host threads";
            EXPECT_EQ(runSkewedBarrier(pes, withHostThreads(threads)),
                      seq_barrier)
                << pes << " PEs, " << threads << " host threads";
        }
    }
}

} // namespace
