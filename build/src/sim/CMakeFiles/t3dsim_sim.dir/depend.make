# Empty dependencies file for t3dsim_sim.
# This may be replaced when dependencies are built.
