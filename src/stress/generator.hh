/**
 * @file
 * Seeded Split-C traffic generator for the differential stress
 * harness (t3d-fuzz; see docs/STRESS.md).
 *
 * A Plan is a deterministic function of a StressConfig: for every
 * (round, PE) it holds a list of Ops drawn from the full runtime
 * vocabulary — blocking remote reads/writes, split-phase get/put,
 * signaling stores, prefetch pipelining, BLT transfers, fetch&inc,
 * atomic swap, Active Messages, hardware messages, and local
 * compute. The same Plan runs under the sequential and the
 * host-parallel scheduler; the differential checker
 * (stress/differential.hh) cross-checks finish times, memory
 * checksums and per-PE counters for exact equality.
 *
 * The generated programs are race-free by construction, so the
 * bit-identical-timing contract of the parallel scheduler applies:
 *
 *  - writes land in per-(writer, round-parity) stripes, so no two
 *    PEs ever write the same word in a round;
 *  - reads target the previous round's bank, which no one writes in
 *    the current round (rounds are barrier-separated);
 *  - signaling stores, messages and AM deposits are matched by
 *    plan-derived waits (storeSync byte counts, receive counts,
 *    AM drain counts) before the round barrier;
 *  - AM deposits per receiver per round are capped below the default
 *    primary queue size, so the plain fuzz corpus never enters the
 *    overflow ring; flood seeds (StressConfig::amFloodDeposits with a
 *    shrunken amQueueSlots override) deliberately overrun it, which
 *    is still deterministic because spill routing is a pure function
 *    of the receiver's flow account at the serialized ticket claim
 *    and each flooded receiver keeps a single sender.
 *
 * Race-free does not mean contention-free, and the schedulers
 * canonicalize contention differently: the sequential scheduler
 * interleaves PEs in run-to-suspension order while the parallel
 * scheduler serializes concurrent atomics in (clock, src) order.
 * Both orders are deterministic and produce identical timing, but
 * values that depend on the interleaving differ. The generator
 * therefore only folds order-stable values into the checksum: each
 * round has a single AM sender per receiver (ticket order = program
 * order), swap cells are private to their swapping PE, message
 * payloads fold commutatively (same-cycle arrivals tie-break by
 * delivery order), and contended fetch&inc return values are
 * exercised for timing but not folded.
 *
 * Hardware messages additionally have a single sender per receiver
 * per round. With multiple senders, host interleaving can deliver a
 * late-arrival message before an early one; a receiver woken at that
 * moment dequeues the late message first and is charged
 * max(now, arrival) + interrupt for it, shifting its clock by a full
 * interrupt relative to the arrival-order dequeue — a timing (not
 * just value) divergence. One sender emits all its messages in one
 * run-to-suspension stretch, so deliveries land consecutively in
 * arrival order under both schedulers.
 */

#ifndef T3DSIM_STRESS_GENERATOR_HH
#define T3DSIM_STRESS_GENERATOR_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "machine/machine.hh"
#include "sim/types.hh"
#include "splitc/config.hh"

namespace t3dsim::stress
{

/** Shape of one generated program. */
struct StressConfig
{
    std::uint64_t seed = 1;
    std::uint32_t pes = 8;      ///< 2..8192 (t3d-fuzz --pes)
    std::uint32_t rounds = 4;   ///< >= 1
    std::uint32_t opsPerRound = 12; ///< per PE; 1..kStripeWords

    /**
     * Per-round AM flood: one seeded (sender, receiver) pair per
     * round issues this many additional back-to-back deposits in one
     * run-to-suspension stretch, deliberately overrunning the
     * primary queue so the differential matrix exercises the
     * deterministic overflow-ring reroute under every scheduler
     * (0 = off). Pair with a shrunken amQueueSlots override; the
     * receiver still drains everything before the round barrier, so
     * the program stays race-free and matched-wait.
     */
    std::uint32_t amFloodDeposits = 0;

    /** SplitcConfig::amQueueSlots override (0 = library default). */
    std::uint32_t amQueueSlots = 0;

    /** SplitcConfig::amOverflowSlots override (0 = default). */
    std::uint32_t amOverflowSlots = 0;
};

/** The traffic vocabulary (docs/STRESS.md "Traffic grammar"). */
enum class OpKind : std::uint8_t
{
    RemoteRead,  ///< readU64 of a previous-bank word
    RemoteWrite, ///< blocking writeU64 into own stripe
    Put,         ///< split-phase putU64; completes at sync()
    Get,         ///< split-phase getU64 into a scratch slot
    SignalStore, ///< storeU64; matched by the receiver's storeSync
    Prefetch,    ///< bulkReadPrefetch of a previous-bank range
    BltGet,      ///< forced-BLT bulk read of the target's const region
    BltPut,      ///< forced-BLT bulk write into own big stripe
    FetchInc,    ///< remote fetch&inc on user register 1
    Swap,        ///< atomic swap on a shared per-target cell
    AmDeposit,   ///< Active Message; matched by the receiver's drain
    SendMsg,     ///< hardware message; matched by a receive loop
    Compute,     ///< local compute cycles
};

const char *opKindName(OpKind kind);

/** One generated operation. */
struct Op
{
    OpKind kind;
    PeId target = 0;         ///< remote PE (never self)
    std::uint32_t word = 0;  ///< read index / swap cell
    std::uint32_t len = 0;   ///< prefetch length in words
    std::uint32_t slot = 0;  ///< write slot (== op index; writer-unique)
    std::uint64_t value = 0; ///< payload / compute cycles
};

/** Per-round schedule plus the plan-derived wait expectations. */
struct RoundPlan
{
    std::vector<std::vector<Op>> ops;        ///< [pe] -> op list
    std::vector<std::uint64_t> storeBytesIn; ///< [pe] signaling bytes
    std::vector<std::uint32_t> msgsIn;       ///< [pe] messages
    std::vector<std::uint32_t> amsIn;        ///< [pe] AM deposits
};

/** @name Memory layout (local addresses, identical on every PE) */
/// @{
/** Data region: two banks of per-writer stripes. */
constexpr Addr kDataBase = 0x40000;
constexpr std::uint32_t kStripeWords = 32;

/** BLT landing region: two banks of per-writer 4 KiB stripes. */
constexpr Addr kBigBase = 0x80000;
constexpr std::size_t kBigStripeBytes = 4 * KiB;

/** Read-only source data, filled per-PE before the first barrier. */
constexpr Addr kConstBase = 0x100000;
constexpr std::uint32_t kConstWords = 512;

/** Per-op scratch slots for get / prefetch destinations. */
constexpr Addr kScratchBase = 0x140000;
constexpr std::size_t kScratchSlotBytes = 256;

/** BLT read destination (one transfer in flight per PE round). */
constexpr Addr kBltScratch = 0x148000;

/** Result accumulators (read/fetchInc/swap/msg/AM), 5 cells. */
constexpr Addr kAccumBase = 0x150000;
constexpr std::uint32_t kAccumCells = 5;

/** Shared atomic-swap cells, one per PE id. */
constexpr Addr kSwapBase = 0x151000;
/// @}

/**
 * Resolved region bases for one plan. Region sizes grow with the PE
 * count (data banks, BLT stripes and swap cells are per-PE), so at
 * large P the fixed bases above would overlap. Each base resolves to
 * max(fixed constant, 4 KiB-aligned end of the previous region):
 * at the historical config ceiling (pes <= 32) every base equals its
 * constant, so existing small-P seeds keep their exact layout and
 * timing, while large-P configs (t3d-fuzz --pes, up to 8192) spread
 * out without collisions. The final region must stay inside the
 * 128 MiB local segment; Plan::build's pes clamp guarantees it.
 */
struct Layout
{
    Addr dataBase = kDataBase;
    Addr bigBase = kBigBase;
    Addr constBase = kConstBase;
    Addr scratchBase = kScratchBase;
    Addr bltScratch = kBltScratch;
    Addr accumBase = kAccumBase;
    Addr swapBase = kSwapBase;

    /** Resolve the layout for a (clamped) config. */
    static Layout of(const StressConfig &cfg);
};

/** A full deterministic program: config + per-round schedules. */
struct Plan
{
    StressConfig cfg;
    Layout layout;
    std::vector<RoundPlan> rounds;

    /** Build the plan for @p cfg (pure function of the seed). */
    static Plan build(const StressConfig &cfg);

    /** Human-readable op listing (the --repro output). */
    void print(std::ostream &os) const;
};

/**
 * Execute @p plan on @p machine under the scheduler selected by
 * @p splitc_cfg.hostThreads; returns per-PE finish times.
 */
std::vector<Cycles> runPlan(machine::Machine &machine, const Plan &plan,
                            const splitc::SplitcConfig &splitc_cfg);

/**
 * FNV-1a over every generator-owned region of every PE, in PE
 * order: data banks, BLT landing stripes, scratch, accumulators and
 * swap cells. Uses the lock-free storage read path, so it is safe
 * right after runPlan returns.
 */
std::uint64_t memoryChecksum(machine::Machine &machine, const Plan &plan);

} // namespace t3dsim::stress

#endif // T3DSIM_STRESS_GENERATOR_HH
