# Empty compiler generated dependencies file for t3dsim_mem.
# This may be replaced when dependencies are built.
