/**
 * @file
 * BSP sample + radix sort (after Gerbessiotis & Siniolakis, "BSP
 * Sorting: An Experimental Study"): the bulk-synchronous workload the
 * paper's application section never reaches. EM3D's traffic is many
 * small irregular transfers; a BSP sort superstep is the opposite
 * regime — one all-to-all exchange of large contiguous key blocks
 * between barriers — which is exactly what stresses the BLT-vs-
 * prefetch crossover (§6.3) and barrier fan-in.
 *
 * Algorithm (one BSP superstep structure):
 *
 *   1. every PE owns keysPerPe 64-bit keys; P-1 splitters are chosen
 *      from a regular sample (host-side plan, like EM3D's graph);
 *   2. classify + stage: each key is routed to the bucket PE whose
 *      splitter range contains it, staged contiguously by destination
 *      (timed local pass);
 *   3. all-to-all exchange of the staged blocks — the ladder rung
 *      picks the mechanism (apps::Variant);
 *   4. local LSD radix sort of the received block (timed local
 *      passes moving real bytes).
 *
 * Bucket ranges are ordered by PE, so the concatenation of the
 * per-PE sorted blocks is the globally sorted sequence; run()
 * validates it against std::sort of the gathered input keys.
 *
 * Every variant fills the same receive layout (blocks grouped by
 * source PE), so all five rungs produce bit-identical output and
 * checksums — only the elapsed cycles differ.
 */

#ifndef T3DSIM_APPS_BSORT_BSORT_HH
#define T3DSIM_APPS_BSORT_BSORT_HH

#include <cstdint>
#include <vector>

#include "apps/variant.hh"
#include "machine/machine.hh"
#include "probes/counters.hh"
#include "splitc/config.hh"
#include "sim/types.hh"

namespace t3dsim::apps::bsort
{

/** Workload parameters. */
struct Config
{
    /** Keys generated (and, in balance, received) per PE. */
    std::uint32_t keysPerPe = 512;

    /** Sample keys per PE used to pick the P-1 splitters. */
    std::uint32_t oversample = 8;

    std::uint64_t seed = 42;

    /** @name Local-phase instruction overheads (cycles) */
    /// @{
    /** Per-key splitter binary search in the classify pass. */
    Cycles classifyCycles = 12;

    /** Radix digit width in bits (64 must divide evenly). */
    std::uint32_t radixBits = 8;

    /** Per-key bookkeeping in a radix counting pass. */
    Cycles radixCountCycles = 2;

    /** Per-key bookkeeping in a radix scatter pass. */
    Cycles radixScatterCycles = 4;
    /// @}
};

/** Deterministic key stream: key @p i of PE @p pe under @p seed. */
std::uint64_t keyOf(std::uint64_t seed, PeId pe, std::uint32_t i);

/**
 * Pick splitters from a regular sample of every PE's key stream
 * (the host-side half of the sample-sort plan; exposed so examples
 * can reuse the app's bucketing).
 * @return pes-1 ascending splitter keys.
 */
std::vector<std::uint64_t> pickSplitters(const Config &config,
                                         std::uint32_t pes);

/** Bucket (destination PE) of @p key under @p splitters. */
std::uint32_t bucketOf(std::uint64_t key,
                       const std::vector<std::uint64_t> &splitters);

/**
 * The host-side exchange plan: splitters, per-PE outgoing blocks
 * (stage layout) and incoming blocks (receive layout), plus the
 * simulated memory map. Built untimed, like em3d::Graph.
 */
class Plan
{
  public:
    static Plan build(machine::Machine &machine, const Config &config);

    /** One contiguous run of staged keys bound for a single PE. */
    struct OutBlock
    {
        PeId dst;

        /** First stage slot of the run on the producer. */
        std::uint32_t stageFirst;

        /** First receive slot of the run on the consumer. */
        std::uint32_t recvFirst;

        std::uint32_t count;
    };

    /** Consumer view of one producer's incoming run. */
    struct InBlock
    {
        PeId src;

        /** First stage slot of the run on the producer. */
        std::uint32_t srcStageFirst;

        /** First receive slot here. */
        std::uint32_t recvFirst;

        std::uint32_t count;
    };

    struct PerPe
    {
        /** Stage slot of local key i (classify-pass routing). */
        std::vector<std::uint32_t> stageSlotOfKey;

        /** Outgoing runs, ascending destination (self included). */
        std::vector<OutBlock> outBlocks;

        /** Incoming runs, ascending source (self included). */
        std::vector<InBlock> inBlocks;

        /** Keys this PE receives in total. */
        std::uint32_t recvCount = 0;
    };

    Config config;
    std::uint32_t pes = 0;

    std::vector<std::uint64_t> splitters;
    std::vector<PerPe> perPe;

    /** Largest recvCount over all PEs (sizes the symmetric recv and
     *  radix scratch arrays). */
    std::uint32_t maxRecv = 0;

    /** @name Symmetric local offsets of the simulated arrays */
    /// @{
    Addr keysBase = 0;  ///< original keys (written at build)
    Addr stageBase = 0; ///< outgoing keys grouped by destination
    Addr recvBase = 0;  ///< incoming keys grouped by source
    Addr scratchBase = 0; ///< radix ping-pong buffer
    /// @}
};

/** Outcome of one sort run. */
struct Result
{
    Variant variant;
    Cycles elapsed = 0;

    /** Elapsed time per key owned by a PE. */
    double usPerKey = 0;

    std::uint64_t keysTotal = 0;

    /** FNV-1a over the gathered (globally sorted) key sequence:
     *  identical across variants and schedulers by construction. */
    std::uint64_t checksum = 0;

    /** Output matched std::sort of the gathered input keys. */
    bool sorted = false;

    /** Machine-wide counter totals (valid only when the machine ran
     *  with MachineConfig::observe.counters). */
    probes::PerfCounters counters{};
    bool countersValid = false;
};

/** Build the plan on a fresh machine of @p pes PEs and sort. */
Result run(const Config &config, Variant variant, std::uint32_t pes,
           const splitc::SplitcConfig &splitc_config = {});

/** As above, on a caller-supplied machine configuration. */
Result run(const Config &config, Variant variant,
           const machine::MachineConfig &machine_config,
           const splitc::SplitcConfig &splitc_config = {});

} // namespace t3dsim::apps::bsort

#endif // T3DSIM_APPS_BSORT_BSORT_HH
