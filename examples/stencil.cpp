/**
 * @file
 * Bulk-synchronous 1-D stencil (the §7 motivating pattern).
 *
 * Each PE owns a block of a 1-D array and smooths it iteratively;
 * between steps the boundary cells are exchanged with the logical
 * neighbors using signaling STORES — one-way, pipelined — and a
 * global all_store_sync instead of per-element acknowledgements,
 * exactly the "bulk synchronous" style of §7.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"
#include "splitc/spread.hh"

using namespace t3dsim;
using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

int
main()
{
    constexpr std::uint32_t pes = 8;
    constexpr std::uint32_t cellsPerPe = 64;
    constexpr int steps = 10;

    machine::Machine machine(machine::MachineConfig::t3d(pes));

    // Block layout with two halo cells: [halo_lo, cells..., halo_hi].
    const Addr block =
        splitc::allocSymmetric(machine, (cellsPerPe + 2) * 8);
    auto cell = [&](std::uint32_t i) { return block + 8 * (i + 1); };
    const Addr halo_lo = block;
    const Addr halo_hi = block + 8 * (cellsPerPe + 1);

    // Initialize: a spike on PE 0.
    for (PeId pe = 0; pe < pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t i = 0; i < cellsPerPe; ++i) {
            const double v = (pe == 0 && i == 0) ? 1000.0 : 0.0;
            storage.writeU64(cell(i), std::bit_cast<std::uint64_t>(v));
        }
    }

    auto finish = splitc::runSpmd(machine, [&](Proc &p) -> ProcTask {
        auto &core = p.node().core();
        const PeId left = (p.pe() + pes - 1) % pes;
        const PeId right = (p.pe() + 1) % pes;

        for (int step = 0; step < steps; ++step) {
            // Push boundary cells into the neighbors' halos (stores:
            // one-way communication, no acks needed).
            p.storeF64(GlobalAddr::make(left, halo_hi),
                       std::bit_cast<double>(core.loadU64(cell(0))));
            p.storeF64(
                GlobalAddr::make(right, halo_lo),
                std::bit_cast<double>(core.loadU64(
                    cell(cellsPerPe - 1))));

            // Barrier + store completion: bulk-synchronous step.
            co_await p.allStoreSync();

            // Local smoothing sweep.
            std::vector<double> next(cellsPerPe);
            for (std::uint32_t i = 0; i < cellsPerPe; ++i) {
                const Addr lo = i == 0 ? halo_lo : cell(i - 1);
                const Addr hi =
                    i == cellsPerPe - 1 ? halo_hi : cell(i + 1);
                const double a =
                    std::bit_cast<double>(core.loadU64(lo));
                const double b =
                    std::bit_cast<double>(core.loadU64(cell(i)));
                const double c =
                    std::bit_cast<double>(core.loadU64(hi));
                next[i] = 0.25 * a + 0.5 * b + 0.25 * c;
                p.compute(8);
            }
            for (std::uint32_t i = 0; i < cellsPerPe; ++i)
                core.storeU64(cell(i),
                              std::bit_cast<std::uint64_t>(next[i]));
            co_await p.barrier();
        }
        co_return;
    });

    // Print the final field (sampled) and total mass conservation.
    double mass = 0;
    std::cout << "final field (first cell of each PE):\n";
    for (PeId pe = 0; pe < pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t i = 0; i < cellsPerPe; ++i)
            mass += std::bit_cast<double>(storage.readU64(cell(i)));
        std::cout << "  PE" << pe << ": " << std::fixed
                  << std::setprecision(4)
                  << std::bit_cast<double>(storage.readU64(cell(0)))
                  << "\n";
    }
    std::cout << "total mass: " << mass << " (expect ~1000)\n";
    std::cout << "simulated time: "
              << cyclesToUs(*std::max_element(finish.begin(),
                                              finish.end()))
              << " us for " << steps << " steps\n";
    return 0;
}
