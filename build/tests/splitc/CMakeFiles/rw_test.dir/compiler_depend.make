# Empty compiler generated dependencies file for rw_test.
# This may be replaced when dependencies are built.
