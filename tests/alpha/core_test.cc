/**
 * @file
 * Unit tests for the AlphaCore local memory path, reproducing the
 * §2.2/§2.3 local micro-benchmark structure at small scale.
 */

#include <gtest/gtest.h>

#include "alpha/address.hh"
#include "probes/stride.hh"
#include "sim/logging.hh"

#include "local_node.hh"

namespace
{

using namespace t3dsim;
using t3dsim::testing::LocalNode;

TEST(Core, LoadMissCostsMemoryAccess)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 77);
    n.core.loadU64(0x0); // warm TLB page and DRAM row
    const Cycles t0 = n.clock.now();
    EXPECT_EQ(n.core.loadU64(0x1000), 77u);
    // In-page memory access: 22 cycles / ~145 ns (Sec. 2.2).
    EXPECT_EQ(n.clock.now() - t0, 22u);
}

TEST(Core, ColdLoadAddsTlbAndPageOpen)
{
    LocalNode n;
    const Cycles t0 = n.clock.now();
    n.core.loadU64(0x1000);
    // 22 + 9 (row open) + 35 (TLB fill) on a completely cold node.
    EXPECT_EQ(n.clock.now() - t0, 66u);
}

TEST(Core, LoadHitCostsOneCycle)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 77);
    n.core.loadU64(0x1000); // fill
    const Cycles t0 = n.clock.now();
    EXPECT_EQ(n.core.loadU64(0x1000), 77u);
    EXPECT_EQ(n.clock.now() - t0, 1u);
    EXPECT_EQ(n.core.cacheHits(), 1u);
}

TEST(Core, ReadAllocatePullsWholeLine)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 1);
    n.storage.writeU64(0x1018, 2);
    n.core.loadU64(0x1000);
    const Cycles t0 = n.clock.now();
    EXPECT_EQ(n.core.loadU64(0x1018), 2u) << "same line";
    EXPECT_EQ(n.clock.now() - t0, 1u);
}

TEST(Core, StoreCostsIssueCycles)
{
    LocalNode n;
    n.core.loadU64(0x2000); // warm TLB
    const Cycles t0 = n.clock.now();
    n.core.storeU64(0x2040, 42);
    EXPECT_EQ(n.clock.now() - t0, 3u);
}

TEST(Core, WriteThroughUpdatesCachedLine)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 5);
    n.core.loadU64(0x1000);
    n.core.storeU64(0x1000, 9);
    EXPECT_EQ(n.core.loadU64(0x1000), 9u) << "cache sees the store";
}

TEST(Core, NoWriteAllocate)
{
    LocalNode n;
    n.core.storeU64(0x3000, 1);
    EXPECT_FALSE(n.dcache.probe(0x3000));
}

TEST(Core, MbDrainsWriteBuffer)
{
    LocalNode n;
    n.core.storeU64(0x2000, 42);
    EXPECT_EQ(n.storage.readU64(0x2000), 0u) << "still buffered";
    n.core.mb();
    EXPECT_EQ(n.storage.readU64(0x2000), 42u);
}

TEST(Core, LoadAfterStoreSameLineStalls)
{
    LocalNode n;
    n.core.storeU64(0x2000, 42);
    // Miss on the pending line: must drain first, then read fresh.
    EXPECT_EQ(n.core.loadU64(0x2000), 42u);
}

TEST(Core, ByteLoadComposition)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 0x8877665544332211ull);
    EXPECT_EQ(n.core.loadU8(0x1003), 0x44u);
}

TEST(Core, ByteStoreReadModifyWrite)
{
    LocalNode n;
    n.storage.writeU64(0x1000, 0x8877665544332211ull);
    n.core.storeU8(0x1002, 0xff);
    n.core.mb();
    EXPECT_EQ(n.core.loadU64(0x1000), 0x8877665544ff2211ull)
        << "byte replaced";
}

TEST(Core, UnalignedLoadPanics)
{
    detail::setThrowOnError(true);
    LocalNode n;
    EXPECT_THROW(n.core.loadU64(0x1001), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(Core, FlushLineChargesAndInvalidates)
{
    LocalNode n;
    n.core.loadU64(0x1000);
    const Cycles t0 = n.clock.now();
    n.core.flushLine(0x1000);
    EXPECT_EQ(n.clock.now() - t0, 23u);
    EXPECT_FALSE(n.dcache.probe(0x1000));
}

TEST(Core, PeekPokeUntimed)
{
    LocalNode n;
    const Cycles t0 = n.clock.now();
    n.core.pokeU64(0x4000, 123);
    EXPECT_EQ(n.core.peekU64(0x4000), 123u);
    EXPECT_EQ(n.clock.now(), t0);
}

// ---------------------------------------------------------------
// §2.2 local read latency profile (Figure 1 left, in miniature)
// ---------------------------------------------------------------

TEST(Core, Figure1ReadProfile)
{
    LocalNode n;
    auto points = probes::strideProbe(
        [&](Addr a) { n.core.loadU64(a); },
        [&] { return n.clock.now(); },
        /*base=*/0, /*min_array=*/4 * KiB, /*max_array=*/512 * KiB);

    // In-cache array: every read ~1 cycle (6.67 ns).
    auto *p = probes::findPoint(points, 4 * KiB, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 1.0, 0.1);

    // 8 KB array still fits (the L1 size, §2.2).
    p = probes::findPoint(points, 8 * KiB, 8);
    EXPECT_NEAR(p->avgCyclesPerOp, 1.0, 0.1);

    // Larger arrays at line stride: every read misses, ~22 cycles.
    p = probes::findPoint(points, 64 * KiB, 32);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 22.0, 1.5);

    // Stride 8 on a big array: 1 miss + 3 hits per line.
    p = probes::findPoint(points, 64 * KiB, 8);
    EXPECT_NEAR(p->avgCyclesPerOp, (22.0 + 3.0) / 4.0, 1.0);

    // 16 KB stride: off-page DRAM, ~31 cycles (~205 ns).
    p = probes::findPoint(points, 256 * KiB, 16 * KiB);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 31.0, 1.5);

    // 64 KB stride: same-bank worst case, ~40 cycles (264 ns).
    p = probes::findPoint(points, 512 * KiB, 64 * KiB);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgCyclesPerOp, 40.0, 1.5);
}

TEST(Core, DirectMappedNoDropAtLargeStride)
{
    // §2.2: "the access time does not drop to the cache-hit time for
    // large strides" — two addresses at half-array distance conflict
    // in a direct-mapped cache.
    LocalNode n;
    auto points = probes::strideProbe(
        [&](Addr a) { n.core.loadU64(a); },
        [&] { return n.clock.now(); },
        0, 32 * KiB, 32 * KiB);
    auto *p = probes::findPoint(points, 32 * KiB, 16 * KiB);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->avgCyclesPerOp, 20.0) << "no associativity rescue";
}

// ---------------------------------------------------------------
// §2.3 local write profile (Figure 2, in miniature)
// ---------------------------------------------------------------

TEST(Core, Figure2WriteProfile)
{
    LocalNode n;
    auto points = probes::strideProbe(
        [&](Addr a) { n.core.storeU64(a, 7); },
        [&] { return n.clock.now(); },
        0, 4 * KiB, 256 * KiB);

    // Small stride: write merging, ~3 cycles (20 ns).
    auto *p = probes::findPoint(points, 64 * KiB, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_LT(p->avgNsPerOp, 28.0);

    // Stride 32: one line per store, ~35 ns steady state.
    p = probes::findPoint(points, 64 * KiB, 32);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->avgNsPerOp, 35.0, 8.0);

    // Stride 16 KB: every store off-page, distinctly slower.
    p = probes::findPoint(points, 256 * KiB, 16 * KiB);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->avgNsPerOp, 45.0);
}

} // namespace
