#include "shell/shell.hh"

namespace t3dsim::shell
{

Shell::Shell(const ShellConfig &config, PeId local_pe, MachinePort &machine,
             alpha::AlphaCore &core)
    : _config(config), _localPe(local_pe), _core(core), _annex(local_pe),
      _prefetch(_config, local_pe, machine, core),
      _remote(_config, local_pe, machine, core),
      _blt(_config, local_pe, machine, core), _messages(_config)
{
}

void
Shell::setAnnex(unsigned idx, const AnnexEntry &entry)
{
    // Updated at user level with store-conditional at a measured
    // cost typical of off-chip access, 23 cycles (§3.2).
    T3D_COUNT(_ctr, annexFaults);
    _core.charge(_config.annexUpdateCycles);
    _annex.set(idx, entry);
    T3D_TRACE(_trace,
              instant(_localPe, "annex_update", _core.clock().now()));
}

void
Shell::setObservability(probes::PerfCounters *ctr,
                        probes::TraceSink *trace)
{
    _ctr = ctr;
    _trace = trace;
    _remote.setObservability(ctr, trace);
    _prefetch.setObservability(ctr, trace);
    _blt.setObservability(ctr, trace);
    _messages.setObservability(ctr, trace, _localPe);
}

} // namespace t3dsim::shell
