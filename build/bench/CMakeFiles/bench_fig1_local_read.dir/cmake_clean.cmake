file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_local_read.dir/bench_fig1_local_read.cc.o"
  "CMakeFiles/bench_fig1_local_read.dir/bench_fig1_local_read.cc.o.d"
  "bench_fig1_local_read"
  "bench_fig1_local_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_local_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
