/**
 * @file
 * Ablation: annex management policy under a real workload.
 *
 * §3.4 weighs a single reloaded annex register against a hashed
 * table of registers and concludes there is "no clear performance
 * advantage" to the table — while the table is synonym-safe by
 * construction. This bench runs EM3D's communication-heavy versions
 * under both policies and reports end-to-end time per edge.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "em3d/em3d.hh"
#include "probes/table.hh"
#include "splitc/config.hh"

using namespace t3dsim;
using splitc::AnnexPolicy;

namespace
{

double
runWith(em3d::Version version, AnnexPolicy policy, double remote)
{
    em3d::Config cfg;
    cfg.nodesPerPe = 100;
    cfg.degree = 8;
    cfg.remoteFraction = remote;
    splitc::SplitcConfig sc;
    sc.annexPolicy = policy;
    return em3d::run(cfg, version, 8, sc).usPerEdge;
}

} // namespace

int
main()
{
    std::cout << "Ablation: annex policy under EM3D (Sec. 3.4: no "
                 "clear performance advantage)\n";

    probes::Table t({"version / % remote", "single register (us/edge)",
                     "hashed table (us/edge)", "ratio"});
    for (em3d::Version v :
         {em3d::Version::Bundle, em3d::Version::Get,
          em3d::Version::Put}) {
        for (double remote : {0.3, 0.8}) {
            const double single =
                runWith(v, AnnexPolicy::SingleReload, remote);
            const double hashed =
                runWith(v, AnnexPolicy::HashedTable, remote);
            std::string label = std::string(em3d::versionName(v)) +
                " / " + std::to_string(int(remote * 100)) + "%";
            char a[32], b[32], r[32];
            std::snprintf(a, sizeof(a), "%.3f", single);
            std::snprintf(b, sizeof(b), "%.3f", hashed);
            std::snprintf(r, sizeof(r), "%.2f", single / hashed);
            t.addRow(label, a, b, r);
        }
    }
    t.print();

    std::cout << "expected: ratios within ~15% of 1.0 either way — "
                 "the table's lookup eats its savings, reproducing "
                 "the paper's conclusion that one register suffices.\n";
    return 0;
}
