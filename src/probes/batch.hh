/**
 * @file
 * Shard-local counter batching for the host-parallel scheduler
 * (DESIGN.md §9, docs/OBSERVABILITY.md "Batched flushes").
 *
 * With counters on and more than one shard, two bump paths would
 * otherwise cross threads:
 *
 *  - a requester's in-window write timing runs the *destination*
 *    node's per-requester DRAM channel, whose T3D_COUNT sites bump
 *    the destination's record from the requester's thread;
 *  - Machine::observeTransit mutates the machine-wide torus route
 *    tallies (per-dimension and per-link traversal counts).
 *
 * Both are pure commutative sums, so the fix is accumulation, not
 * locking: each channel redirects its bumps into a channel-local
 * delta record registered with the touching shard's CounterBatch, and
 * each transit appends a DeferredRoute (its (src, dst) pair plus, on
 * traced runs, the source clock for replayed samples). The controller
 * flushes every shard's batch once per window, serially, inside the
 * existing merge barrier — adding deltas into the real per-node
 * records and replaying routes into the torus tallies. Counter bumps
 * still never read or advance a Clock, so batching preserves the
 * observability invariant (counters on == counters off, bit-identical
 * timing) and the flushed totals equal the sequential run's exactly.
 */

#ifndef T3DSIM_PROBES_BATCH_HH
#define T3DSIM_PROBES_BATCH_HH

#include <utility>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::probes
{

struct PerfCounters;

/** One channel's pending counter delta and where it flushes to. */
struct ChannelDelta
{
    /** Channel-local accumulation record (single writer: the
     *  requester's shard thread). */
    PerfCounters *delta = nullptr;

    /** The destination node's real record (null only if counting is
     *  somehow off; flush then just drops the delta). */
    PerfCounters *target = nullptr;

    /** The channel's registered flag, cleared at flush so the next
     *  window's first touch re-registers it. */
    bool *registered = nullptr;
};

/** One Machine::observeTransit route recording, deferred to the
 *  serial window flush. */
struct DeferredRoute
{
    PeId src = 0;
    PeId dst = 0;

    /** Source-PE clock at observation time. Meaningful only on traced
     *  runs: the replayed torus counter samples are stamped with it,
     *  so a deferred route traces at the same simulated time as a
     *  direct one. Zero when tracing is off. */
    Cycles when = 0;
};

/**
 * One shard's per-window batch. Owned by the shard; written only by
 * its worker thread while running, drained only by the controller at
 * the serial window merge (the park/dispatch handshakes order the
 * accesses).
 */
struct CounterBatch
{
    /** Channels this shard touched since the last flush. */
    std::vector<ChannelDelta> channels;

    /** Deferred Machine::observeTransit route recordings. */
    std::vector<DeferredRoute> routes;
};

namespace detail
{
/** The batch installed on this thread (null on the controller, on
 *  sequential runs, and on single-shard parallel runs). */
inline thread_local CounterBatch *tlsCounterBatch = nullptr;
} // namespace detail

/** The calling thread's installed batch, or null. */
inline CounterBatch *
currentCounterBatch()
{
    return detail::tlsCounterBatch;
}

/** Install @p batch (or null) as this thread's counter batch. */
inline void
installCounterBatch(CounterBatch *batch)
{
    detail::tlsCounterBatch = batch;
}

} // namespace t3dsim::probes

#endif // T3DSIM_PROBES_BATCH_HH
