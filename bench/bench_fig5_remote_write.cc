/**
 * @file
 * Figure 5: blocking remote write latency vs. stride.
 *
 * A blocking write is a store + MB (to push it out of the write
 * buffer — the §4.3 status-bit subtlety) + a poll of the
 * outstanding-write status bit: ~850 ns (130 cycles). The Split-C
 * write adds annex set-up and pointer overhead: ~981 ns (147 cy).
 */

#include <iostream>

#include "alpha/address.hh"
#include "machine/machine.hh"
#include "probes/stride.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

#include "profile.hh"

using namespace t3dsim;
using shell::ReadMode;

int
main()
{
    std::cout << "Figure 5: blocking remote write latency (adjacent "
                 "node, ns per write)\n";

    machine::Machine m(machine::MachineConfig::t3d(2));
    auto &n0 = m.node(0);
    n0.shell().setAnnex(1, {1, ReadMode::Uncached});
    const Addr base = alpha::makeAnnexedVa(1, 0);

    auto points = probes::strideProbe(
        [&](Addr a) {
            n0.storeU64(a, 1);
            n0.waitRemoteWrites();
        },
        [&] { return n0.clock().now(); },
        base, 4 * KiB, 4 * MiB);
    bench::printProfile("blocking remote writes", points);

    // Split-C write with per-access annex set-up.
    machine::Machine m2(machine::MachineConfig::t3d(3));
    double splitc_ns = 0;
    splitc::runSpmd(m2, [&](splitc::Proc &p) -> splitc::ProcTask {
        if (p.pe() != 0)
            co_return;
        p.writeU64(splitc::GlobalAddr::make(1, 0), 0); // warm
        p.writeU64(splitc::GlobalAddr::make(2, 0), 0);
        const int n = 64;
        const Cycles t0 = p.now();
        for (int i = 0; i < n; ++i)
            p.writeU64(splitc::GlobalAddr::make(1 + (i % 2),
                                                64 + 8 * (i % 8)),
                       i);
        splitc_ns = cyclesToNs(p.now() - t0) / n;
        co_return;
    });

    auto at = [&](std::uint64_t a, std::uint64_t s) {
        const auto *p = probes::findPoint(points, a, s);
        return p ? p->avgNsPerOp : -1.0;
    };

    probes::Table key({"landmark", "model (ns)", "paper (Sec. 4.3)"});
    key.addRow("blocking write (64K/32)", at(64 * KiB, 32),
               "850 ns (130 cy)");
    key.addRow("off-page (1M/16K)", at(1 * MiB, 16 * KiB),
               "higher (remote DRAM page miss)");
    key.addRow("Split-C write (annex + overhead)", splitc_ns,
               "981 ns (147 cy)");
    key.print();

    return 0;
}
