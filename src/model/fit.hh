/**
 * @file
 * Least-squares fitting for the analytical model layer
 * (docs/MODEL.md). Two shapes cover every primitive the paper
 * characterizes:
 *
 *  - LinearFit:  y = a + b·x        (startup + per-word/byte slope:
 *    reads, writes, prefetch groups, BLT size sweeps, message runs)
 *  - ScalingFit: y = a + b·t(P)     with t drawn from a small
 *    Extra-P-style term grid {1, log2 P, sqrt P, P, P·log2 P, 1/P}
 *    (barrier fan-in, per-PE counter-signature growth across torus
 *    sizes)
 *
 * Every fit carries its residual diagnostics (r², median/max
 * absolute relative error) so the validator can refuse to
 * extrapolate from a fit that never explained its own sweep.
 */

#ifndef T3DSIM_MODEL_FIT_HH
#define T3DSIM_MODEL_FIT_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace t3dsim::model
{

/** One (x, y) observation of a sweep. */
struct FitPoint
{
    double x = 0;
    double y = 0;
};

/** Residual diagnostics of a completed fit over its own points. */
struct FitQuality
{
    std::size_t points = 0;

    /** Coefficient of determination; 1 when the fit is exact. */
    double r2 = 0;

    /** Median of |predicted - observed| / max(|observed|, 1). */
    double medianRelErr = 0;

    /** Worst-case of the same relative residual. */
    double maxRelErr = 0;
};

/** y = intercept + slope · x. */
struct LinearFit
{
    double intercept = 0;
    double slope = 0;
    FitQuality quality{};

    double eval(double x) const { return intercept + slope * x; }
};

/** The Extra-P-style term grid for scaling fits. */
enum class ScalingTerm
{
    Constant, ///< t(P) = 0 (pure intercept)
    Log2,     ///< t(P) = log2 P
    Sqrt,     ///< t(P) = sqrt P
    Linear,   ///< t(P) = P
    PLogP,    ///< t(P) = P · log2 P
    Inverse,  ///< t(P) = 1 / P
};

const char *scalingTermName(ScalingTerm t);

/** Term by name ("log2" …); returns false on unknown names. */
bool scalingTermFromName(const std::string &name, ScalingTerm &out);

/** t(P) for one term. */
double scalingTermValue(ScalingTerm t, double p);

/** y = intercept + slope · t(P), with the chosen term recorded. */
struct ScalingFit
{
    ScalingTerm term = ScalingTerm::Constant;
    double intercept = 0;
    double slope = 0;
    FitQuality quality{};

    double
    eval(double p) const
    {
        return intercept + slope * scalingTermValue(term, p);
    }
};

/**
 * Ordinary least squares of y on x. With fewer than two distinct x
 * values the slope is 0 and the intercept the mean.
 */
LinearFit fitLinear(const std::vector<FitPoint> &points);

/**
 * Least squares of y on t(P) for every term in the grid; returns
 * the term with the smallest sum of squared residuals, breaking
 * ties toward the simpler (earlier-listed) term. Points use x = P.
 */
ScalingFit fitScaling(const std::vector<FitPoint> &points);

/** Residual diagnostics of an arbitrary predictor over points. */
template <typename Fn>
FitQuality
residuals(const std::vector<FitPoint> &points, Fn &&predict)
{
    std::vector<double> rel;
    rel.reserve(points.size());
    FitQuality q;
    q.points = points.size();
    double mean = 0;
    for (const FitPoint &p : points)
        mean += p.y;
    mean = points.empty() ? 0 : mean / points.size();
    double ssRes = 0, ssTot = 0;
    for (const FitPoint &p : points) {
        const double e = predict(p.x) - p.y;
        ssRes += e * e;
        ssTot += (p.y - mean) * (p.y - mean);
        const double denom = p.y < 0 ? -p.y : p.y;
        rel.push_back((e < 0 ? -e : e) / (denom > 1 ? denom : 1));
    }
    q.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot : (ssRes == 0 ? 1.0 : 0.0);
    if (!rel.empty()) {
        std::vector<double> sorted = rel;
        std::sort(sorted.begin(), sorted.end());
        q.medianRelErr = sorted[sorted.size() / 2];
        q.maxRelErr = sorted.back();
    }
    return q;
}

/** Median of |pred-obs|/|obs| over generic prediction pairs. */
double medianAbsRelError(const std::vector<double> &predicted,
                         const std::vector<double> &observed);

/** Residual diagnostics over generic prediction pairs. */
FitQuality qualityFromPairs(const std::vector<double> &predicted,
                            const std::vector<double> &observed);

/**
 * Multi-feature ordinary least squares without intercept:
 * y[i] ≈ Σ_j beta[j] · rows[i][j]. Solves the normal equations by
 * Gaussian elimination with partial pivoting — feature counts here
 * are tiny (a fit group prices at most a handful of counters).
 *
 * @return false (beta zeroed) when the system is singular, e.g. a
 *         feature never varies across the pooled sweep points.
 */
bool solveLeastSquares(const std::vector<std::vector<double>> &rows,
                       const std::vector<double> &y,
                       std::vector<double> &beta);

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_FIT_HH
