/**
 * @file
 * Tests of the QCD lattice relaxation app (docs/APPS.md): every rung
 * of the variant ladder must reproduce the sequential reference
 * sweep bitwise — including non-power-of-two PE counts, where the
 * process grid is non-cubic and some torus dimensions degenerate to
 * 1 or 2 (self- and double-neighbour wrap) — plus counter capture.
 */

#include <gtest/gtest.h>

#include "apps/qcd/qcd.hh"
#include "machine/machine.hh"

namespace
{

using namespace t3dsim;
using apps::Variant;
using apps::qcd::Config;
using apps::qcd::Plan;
using apps::qcd::Result;

Config
smallConfig()
{
    Config cfg;
    cfg.lx = cfg.ly = cfg.lz = cfg.lt = 2;
    cfg.sweeps = 2;
    return cfg;
}

TEST(QcdPlan, NeighbourTableIsConsistent)
{
    machine::Machine m(machine::MachineConfig::t3d(6));
    const Plan plan = Plan::build(m, smallConfig());
    ASSERT_EQ(plan.pes, 6u);
    EXPECT_EQ(plan.px * plan.py * plan.pz, 6u);
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        // Walking +d then -d from any PE returns home.
        for (std::uint32_t f = 0; f < Plan::numFaces; f += 2) {
            EXPECT_EQ(plan.nbrOf[plan.nbrOf[pe][f]][f + 1], pe);
            EXPECT_EQ(plan.nbrOf[plan.nbrOf[pe][f + 1]][f], pe);
        }
    }
    EXPECT_EQ(plan.nsites, 16u);
    EXPECT_EQ(plan.haloTotal, 6u * 8u);
}

TEST(QcdRun, AllVariantsMatchReferenceBitwise)
{
    const Config cfg = smallConfig();
    std::uint64_t checksum = 0;
    bool first = true;
    for (Variant v : apps::allVariants) {
        const Result r = apps::qcd::run(cfg, v, 6);
        EXPECT_TRUE(r.converged) << apps::variantName(v);
        EXPECT_GT(r.elapsed, 0u) << apps::variantName(v);
        if (first) {
            checksum = r.checksum;
            first = false;
        } else {
            EXPECT_EQ(r.checksum, checksum) << apps::variantName(v);
        }
    }
}

TEST(QcdRun, ConvergesAtTwelvePes)
{
    const Result r = apps::qcd::run(smallConfig(), Variant::Get, 12);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.sitesTotal, 12u * 16u);
}

TEST(QcdRun, LadderImprovesOnBlockingRead)
{
    Config cfg = smallConfig();
    cfg.lx = cfg.ly = cfg.lz = cfg.lt = 4;
    cfg.sweeps = 1;
    const Result naive =
        apps::qcd::run(cfg, Variant::BlockingRead, 8);
    const Result get = apps::qcd::run(cfg, Variant::Get, 8);
    EXPECT_LT(get.elapsed, naive.elapsed);
}

TEST(QcdRun, CountersCaptureTheExchange)
{
    machine::MachineConfig mc = machine::MachineConfig::t3d(6);
    mc.observe.counters = true;

    const Result get = apps::qcd::run(smallConfig(), Variant::Get, mc);
    ASSERT_TRUE(get.countersValid);
    EXPECT_GT(get.counters.prefetchIssues, 0u);
    EXPECT_GT(get.counters.barriers, 0u);

    const Result off = apps::qcd::run(smallConfig(), Variant::Get, 6);
    EXPECT_FALSE(off.countersValid);
    // Observability must not perturb the simulated timing.
    EXPECT_EQ(off.elapsed, get.elapsed);
    EXPECT_EQ(off.checksum, get.checksum);
}

TEST(QcdRun, BulkVariantUsesBulkMachinery)
{
    machine::MachineConfig mc = machine::MachineConfig::t3d(6);
    mc.observe.counters = true;
    Config cfg = smallConfig();
    cfg.sweeps = 1;
    const Result r = apps::qcd::run(cfg, Variant::Bulk, mc);
    ASSERT_TRUE(r.countersValid);
    // Small faces ride the prefetch pipeline, large ones the BLT;
    // either way the bulk path must not fall back to per-word reads.
    EXPECT_GT(r.counters.prefetchIssues + r.counters.bltTransfers, 0u);
}

} // namespace
