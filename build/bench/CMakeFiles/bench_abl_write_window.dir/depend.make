# Empty dependencies file for bench_abl_write_window.
# This may be replaced when dependencies are built.
