/**
 * @file
 * Alpha byte-manipulation instructions (§1.2, §4.5).
 *
 * The 21064 has no byte loads/stores; sub-word data is handled with
 * register-to-register extract / insert / mask operations. These are
 * modeled as pure functions; the core charges one cycle per use.
 * Their existence is why global-pointer arithmetic is fast (§3.3) and
 * their *non-atomicity* is why shared byte writes are broken (§4.5):
 * a byte store compiles to load / insert+mask / store, and concurrent
 * writers to different bytes of the same word clobber each other.
 */

#ifndef T3DSIM_ALPHA_BYTE_OPS_HH
#define T3DSIM_ALPHA_BYTE_OPS_HH

#include <cstdint>

namespace t3dsim::alpha
{

/** EXTBL: extract byte @p idx of @p value into the low byte. */
constexpr std::uint64_t
extbl(std::uint64_t value, unsigned idx)
{
    return (value >> ((idx & 7) * 8)) & 0xff;
}

/** EXTWL: extract the 16-bit word starting at byte @p idx. */
constexpr std::uint64_t
extwl(std::uint64_t value, unsigned idx)
{
    return (value >> ((idx & 7) * 8)) & 0xffff;
}

/** INSBL: position the low byte of @p value at byte @p idx. */
constexpr std::uint64_t
insbl(std::uint64_t value, unsigned idx)
{
    return (value & 0xff) << ((idx & 7) * 8);
}

/** MSKBL: clear byte @p idx of @p value. */
constexpr std::uint64_t
mskbl(std::uint64_t value, unsigned idx)
{
    return value & ~(std::uint64_t{0xff} << ((idx & 7) * 8));
}

/** ZAP: clear every byte of @p value whose bit is set in @p mask. */
constexpr std::uint64_t
zap(std::uint64_t value, unsigned mask)
{
    std::uint64_t result = value;
    for (unsigned i = 0; i < 8; ++i) {
        if (mask & (1u << i))
            result &= ~(std::uint64_t{0xff} << (i * 8));
    }
    return result;
}

/** ZAPNOT: keep only the bytes whose bit is set in @p mask. */
constexpr std::uint64_t
zapnot(std::uint64_t value, unsigned mask)
{
    return value & ~zap(~std::uint64_t{0}, mask);
}

/**
 * Compose a read-modify-write byte update of @p word: the sequence a
 * compiler emits for a byte store (EXTBL-free path: MSKBL + INSBL).
 */
constexpr std::uint64_t
mergeByte(std::uint64_t word, unsigned idx, std::uint8_t byte)
{
    return mskbl(word, idx) | insbl(byte, idx);
}

} // namespace t3dsim::alpha

#endif // T3DSIM_ALPHA_BYTE_OPS_HH
