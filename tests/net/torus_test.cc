/**
 * @file
 * Unit tests for the 3-D torus topology and routing model.
 */

#include <gtest/gtest.h>

#include "net/torus.hh"
#include "sim/logging.hh"

namespace
{

using t3dsim::net::Coord;
using t3dsim::net::Torus;

TEST(Torus, CoordRoundTrip)
{
    Torus t(4, 2, 2);
    for (t3dsim::PeId pe = 0; pe < t.numPes(); ++pe)
        EXPECT_EQ(t.peAt(t.coordOf(pe)), pe);
}

TEST(Torus, XVariesFastest)
{
    Torus t(4, 2, 2);
    EXPECT_EQ(t.coordOf(0), (Coord{0, 0, 0}));
    EXPECT_EQ(t.coordOf(1), (Coord{1, 0, 0}));
    EXPECT_EQ(t.coordOf(4), (Coord{0, 1, 0}));
    EXPECT_EQ(t.coordOf(8), (Coord{0, 0, 1}));
}

TEST(Torus, AdjacentNodesAreOneHop)
{
    Torus t(4, 4, 2);
    EXPECT_EQ(t.hops(0, 1), 1u);
    EXPECT_EQ(t.hops(0, 4), 1u);  // +y
    EXPECT_EQ(t.hops(0, 16), 1u); // +z
}

TEST(Torus, WraparoundTakesShortWay)
{
    Torus t(8, 1, 1);
    EXPECT_EQ(t.hops(0, 7), 1u) << "ring wraps";
    EXPECT_EQ(t.hops(0, 4), 4u) << "diameter";
    EXPECT_EQ(t.hops(1, 6), 3u);
}

TEST(Torus, HopsAreSymmetric)
{
    Torus t(4, 2, 4);
    for (t3dsim::PeId a = 0; a < t.numPes(); ++a) {
        for (t3dsim::PeId b = 0; b < t.numPes(); ++b)
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
}

TEST(Torus, SelfIsZeroHops)
{
    Torus t(4, 4, 2);
    for (t3dsim::PeId pe = 0; pe < t.numPes(); ++pe)
        EXPECT_EQ(t.hops(pe, pe), 0u);
}

TEST(Torus, TransitCyclesScaleWithHops)
{
    Torus t(8, 1, 1, /*hop_cycles=*/3);
    EXPECT_EQ(t.transitCycles(0, 4), 12u);
}

TEST(Torus, ForPeCountFactorsCubically)
{
    auto t = Torus::forPeCount(32);
    EXPECT_EQ(t.numPes(), 32u);
    // 32 = 4 x 4 x 2 is the most cubic factorization.
    EXPECT_EQ(t.dimZ(), 2u);
    EXPECT_EQ(t.dimY(), 4u);
    EXPECT_EQ(t.dimX(), 4u);

    auto t64 = Torus::forPeCount(64);
    EXPECT_EQ(t64.dimX(), 4u);
    EXPECT_EQ(t64.dimY(), 4u);
    EXPECT_EQ(t64.dimZ(), 4u);
}

TEST(Torus, ForPeCountHandlesPrimes)
{
    auto t = Torus::forPeCount(7);
    EXPECT_EQ(t.numPes(), 7u);
}

TEST(Torus, TriangleInequality)
{
    Torus t(4, 4, 2);
    for (t3dsim::PeId a = 0; a < t.numPes(); ++a) {
        for (t3dsim::PeId b = 0; b < t.numPes(); ++b) {
            for (t3dsim::PeId c = 0; c < t.numPes(); ++c) {
                EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
            }
        }
    }
}

} // namespace
