/**
 * @file
 * The 16-entry binding prefetch queue (§5.2).
 *
 * The Alpha FETCH hint is interpreted by the shell as a *binding*
 * prefetch: the remote word is fetched immediately (its value is
 * captured at service time, not at pop time) into an off-chip FIFO
 * that the processor pops by loading a memory-mapped address.
 *
 * Modeled cost structure, matching the paper's breakdown:
 *   issue 4 cycles, MB 4 cycles (charged by the caller when fewer
 *   than 4 prefetches are outstanding), ~80-cycle round trip,
 *   23-cycle pop. Back-to-back prefetches pipeline through the
 *   injection channel and the remote DRAM, which is what makes a
 *   group of 16 cost ~31 cycles per element.
 */

#ifndef T3DSIM_SHELL_PREFETCH_HH
#define T3DSIM_SHELL_PREFETCH_HH

#include <cstdint>

#include "alpha/core.hh"
#include "probes/counters.hh"
#include "probes/trace.hh"
#include "shell/config.hh"
#include "shell/ports.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::shell
{

/** Per-node binding prefetch FIFO. */
class PrefetchQueue
{
  public:
    PrefetchQueue(const ShellConfig &config, PeId local_pe,
                  MachinePort &machine, alpha::AlphaCore &core);

    /**
     * Issue a binding prefetch of the quadword at @p offset on node
     * @p dst. Charges the issue cost to the local clock. Issuing
     * past the hardware slots is legal-but-extreme traffic: the real
     * hardware would corrupt the FIFO, so the model idealizes the
     * overflow as a DRAM-side spill buffer — the entry pays
     * prefetchSpillCycles extra at issue and again at pop, and the
     * under-capacity cost structure is untouched.
     */
    void issue(PeId dst, Addr offset);

    /**
     * Pop the queue head: stalls until the head's data has arrived,
     * then charges the off-chip pop cost.
     */
    std::uint64_t pop();

    /** Entries issued and not yet popped. */
    unsigned outstanding() const
    {
        return static_cast<unsigned>(_fifo.size());
    }

    bool full() const { return outstanding() >= _config.prefetchSlots; }
    bool empty() const { return _fifo.empty(); }

    /**
     * True if the caller must MB before popping (fewer than the
     * write-buffer-flushing threshold of requests outstanding, §5.2).
     */
    bool needsMbBeforePop() const
    {
        return outstanding() < _config.prefetchMbThreshold;
    }

    std::uint64_t issued() const { return _issued; }
    std::uint64_t popped() const { return _popped; }

    /** Prefetches that overflowed into the spill buffer. */
    std::uint64_t spills() const { return _spills; }

    /** Attach the local node's counters and the machine trace sink. */
    void
    setObservability(probes::PerfCounters *ctr, probes::TraceSink *trace)
    {
        _ctr = ctr;
        _trace = trace;
    }

  private:
    struct Slot
    {
        Cycles arrival;
        std::uint64_t data;

        /** Issued past the hardware slots: pays the spill cost at
         *  pop as well as at issue. */
        bool spilled = false;
    };

    const ShellConfig &_config;
    PeId _localPe;
    MachinePort &_machine;
    alpha::AlphaCore &_core;

    sim::RingBuffer<Slot> _fifo;
    Cycles _injectFree = 0;
    std::uint64_t _issued = 0;
    std::uint64_t _popped = 0;
    std::uint64_t _spills = 0;

    probes::PerfCounters *_ctr = nullptr;
    probes::TraceSink *_trace = nullptr;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_PREFETCH_HH
