/**
 * @file
 * JobService contract: 64+ concurrent jobs answer correctly across a
 * worker pool, repeats are served from the cache without
 * re-simulating (leader/follower coalescing), cached answers are
 * byte-identical to standalone execution, and malformed requests get
 * typed error responses.
 */

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/primitives.hh"
#include "taskgraph/service.hh"

using namespace t3dsim;
using namespace t3dsim::taskgraph;

namespace
{

/** Thread-safe response collector keyed by submit tag. */
struct Collector
{
    std::mutex m;
    std::map<std::uint64_t, std::string> responses;

    JobService::ResponseFn
    fn()
    {
        return [this](std::uint64_t tag, const std::string &line) {
            std::lock_guard<std::mutex> lock(m);
            responses[tag] = line;
        };
    }
};

std::string
jobLine(const std::string &id, const std::string &mode, int cycles,
        int host_threads = -1)
{
    return "{\"id\": \"" + id + "\", \"mode\": \"" + mode +
           "\", \"pes\": 4, \"host_threads\": " +
           std::to_string(host_threads) +
           ", \"graph\": {\"tasks\": ["
           "{\"id\": \"a\", \"cycles\": " +
           std::to_string(cycles) +
           "}, {\"id\": \"b\", \"cycles\": 70}],"
           " \"edges\": [{\"src\": \"a\", \"dst\": \"b\","
           " \"bytes\": 256}]}}";
}

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

/** Everything past the volatile cache field: the executed payload. */
std::string
payloadOf(const std::string &response)
{
    const std::size_t at = response.find("\"mode\":");
    EXPECT_NE(at, std::string::npos) << response;
    return at == std::string::npos ? std::string{} : response.substr(at);
}

} // namespace

TEST(JobService, AnswersConcurrentBatchWithCoalescedCache)
{
    ServiceOptions opt;
    opt.workers = 8;
    opt.model = model::defaultCostModel();
    Collector out;
    JobService service(opt, out.fn());

    // 64 simulate jobs over 8 distinct graphs (8 duplicates each) and
    // 16 predict jobs over 4 distinct graphs, all in flight at once.
    constexpr int kSimJobs = 64, kSimUnique = 8;
    constexpr int kPredJobs = 16, kPredUnique = 4;
    for (int i = 0; i < kSimJobs; ++i)
        service.submit(jobLine("sim" + std::to_string(i), "simulate",
                               100 + i % kSimUnique),
                       static_cast<std::uint64_t>(i));
    for (int i = 0; i < kPredJobs; ++i)
        service.submit(jobLine("pred" + std::to_string(i), "predict",
                               100 + i % kPredUnique),
                       static_cast<std::uint64_t>(1000 + i));
    service.drain();

    ASSERT_EQ(out.responses.size(),
              static_cast<std::size_t>(kSimJobs + kPredJobs));
    for (const auto &[tag, line] : out.responses)
        EXPECT_TRUE(contains(line, "\"ok\":true")) << line;

    // Duplicates answered byte-identically to their leader.
    std::map<std::string, std::string> byKey;
    for (int i = 0; i < kSimJobs; ++i) {
        const std::string key = "s" + std::to_string(i % kSimUnique);
        const std::string payload =
            payloadOf(out.responses[static_cast<std::uint64_t>(i)]);
        auto [it, fresh] = byKey.emplace(key, payload);
        if (!fresh)
            EXPECT_EQ(it->second, payload) << key;
    }

    const JobService::Stats stats = service.stats();
    EXPECT_EQ(stats.jobs,
              static_cast<std::uint64_t>(kSimJobs + kPredJobs));
    EXPECT_EQ(stats.errors, 0u);
    // Exactly one execution per distinct (graph, mode); every other
    // job was a cache hit.
    EXPECT_EQ(stats.simulations, static_cast<std::uint64_t>(kSimUnique));
    EXPECT_EQ(stats.predictions,
              static_cast<std::uint64_t>(kPredUnique));
    EXPECT_EQ(stats.cacheHits,
              static_cast<std::uint64_t>(kSimJobs - kSimUnique +
                                         kPredJobs - kPredUnique));
}

TEST(JobService, RepeatBatchShortCircuitsWithoutResimulating)
{
    ServiceOptions opt;
    opt.workers = 4;
    opt.model = model::defaultCostModel();
    Collector out;
    JobService service(opt, out.fn());

    service.submit(jobLine("first", "simulate", 300), 1);
    service.drain();
    const JobService::Stats before = service.stats();
    EXPECT_EQ(before.simulations, 1u);

    for (int i = 0; i < 16; ++i)
        service.submit(jobLine("rep" + std::to_string(i), "simulate", 300),
                       static_cast<std::uint64_t>(10 + i));
    service.drain();

    const JobService::Stats after = service.stats();
    EXPECT_EQ(after.simulations, before.simulations);  // no re-runs
    EXPECT_EQ(after.cacheHits, before.cacheHits + 16);
    for (int i = 0; i < 16; ++i) {
        const std::string &line =
            out.responses[static_cast<std::uint64_t>(10 + i)];
        EXPECT_TRUE(contains(line, "\"cache\":\"hit\"")) << line;
        EXPECT_EQ(payloadOf(line), payloadOf(out.responses[1]));
    }
}

TEST(JobService, CacheIsHostThreadInvariant)
{
    ServiceOptions opt;
    opt.workers = 2;
    opt.model = model::defaultCostModel();
    Collector out;
    JobService service(opt, out.fn());

    // Same graph at different host thread counts: one simulation,
    // identical payloads — simulated results never depend on the
    // host scheduler.
    service.submit(jobLine("seq", "simulate", 42, -1), 1);
    service.drain();
    service.submit(jobLine("par", "simulate", 42, 4), 2);
    service.drain();

    EXPECT_EQ(service.stats().simulations, 1u);
    EXPECT_EQ(payloadOf(out.responses[1]), payloadOf(out.responses[2]));
    EXPECT_TRUE(contains(out.responses[2], "\"cache\":\"hit\""));
}

TEST(JobService, MatchesStandaloneExecution)
{
    const std::string line = jobLine("solo", "simulate", 77);
    const std::string standalone =
        JobService::runStandalone(line, model::defaultCostModel(), "");

    ServiceOptions opt;
    opt.workers = 2;
    opt.model = model::defaultCostModel();
    Collector out;
    JobService service(opt, out.fn());
    service.submit(line, 1);
    service.drain();

    EXPECT_EQ(payloadOf(standalone), payloadOf(out.responses[1]));
    EXPECT_TRUE(contains(standalone, "\"makespan_cycles\":"));
    EXPECT_TRUE(contains(standalone, "\"finish_hash\":\"0x"));
    EXPECT_TRUE(contains(standalone, "\"checksum\":\"0x"));
}

TEST(JobService, RejectsMalformedRequests)
{
    ServiceOptions opt;
    opt.workers = 2;
    opt.model = model::defaultCostModel();
    Collector out;
    JobService service(opt, out.fn());

    service.submit("this is not json", 1);
    service.submit("{\"id\": \"nograph\", \"mode\": \"simulate\"}", 2);
    service.submit("{\"id\": \"badmode\", \"mode\": \"guess\","
                   " \"graph\": {\"tasks\": [{\"id\": \"a\"}]}}",
                   3);
    service.submit("{\"id\": \"cyc\", \"graph\": {\"tasks\":"
                   " [{\"id\": \"a\"}, {\"id\": \"b\"}], \"edges\":"
                   " [{\"src\": \"a\", \"dst\": \"b\"},"
                   "  {\"src\": \"b\", \"dst\": \"a\"}]}}",
                   4);
    service.drain();

    EXPECT_TRUE(contains(out.responses[1], "\"ok\":false"));
    EXPECT_TRUE(contains(out.responses[1], "bad JSON"));
    EXPECT_TRUE(contains(out.responses[2], "missing 'graph'"));
    EXPECT_TRUE(contains(out.responses[3], "unknown mode 'guess'"));
    EXPECT_TRUE(contains(out.responses[4], "cycle through task"));
    EXPECT_EQ(service.stats().errors, 4u);
    EXPECT_EQ(service.stats().simulations, 0u);
}
