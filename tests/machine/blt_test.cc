/**
 * @file
 * Integration tests of the block transfer engine (§6.2): 180 us
 * startup, 140 MB/s streaming reads, strided transfers, cache
 * invalidation of DMA destinations.
 */

#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace
{

using namespace t3dsim;
using machine::Machine;
using machine::MachineConfig;

struct BltTest : ::testing::Test
{
    Machine m{MachineConfig::t3d(8)};
    machine::Node &n0 = m.node(0);
    machine::Node &n1 = m.node(1);
};

TEST_F(BltTest, StartupChargesProcessor180us)
{
    const Cycles t0 = n0.clock().now();
    n0.shell().blt().startRead(1, 0x1000, 0x1000, 4096);
    const double us = cyclesToUs(n0.clock().now() - t0);
    EXPECT_NEAR(us, 180.0, 2.0) << "§6.3: BLT initiation is 180 us";
}

TEST_F(BltTest, ReadMovesData)
{
    for (int i = 0; i < 512; ++i)
        n1.storage().writeU64(0x4000 + 8 * i, i * 3);
    const Cycles done =
        n0.shell().blt().startRead(1, 0x4000, 0x8000, 4096);
    n0.shell().blt().wait(done);
    for (int i = 0; i < 512; ++i)
        EXPECT_EQ(n0.storage().readU64(0x8000 + 8 * i),
                  std::uint64_t(i) * 3);
}

TEST_F(BltTest, WriteMovesData)
{
    for (int i = 0; i < 128; ++i)
        n0.storage().writeU64(0x4000 + 8 * i, i + 7);
    const Cycles done =
        n0.shell().blt().startWrite(1, 0x9000, 0x4000, 1024);
    n0.shell().blt().wait(done);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(n1.storage().readU64(0x9000 + 8 * i),
                  std::uint64_t(i) + 7);
}

TEST_F(BltTest, LargeReadApproaches140MBps)
{
    const std::size_t bytes = 1024 * KiB;
    const Cycles t0 = n0.clock().now();
    const Cycles done = n0.shell().blt().startRead(1, 0, 0x100000,
                                                   bytes);
    n0.shell().blt().wait(done);
    const double secs = cyclesToNs(n0.clock().now() - t0) * 1e-9;
    const double mbps = (double(bytes) / 1e6) / secs;
    EXPECT_NEAR(mbps, 140.0, 12.0) << "§6.2 peak transfer rate";
}

TEST_F(BltTest, SmallTransfersDominatedByStartup)
{
    const Cycles t0 = n0.clock().now();
    const Cycles done = n0.shell().blt().startRead(1, 0, 0x100000, 128);
    n0.shell().blt().wait(done);
    const double us = cyclesToUs(n0.clock().now() - t0);
    EXPECT_GT(us, 179.0);
    EXPECT_LT(us, 185.0);
}

TEST_F(BltTest, DmaInvalidatesDestinationCacheLines)
{
    n0.storage().writeU64(0x8000, 1);
    n0.core().loadU64(0x8000); // cache the stale destination
    ASSERT_TRUE(n0.dcache().probe(0x8000));

    n1.storage().writeU64(0x4000, 42);
    const Cycles done = n0.shell().blt().startRead(1, 0x4000, 0x8000, 64);
    n0.shell().blt().wait(done);
    EXPECT_FALSE(n0.dcache().probe(0x8000));
    EXPECT_EQ(n0.core().loadU64(0x8000), 42u);
}

TEST_F(BltTest, StridedReadGathers)
{
    // Remote: every fourth word; local: packed.
    for (int i = 0; i < 16; ++i)
        n1.storage().writeU64(0x4000 + 32 * i, 1000 + i);
    const Cycles done = n0.shell().blt().startStridedRead(
        1, 0x4000, /*remote_stride=*/32, 0xa000, /*local_stride=*/8,
        /*elem_bytes=*/8, /*count=*/16);
    n0.shell().blt().wait(done);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(n0.storage().readU64(0xa000 + 8 * i),
                  1000u + unsigned(i));
}

TEST_F(BltTest, StridedWriteScatters)
{
    for (int i = 0; i < 8; ++i)
        n0.storage().writeU64(0xa000 + 8 * i, 2000 + i);
    const Cycles done = n0.shell().blt().startStridedWrite(
        1, 0x5000, /*remote_stride=*/64, 0xa000, /*local_stride=*/8, 8,
        8);
    n0.shell().blt().wait(done);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(n1.storage().readU64(0x5000 + 64 * i),
                  2000u + unsigned(i));
}

TEST_F(BltTest, TransferCountStatistic)
{
    n0.shell().blt().startRead(1, 0, 0x1000, 64);
    n0.shell().blt().startWrite(1, 0, 0x1000, 64);
    EXPECT_EQ(n0.shell().blt().transfersStarted(), 2u);
}

} // namespace
