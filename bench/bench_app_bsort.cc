/**
 * @file
 * BSP sample+radix sort sweep (docs/APPS.md): the five-rung variant
 * ladder at 32 and 256 PEs with full per-variant counter breakdowns,
 * a BLT-crossover ablation on the Bulk rung (the §6.3 story replayed
 * through an application's all-to-all instead of a microbenchmark),
 * and the sequential-vs-parallel differential. Writes
 * BENCH_app_bsort.json; exits non-zero if any run fails validation
 * or the differential diverges.
 *
 * --quick   32 PEs only, smaller keys (the CI smoke configuration).
 * --out=F   output path (default BENCH_app_bsort.json).
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app_bench.hh"
#include "apps/bsort/bsort.hh"
#include "machine/machine.hh"

using namespace t3dsim;
using apps::Variant;

namespace
{

apps::bsort::Config
benchConfig(bool quick)
{
    apps::bsort::Config cfg;
    // Full size: ~64 KiB of keys per PE's receive block at 32 PEs,
    // so the Bulk rung's per-producer runs straddle the BLT
    // crossover. Quick keeps the smoke ladder under a second.
    cfg.keysPerPe = quick ? 256 : 4096;
    return cfg;
}

appbench::LadderRow
toRow(const apps::bsort::Result &r, std::uint32_t pes)
{
    appbench::LadderRow row;
    row.variant = apps::variantName(r.variant);
    row.pes = pes;
    row.simCycles = r.elapsed;
    row.perUnit = r.usPerKey;
    row.checksum = r.checksum;
    row.valid = r.sorted;
    row.counters = r.counters;
    row.countersValid = r.countersValid;
    return row;
}

/** One crossover-ablation measurement on the Bulk rung. */
struct CrossoverRow
{
    std::uint32_t crossoverBytes = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t bltTransfers = 0;
    std::uint64_t prefetchIssues = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_app_bsort.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
    }

    const apps::bsort::Config cfg = benchConfig(quick);
    const std::vector<std::uint32_t> pe_counts =
        quick ? std::vector<std::uint32_t>{32}
              : std::vector<std::uint32_t>{32, 256};

    bool ok = true;

    // ---- Variant ladder with counters ----
    std::vector<appbench::LadderRow> ladder;
    for (std::uint32_t pes : pe_counts) {
        for (Variant v : apps::allVariants) {
            machine::MachineConfig mc = machine::MachineConfig::t3d(pes);
            mc.observe.counters = true;
            const apps::bsort::Result r = apps::bsort::run(cfg, v, mc);
            if (!r.sorted) {
                std::cerr << "FAIL: " << apps::variantName(v) << " @ "
                          << pes << " PEs did not sort\n";
                ok = false;
            }
            std::cout << "ladder " << apps::variantName(v) << " pes="
                      << pes << " sim_cycles=" << r.elapsed
                      << " us/key=" << r.usPerKey << "\n";
            ladder.push_back(toRow(r, pes));
        }
    }

    // ---- BLT-crossover ablation (Bulk rung, smallest PE count) ----
    // Sweeping SplitcConfig::bulkGetBltCrossoverBytes across the
    // per-producer run size flips the exchange between prefetch
    // pipelining and the BLT; the elapsed curve locates the real
    // crossover, to compare against the Fig. 8 microbenchmark.
    std::vector<CrossoverRow> crossover;
    {
        machine::MachineConfig mc = machine::MachineConfig::t3d(32);
        mc.observe.counters = true;
        for (std::uint32_t bytes :
             {256u, 1024u, 4096u, 7900u, 16384u, 65536u}) {
            splitc::SplitcConfig sc;
            sc.bulkGetBltCrossoverBytes = bytes;
            const apps::bsort::Result r =
                apps::bsort::run(cfg, Variant::Bulk, mc, sc);
            if (!r.sorted) {
                std::cerr << "FAIL: crossover=" << bytes
                          << " did not sort\n";
                ok = false;
            }
            CrossoverRow row;
            row.crossoverBytes = bytes;
            row.simCycles = r.elapsed;
            if (r.countersValid) {
                row.bltTransfers = r.counters.bltTransfers;
                row.prefetchIssues = r.counters.prefetchIssues;
            }
            std::cout << "crossover bytes=" << bytes
                      << " sim_cycles=" << r.elapsed
                      << " blt_transfers=" << row.bltTransfers << "\n";
            crossover.push_back(row);
        }
    }

    // ---- Sequential-vs-parallel differential ----
    bool differential_ok = true;
    for (Variant v : apps::allVariants) {
        const std::string label =
            std::string("bsort/") + apps::variantName(v);
        differential_ok &= appbench::runDifferential(
            label.c_str(),
            [&](const splitc::SplitcConfig &sc, bool counters) {
                machine::MachineConfig mc =
                    machine::MachineConfig::t3d(32);
                mc.observe.counters = counters;
                return toRow(apps::bsort::run(cfg, v, mc, sc), 32);
            });
    }
    ok &= differential_ok;
    std::cout << "differential "
              << (differential_ok ? "ok" : "DIVERGED") << "\n";

    // ---- JSON ----
    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    os.precision(17);
    os << "{\n"
       << "  \"bench\": \"app_bsort\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"config\": {\"keys_per_pe\": " << cfg.keysPerPe
       << ", \"oversample\": " << cfg.oversample
       << ", \"seed\": " << cfg.seed
       << ", \"radix_bits\": " << cfg.radixBits << "},\n";
    appbench::writeLadderJson(os, ladder, "us_per_key");
    os << ",\n  \"blt_crossover\": [\n";
    for (std::size_t i = 0; i < crossover.size(); ++i) {
        const CrossoverRow &c = crossover[i];
        os << "    {\"crossover_bytes\": " << c.crossoverBytes
           << ", \"sim_cycles\": " << c.simCycles
           << ", \"blt_transfers\": " << c.bltTransfers
           << ", \"prefetch_issues\": " << c.prefetchIssues << "}"
           << (i + 1 < crossover.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"differential\": {\"pes\": 32, \"host_threads\": [1, 2, "
          "4, 8], \"counters_modes\": 2, \"ok\": "
       << (differential_ok ? "true" : "false") << "}\n"
       << "}\n";
    if (!os) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
