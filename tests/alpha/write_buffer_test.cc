/**
 * @file
 * Unit tests for the 4-entry merging write buffer (§2.3), including
 * deferred commit — the property behind the §3.4 synonym hazard.
 */

#include <gtest/gtest.h>

#include "alpha/write_buffer.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "sim/types.hh"

namespace
{

using namespace t3dsim;
using alpha::DrainPort;
using alpha::WriteBuffer;

/** DRAM-backed drain port with deferred commit, as on a node. */
class TestPort : public DrainPort
{
  public:
    TestPort()
        : storage(Addr{1} << 32)
    {
    }

    DrainResult
    drainLine(Cycles ready, Addr pa, const std::uint8_t *,
              std::uint32_t, std::uint32_t) override
    {
        ++drains;
        auto access = dram.access(ready, pa);
        return {access.complete, true};
    }

    void
    commitLine(Addr pa, const std::uint8_t *data,
               std::uint32_t byte_mask) override
    {
        ++commits;
        for (unsigned i = 0; i < alpha::wbLineBytes; ++i) {
            if (byte_mask & (1u << i))
                storage.writeU8(pa + i, data[i]);
        }
    }

    mem::Storage storage;
    mem::DramController dram;
    int drains = 0;
    int commits = 0;
};

struct WbTest : ::testing::Test
{
    TestPort port;
    WriteBuffer wb{WriteBuffer::Config{}, port};
};

TEST_F(WbTest, AcceptCostIsIssueCycles)
{
    std::uint64_t v = 1;
    EXPECT_EQ(wb.write(0, 0x100, &v, 8), 3u);
    EXPECT_EQ(wb.occupancy(0), 1u);
}

TEST_F(WbTest, SameLineStoresMerge)
{
    std::uint64_t v = 1;
    wb.write(0, 0x100, &v, 8);
    wb.write(3, 0x108, &v, 8); // same 32-byte line, within hold-off
    EXPECT_EQ(wb.merges(), 1u);
    EXPECT_EQ(wb.occupancy(3), 1u);
}

TEST_F(WbTest, DifferentLinesTakeSlots)
{
    std::uint64_t v = 1;
    wb.write(0, 0x100, &v, 8);
    wb.write(3, 0x200, &v, 8);
    EXPECT_EQ(wb.merges(), 0u);
    EXPECT_EQ(wb.occupancy(3), 2u);
}

TEST_F(WbTest, MergeWindowExpires)
{
    std::uint64_t v = 1;
    wb.write(0, 0x100, &v, 8);
    // After the hold-off the entry has issued: same-line store gets
    // a fresh slot instead of merging.
    wb.write(20, 0x108, &v, 8);
    EXPECT_EQ(wb.merges(), 0u);
}

TEST_F(WbTest, FullBufferStalls)
{
    std::uint64_t v = 1;
    Cycles charged = 0;
    // Fill all four entries back-to-back.
    for (int i = 0; i < 4; ++i)
        charged = wb.write(Cycles(i) * 3, Addr(0x100) + 0x40 * i, &v, 8);
    EXPECT_EQ(charged, 3u) << "fourth store still unstalled";
    // Fifth store must wait for a retirement.
    charged = wb.write(12, 0x100 + 0x40 * 4, &v, 8);
    EXPECT_GT(charged, 3u);
    EXPECT_GT(wb.stallCycles(), 0u);
}

TEST_F(WbTest, DataInvisibleUntilCommit)
{
    std::uint64_t v = 0xabcd;
    wb.write(0, 0x100, &v, 8);
    // Storage must still be zero: the write sits in the buffer.
    EXPECT_EQ(port.storage.readU64(0x100), 0u);
    // Drain and advance past completion: now visible.
    Cycles done = wb.drainAll(0);
    wb.commitUpTo(done);
    EXPECT_EQ(port.storage.readU64(0x100), 0xabcdu);
    EXPECT_EQ(port.commits, 1);
}

TEST_F(WbTest, ForwardReturnsPendingBytes)
{
    std::uint64_t v = 0x1122334455667788ull;
    wb.write(0, 0x100, &v, 8);
    std::uint64_t buf = 0;
    EXPECT_TRUE(wb.forward(1, 0x100, &buf, 8));
    EXPECT_EQ(buf, v);
}

TEST_F(WbTest, ForwardIsByExactPhysicalAddress)
{
    // The §3.4 hazard in miniature: a synonym physical address does
    // NOT match the pending entry.
    std::uint64_t v = 0x42;
    wb.write(0, 0x100, &v, 8);
    std::uint64_t buf = 0;
    EXPECT_FALSE(wb.forward(1, (Addr{1} << 27) | 0x100, &buf, 8));
    EXPECT_EQ(buf, 0u);
}

TEST_F(WbTest, ForwardPartialOverlap)
{
    std::uint32_t v = 0xdeadbeef;
    wb.write(0, 0x104, &v, 4);
    std::uint64_t buf = 0;
    EXPECT_TRUE(wb.forward(1, 0x100, &buf, 8));
    EXPECT_EQ(buf, std::uint64_t{0xdeadbeef} << 32);
}

TEST_F(WbTest, HoldsLine)
{
    std::uint64_t v = 1;
    wb.write(0, 0x100, &v, 8);
    EXPECT_TRUE(wb.holdsLine(1, 0x11f));
    EXPECT_FALSE(wb.holdsLine(1, 0x120));
    Cycles done = wb.drainAll(1);
    wb.commitUpTo(done);
    EXPECT_FALSE(wb.holdsLine(done, 0x100));
}

TEST_F(WbTest, DrainAllEmptiesBuffer)
{
    std::uint64_t v = 1;
    for (int i = 0; i < 3; ++i)
        wb.write(0, Addr(0x100) + 0x40 * i, &v, 8);
    Cycles done = wb.drainAll(0);
    EXPECT_GT(done, 0u);
    wb.commitUpTo(done);
    EXPECT_EQ(wb.occupancy(done), 0u);
    EXPECT_EQ(port.commits, 3);
}

TEST_F(WbTest, SteadyStateThroughputNear35ns)
{
    // §2.3: a line-distinct store stream retires one entry per
    // ~35 ns (5.25 cycles) against a 145 ns memory.
    std::uint64_t v = 1;
    Cycles now = 0;
    // Warm up.
    for (int i = 0; i < 64; ++i)
        now += wb.write(now, Addr(0x10000) + 32 * i, &v, 8);
    const Cycles start = now;
    const int n = 256;
    for (int i = 0; i < n; ++i)
        now += wb.write(now, Addr(0x20000) + 32 * i, &v, 8);
    const double per_store = double(now - start) / n;
    EXPECT_GT(per_store, 4.0);
    EXPECT_LT(per_store, 7.5) << "expected ~5.25 cycles = 35 ns";
}

TEST_F(WbTest, MergedStreamCostsIssueOnly)
{
    // §2.3: stride-8 stores (4 per line) average ~3 cycles.
    std::uint64_t v = 1;
    Cycles now = 0;
    for (int i = 0; i < 64; ++i)
        now += wb.write(now, Addr(0x10000) + 8 * i, &v, 8);
    const Cycles start = now;
    const int n = 512;
    for (int i = 0; i < n; ++i)
        now += wb.write(now, Addr(0x20000) + 8 * i, &v, 8);
    const double per_store = double(now - start) / n;
    EXPECT_LT(per_store, 4.0) << "merged writes cost ~issue only";
}

} // namespace
