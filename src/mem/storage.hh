/**
 * @file
 * Sparse byte-accurate backing storage for one node's memory.
 *
 * Data moved by the timing model is moved for real, so correctness
 * phenomena the paper describes (write-buffer synonym staleness,
 * byte-write clobbering, incoherent cached reads) are observable in
 * tests rather than merely asserted. Storage is allocated lazily in
 * fixed-size chunks so a 128 MB node segment costs nothing until
 * touched.
 *
 * Host-performance notes: consecutive accesses overwhelmingly hit
 * the same chunk (stride probes, EM3D ghost fills, line commits), so
 * a one-entry last-chunk cache answers the chunk lookup with a tag
 * compare. Behind the cache sits a two-level directory: a flat array
 * of group pointers, each group covering groupSlots consecutive
 * chunk slots and materialized only when the first chunk in its
 * range is written. An untouched storage therefore costs one small
 * top-level array (a few cache lines for a 128 MB segment) instead
 * of a full slot directory — the flyweight property that makes
 * 64K-node machines affordable. Both levels hold atomic pointers
 * published with release semantics, which makes the lock-free
 * readBlockConcurrent() path safe for the host-parallel scheduler:
 * a worker thread on another shard may read a node's storage while
 * the owner allocates new chunks. Purely host-side: simulated timing
 * is charged by the callers and unaffected.
 *
 * The chunk size is a per-instance power of two. Small-machine nodes
 * keep the historical 64 KiB default; large tori use finer chunks so
 * a node that only ever touches its stack and a few ghost lines pays
 * KBs, not 64 KiB per touched region (see
 * machine::MachineConfig::storageChunkShift).
 */

#ifndef T3DSIM_MEM_STORAGE_HH
#define T3DSIM_MEM_STORAGE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::mem
{

/** Lazily-allocated sparse byte store. */
class Storage
{
  public:
    /** log2 of the default chunk size (64 KiB). */
    static constexpr unsigned defaultChunkShift = 16;

    /** Bytes per lazily-allocated chunk of a default-built Storage. */
    static constexpr std::size_t chunkBytes = std::size_t{1}
                                              << defaultChunkShift;

    /** Chunk slots per lazily-allocated directory group. */
    static constexpr std::size_t groupSlots = 256;

    /**
     * @param limit One-past-the-last valid byte address.
     * @param chunk_shift log2 of the chunk size; clamped to
     *        [minChunkShift, maxChunkShift].
     */
    explicit Storage(Addr limit = Addr{1} << 32,
                     unsigned chunk_shift = defaultChunkShift);

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;
    Storage(Storage &&other) noexcept;
    Storage &operator=(Storage &&other) noexcept;
    ~Storage();

    /** One-past-the-last valid byte address. */
    Addr limit() const { return _limit; }

    /** Bytes per chunk of this instance. */
    std::size_t chunkSize() const { return _chunkSize; }

    std::uint8_t readU8(Addr addr) const;
    void writeU8(Addr addr, std::uint8_t value);

    /** 32-bit little-endian access; no alignment requirement. */
    std::uint32_t readU32(Addr addr) const;
    void writeU32(Addr addr, std::uint32_t value);

    /** 64-bit little-endian access; no alignment requirement. */
    std::uint64_t readU64(Addr addr) const;
    void writeU64(Addr addr, std::uint64_t value);

    /** Copy @p len bytes out of storage into @p dst. */
    void readBlock(Addr addr, void *dst, std::size_t len) const;

    /**
     * readBlock without the one-entry cache: safe to call from a
     * host thread other than the owner's while the owner allocates
     * chunks (group and chunk pointers are published with release
     * semantics and never freed or moved once materialized).
     * Byte-level visibility of concurrently written data is the
     * caller's responsibility — the parallel scheduler only routes
     * reads here whose producing writes are ordered by simulated
     * synchronization (and therefore by the window-barrier host
     * synchronization).
     */
    void readBlockConcurrent(Addr addr, void *dst, std::size_t len) const;

    /**
     * Zero-copy peek at the backing bytes of @p addr, using the
     * concurrent (cache-free, acquire) lookup path. Sets @p span to
     * the number of contiguous bytes available from @p addr to the
     * end of its chunk, capped at @p max_len, and returns a pointer
     * to them — or nullptr if the chunk was never materialized, in
     * which case the span reads as zeros. Lets sparse scans (e.g.
     * the stress harness checksum) skip untouched chunks in O(1).
     */
    const std::uint8_t *peekSpanConcurrent(Addr addr, std::size_t max_len,
                                           std::size_t &span) const;

    /** Copy @p len bytes from @p src into storage. */
    void writeBlock(Addr addr, const void *src, std::size_t len);

    /**
     * Apply the set bytes of @p mask from @p data to
     * [addr, addr+len): byte i is written iff bit i of @p mask is
     * set. One chunk traversal for the whole line — the write-buffer
     * commit / masked network-write fast path.
     */
    void writeMasked(Addr addr, const std::uint8_t *data,
                     std::uint64_t mask, std::size_t len);

    /** Number of chunks materialized so far (test support). */
    std::size_t chunksAllocated() const { return _chunksAllocated; }

    /** Number of directory groups materialized so far. */
    std::size_t groupsAllocated() const { return _groupsAllocated; }

    /** Host bytes resident for this store (directory + chunks). */
    std::size_t residentBytes() const;

    /** Smallest / largest supported chunk shift. */
    static constexpr unsigned minChunkShift = 9;   // 512 B
    static constexpr unsigned maxChunkShift = 24;  // 16 MiB

  private:
    /** One directory group: a run of atomic chunk pointers. */
    struct Group
    {
        std::atomic<std::uint8_t *> slots[groupSlots] = {};
    };

    static constexpr unsigned groupShift = 8;
    static_assert(groupSlots == std::size_t{1} << groupShift);

    /** Tag value meaning "last-chunk cache empty". */
    static constexpr Addr noChunk = ~Addr{0};

    /** Chunk holding @p addr, materializing it zero-filled if needed. */
    std::uint8_t *chunkFor(Addr addr);

    /** Chunk holding @p addr, or nullptr if never written. */
    const std::uint8_t *chunkIfPresent(Addr addr) const;

    /** Two-level lookup without touching the one-entry cache. */
    const std::uint8_t *
    chunkIfPresentConcurrent(Addr addr) const
    {
        const Addr key = addr >> _chunkShift;
        const Group *g =
            _groups[key >> groupShift].load(std::memory_order_acquire);
        if (!g)
            return nullptr;
        return g->slots[key & (groupSlots - 1)].load(
            std::memory_order_acquire);
    }

    void checkRange(Addr addr, std::size_t len) const;
    void destroyChunks();

    Addr _limit;
    unsigned _chunkShift;
    std::size_t _chunkSize;
    Addr _chunkMask;

    /** Top level: one slot per group; null until materialized. */
    std::vector<std::atomic<Group *>> _groups;
    std::size_t _chunksAllocated = 0;
    std::size_t _groupsAllocated = 0;

    /** One-entry chunk cache (chunk pointers are stable: chunks are
     *  never freed or reallocated once materialized). Owner-thread
     *  only: concurrent readers go through the *Concurrent path. */
    mutable Addr _cachedKey = noChunk;
    mutable std::uint8_t *_cachedChunk = nullptr;
};

} // namespace t3dsim::mem

#endif // T3DSIM_MEM_STORAGE_HH
