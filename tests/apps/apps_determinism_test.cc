/**
 * @file
 * Determinism pins for the application suite: for both apps, every
 * scheduler configuration (sequential, and the parallel scheduler at
 * 1/2/4/8 host threads) and both counter modes must finish at the
 * same simulated cycle with the same output checksum, bit for bit.
 */

#include <gtest/gtest.h>

#include "apps/bsort/bsort.hh"
#include "apps/qcd/qcd.hh"
#include "machine/machine.hh"

namespace
{

using namespace t3dsim;
using apps::Variant;

splitc::SplitcConfig
threads(int n)
{
    splitc::SplitcConfig sc;
    sc.hostThreads = n;
    return sc;
}

template <typename RunFn>
void
expectSchedulerInvariance(RunFn &&run_fn)
{
    const auto sequential = run_fn(threads(-1));
    for (int n : {1, 2, 4, 8}) {
        const auto parallel = run_fn(threads(n));
        EXPECT_EQ(parallel.elapsed, sequential.elapsed)
            << n << " host threads";
        EXPECT_EQ(parallel.checksum, sequential.checksum)
            << n << " host threads";
    }
}

TEST(AppsDeterminism, BsortSequentialVsParallel)
{
    apps::bsort::Config cfg;
    cfg.keysPerPe = 64;
    for (Variant v : {Variant::BlockingRead, Variant::Put,
                      Variant::Bulk}) {
        expectSchedulerInvariance([&](const splitc::SplitcConfig &sc) {
            auto r = apps::bsort::run(cfg, v, 8, sc);
            EXPECT_TRUE(r.sorted) << apps::variantName(v);
            return r;
        });
    }
}

TEST(AppsDeterminism, QcdSequentialVsParallel)
{
    apps::qcd::Config cfg;
    cfg.lx = cfg.ly = cfg.lz = cfg.lt = 2;
    cfg.sweeps = 1;
    for (Variant v : {Variant::BlockingRead, Variant::Get,
                      Variant::Bulk}) {
        expectSchedulerInvariance([&](const splitc::SplitcConfig &sc) {
            auto r = apps::qcd::run(cfg, v, 8, sc);
            EXPECT_TRUE(r.converged) << apps::variantName(v);
            return r;
        });
    }
}

TEST(AppsDeterminism, CountersDoNotPerturbTiming)
{
    machine::MachineConfig on = machine::MachineConfig::t3d(8);
    on.observe.counters = true;
    machine::MachineConfig off = machine::MachineConfig::t3d(8);
    off.observe.counters = false;

    apps::bsort::Config bcfg;
    bcfg.keysPerPe = 64;
    for (Variant v : apps::allVariants) {
        const auto a = apps::bsort::run(bcfg, v, on);
        const auto b = apps::bsort::run(bcfg, v, off);
        EXPECT_EQ(a.elapsed, b.elapsed) << apps::variantName(v);
        EXPECT_EQ(a.checksum, b.checksum) << apps::variantName(v);
    }

    apps::qcd::Config qcfg;
    qcfg.lx = qcfg.ly = qcfg.lz = qcfg.lt = 2;
    qcfg.sweeps = 1;
    for (Variant v : apps::allVariants) {
        const auto a = apps::qcd::run(qcfg, v, on);
        const auto b = apps::qcd::run(qcfg, v, off);
        EXPECT_EQ(a.elapsed, b.elapsed) << apps::variantName(v);
        EXPECT_EQ(a.checksum, b.checksum) << apps::variantName(v);
    }
}

TEST(AppsDeterminism, CountersStableAcrossSchedulers)
{
    machine::MachineConfig mc = machine::MachineConfig::t3d(8);
    mc.observe.counters = true;

    apps::bsort::Config cfg;
    cfg.keysPerPe = 64;
    const auto sequential =
        apps::bsort::run(cfg, Variant::Get, mc, threads(-1));
    ASSERT_TRUE(sequential.countersValid);
    for (int n : {2, 4}) {
        const auto parallel =
            apps::bsort::run(cfg, Variant::Get, mc, threads(n));
        ASSERT_TRUE(parallel.countersValid);
        EXPECT_TRUE(parallel.counters == sequential.counters)
            << n << " host threads";
    }
}

} // namespace
