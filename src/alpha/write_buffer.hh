/**
 * @file
 * Alpha 21064 write-buffer model (§2.3).
 *
 * Four entries, each one cache line (32 bytes) wide, with
 * write-merging: consecutive stores to the same line coalesce into
 * one entry as long as that entry has not yet issued to memory. The
 * probe-visible consequences modeled here:
 *
 *  - stores to the same line cost ~3 cycles (20 ns) each (merging),
 *  - a stream of line-distinct stores sustains one retirement every
 *    ~35 ns (4 entries overlapped against a 145 ns memory, §2.3),
 *  - data sits in the buffer until its drain completes; loads check
 *    the buffer *by physical address*, so a load from a synonym
 *    (same location, different DTB-Annex index, hence different
 *    physical address) bypasses the pending write and reads a stale
 *    value from memory — the hazard of §3.4,
 *  - the remote-write status bit only reflects writes that have left
 *    the processor; writes still in the buffer require an MB before
 *    polling (§4.3) — which is why blocking writes drain first.
 *
 * The buffer is drain-target agnostic: a DrainPort (implemented by
 * the node) routes local lines to the DRAM controller and annexed
 * lines to the shell's remote-write path.
 */

#ifndef T3DSIM_ALPHA_WRITE_BUFFER_HH
#define T3DSIM_ALPHA_WRITE_BUFFER_HH

#include <array>
#include <cstdint>

#include "probes/counters.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace t3dsim::alpha
{

/** Maximum bytes per write-buffer entry (one cache line). */
constexpr std::size_t wbLineBytes = 32;

/** Where drained write-buffer lines go. */
class DrainPort
{
  public:
    /** Outcome of scheduling one line drain. */
    struct DrainResult
    {
        /** Time the line has been accepted by the target. */
        Cycles completion;

        /**
         * True if the port wants the buffer to keep the data and
         * deliver it via commitLine() once completion passes (local
         * memory, so that pending data stays invisible to synonym
         * reads). False if the port moved the data itself (remote).
         */
        bool deferCommit;
    };

    virtual ~DrainPort() = default;

    /**
     * Schedule the drain of one line beginning no earlier than
     * @p ready.
     *
     * @param ready Earliest cycle the drain may begin.
     * @param pa Line-aligned physical address.
     * @param data wbLineBytes bytes of line data.
     * @param byte_mask Bit i set iff data[i] is valid.
     * @param tag Routing tag latched when the store issued (the DTB
     *        annex is consulted at address translation, before the
     *        write buffer, so the destination travels with the
     *        entry). 0 for plain local stores.
     */
    virtual DrainResult drainLine(Cycles ready, Addr pa,
                                  const std::uint8_t *data,
                                  std::uint32_t byte_mask,
                                  std::uint32_t tag) = 0;

    /** Deliver a deferred local line to backing storage. */
    virtual void commitLine(Addr pa, const std::uint8_t *data,
                            std::uint32_t byte_mask) = 0;
};

/** The 4-entry merging write buffer. */
class WriteBuffer
{
  public:
    struct Config
    {
        /** Number of entries; 21064: 4 (§2.3). */
        unsigned entries = 4;

        /**
         * Cycles an entry lingers before issuing to memory, which is
         * the window during which merging is possible.
         */
        Cycles holdoffCycles = 12;

        /** Cycles charged to a store accepted without stalling. */
        Cycles issueCycles = 3;
    };

    WriteBuffer(const Config &config, DrainPort &port);

    /**
     * Accept a store of @p len bytes (must not cross a line).
     * Stores merge only into a pending entry with the same line
     * address AND the same routing tag — two stores to one line
     * bound for different destinations must not coalesce.
     * @return Cycles charged to the storing processor (issue cost
     *         plus any full-buffer stall).
     */
    Cycles write(Cycles now, Addr pa, const void *src, std::size_t len,
                 std::uint32_t tag = 0);

    /**
     * Overlay any pending bytes overlapping [pa, pa+len) onto
     * @p buf (load forwarding by exact physical address).
     * @return true if any pending byte overlapped.
     */
    bool forward(Cycles now, Addr pa, void *buf, std::size_t len);

    /** True if any pending (uncommitted) entry overlaps the line. */
    bool holdsLine(Cycles now, Addr pa);

    /**
     * Advance the buffer's lazy machinery to @p now: issue entries
     * whose hold-off expired, and commit+free entries whose drain
     * completed. Called at the head of every memory operation, so
     * the no-work cases (nothing pending issue, nothing completed)
     * are decided inline without a function call.
     */
    void
    commitUpTo(Cycles now)
    {
        if (_unscheduled != 0 && now >= _earliestDue)
            issueDue(now);
        if (!_slots.empty() && _slots.front().scheduled &&
            _slots.front().completion <= now)
            retireCompleted(now);
    }

    /**
     * Force-issue everything and report when the buffer is empty.
     * Does not advance or commit; callers advance their clock to the
     * returned time and then call commitUpTo(). Used by MB.
     */
    Cycles drainAll(Cycles now);

    /** Entries currently occupied (after lazy advance to @p now). */
    unsigned occupancy(Cycles now);

    /** Attach (or detach, with nullptr) the node's event counters. */
    void setCounters(probes::PerfCounters *ctr) { _ctr = ctr; }

    /** Total merges performed (statistic). */
    std::uint64_t merges() const { return _merges; }

    /** Total full-buffer stall cycles (statistic). */
    Cycles stallCycles() const { return _stallCycles; }

    const Config &config() const { return _config; }

  private:
    struct Slot
    {
        Addr lineAddr = 0;
        std::uint32_t tag = 0;
        std::array<std::uint8_t, wbLineBytes> data{};
        std::uint32_t mask = 0;
        Cycles accept = 0;
        bool scheduled = false;
        Cycles completion = 0;
        bool deferCommit = false;
    };

    /** Issue (schedule) every unscheduled slot whose start <= now. */
    void issueDue(Cycles now);

    /** Issue one slot through the drain port. */
    void issueSlot(Slot &slot, Cycles ready);

    /** Free (and commit, if deferred) completed slots. */
    void retireCompleted(Cycles now);

    Config _config;
    DrainPort &_port;

    /** FIFO of occupied slots, oldest first. */
    sim::RingBuffer<Slot> _slots;

    /** Slots not yet issued to memory; issueDue() is called at the
     *  head of every memory operation and almost always has nothing
     *  to do, so it early-outs on this count and the earliest
     *  hold-off expiry instead of scanning. */
    unsigned _unscheduled = 0;

    /** Lower bound on the earliest unscheduled slot's issue time
     *  (meaningful only while _unscheduled > 0; may be stale-low
     *  after a forced issue, which merely costs one extra scan). */
    Cycles _earliestDue = 0;

    probes::PerfCounters *_ctr = nullptr;

    std::uint64_t _merges = 0;
    Cycles _stallCycles = 0;
};

} // namespace t3dsim::alpha

#endif // T3DSIM_ALPHA_WRITE_BUFFER_HH
