# Empty dependencies file for stride_probe_test.
# This may be replaced when dependencies are built.
