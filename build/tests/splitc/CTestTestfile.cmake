# CMake generated Testfile for 
# Source directory: /root/repo/tests/splitc
# Build directory: /root/repo/build/tests/splitc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/splitc/global_ptr_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/executor_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/rw_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/getput_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/store_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/bulk_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/annex_policy_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/am_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/spread_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/bulk_param_test[1]_include.cmake")
include("/root/repo/build/tests/splitc/proc_edge_test[1]_include.cmake")
