/**
 * @file
 * The optimization-variant ladder shared by every application in
 * `src/apps` (and mirroring EM3D's six Figure 9 versions, collapsed
 * to the five mechanism steps the paper's compiler story walks):
 *
 *   BlockingRead — every remote value is consumed through a blocking
 *                  Split-C read at the point of use (§4).
 *   Ghost        — remote values are copied once per step into local
 *                  ghost storage with blocking reads; compute touches
 *                  only local memory (§8's Bundle step).
 *   Get          — the ghost fill is pipelined with split-phase gets
 *                  through the binding prefetch queue (§5).
 *   Put          — the *owner* of each value pushes it into consumer
 *                  ghost slots with non-blocking puts (§5.3).
 *   Bulk         — values are staged contiguously and moved with one
 *                  bulk transfer per peer, letting the runtime pick
 *                  prefetch pipelining or the BLT by size (§6.3).
 *
 * docs/APPS.md is the handbook: per-app, which shell primitives each
 * rung exercises and the counter signature to expect.
 */

#ifndef T3DSIM_APPS_VARIANT_HH
#define T3DSIM_APPS_VARIANT_HH

namespace t3dsim::apps
{

/** The five ladder rungs, in ascending optimization order. */
enum class Variant
{
    BlockingRead,
    Ghost,
    Get,
    Put,
    Bulk,
};

/** Human-readable rung name (stable; used in reports and JSON). */
inline const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::BlockingRead:
        return "BlockingRead";
      case Variant::Ghost:
        return "Ghost";
      case Variant::Get:
        return "Get";
      case Variant::Put:
        return "Put";
      case Variant::Bulk:
        return "Bulk";
    }
    return "?";
}

/** All rungs in ladder order. */
inline constexpr Variant allVariants[] = {
    Variant::BlockingRead, Variant::Ghost, Variant::Get,
    Variant::Put,          Variant::Bulk,
};

} // namespace t3dsim::apps

#endif // T3DSIM_APPS_VARIANT_HH
