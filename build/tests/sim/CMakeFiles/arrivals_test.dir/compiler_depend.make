# Empty compiler generated dependencies file for arrivals_test.
# This may be replaced when dependencies are built.
