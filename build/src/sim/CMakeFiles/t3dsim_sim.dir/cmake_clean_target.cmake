file(REMOVE_RECURSE
  "libt3dsim_sim.a"
)
