file(REMOVE_RECURSE
  "CMakeFiles/annex_policy_test.dir/annex_policy_test.cc.o"
  "CMakeFiles/annex_policy_test.dir/annex_policy_test.cc.o.d"
  "annex_policy_test"
  "annex_policy_test.pdb"
  "annex_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annex_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
