
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alpha/cache.cc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/cache.cc.o" "gcc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/cache.cc.o.d"
  "/root/repo/src/alpha/core.cc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/core.cc.o" "gcc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/core.cc.o.d"
  "/root/repo/src/alpha/tlb.cc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/tlb.cc.o" "gcc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/tlb.cc.o.d"
  "/root/repo/src/alpha/write_buffer.cc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/write_buffer.cc.o" "gcc" "src/alpha/CMakeFiles/t3dsim_alpha.dir/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/t3dsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t3dsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
