/**
 * @file
 * Unit tests for ArrivalLog — the store_sync / AM wait substrate.
 */

#include <gtest/gtest.h>

#include "sim/arrivals.hh"
#include "sim/logging.hh"

namespace
{

using t3dsim::ArrivalLog;
using t3dsim::Cycles;

TEST(ArrivalLog, EmptyLog)
{
    ArrivalLog log;
    EXPECT_EQ(log.totalArrived(), 0u);
    EXPECT_FALSE(log.timeOfCumulative(1).has_value());
    EXPECT_EQ(log.arrivedBy(1000), 0u);
    EXPECT_EQ(log.timeOfCumulative(0).value(), 0u);
}

TEST(ArrivalLog, CumulativeThreshold)
{
    ArrivalLog log;
    log.record(10, 8);
    log.record(20, 8);
    log.record(30, 8);
    EXPECT_EQ(log.totalArrived(), 24u);
    EXPECT_EQ(log.timeOfCumulative(8).value(), 10u);
    EXPECT_EQ(log.timeOfCumulative(9).value(), 20u);
    EXPECT_EQ(log.timeOfCumulative(16).value(), 20u);
    EXPECT_EQ(log.timeOfCumulative(24).value(), 30u);
    EXPECT_FALSE(log.timeOfCumulative(25).has_value());
}

TEST(ArrivalLog, ArrivedBy)
{
    ArrivalLog log;
    log.record(10, 4);
    log.record(20, 4);
    EXPECT_EQ(log.arrivedBy(9), 0u);
    EXPECT_EQ(log.arrivedBy(10), 4u);
    EXPECT_EQ(log.arrivedBy(19), 4u);
    EXPECT_EQ(log.arrivedBy(20), 8u);
}

TEST(ArrivalLog, OutOfOrderRecordIsSorted)
{
    ArrivalLog log;
    log.record(30, 1);
    log.record(10, 1);
    log.record(20, 1);
    EXPECT_EQ(log.timeOfCumulative(1).value(), 10u);
    EXPECT_EQ(log.timeOfCumulative(2).value(), 20u);
    EXPECT_EQ(log.timeOfCumulative(3).value(), 30u);
}

TEST(ArrivalLog, ZeroAmountIgnored)
{
    ArrivalLog log;
    log.record(5, 0);
    EXPECT_EQ(log.totalArrived(), 0u);
}

TEST(ArrivalLog, ConsumePartialEntry)
{
    ArrivalLog log;
    log.record(10, 8);
    log.record(20, 8);
    log.consume(4);
    EXPECT_EQ(log.totalArrived(), 12u);
    // Remaining 4 units of the first entry still arrive at t=10.
    EXPECT_EQ(log.timeOfCumulative(4).value(), 10u);
    EXPECT_EQ(log.timeOfCumulative(5).value(), 20u);
}

TEST(ArrivalLog, ConsumeWholeEntries)
{
    ArrivalLog log;
    log.record(10, 8);
    log.record(20, 8);
    log.consume(8);
    EXPECT_EQ(log.timeOfCumulative(1).value(), 20u);
}

TEST(ArrivalLog, ConsumeTooMuchPanics)
{
    t3dsim::detail::setThrowOnError(true);
    ArrivalLog log;
    log.record(10, 4);
    EXPECT_THROW(log.consume(5), std::logic_error);
    t3dsim::detail::setThrowOnError(false);
}

TEST(ArrivalLog, ResetDropsEverything)
{
    ArrivalLog log;
    log.record(10, 4);
    log.reset();
    EXPECT_EQ(log.totalArrived(), 0u);
    EXPECT_FALSE(log.timeOfCumulative(1).has_value());
}

} // namespace
