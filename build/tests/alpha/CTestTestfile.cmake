# CMake generated Testfile for 
# Source directory: /root/repo/tests/alpha
# Build directory: /root/repo/build/tests/alpha
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/alpha/byte_ops_test[1]_include.cmake")
include("/root/repo/build/tests/alpha/cache_test[1]_include.cmake")
include("/root/repo/build/tests/alpha/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/alpha/write_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/alpha/core_test[1]_include.cmake")
