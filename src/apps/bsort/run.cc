#include "apps/bsort/bsort.hh"

#include <algorithm>

#include "apps/checksum.hh"
#include "machine/config.hh"
#include "sim/logging.hh"
#include "splitc/executor.hh"
#include "splitc/global_ptr.hh"
#include "splitc/proc.hh"

namespace t3dsim::apps::bsort
{

namespace
{

using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

/** Classify + stage: route every local key to its destination run
 *  (timed local pass; the binary search over P-1 splitters is the
 *  charged per-key cost). */
void
classifyStage(Proc &p, const Plan &plan, const Plan::PerPe &pp)
{
    auto &core = p.node().core();
    const std::uint32_t n = plan.config.keysPerPe;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t v = core.loadU64(plan.keysBase + Addr{i} * 8);
        p.compute(plan.config.classifyCycles);
        core.storeU64(plan.stageBase + Addr{pp.stageSlotOfKey[i]} * 8,
                      v);
    }
    core.mb(); // staged keys must be in memory before consumers pull
}

/** The keys this PE routed to itself: a local copy, identical on
 *  every rung so the variants differ only in the remote mechanism. */
void
copySelfBlock(Proc &p, const Plan &plan, const Plan::PerPe &pp)
{
    auto &core = p.node().core();
    for (const auto &in : pp.inBlocks) {
        if (in.src != p.pe())
            continue;
        for (std::uint32_t k = 0; k < in.count; ++k) {
            core.storeU64(
                plan.recvBase + Addr{in.recvFirst + k} * 8,
                core.loadU64(plan.stageBase +
                             Addr{in.srcStageFirst + k} * 8));
        }
    }
}

/**
 * Exchange, consumer-pull with blocking reads. @p interleaved is the
 * BlockingRead rung: keys are pulled round-robin across the source
 * PEs (the order a naive merge loop consumes them), so under the
 * single-reload annex policy nearly every read pays the 23-cycle
 * annex update. The Ghost rung pulls run-by-run: one annex update
 * per producer, then annex hits.
 */
void
exchangePullBlocking(Proc &p, const Plan &plan, const Plan::PerPe &pp,
                     bool interleaved)
{
    auto &core = p.node().core();
    if (!interleaved) {
        for (const auto &in : pp.inBlocks) {
            if (in.src == p.pe())
                continue;
            for (std::uint32_t k = 0; k < in.count; ++k) {
                const std::uint64_t v = p.readU64(GlobalAddr::make(
                    in.src,
                    plan.stageBase + Addr{in.srcStageFirst + k} * 8));
                core.storeU64(plan.recvBase + Addr{in.recvFirst + k} * 8,
                              v);
            }
        }
        return;
    }
    std::uint32_t max_count = 0;
    for (const auto &in : pp.inBlocks)
        if (in.src != p.pe())
            max_count = std::max(max_count, in.count);
    for (std::uint32_t k = 0; k < max_count; ++k) {
        for (const auto &in : pp.inBlocks) {
            if (in.src == p.pe() || k >= in.count)
                continue;
            const std::uint64_t v = p.readU64(GlobalAddr::make(
                in.src,
                plan.stageBase + Addr{in.srcStageFirst + k} * 8));
            core.storeU64(plan.recvBase + Addr{in.recvFirst + k} * 8,
                          v);
        }
    }
}

/** Exchange, consumer-pull with pipelined split-phase gets. */
void
exchangeGet(Proc &p, const Plan &plan, const Plan::PerPe &pp)
{
    for (const auto &in : pp.inBlocks) {
        if (in.src == p.pe())
            continue;
        for (std::uint32_t k = 0; k < in.count; ++k) {
            p.getU64(GlobalAddr::make(
                         in.src,
                         plan.stageBase + Addr{in.srcStageFirst + k} * 8),
                     plan.recvBase + Addr{in.recvFirst + k} * 8);
        }
    }
    p.sync();
}

/** Exchange, producer-push with non-blocking puts. */
void
exchangePut(Proc &p, const Plan &plan, const Plan::PerPe &pp)
{
    auto &core = p.node().core();
    for (const auto &out : pp.outBlocks) {
        if (out.dst == p.pe())
            continue;
        for (std::uint32_t k = 0; k < out.count; ++k) {
            const std::uint64_t v = core.loadU64(
                plan.stageBase + Addr{out.stageFirst + k} * 8);
            p.putU64(GlobalAddr::make(
                         out.dst,
                         plan.recvBase + Addr{out.recvFirst + k} * 8),
                     v);
        }
    }
    p.sync();
}

/** Exchange, one bulk transfer per producer run (prefetch pipeline
 *  or BLT, chosen by the §6.3 crossover). */
void
exchangeBulk(Proc &p, const Plan &plan, const Plan::PerPe &pp)
{
    for (const auto &in : pp.inBlocks) {
        if (in.src == p.pe())
            continue;
        p.bulkGet(plan.recvBase + Addr{in.recvFirst} * 8,
                  GlobalAddr::make(in.src,
                                   plan.stageBase +
                                       Addr{in.srcStageFirst} * 8),
                  std::size_t{in.count} * 8);
    }
    p.sync();
}

/**
 * LSD radix sort of recv[0 .. count): 64/radixBits passes, each a
 * timed counting sweep plus a timed scatter between the recv and
 * scratch ping-pong buffers — the local half of the superstep moves
 * real bytes like everything else.
 */
void
radixSortLocal(Proc &p, const Plan &plan, std::uint32_t count)
{
    auto &core = p.node().core();
    const std::uint32_t bits = plan.config.radixBits;
    T3D_ASSERT(bits > 0 && 64 % bits == 0 && bits <= 16,
               "radixBits must divide 64 (got ", bits, ")");
    const std::uint32_t passes = 64 / bits;
    const std::uint32_t buckets = 1u << bits;

    Addr src = plan.recvBase;
    Addr dst = plan.scratchBase;
    std::vector<std::uint32_t> first(buckets);
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const std::uint32_t shift = pass * bits;

        std::fill(first.begin(), first.end(), 0);
        for (std::uint32_t k = 0; k < count; ++k) {
            const std::uint64_t v = core.loadU64(src + Addr{k} * 8);
            p.compute(plan.config.radixCountCycles);
            ++first[(v >> shift) & (buckets - 1)];
        }

        // Bucket prefix sum: register/cache-resident, one charged
        // cycle per bucket.
        std::uint32_t at = 0;
        for (std::uint32_t b = 0; b < buckets; ++b) {
            const std::uint32_t c = first[b];
            first[b] = at;
            at += c;
        }
        p.compute(buckets);

        for (std::uint32_t k = 0; k < count; ++k) {
            const std::uint64_t v = core.loadU64(src + Addr{k} * 8);
            p.compute(plan.config.radixScatterCycles);
            const std::uint32_t b = (v >> shift) & (buckets - 1);
            core.storeU64(dst + Addr{first[b]++} * 8, v);
        }
        std::swap(src, dst);
    }
    // Even pass counts end back in recvBase; odd ones need a final
    // copy so the validated output location is variant-independent.
    if (src != plan.recvBase) {
        for (std::uint32_t k = 0; k < count; ++k)
            core.storeU64(plan.recvBase + Addr{k} * 8,
                          core.loadU64(src + Addr{k} * 8));
    }
}

} // namespace

Result
run(const Config &config, Variant variant, std::uint32_t pes,
    const splitc::SplitcConfig &splitc_config)
{
    return run(config, variant, machine::MachineConfig::t3d(pes),
               splitc_config);
}

Result
run(const Config &config, Variant variant,
    const machine::MachineConfig &machine_config,
    const splitc::SplitcConfig &splitc_config)
{
    machine::Machine machine(machine_config);
    Plan plan = Plan::build(machine, config);

    auto program = [&](Proc &p) -> ProcTask {
        const Plan::PerPe &pp = plan.perPe[p.pe()];

        classifyStage(p, plan, pp);
        co_await p.barrier();

        copySelfBlock(p, plan, pp);
        switch (variant) {
          case Variant::BlockingRead:
            exchangePullBlocking(p, plan, pp, /*interleaved=*/true);
            break;
          case Variant::Ghost:
            exchangePullBlocking(p, plan, pp, /*interleaved=*/false);
            break;
          case Variant::Get:
            exchangeGet(p, plan, pp);
            break;
          case Variant::Put:
            exchangePut(p, plan, pp);
            break;
          case Variant::Bulk:
            exchangeBulk(p, plan, pp);
            break;
        }
        co_await p.barrier();

        radixSortLocal(p, plan, pp.recvCount);
        co_await p.barrier();
        co_return;
    };

    const auto finish = splitc::runSpmd(machine, program, splitc_config);

    Result result;
    result.variant = variant;
    result.elapsed = *std::max_element(finish.begin(), finish.end());
    result.keysTotal = std::uint64_t{config.keysPerPe} * plan.pes;
    result.usPerKey = cyclesToUs(result.elapsed) / config.keysPerPe;

    // Validation: the concatenation of the per-PE sorted receive
    // blocks (bucket ranges ascend with PE number) must equal
    // std::sort of the gathered input keys.
    std::vector<std::uint64_t> gathered;
    gathered.reserve(result.keysTotal);
    for (PeId pe = 0; pe < plan.pes; ++pe) {
        auto &storage = machine.node(pe).storage();
        for (std::uint32_t k = 0; k < plan.perPe[pe].recvCount; ++k)
            gathered.push_back(
                storage.readU64(plan.recvBase + Addr{k} * 8));
    }
    std::vector<std::uint64_t> reference;
    reference.reserve(result.keysTotal);
    for (PeId pe = 0; pe < plan.pes; ++pe)
        for (std::uint32_t i = 0; i < config.keysPerPe; ++i)
            reference.push_back(keyOf(config.seed, pe, i));
    std::sort(reference.begin(), reference.end());
    result.sorted = gathered == reference;
    result.checksum = apps::fnv1a(gathered);

    if (machine.countersEnabled()) {
        result.counters = machine.totalCounters();
        result.countersValid = true;
    }
    return result;
}

} // namespace t3dsim::apps::bsort
