file(REMOVE_RECURSE
  "libt3dsim_splitc.a"
)
