/**
 * @file
 * §7.3/§7.4 messaging cost table: hardware message send (813 ns) vs.
 * the OS-mediated receive (25 us interrupt, +33 us handler switch),
 * fetch&increment (~1 us), and the shared-memory Active-Message
 * replacement (deposit ~2.9 us, dispatch ~1.5 us).
 */

#include <iostream>

#include "machine/machine.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

using namespace t3dsim;

int
main()
{
    std::cout << "Messaging primitives (Sec. 7.3/7.4)\n";

    machine::Machine m(machine::MachineConfig::t3d(4));

    double send_ns = 0, recv_us = 0, handler_us = 0, fi_us = 0,
        deposit_us = 0, dispatch_us = 0;

    splitc::runSpmd(m, [&](splitc::Proc &p) -> splitc::ProcTask {
        p.registerAmHandler(
            32, [](splitc::Proc &,
                   const std::array<std::uint64_t, 4> &) {});
        if (p.pe() == 0) {
            // Hardware message send.
            Cycles t0 = p.now();
            p.sendMessage(1, {1, 2, 3, 4});
            send_ns = cyclesToNs(p.now() - t0);
            p.sendMessage(1, {5, 6, 7, 8});

            // Fetch&increment (register 1; register 0 allocates AM
            // queue slots).
            t0 = p.now();
            p.fetchInc(1, 1);
            fi_us = cyclesToUs(p.now() - t0);

            // AM deposit.
            p.amDeposit(1, 32, {0, 0, 0, 0}); // warm
            t0 = p.now();
            p.amDeposit(1, 32, {1, 2, 3, 4});
            deposit_us = cyclesToUs(p.now() - t0);
            co_await p.barrier();
        } else if (p.pe() == 1) {
            co_await p.barrier();
            // Hardware message receive (interrupt path).
            Cycles t0 = p.now();
            p.takeMessage(false);
            recv_us = cyclesToUs(p.now() - t0);
            // Receive with dispatch to a user handler.
            t0 = p.now();
            p.takeMessage(true);
            handler_us = cyclesToUs(p.now() - t0);

            // AM dispatch.
            t0 = p.now();
            p.amPoll();
            dispatch_us = cyclesToUs(p.now() - t0);
            p.amPoll();
        } else {
            co_await p.barrier();
        }
        co_return;
    });

    probes::Table t({"operation", "model", "paper"});
    t.addRow("message send (PAL call)",
             std::to_string(send_ns) + " ns", "813 ns (122 cy)");
    t.addRow("message receive (interrupt)",
             std::to_string(recv_us) + " us", "25 us");
    t.addRow("receive + handler switch",
             std::to_string(handler_us) + " us", "25 + 33 us");
    t.addRow("fetch&increment (remote)",
             std::to_string(fi_us) + " us", "~1 us");
    t.addRow("AM deposit (4+2 words)",
             std::to_string(deposit_us) + " us", "2.9 us");
    t.addRow("AM dispatch + access",
             std::to_string(dispatch_us) + " us", "1.5 us");
    t.print();

    std::cout << "conclusion (Sec. 7.4): building message queues from "
                 "shared-memory primitives beats the 25 us interrupt "
                 "path by an order of magnitude\n";
    return 0;
}
