/**
 * @file
 * Tests of the EM3D application (§8): graph construction invariants,
 * identical numerical results across all six versions, the 0.37
 * us/edge all-local target, and the Figure 9 performance ordering.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "em3d/em3d.hh"
#include "machine/machine.hh"

namespace
{

using namespace t3dsim;
using em3d::Config;
using em3d::Graph;
using em3d::Version;

Config
smallConfig(double remote)
{
    Config cfg;
    cfg.nodesPerPe = 40;
    cfg.degree = 5;
    cfg.remoteFraction = remote;
    cfg.iterations = 1;
    return cfg;
}

TEST(Em3dGraph, EdgeCounts)
{
    machine::Machine m(machine::MachineConfig::t3d(4));
    Graph g = Graph::build(m, smallConfig(0.3));
    for (PeId pe = 0; pe < 4; ++pe) {
        EXPECT_EQ(g.perPe[pe].e.edges.size(), 40u * 5u);
    }
    // Transpose preserves the total edge count.
    std::size_t h_total = 0;
    for (PeId pe = 0; pe < 4; ++pe)
        h_total += g.perPe[pe].h.edges.size();
    EXPECT_EQ(h_total, 4u * 40u * 5u);
    EXPECT_EQ(g.edgesPerPe(), 2u * 40u * 5u);
}

TEST(Em3dGraph, ZeroRemoteFractionHasNoFetches)
{
    machine::Machine m(machine::MachineConfig::t3d(4));
    Graph g = Graph::build(m, smallConfig(0.0));
    for (PeId pe = 0; pe < 4; ++pe) {
        EXPECT_TRUE(g.perPe[pe].e.fetches.empty());
        EXPECT_TRUE(g.perPe[pe].h.fetches.empty());
    }
}

TEST(Em3dGraph, GhostSlotsAreGroupedByProducer)
{
    machine::Machine m(machine::MachineConfig::t3d(4));
    Graph g = Graph::build(m, smallConfig(0.6));
    for (PeId pe = 0; pe < 4; ++pe) {
        const auto &side = g.perPe[pe].e;
        std::uint32_t expected_slot = 0;
        for (const auto &group : side.groups) {
            EXPECT_EQ(group.firstSlot, expected_slot);
            expected_slot += group.srcIdxs.size();
            EXPECT_NE(group.srcPe, pe);
        }
        EXPECT_EQ(expected_slot, side.ghostCount);
    }
}

TEST(Em3dGraph, PushesMirrorFetches)
{
    machine::Machine m(machine::MachineConfig::t3d(4));
    Graph g = Graph::build(m, smallConfig(0.5));
    // Total pushes of H values == total E-side fetches.
    std::size_t fetches = 0, pushes = 0;
    for (PeId pe = 0; pe < 4; ++pe) {
        fetches += g.perPe[pe].e.fetches.size();
        pushes += g.perPe[pe].e.pushes.size();
    }
    EXPECT_EQ(fetches, pushes);
}

TEST(Em3dGraph, DeterministicForSeed)
{
    machine::Machine m1(machine::MachineConfig::t3d(4));
    machine::Machine m2(machine::MachineConfig::t3d(4));
    Graph a = Graph::build(m1, smallConfig(0.4));
    Graph b = Graph::build(m2, smallConfig(0.4));
    ASSERT_EQ(a.perPe[1].e.edges.size(), b.perPe[1].e.edges.size());
    for (std::size_t i = 0; i < a.perPe[1].e.edges.size(); ++i) {
        EXPECT_EQ(a.perPe[1].e.edges[i].srcPe,
                  b.perPe[1].e.edges[i].srcPe);
        EXPECT_EQ(a.perPe[1].e.edges[i].srcIdx,
                  b.perPe[1].e.edges[i].srcIdx);
    }
}

TEST(Em3dRun, AllVersionsProduceIdenticalResults)
{
    const Config cfg = smallConfig(0.4);
    double reference = 0;
    bool first = true;
    for (Version v : em3d::allVersions) {
        auto result = em3d::run(cfg, v, 4);
        ASSERT_TRUE(std::isfinite(result.checksum));
        if (first) {
            reference = result.checksum;
            first = false;
            EXPECT_NE(reference, 0.0);
        } else {
            EXPECT_DOUBLE_EQ(result.checksum, reference)
                << em3d::versionName(v);
        }
    }
}

TEST(Em3dRun, MultipleIterationsStayConsistent)
{
    Config cfg = smallConfig(0.3);
    cfg.iterations = 3;
    const auto simple = em3d::run(cfg, Version::Simple, 4);
    const auto bulk = em3d::run(cfg, Version::Bulk, 4);
    EXPECT_DOUBLE_EQ(simple.checksum, bulk.checksum);
}

TEST(Em3dRun, AllLocalOptimizedNear037usPerEdge)
{
    // §8: "we reduce the cost of processing an edge to 0.37 usec
    // when all the edges are local" (5.5 MFlops per processor).
    Config cfg;
    cfg.nodesPerPe = 200;
    cfg.degree = 10;
    cfg.remoteFraction = 0.0;
    const auto result = em3d::run(cfg, Version::Bulk, 4);
    EXPECT_NEAR(result.usPerEdge, 0.37, 0.06);
}

TEST(Em3dRun, Figure9OrderingAtHighRemoteFraction)
{
    Config cfg;
    cfg.nodesPerPe = 100;
    cfg.degree = 8;
    cfg.remoteFraction = 0.6;
    double us[6];
    int i = 0;
    for (Version v : em3d::allVersions)
        us[i++] = em3d::run(cfg, v, 8).usPerEdge;

    const double simple = us[0], bundle = us[1], unroll = us[2],
        get = us[3], put = us[4], bulk = us[5];

    EXPECT_GT(simple, bundle) << "ghost caching wins";
    EXPECT_GT(bundle, unroll) << "unrolled compute wins";
    EXPECT_GT(unroll, get) << "pipelined gets win";
    EXPECT_GT(get, put) << "puts have less overhead than gets";
    EXPECT_GT(put, bulk) << "bulk avoids repeated annex set-up";
}

TEST(Em3dRun, RemoteFractionScalesCost)
{
    Config cfg;
    cfg.nodesPerPe = 100;
    cfg.degree = 8;
    double prev = 0;
    for (double remote : {0.0, 0.3, 0.9}) {
        cfg.remoteFraction = remote;
        const auto result = em3d::run(cfg, Version::Simple, 8);
        EXPECT_GT(result.usPerEdge, prev);
        prev = result.usPerEdge;
    }
}

} // namespace
