/**
 * @file
 * The validator: predicted-vs-simulated error bands across the app
 * ladders (docs/MODEL.md §6). Each row diffs one (workload, rung,
 * pes) point: the composed prediction against the simulated elapsed
 * cycles, with the composer's reliability flags carried through so
 * rows where linear composition is known to break are marked rather
 * than silently averaged in.
 */

#ifndef T3DSIM_MODEL_VALIDATE_HH
#define T3DSIM_MODEL_VALIDATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/apps_sig.hh"
#include "model/primitives.hh"

namespace t3dsim::model
{

/** One predicted-vs-simulated comparison. */
struct ErrorRow
{
    std::string workload;
    std::string rung;
    double pes = 0;
    double simulatedCycles = 0;
    double predictedCycles = 0;

    /** Signed relative error, percent (+ = model over-predicts). */
    double errorPct = 0;

    /** Composer reliability flags (limit paths, unknown counters). */
    std::vector<std::string> flags;
};

/** Error bands over a set of rows. */
struct ValidationReport
{
    std::vector<ErrorRow> rows;

    /** Median |error| %, over all rows / per workload. */
    double medianAbsErrorPct = 0;
    std::vector<std::pair<std::string, double>> perWorkloadMedian;

    double maxAbsErrorPct = 0;

    /** Rows whose |error| exceeded the band or carried flags. */
    std::size_t flaggedRows = 0;
};

/** Diff measured ladder points against the composed predictions. */
std::vector<ErrorRow>
validateLadder(const CostModel &model,
               const std::vector<LadderPoint> &ladder);

/**
 * Aggregate rows into a report. @p band_pct is the acceptance band:
 * rows beyond it (or carrying composer flags) count as flagged.
 */
ValidationReport summarize(std::vector<ErrorRow> rows,
                           double band_pct = 10.0);

/** Render the report as a markdown table (for EXPERIMENTS.md). */
std::string reportMarkdown(const ValidationReport &report);

/**
 * Run the full validation matrix: em3d + bsort + qcd ladders at each
 * torus size in @p pe_counts, diffed against @p model.
 */
ValidationReport
validateAll(const CostModel &model,
            const std::vector<std::uint32_t> &pe_counts,
            double band_pct = 10.0);

} // namespace t3dsim::model

#endif // T3DSIM_MODEL_VALIDATE_HH
