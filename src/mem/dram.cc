#include "mem/dram.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace t3dsim::mem
{

DramController::DramController(const DramConfig &config)
    : _config(config), _banks(config.numBanks)
{
    T3D_ASSERT(_config.numBanks > 0, "DRAM needs at least one bank");
    T3D_ASSERT(_config.pageBytes > 0, "DRAM page size must be positive");
    if (std::has_single_bit(_config.pageBytes) &&
        std::has_single_bit(std::uint64_t{_config.numBanks})) {
        _pow2Geometry = true;
        _pageShift = static_cast<unsigned>(
            std::countr_zero(_config.pageBytes));
        _bankShift = static_cast<unsigned>(
            std::countr_zero(_config.numBanks));
    }
}

std::uint32_t
DramController::bankOf(Addr addr) const
{
    if (_pow2Geometry) [[likely]] {
        return static_cast<std::uint32_t>(
            (addr >> _pageShift) & (_config.numBanks - 1));
    }
    return static_cast<std::uint32_t>(
        (addr / _config.pageBytes) % _config.numBanks);
}

std::uint64_t
DramController::rowOf(Addr addr) const
{
    if (_pow2Geometry) [[likely]]
        return addr >> (_pageShift + _bankShift);
    return addr / (_config.pageBytes * _config.numBanks);
}

DramAccess
DramController::access(Cycles when, Addr addr)
{
    const std::uint32_t bank = bankOf(addr);
    const std::uint64_t row = rowOf(addr);
    BankState &state = _banks[bank];

    const bool off_page = state.openRow != row;
    const bool same_bank = _anyAccess && _lastBank == bank;
    if (off_page)
        T3D_COUNT(_ctr, dramPageMisses);
    else
        T3D_COUNT(_ctr, dramPageHits);

    Cycles cost = _config.pageHitCycles;
    if (off_page) {
        cost += _config.offPagePenaltyCycles;
        if (same_bank)
            cost += _config.sameBankPenaltyCycles;
    }

    const Cycles start = std::max(when, state.busyUntil);
    const Cycles complete = start + cost;

    // An in-page access only occupies the bank for the pipelined
    // column-access interval; a row change holds it for the full
    // duration.
    state.busyUntil = off_page ? complete
                               : start + _config.pipelinedBusyCycles;
    state.openRow = row;
    _lastBank = bank;
    _anyAccess = true;

    return {start, complete, complete - when, off_page};
}

void
DramController::reset()
{
    for (auto &bank : _banks)
        bank = BankState{};
    _lastBank = ~std::uint32_t{0};
    _anyAccess = false;
}

} // namespace t3dsim::mem
