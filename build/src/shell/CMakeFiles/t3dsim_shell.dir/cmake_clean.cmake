file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_shell.dir/annex.cc.o"
  "CMakeFiles/t3dsim_shell.dir/annex.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/barrier.cc.o"
  "CMakeFiles/t3dsim_shell.dir/barrier.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/blt.cc.o"
  "CMakeFiles/t3dsim_shell.dir/blt.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/fetch_inc.cc.o"
  "CMakeFiles/t3dsim_shell.dir/fetch_inc.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/msg_queue.cc.o"
  "CMakeFiles/t3dsim_shell.dir/msg_queue.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/prefetch.cc.o"
  "CMakeFiles/t3dsim_shell.dir/prefetch.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/remote_engine.cc.o"
  "CMakeFiles/t3dsim_shell.dir/remote_engine.cc.o.d"
  "CMakeFiles/t3dsim_shell.dir/shell.cc.o"
  "CMakeFiles/t3dsim_shell.dir/shell.cc.o.d"
  "libt3dsim_shell.a"
  "libt3dsim_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
