/**
 * @file
 * Per-node hardware event counters (the observability layer's
 * "what happened" half; see docs/OBSERVABILITY.md).
 *
 * The paper infers the shell's internal behaviour from end-to-end
 * latencies; the model can expose those events directly. Every node
 * owns one PerfCounters record; components hold a pointer to it that
 * is null until the machine is constructed with
 * MachineConfig::observe.counters set (or T3DSIM_COUNTERS in the
 * environment). Bump sites go through the T3D_COUNT macros, so a
 * disabled run costs one predicted branch per site and a build with
 * -DT3DSIM_COUNTERS=OFF compiles the sites away entirely.
 *
 * Counters are host-side bookkeeping only: bumping them never reads
 * or advances a Clock, so enabling them cannot perturb simulated
 * timing (pinned by tests/splitc/obs_invariance_test.cc).
 */

#ifndef T3DSIM_PROBES_COUNTERS_HH
#define T3DSIM_PROBES_COUNTERS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace t3dsim::probes
{

/**
 * The counter taxonomy: X(field, unit, bump site, paper artifact).
 * docs/OBSERVABILITY.md documents each row; keep the two in sync.
 */
#define T3D_PERF_COUNTERS(X)                                                \
    X(l1Hits, "loads", "alpha/core.cc loadBytes()", "Fig. 1")               \
    X(l1Misses, "loads", "alpha/core.cc loadBytes()", "Fig. 1")             \
    X(tlbMisses, "translations", "alpha/tlb.cc accessScan()", "Fig. 1")     \
    X(wbMerges, "stores", "alpha/write_buffer.cc write()", "Fig. 2")        \
    X(wbStalls, "stores", "alpha/write_buffer.cc write()", "Fig. 2")        \
    X(wbStallCycles, "cycles", "alpha/write_buffer.cc write()", "Fig. 2")   \
    X(wbRetires, "lines", "alpha/write_buffer.cc retireCompleted()",        \
      "Fig. 2")                                                             \
    X(dramPageHits, "accesses", "mem/dram.cc access()", "Fig. 1")           \
    X(dramPageMisses, "accesses", "mem/dram.cc access()", "Fig. 1")         \
    X(annexHits, "accesses", "splitc/proc.cc annexFor()", "Tab. §3")        \
    X(annexFaults, "updates", "shell/shell.cc setAnnex()", "Tab. §3")       \
    X(prefetchIssues, "requests", "shell/prefetch.cc issue()", "Fig. 6")    \
    X(prefetchDrains, "pops", "shell/prefetch.cc pop()", "Fig. 6")          \
    X(prefetchFullStalls, "drains", "splitc/proc.cc getU64()", "Fig. 6")    \
    X(bltTransfers, "transfers", "shell/blt.cc invoke()", "Fig. 8")         \
    X(bltSetupCycles, "cycles", "shell/blt.cc invoke()", "Tab. §6.3")       \
    X(bltTransferCycles, "cycles", "shell/blt.cc start*()", "Fig. 8")       \
    X(fetchIncRoundTrips, "ops",                                            \
      "shell/remote_engine.cc fetchInc() + splitc/proc.cc fetchInc()",      \
      "Tab. §7")                                                            \
    X(barriers, "barriers", "splitc/proc.cc startBarrier()", "§7.5")        \
    X(barrierWaitCycles, "cycles", "splitc/proc.cc noteBarrierComplete()",  \
      "§7.5")                                                               \
    X(msgSends, "messages", "shell/remote_engine.cc sendMessage()",         \
      "Tab. §7")                                                            \
    X(msgInterrupts, "messages", "shell/msg_queue.cc dequeue()", "Tab. §7") \
    X(msgSpills, "messages", "shell/msg_queue.cc deliver()", "§7.3")        \
    X(prefetchSpills, "requests", "shell/prefetch.cc issue()", "Fig. 6")    \
    X(bltEngineStalls, "stalls", "shell/blt.cc invoke()", "§6.2")           \
    X(amOverflows, "deposits", "splitc/proc.cc amDeposit()", "§7.4")        \
    X(remoteReads, "reads", "shell/remote_engine.cc read()", "Fig. 4")      \
    X(remoteWriteLines, "lines",                                            \
      "shell/remote_engine.cc injectWriteLine()", "Fig. 5/7")               \
    X(torusHops, "hops", "machine/machine.cc transitCycles()", "Fig. 4")

/** Static description of one counter (for reports and docs). */
struct CounterInfo
{
    const char *name;
    const char *unit;
    const char *site;
    const char *paper;
};

/** One node's hardware event counters. Plain data; zero-initialized. */
struct PerfCounters
{
#define T3D_PERF_COUNTER_FIELD(name, unit, site, paper)                     \
    std::uint64_t name = 0;
    T3D_PERF_COUNTERS(T3D_PERF_COUNTER_FIELD)
#undef T3D_PERF_COUNTER_FIELD

    /** Pointer-to-member table, parallel to infos(). */
    static constexpr std::array memberTable = {
#define T3D_PERF_COUNTER_MEMBER(name, unit, site, paper)                    \
    &PerfCounters::name,
        T3D_PERF_COUNTERS(T3D_PERF_COUNTER_MEMBER)
#undef T3D_PERF_COUNTER_MEMBER
    };

    static constexpr std::size_t numCounters = memberTable.size();

    /** Name/unit/site/paper-artifact rows, in field order. */
    static const std::array<CounterInfo, numCounters> &infos();

    std::uint64_t value(std::size_t i) const { return this->*memberTable[i]; }
    void setValue(std::size_t i, std::uint64_t v) { this->*memberTable[i] = v; }

    PerfCounters &
    operator+=(const PerfCounters &o)
    {
        for (auto m : memberTable)
            this->*m += o.*m;
        return *this;
    }

    bool operator==(const PerfCounters &) const = default;
};

/** Sum of per-PE counter records (machine-wide totals). */
PerfCounters aggregate(const std::vector<PerfCounters> &per_pe);

/**
 * Torus routing statistics collected alongside the per-node
 * counters (net::Torus::recordRoute): per-dimension traversal
 * totals and per-link occupancy.
 */
struct TorusLinkStats
{
    std::uint32_t dx = 1, dy = 1, dz = 1;

    /** Total link traversals along each dimension. */
    std::array<std::uint64_t, 3> dimTraversals{};

    /**
     * Traversals of the link leaving node n along dimension d, at
     * index n * 3 + d (both ring directions combined). Empty when no
     * route was ever recorded.
     */
    std::vector<std::uint64_t> linkTraversals;
};

/**
 * Machine-wide counter report as JSON: schema, totals, per-PE
 * records, and (when @p torus is non-null) the routing statistics.
 */
void writeCountersJson(std::ostream &os,
                       const std::vector<PerfCounters> &per_pe,
                       const TorusLinkStats *torus = nullptr);

/** Counter report as CSV: one row per PE plus a "total" row. */
void writeCountersCsv(std::ostream &os,
                      const std::vector<PerfCounters> &per_pe);

/** Per-run observability switches (part of machine::MachineConfig). */
struct ObsConfig
{
    /** Collect per-node PerfCounters (and torus link statistics). */
    bool counters = false;

    /** Record shell events into a TraceSink. */
    bool trace = false;

    /** If non-empty, write the counter JSON report here when the
     *  splitc::Scheduler finishes a run (Machine::flushObservability). */
    std::string countersPath;

    /** If non-empty, write the Chrome trace JSON here at flush. */
    std::string tracePath;

    /** Upper bound on recorded trace events (memory/file safety on
     *  full-size runs); excess events are counted as dropped. */
    std::size_t traceEventCap = 1u << 20;

    /**
     * Environment overrides, applied by the Machine constructor:
     * T3DSIM_COUNTERS / T3DSIM_TRACE enable the corresponding
     * channel; a value other than "1" doubles as the dump path, and
     * "0" forces the channel off.
     */
    static ObsConfig fromEnv(ObsConfig base);
};

} // namespace t3dsim::probes

/**
 * Counter bump macros. `ctr` is a (possibly null) PerfCounters
 * pointer; a null pointer or a -DT3DSIM_COUNTERS=OFF build makes the
 * bump vanish. Never touches simulated time.
 */
#ifdef T3DSIM_NO_COUNTERS
#define T3D_OBS_ENABLED 0
#else
#define T3D_OBS_ENABLED 1
#endif

#define T3D_COUNT(ctr, field)                                               \
    do {                                                                    \
        if (T3D_OBS_ENABLED && (ctr))                                       \
            ++(ctr)->field;                                                 \
    } while (0)

#define T3D_COUNT_ADD(ctr, field, n)                                        \
    do {                                                                    \
        if (T3D_OBS_ENABLED && (ctr))                                       \
            (ctr)->field += (n);                                            \
    } while (0)

/** Guarded call on a (possibly null) TraceSink pointer. */
#define T3D_TRACE(sink, call)                                               \
    do {                                                                    \
        if (T3D_OBS_ENABLED && (sink))                                      \
            (sink)->call;                                                   \
    } while (0)

#endif // T3DSIM_PROBES_COUNTERS_HH
