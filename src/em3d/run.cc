#include "em3d/em3d.hh"

#include <algorithm>
#include <bit>

#include "machine/config.hh"
#include "sim/logging.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

namespace t3dsim::em3d
{

namespace
{

using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

/** Per-version knobs the phases switch on. */
struct Plan
{
    Version version;
    Cycles computeCycles;
    bool useGhosts;
};

Plan
planFor(Version v, const Config &cfg)
{
    switch (v) {
      case Version::Simple:
        return {v, cfg.computeSimpleCycles, false};
      case Version::Bundle:
        return {v, cfg.computeBundleCycles, true};
      case Version::Unroll:
      case Version::Get:
      case Version::Put:
      case Version::Bulk:
        return {v, cfg.computeOptCycles, true};
    }
    T3D_PANIC("unknown EM3D version");
}

/**
 * Ghost-fill phase for one side using the consumer-pull mechanisms
 * (Bundle/Unroll: blocking reads; Get: pipelined gets).
 */
void
fillGhostsPull(Proc &p, const Graph::Side &side, Addr producer_base,
               Addr ghost_base, bool pipelined)
{
    auto &core = p.node().core();
    if (!pipelined) {
        for (const auto &f : side.fetches) {
            const std::uint64_t v = p.readU64(GlobalAddr::make(
                f.srcPe, producer_base + Addr{f.srcIdx} * 8));
            core.storeU64(ghost_base + Addr{f.ghostSlot} * 8, v);
        }
        return;
    }
    for (const auto &f : side.fetches) {
        p.getU64(GlobalAddr::make(f.srcPe,
                                  producer_base + Addr{f.srcIdx} * 8),
                 ghost_base + Addr{f.ghostSlot} * 8);
    }
    p.sync();
}

/** Producer-push fill (Put version). */
void
fillGhostsPush(Proc &p, const Graph::Side &side, Addr producer_base,
               Addr ghost_base)
{
    auto &core = p.node().core();
    for (const auto &push : side.pushes) {
        const std::uint64_t v =
            core.loadU64(producer_base + Addr{push.srcIdx} * 8);
        p.putU64(GlobalAddr::make(push.dstPe,
                                  ghost_base + Addr{push.ghostSlot} * 8),
                 v);
    }
    p.sync();
}

/** Producer-side staging for the Bulk version. */
void
stageOutgoing(Proc &p, const Graph::Side &side, Addr producer_base,
              Addr stage_base)
{
    auto &core = p.node().core();
    for (const auto &sg : side.stageGroups) {
        Addr out = stage_base + sg.stageOffset;
        for (std::uint32_t idx : sg.srcIdxs) {
            core.storeU64(out,
                          core.loadU64(producer_base + Addr{idx} * 8));
            out += 8;
        }
    }
    core.mb(); // stage must be in memory before consumers pull
}

/** Consumer-side bulk gets for the Bulk version. */
void
fillGhostsBulk(Proc &p, const Graph::Side &side, Addr ghost_base,
               Addr stage_base)
{
    for (const auto &group : side.groups) {
        p.bulkGet(ghost_base + Addr{group.firstSlot} * 8,
                  GlobalAddr::make(group.srcPe,
                                   stage_base +
                                       group.producerStageOffset),
                  group.srcIdxs.size() * 8);
    }
    p.sync();
}

/**
 * Compute phase: for every destination node, accumulate the weighted
 * sum of its dependencies and leapfrog-update the value. Edges are
 * grouped by destination; versions differ only in where the value
 * comes from (ghost/local vs. a possibly-remote blocking read) and
 * in the per-edge instruction overhead charged.
 */
void
computeSide(Proc &p, const Plan &plan, const Graph::Side &side,
            Addr vals_base, Addr producer_base)
{
    auto &core = p.node().core();
    std::size_t i = 0;
    const std::size_t n_edges = side.edges.size();
    while (i < n_edges) {
        const std::uint32_t dst = side.edges[i].dstIdx;
        double acc = 0;
        while (i < n_edges && side.edges[i].dstIdx == dst) {
            const Edge &edge = side.edges[i];
            double v;
            if (plan.useGhosts) {
                v = std::bit_cast<double>(
                    core.loadU64(edge.localValueAddr));
            } else {
                v = p.readF64(GlobalAddr::make(
                    edge.srcPe, producer_base + Addr{edge.srcIdx} * 8));
            }
            acc += edge.weight * v;
            p.compute(plan.computeCycles);
            ++i;
        }
        const Addr dst_addr = vals_base + Addr{dst} * 8;
        const double old_val =
            std::bit_cast<double>(core.loadU64(dst_addr));
        core.storeU64(dst_addr,
                      std::bit_cast<std::uint64_t>(0.5 * old_val +
                                                   acc));
        p.compute(4); // node-level loop overhead
    }
}

} // namespace

Result
run(const Config &config, Version version, std::uint32_t pes,
    const splitc::SplitcConfig &splitc_config)
{
    return run(config, version, machine::MachineConfig::t3d(pes),
               splitc_config);
}

Result
run(const Config &config, Version version,
    const machine::MachineConfig &machine_config,
    const splitc::SplitcConfig &splitc_config)
{
    machine::Machine machine(machine_config);
    Graph g = Graph::build(machine, config);
    const Plan plan = planFor(version, config);

    auto program = [&](Proc &p) -> ProcTask {
        const Graph::PerPe &pp = g.perPe[p.pe()];
        for (int iter = 0; iter < config.iterations; ++iter) {
            // ---- E update: consume H values ----
            switch (plan.version) {
              case Version::Simple:
                break;
              case Version::Bundle:
              case Version::Unroll:
                fillGhostsPull(p, pp.e, g.hValsBase, g.eGhostBase,
                               false);
                break;
              case Version::Get:
                fillGhostsPull(p, pp.e, g.hValsBase, g.eGhostBase,
                               true);
                break;
              case Version::Put:
                fillGhostsPush(p, pp.e, g.hValsBase, g.eGhostBase);
                break;
              case Version::Bulk:
                stageOutgoing(p, pp.e, g.hValsBase, g.stageBase);
                co_await p.barrier();
                fillGhostsBulk(p, pp.e, g.eGhostBase, g.stageBase);
                break;
            }
            co_await p.barrier();
            computeSide(p, plan, pp.e, g.eValsBase, g.hValsBase);
            co_await p.barrier();

            // ---- H update: consume E values ----
            switch (plan.version) {
              case Version::Simple:
                break;
              case Version::Bundle:
              case Version::Unroll:
                fillGhostsPull(p, pp.h, g.eValsBase, g.hGhostBase,
                               false);
                break;
              case Version::Get:
                fillGhostsPull(p, pp.h, g.eValsBase, g.hGhostBase,
                               true);
                break;
              case Version::Put:
                fillGhostsPush(p, pp.h, g.eValsBase, g.hGhostBase);
                break;
              case Version::Bulk:
                stageOutgoing(p, pp.h, g.eValsBase, g.stageBase);
                co_await p.barrier();
                fillGhostsBulk(p, pp.h, g.hGhostBase, g.stageBase);
                break;
            }
            co_await p.barrier();
            computeSide(p, plan, pp.h, g.hValsBase, g.eValsBase);
            co_await p.barrier();
        }
        co_return;
    };

    auto finish = splitc::runSpmd(machine, program, splitc_config);

    Result result;
    result.version = version;
    result.elapsed = *std::max_element(finish.begin(), finish.end());
    result.edgesPerPePerIter = g.edgesPerPe();
    const double edges = double(result.edgesPerPePerIter) *
        config.iterations;
    result.usPerEdge = cyclesToUs(result.elapsed) / edges;
    result.checksum = g.checksum(machine);
    result.modeledBytes = machine.residentModelBytes();
    if (machine.countersEnabled()) {
        result.counters = machine.totalCounters();
        result.countersValid = true;
    }
    return result;
}

} // namespace t3dsim::em3d
