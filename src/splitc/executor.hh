/**
 * @file
 * SPMD executor: one C++20 coroutine per PE, scheduled
 * lowest-logical-clock-first (conservative parallel discrete event
 * execution). Coroutines suspend only at cross-PE wait points —
 * barriers, store_sync, message receive; every other runtime
 * operation charges the local clock and returns normally.
 *
 * Host-performance design (see DESIGN.md "Host performance"): the
 * runnable set is a binary min-heap keyed by (logical clock, PE), so
 * selecting the next PE is O(log P); parked PEs are woken
 * event-driven — ArrivalLog::record and MessageQueue::deliver fire
 * node hooks that enqueue the affected PE for a wake check after the
 * current resume — instead of rescanning all P slots per step. Wake
 * checks run at exactly the point the old polling loop ran them
 * (between a resume and the next pick), so simulated timing is
 * bit-identical to the O(P)-scan scheduler; the determinism
 * regression test pins this.
 */

#ifndef T3DSIM_SPLITC_EXECUTOR_HH
#define T3DSIM_SPLITC_EXECUTOR_HH

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "splitc/config.hh"
#include "sim/arena.hh"
#include "sim/types.hh"

namespace t3dsim::splitc
{

class Proc;
class Scheduler;

/** Coroutine handle type of one PE's program. */
class ProcTask
{
  public:
    struct promise_type
    {
        std::exception_ptr exception;

        ProcTask
        get_return_object()
        {
            return ProcTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    ProcTask() = default;
    explicit ProcTask(std::coroutine_handle<promise_type> handle)
        : _handle(handle)
    {
    }

    ProcTask(ProcTask &&other) noexcept
        : _handle(std::exchange(other._handle, nullptr))
    {
    }

    ProcTask &
    operator=(ProcTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _handle = std::exchange(other._handle, nullptr);
        }
        return *this;
    }

    ProcTask(const ProcTask &) = delete;
    ProcTask &operator=(const ProcTask &) = delete;
    ~ProcTask() { destroy(); }

    std::coroutine_handle<promise_type> handle() const { return _handle; }

  private:
    void
    destroy()
    {
        if (_handle)
            _handle.destroy();
        _handle = nullptr;
    }

    std::coroutine_handle<promise_type> _handle;
};

/** A PE's program: a coroutine body receiving its runtime handle. */
using ProgramFn = std::function<ProcTask(Proc &)>;

/** Awaitable returned by Proc::barrier() / Proc::allStoreSync(). */
struct BarrierAwaiter
{
    Proc &proc;

    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<>) const;
    void await_resume() const noexcept {}
};

/** Awaitable returned by Proc::storeSync(bytes) / Proc::amWait(). */
struct StoreSyncAwaiter
{
    Proc &proc;
    std::uint64_t targetCumulative;

    /** False: wait on the store-byte log; true: on the AM log. */
    bool amLog = false;

    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<>) const;
    void await_resume() const noexcept {}
};

/** Awaitable returned by Proc::waitMessage(). */
struct MessageAwaiter
{
    Proc &proc;

    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<>) const;
    void await_resume() const noexcept {}
};

/** Per-PE scheduling state. */
enum class ProcState : std::uint8_t
{
    Ready,
    BarrierWait,
    StoreWait,
    MessageWait,
    Done,
};

/**
 * The SPMD scheduler. Owns the Proc runtime objects and coroutine
 * frames for one run.
 *
 * The base class is the sequential scheduler. ParallelScheduler
 * derives from it and overrides the virtual seams (markReady,
 * queueWakeupCheck, barrierArrive, recordStoreArrival,
 * recordAmArrival, mainLoop) to shard PEs across host threads; the
 * sequential implementations below define the reference timing that
 * the parallel scheduler must reproduce bit-identically.
 */
class Scheduler
{
  public:
    Scheduler(machine::Machine &machine, const SplitcConfig &config);
    virtual ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Run @p program on every PE to completion.
     * @return Per-PE finish times (cycles).
     */
    std::vector<Cycles> run(const ProgramFn &program);

    /** The runtime handle of PE @p pe (valid during run()). */
    Proc &proc(PeId pe);

    machine::Machine &machine() { return _machine; }
    const SplitcConfig &config() const { return _config; }

    /** @name Called by awaitables / Proc (internal) */
    /// @{
    /**
     * Park @p pe in BarrierWait and remember it on the waiter list,
     * so completing the generation wakes exactly the parked PEs
     * instead of scanning all P slots. The parallel scheduler
     * overrides this with per-shard lists (parks happen on worker
     * threads).
     */
    virtual void parkBarrier(PeId pe);

    void parkStoreWait(PeId pe, std::uint64_t target_cumulative,
                       bool am_log);
    void parkMessageWait(PeId pe);

    /**
     * Wake all barrier waiters at @p exit (last arriver calls).
     * O(waiters), not O(P): drains the waiter list(s) built by
     * parkBarrier. Wake order cannot affect scheduling order — the
     * ready heap totally orders by (clock, pe) — so the list order
     * is as deterministic as the old PE-order scan.
     */
    virtual void completeBarrier(Cycles exit);

    /**
     * PE @p pe arrived at the barrier at time @p when. The sequential
     * implementation records the arrival in the barrier network and,
     * if @p pe was the last arriver, completes the generation. The
     * parallel scheduler defers the arrival to its window-merge step
     * so the shared barrier network is only mutated serially.
     */
    virtual void barrierArrive(PeId pe, Cycles when);

    /**
     * A signaling store of @p bytes bytes landed at PE @p dst at time
     * @p when; record it in the destination's arrival log (possibly
     * waking a store_sync waiter). The parallel scheduler defers
     * cross-shard records to the window merge.
     */
    virtual void recordStoreArrival(PeId dst, Cycles when,
                                    std::uint64_t bytes);

    /** Like recordStoreArrival, for the active-message arrival log. */
    virtual void recordAmArrival(PeId dst, Cycles when,
                                 std::uint64_t count);

    /**
     * Deterministic flow account of one receiver's AM queue (§7.4).
     * The deposit path routes between the primary queue and the DRAM
     * overflow ring on these counters — sampled at the ticket claim,
     * which both schedulers serialize at the same simulated point —
     * never on a peek at the receiver's memory, whose host-instant
     * contents are not ordered by simulated time under the
     * host-parallel scheduler.
     */
    struct AmFlowCounts
    {
        /** Deposits rerouted into the overflow ring (claim side). */
        std::uint64_t spillsClaimed = 0;
        /** Messages dispatched by amPoll (receiver-published). */
        std::uint64_t dispatched = 0;
        /** Dispatches that recovered a spilled message. */
        std::uint64_t spillsDrained = 0;
    };

    /**
     * The claim-side account of PE @p pe: amDeposit bumps
     * spillsClaimed through this at the ticket claim, which the
     * schedulers already serialize (the claim is a fetch&inc grant).
     */
    AmFlowCounts &amFlow(PeId pe) { return _amFlow[pe]; }

    /**
     * Receiver publish: PE @p pe dispatched one message (@p spilled:
     * recovered from the overflow ring). The parallel scheduler
     * routes the publish through its merge stream so a sender never
     * observes a dispatch that is still in the receiver's simulated
     * future.
     */
    virtual void amPublishDispatch(PeId pe, bool spilled);

    /**
     * The flow account of PE @p pe as visible to a deposit at the
     * current serialization point (for the parallel scheduler:
     * committed state plus the calling shard's own unmerged
     * publishes).
     */
    virtual AmFlowCounts amFlowVisible(PeId pe);
    /// @}

  protected:
    /** Min-heap entry: one Ready PE keyed by its logical clock. */
    struct ReadyRef
    {
        Cycles clock;
        PeId pe;

        /** std::push_heap builds a max-heap; invert for a min-heap
         *  with ties broken toward the lowest PE (the same order the
         *  old linear scan produced). */
        bool
        operator<(const ReadyRef &other) const
        {
            if (clock != other.clock)
                return clock > other.clock;
            return pe > other.pe;
        }
    };

    /** Push @p pe (which just became Ready) onto the ready heap. */
    virtual void markReady(PeId pe);

    /** Pop the Ready PE with the smallest (clock, pe) key. */
    PeId popReady();

    /**
     * Node hook: an arrival or message landed at @p pe. Queues a
     * wake check to run after the current resume (the point the old
     * polling scheduler evaluated wait conditions).
     */
    virtual void queueWakeupCheck(PeId pe);

    /**
     * Evaluate @p pe's wait condition; move it to Ready (charging the
     * wake-up costs) if satisfied. Clears the wakeQueued flag.
     * @return True if the PE became Ready.
     */
    bool tryWake(PeId pe);

    /** Run the queued wake checks, moving satisfied PEs to Ready. */
    void drainPendingWakeups();

    /** Install / remove the per-node wakeup hooks. */
    void installHooks();
    void removeHooks();

    /**
     * Resume @p pe (which must be Ready) once. Requeues it if the
     * awaitable left it Ready.
     * @return True if the coroutine ran to completion; any exception
     *         is left in the coroutine promise for the caller.
     */
    bool resumeSlot(PeId pe);

    /** The scheduling loop proper; run() wraps it with setup and the
     *  end-of-run flush. The base implementation is sequential. */
    virtual void mainLoop();

    /** Sync, charge, and requeue one parked barrier waiter. */
    void wakeBarrierWaiter(PeId pe, Cycles exit);

    [[noreturn]] void panicDeadlock(std::size_t done) const;

    machine::Machine &_machine;
    SplitcConfig _config;

    struct Slot
    {
        std::unique_ptr<Proc> proc;
        ProcTask task;
        ProcState state = ProcState::Ready;
        std::uint64_t storeTarget = 0;
        bool storeTargetAmLog = false;

        /** A wake check for this PE is queued in _pendingWakeups. */
        bool wakeQueued = false;
    };

    std::vector<Slot> _slots;

    /** Per-receiver AM queue flow accounts (see amFlow()). */
    std::vector<AmFlowCounts> _amFlow;

    /** Ready PEs, min-heap via std::push_heap/std::pop_heap. */
    std::vector<ReadyRef> _ready;

    /** PEs with a queued wake check (FIFO). */
    std::vector<PeId> _pendingWakeups;

    /** PEs parked in BarrierWait this generation (sequential path). */
    std::vector<PeId> _barrierWaiters;

    /** PEs whose coroutine has completed. */
    std::size_t _done = 0;

    bool _running = false;

    /** Scratch arena installed on the running thread for the
     *  duration of run() (BLT staging buffers; sim/arena.hh). The
     *  parallel scheduler's workers install their own per-shard
     *  arenas instead. */
    sim::EventArena _scratchArena;
};

/**
 * Convenience entry point: build a scheduler and run @p program on
 * every PE of @p machine.
 *
 * The scheduler flavor follows config.hostThreads: -1 forces the
 * sequential scheduler, N >= 1 forces the host-parallel scheduler
 * with N worker threads, and 0 (the default) consults the
 * T3DSIM_HOST_THREADS environment variable (unset or 0 means
 * sequential).
 */
std::vector<Cycles> runSpmd(machine::Machine &machine,
                            const ProgramFn &program,
                            const SplitcConfig &config = SplitcConfig{});

} // namespace t3dsim::splitc

#endif // T3DSIM_SPLITC_EXECUTOR_HH
