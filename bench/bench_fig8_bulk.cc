/**
 * @file
 * Figure 8: bulk transfer bandwidth vs. size for every mechanism.
 *
 * Left (reads): uncached reads, cached reads (with coherence
 * flushes; flush batching above 8 KB), the prefetch queue, the block
 * transfer engine (180 us startup, 140 MB/s peak), and the Split-C
 * bulk_read that picks between them (crossover to the BLT ~16 KB).
 *
 * Right (writes): non-blocking stores (bus-limited ~90 MB/s) vs. the
 * BLT, and the Split-C bulk_write (always stores).
 */

#include <iostream>

#include "machine/machine.hh"
#include "probes/table.hh"
#include "splitc/executor.hh"
#include "splitc/proc.hh"

#include "profile.hh"

using namespace t3dsim;

namespace
{

constexpr Addr remoteBase = 0x100000;
constexpr Addr localBase = 0x400000;

enum class Mech
{
    Uncached,
    Cached,
    Prefetch,
    Blt,
    SplitcRead,
    Stores,
    BltWrite,
    SplitcWrite,
};

double
bandwidthMBps(Mech mech, std::size_t bytes)
{
    machine::Machine m(machine::MachineConfig::t3d(2));
    // Seed source data.
    for (std::size_t i = 0; i < bytes / 8; ++i) {
        m.node(1).storage().writeU64(remoteBase + 8 * i, i);
        m.node(0).storage().writeU64(localBase + 8 * i, i);
    }

    double mbps = 0;
    splitc::runSpmd(m, [&](splitc::Proc &p) -> splitc::ProcTask {
        if (p.pe() != 0)
            co_return;
        auto src = splitc::GlobalAddr::make(1, remoteBase);
        auto dst = splitc::GlobalAddr::make(1, 0x700000);
        const Cycles t0 = p.now();
        switch (mech) {
          case Mech::Uncached:
            p.bulkReadUncached(localBase, src, bytes);
            break;
          case Mech::Cached:
            p.bulkReadCached(localBase, src, bytes);
            break;
          case Mech::Prefetch:
            p.bulkReadPrefetch(localBase, src, bytes);
            break;
          case Mech::Blt:
            p.bulkReadBlt(localBase, src, bytes);
            break;
          case Mech::SplitcRead:
            p.bulkRead(localBase, src, bytes);
            break;
          case Mech::Stores:
            p.bulkWriteStores(dst, localBase, bytes);
            break;
          case Mech::BltWrite:
            p.bulkWriteBlt(dst, localBase, bytes);
            break;
          case Mech::SplitcWrite:
            p.bulkWrite(dst, localBase, bytes);
            break;
        }
        p.node().mb();
        const double secs = cyclesToNs(p.now() - t0) * 1e-9;
        mbps = (double(bytes) / 1e6) / secs;
        co_return;
    });
    return mbps;
}

} // namespace

int
main()
{
    const std::vector<std::size_t> sizes = {
        8,        32,       64,        128,       512,
        2 * KiB,  8 * KiB,  16 * KiB,  64 * KiB,  256 * KiB,
        1 * MiB,
    };

    std::cout << "Figure 8 (left): bulk READ bandwidth (MB/s)\n";
    probes::Table reads({"size", "uncached", "cached", "prefetch",
                         "BLT", "Split-C"});
    for (auto bytes : sizes) {
        reads.addRow(bench::sizeLabel(bytes),
                     bandwidthMBps(Mech::Uncached, bytes),
                     bandwidthMBps(Mech::Cached, bytes),
                     bandwidthMBps(Mech::Prefetch, bytes),
                     bandwidthMBps(Mech::Blt, bytes),
                     bandwidthMBps(Mech::SplitcRead, bytes));
    }
    reads.print();
    std::cout
        << "paper: uncached best at 8 B; prefetch best 128 B-16 KB "
           "(cached wins only at 32/64 B);\n"
        << "       BLT best above ~16 KB, peaking at ~140 MB/s "
           "(Sec. 6.2)\n\n";

    std::cout << "Figure 8 (right): bulk WRITE bandwidth (MB/s)\n";
    probes::Table writes({"size", "stores", "BLT", "Split-C"});
    for (auto bytes : sizes) {
        writes.addRow(bench::sizeLabel(bytes),
                      bandwidthMBps(Mech::Stores, bytes),
                      bandwidthMBps(Mech::BltWrite, bytes),
                      bandwidthMBps(Mech::SplitcWrite, bytes));
    }
    writes.print();
    std::cout << "paper: non-blocking stores superior at every size, "
                 "peaking at ~90 MB/s (bus limited)\n";

    return 0;
}
