/**
 * @file
 * Centralized machine configurations. Every calibration constant in
 * the model lives in (or is reachable from) these structs; presets
 * reproduce the two machines of the paper: the CRAY-T3D node (§2.2)
 * and the DEC Alpha workstation used for comparison in Figure 1.
 */

#ifndef T3DSIM_MACHINE_CONFIG_HH
#define T3DSIM_MACHINE_CONFIG_HH

#include <cstdint>

#include "alpha/core.hh"
#include "alpha/tlb.hh"
#include "alpha/write_buffer.hh"
#include "mem/dram.hh"
#include "mem/storage.hh"
#include "probes/counters.hh"
#include "shell/config.hh"
#include "sim/types.hh"

namespace t3dsim::machine
{

/** Full configuration of a T3D machine. */
struct MachineConfig
{
    /** Number of processing elements. */
    std::uint32_t numPes = 32;

    /** On-chip data cache: 8 KB, 32-byte lines (§1.2). */
    std::uint64_t dcacheBytes = 8 * KiB;
    std::uint64_t dcacheLineBytes = 32;

    /** Node DRAM: 22-cycle access, 16 KB pages, 4 banks (§2.2). */
    mem::DramConfig dram{};

    /** Core instruction costs. */
    alpha::CoreConfig core{};

    /** Huge pages: no observable TLB cost on the T3D (§2.2). */
    alpha::Tlb::Config tlb{
        .entries = 32,
        .pageBytes = 4 * MiB,
        .missPenaltyCycles = 35,
    };

    /** 4-entry merging write buffer (§2.3). */
    alpha::WriteBuffer::Config writeBuffer{};

    /** Shell timing (§3-§7). */
    shell::ShellConfig shell{};

    /** Torus hop cost: 2-3 cycles per hop (§4.2). */
    Cycles hopCycles = 2;

    /**
     * log2 of the node Storage's lazy chunk size; 0 = auto. Auto
     * keeps the historical 64 KiB chunks on small machines (fewer,
     * larger allocations on the hot path) and drops to 4 KiB chunks
     * once the torus is large enough that per-touched-region
     * granularity dominates the host footprint (DESIGN.md §11).
     */
    unsigned storageChunkShift = 0;

    /** PE count at which the auto chunk size switches to 4 KiB. */
    static constexpr std::uint32_t fineChunkPes = 2048;

    /** The storageChunkShift this config resolves to. */
    unsigned
    resolvedStorageChunkShift() const
    {
        if (storageChunkShift != 0)
            return storageChunkShift;
        return numPes >= fineChunkPes ? 12u
                                      : mem::Storage::defaultChunkShift;
    }

    /**
     * Observability switches (counters, shell-event trace, dump
     * paths). Off by default; the Machine constructor additionally
     * honours the T3DSIM_COUNTERS / T3DSIM_TRACE environment
     * variables. See docs/OBSERVABILITY.md.
     */
    probes::ObsConfig observe{};

    /** Canonical T3D preset. */
    static MachineConfig
    t3d(std::uint32_t pes = 32)
    {
        MachineConfig config;
        config.numPes = pes;
        return config;
    }
};

/** Configuration of the DEC Alpha workstation (Figure 1, right). */
struct WorkstationConfig
{
    std::uint64_t l1Bytes = 8 * KiB;
    std::uint64_t l1LineBytes = 32;

    /** 512 KB board-level cache (§2.2). */
    std::uint64_t l2Bytes = 512 * KiB;
    std::uint64_t l2LineBytes = 32;

    /**
     * Workstation memory: ~300 ns (45 cycles) per access (§2.2);
     * stream bandwidth about half of the T3D's.
     */
    mem::DramConfig dram{
        .pageBytes = 16 * KiB,
        .numBanks = 2,
        .pageHitCycles = 45,
        .offPagePenaltyCycles = 6,
        .sameBankPenaltyCycles = 6,
        .pipelinedBusyCycles = 10,
    };

    alpha::CoreConfig core{};

    /**
     * Standard 8 KB pages: the TLB inflection at 8 KB stride in
     * Figure 1 (right) comes from here.
     */
    alpha::Tlb::Config tlb{
        .entries = 32,
        .pageBytes = 8 * KiB,
        .missPenaltyCycles = 35,
    };

    alpha::WriteBuffer::Config writeBuffer{};

    static WorkstationConfig
    dec3000()
    {
        return WorkstationConfig{};
    }
};

} // namespace t3dsim::machine

#endif // T3DSIM_MACHINE_CONFIG_HH
