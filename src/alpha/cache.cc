#include "alpha/cache.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace t3dsim::alpha
{

DirectMappedCache::DirectMappedCache(std::uint64_t size_bytes,
                                     std::uint64_t line_bytes)
    : _numLines(size_bytes / line_bytes), _lineBytes(line_bytes),
      _indexMask(_numLines - 1),
      _lineShift(static_cast<unsigned>(std::countr_zero(line_bytes))),
      _tagShift(static_cast<unsigned>(std::countr_zero(line_bytes)) +
                static_cast<unsigned>(std::countr_zero(_numLines))),
      _sectors((_numLines + sectorLines - 1) / sectorLines, nullptr)
{
    T3D_ASSERT(std::has_single_bit(size_bytes),
               "cache size must be a power of two");
    T3D_ASSERT(std::has_single_bit(line_bytes),
               "cache line size must be a power of two");
    T3D_ASSERT(size_bytes >= line_bytes, "cache smaller than one line");
    T3D_ASSERT(line_bytes >= sizeof(std::uint32_t),
               "cache line smaller than a tag word");
}

DirectMappedCache::DirectMappedCache(DirectMappedCache &&other) noexcept
    : _numLines(other._numLines), _lineBytes(other._lineBytes),
      _indexMask(other._indexMask), _lineShift(other._lineShift),
      _tagShift(other._tagShift), _sectors(std::move(other._sectors)),
      _sectorsAllocated(other._sectorsAllocated)
{
    other._sectors.clear();
    other._sectorsAllocated = 0;
}

DirectMappedCache &
DirectMappedCache::operator=(DirectMappedCache &&other) noexcept
{
    if (this != &other) {
        destroySectors();
        _numLines = other._numLines;
        _lineBytes = other._lineBytes;
        _indexMask = other._indexMask;
        _lineShift = other._lineShift;
        _tagShift = other._tagShift;
        _sectors = std::move(other._sectors);
        _sectorsAllocated = other._sectorsAllocated;
        other._sectors.clear();
        other._sectorsAllocated = 0;
    }
    return *this;
}

DirectMappedCache::~DirectMappedCache() { destroySectors(); }

void
DirectMappedCache::destroySectors()
{
    for (auto *tags : _sectors)
        delete[] tags;
}

std::uint32_t *
DirectMappedCache::materializeSector(std::uint64_t s)
{
    auto *tags = new std::uint32_t[sectorAllocWords()];
    std::fill_n(tags, sectorLines, invalidTag);
    // Line data left uninitialized: a lane is only readable after its
    // tag is set by fill(), which overwrites the whole payload.
    _sectors[s] = tags;
    ++_sectorsAllocated;
    return tags;
}

void
DirectMappedCache::read(Addr pa, void *dst, std::size_t len) const
{
    T3D_ASSERT(probe(pa), "reading a line that is not cached: pa=", pa);
    const std::uint64_t idx = indexOf(pa);
    const std::uint32_t *tags = _sectors[idx >> sectorShift];
    const std::uint64_t lane = idx & (sectorLines - 1);
    std::size_t off = pa & (_lineBytes - 1);
    T3D_ASSERT(off + len <= _lineBytes, "cache read crosses line");
    std::memcpy(dst, sectorData(tags) + lane * _lineBytes + off, len);
}

void
DirectMappedCache::invalidateAll()
{
    for (auto *tags : _sectors)
        if (tags)
            std::fill_n(tags, sectorLines, invalidTag);
}

std::uint64_t
DirectMappedCache::validLines() const
{
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < _sectors.size(); ++s) {
        const std::uint32_t *tags = _sectors[s];
        if (!tags)
            continue;
        const std::uint64_t lanes =
            std::min<std::uint64_t>(sectorLines,
                                    _numLines - s * sectorLines);
        for (std::uint64_t lane = 0; lane < lanes; ++lane)
            n += tags[lane] != invalidTag ? 1 : 0;
    }
    return n;
}

std::size_t
DirectMappedCache::residentBytes() const
{
    return sizeof(DirectMappedCache) +
           _sectors.capacity() * sizeof(_sectors[0]) +
           _sectorsAllocated * sectorAllocWords() * sizeof(std::uint32_t);
}

} // namespace t3dsim::alpha
