file(REMOVE_RECURSE
  "CMakeFiles/annex_test.dir/annex_test.cc.o"
  "CMakeFiles/annex_test.dir/annex_test.cc.o.d"
  "annex_test"
  "annex_test.pdb"
  "annex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
