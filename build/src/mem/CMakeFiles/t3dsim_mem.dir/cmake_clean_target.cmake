file(REMOVE_RECURSE
  "libt3dsim_mem.a"
)
