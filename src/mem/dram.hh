/**
 * @file
 * Page-mode DRAM timing model.
 *
 * Models exactly the phenomena the paper's §2.2/§2.3 probes expose on
 * the T3D node memory:
 *
 *  - a flat in-page access time (145 ns / 22 cycles on the T3D),
 *  - an off-page (row change) penalty of ~60 ns / 9 cycles that
 *    appears once the address stride reaches the DRAM page size
 *    (16 KB),
 *  - an additional same-bank penalty of ~60 ns / 9 cycles when
 *    consecutive accesses hit the same one of the 4 interleaved banks
 *    with a row change (64 KB strides), exposing the full memory
 *    cycle time of 264 ns / 40 cycles,
 *  - pipelining of in-page accesses, which is what lets the 4-entry
 *    write buffer sustain one retirement every ~35 ns (§2.3).
 *
 * Banks are interleaved at DRAM-page granularity: bank =
 * (addr / pageBytes) % numBanks, row = addr / (pageBytes * numBanks).
 */

#ifndef T3DSIM_MEM_DRAM_HH
#define T3DSIM_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "probes/counters.hh"
#include "sim/types.hh"

namespace t3dsim::mem
{

/** Static timing parameters of one node's DRAM. */
struct DramConfig
{
    /** Bytes per DRAM page (row); T3D: 16 KB (§2.2). */
    std::uint64_t pageBytes = 16 * KiB;

    /** Number of interleaved banks; T3D: 4 (§2.2). */
    std::uint32_t numBanks = 4;

    /** In-page access latency; T3D: 22 cycles = 145 ns (§2.2). */
    Cycles pageHitCycles = 22;

    /** Extra cycles for a row change; T3D: 9 cycles = 60 ns (§2.2). */
    Cycles offPagePenaltyCycles = 9;

    /**
     * Further extra cycles when a row change follows an access to the
     * same bank, exposing the full memory cycle time; T3D: 9 more
     * cycles for a 40-cycle / 264 ns total (§2.2).
     */
    Cycles sameBankPenaltyCycles = 9;

    /**
     * Bank occupancy of a pipelined in-page access. Column accesses
     * to an open row stream at this interval, which is what the write
     * buffer's ~35 ns steady-state retirement rate reflects (§2.3).
     */
    Cycles pipelinedBusyCycles = 4;
};

/** Result of scheduling one DRAM access. */
struct DramAccess
{
    /** When the access actually began (>= requested time). */
    Cycles start;

    /** When the data was available / write committed. */
    Cycles complete;

    /** complete - requested time: latency seen by the requester. */
    Cycles latency;

    /** True if the access required a row change. */
    bool offPage;
};

/**
 * Timing-only DRAM controller for one node. Data movement is handled
 * separately by Storage; this class answers "when does the access
 * finish" while tracking open rows and bank occupancy.
 */
class DramController
{
  public:
    explicit DramController(const DramConfig &config = DramConfig{});

    /** Schedule one access to @p addr requested at time @p when. */
    DramAccess access(Cycles when, Addr addr);

    /** Bank index holding @p addr. */
    std::uint32_t bankOf(Addr addr) const;

    /** Row index of @p addr within its bank. */
    std::uint64_t rowOf(Addr addr) const;

    const DramConfig &config() const { return _config; }

    /**
     * Attach (or detach, with nullptr) the owning node's event
     * counters. Per-requester remote views bump the *owning* node's
     * record: the counters describe this memory, whoever drives it.
     */
    void setCounters(probes::PerfCounters *ctr) { _ctr = ctr; }

    /** Forget open-row and occupancy state (test support). */
    void reset();

  private:
    struct BankState
    {
        std::uint64_t openRow = ~std::uint64_t{0};
        Cycles busyUntil = 0;
    };

    DramConfig _config;
    std::vector<BankState> _banks;

    /** Shift/mask forms of the bank math when pageBytes and numBanks
     *  are powers of two (the hardware-realistic configs); falls
     *  back to division otherwise. access() runs per memory access,
     *  so the divisions are worth avoiding. */
    bool _pow2Geometry = false;
    unsigned _pageShift = 0;
    unsigned _bankShift = 0;

    /** Bank used by the most recent access (any bank). */
    std::uint32_t _lastBank = ~std::uint32_t{0};
    bool _anyAccess = false;

    probes::PerfCounters *_ctr = nullptr;
};

} // namespace t3dsim::mem

#endif // T3DSIM_MEM_DRAM_HH
