file(REMOVE_RECURSE
  "CMakeFiles/t3dsim_mem.dir/dram.cc.o"
  "CMakeFiles/t3dsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/t3dsim_mem.dir/storage.cc.o"
  "CMakeFiles/t3dsim_mem.dir/storage.cc.o.d"
  "libt3dsim_mem.a"
  "libt3dsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3dsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
