/**
 * @file
 * Output digest shared by the applications: every app reports an
 * FNV-1a checksum of its gathered result so benches and tests can
 * pin bit-identity across variants, schedulers and counter modes
 * with one 64-bit compare.
 */

#ifndef T3DSIM_APPS_CHECKSUM_HH
#define T3DSIM_APPS_CHECKSUM_HH

#include <cstdint>
#include <vector>

namespace t3dsim::apps
{

/** FNV-1a over the little-endian bytes of a u64 sequence. */
inline std::uint64_t
fnv1a(const std::vector<std::uint64_t> &xs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t x : xs) {
        for (int b = 0; b < 8; ++b) {
            h ^= (x >> (8 * b)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

} // namespace t3dsim::apps

#endif // T3DSIM_APPS_CHECKSUM_HH
