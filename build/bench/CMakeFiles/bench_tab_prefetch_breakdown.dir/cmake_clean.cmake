file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_prefetch_breakdown.dir/bench_tab_prefetch_breakdown.cc.o"
  "CMakeFiles/bench_tab_prefetch_breakdown.dir/bench_tab_prefetch_breakdown.cc.o.d"
  "bench_tab_prefetch_breakdown"
  "bench_tab_prefetch_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_prefetch_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
