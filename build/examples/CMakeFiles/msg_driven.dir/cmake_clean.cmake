file(REMOVE_RECURSE
  "CMakeFiles/msg_driven.dir/msg_driven.cpp.o"
  "CMakeFiles/msg_driven.dir/msg_driven.cpp.o.d"
  "msg_driven"
  "msg_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
