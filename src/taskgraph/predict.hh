/**
 * @file
 * The `"mode": "predict"` fast path: a level-structured analytical
 * estimate of a lowered task graph's makespan from the fitted
 * per-primitive cost model (src/model, docs/MODEL.md), with no
 * machine construction or simulation. Each superstep is priced per
 * PE from its work list — compute, fold/stage memory traffic, and
 * the per-mechanism transfer terms — then levels compose as
 * sum-of-per-level-maxima plus the fitted barrier scaling.
 *
 * This is an estimate, not the cycle model: docs/TASKGRAPH.md
 * "predict vs simulate" explains when each answer is the right one.
 */

#ifndef T3DSIM_TASKGRAPH_PREDICT_HH
#define T3DSIM_TASKGRAPH_PREDICT_HH

#include "model/compose.hh"
#include "taskgraph/lower.hh"

namespace t3dsim::taskgraph
{

/** Predicted makespan cycles + named breakdown + model flags. */
model::Prediction predictGraph(const TaskGraph &graph, const Plan &plan,
                               const model::CostModel &model);

} // namespace t3dsim::taskgraph

#endif // T3DSIM_TASKGRAPH_PREDICT_HH
