#include "taskgraph/run.hh"

#include <algorithm>
#include <vector>

#include "machine/config.hh"
#include "machine/machine.hh"
#include "splitc/executor.hh"
#include "splitc/global_ptr.hh"
#include "splitc/proc.hh"

namespace t3dsim::taskgraph
{

namespace
{

using splitc::GlobalAddr;
using splitc::Proc;
using splitc::ProcTask;

constexpr std::uint64_t kAmTag = 0x7467; // "tg"
constexpr std::uint64_t kFoldSeed = 0x9e3779b97f4a7c15ull;

/** SplitMix64 finalizer: the deterministic value generator for task
 *  results and edge payload words. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Edge payload word @p w as a pure function of the producer task's
 *  result — what the producer stages and the consumer must fold. */
std::uint64_t
payloadWord(std::uint64_t producer_result, std::uint32_t edge,
            std::uint32_t w)
{
    return mix64(producer_result ^ (std::uint64_t{edge} << 32) ^ w);
}

/** Host-side digest of a cycles vector. */
std::uint64_t
fnvCycles(const std::vector<Cycles> &xs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Cycles x : xs) {
        h ^= x;
        h *= 0x100000001b3ull;
    }
    return h;
}

struct ProgramContext
{
    const TaskGraph *graph;
    const Plan *plan;
    /** Task index -> in-edge indices, in edge order. */
    std::vector<std::vector<std::uint32_t>> inEdges;
};

ProcTask
runPe(Proc &p, const ProgramContext &ctx)
{
    const TaskGraph &graph = *ctx.graph;
    const Plan &plan = *ctx.plan;
    const PeId me = p.pe();

    // The handler writes each deposit's payload words straight into
    // the edge's consumer buffer (raw storage, like the stress
    // harness's handlers): distinct edges hit distinct words, so
    // dispatch order never matters.
    p.registerAmHandler(
        kAmTag, [&plan](Proc &self, const std::array<std::uint64_t, 4> &a) {
            const LoweredEdge &le =
                plan.loweredEdges[static_cast<std::uint32_t>(a[0])];
            for (std::uint32_t w = 0; w < le.words; ++w)
                self.node().storage().writeU64(le.bufAddr + Addr{w} * 8,
                                               a[1 + w]);
        });

    for (std::uint32_t level = 0; level < plan.levels; ++level) {
        const PeLevelWork &work = plan.work[me][level];

        // Phase A: fold inputs, compute, stage outputs.
        for (std::uint32_t t : work.tasks) {
            const Task &task = graph.tasks[t];
            std::uint64_t acc = kFoldSeed ^ t;
            for (std::uint32_t ei : ctx.inEdges[t]) {
                const LoweredEdge &le = plan.loweredEdges[ei];
                for (std::uint32_t w = 0; w < le.words; ++w)
                    acc = mix64(
                        acc ^
                        p.readU64(GlobalAddr::make(me,
                                                   le.bufAddr + Addr{w} * 8)));
            }
            p.compute(task.cycles +
                      task.flops * plan.options.flopCycles);
            const std::uint64_t result = mix64(acc);
            p.writeU64(GlobalAddr::make(me, plan.taskResultAddr[t]),
                       result);
            for (std::uint32_t ei = 0; ei < plan.loweredEdges.size();
                 ++ei) {
                const LoweredEdge &le = plan.loweredEdges[ei];
                if (graph.edges[ei].src != t)
                    continue;
                for (std::uint32_t w = 0; w < le.words; ++w)
                    p.writeU64(
                        GlobalAddr::make(me, le.stagingAddr + Addr{w} * 8),
                        payloadWord(result, ei, w));
            }
        }

        // Staging must be globally visible to phase-B pulls.
        co_await p.barrier();

        // Phase B: deliver every cross-PE edge produced this level.
        bool puts_issued = false;
        for (std::uint32_t ei : work.push) {
            const LoweredEdge &le = plan.loweredEdges[ei];
            switch (le.mech) {
              case Mechanism::Store:
                for (std::uint32_t w = 0; w < le.words; ++w) {
                    const std::uint64_t v = p.readU64(GlobalAddr::make(
                        me, le.stagingAddr + Addr{w} * 8));
                    p.storeU64(GlobalAddr::make(le.dstPe,
                                                le.bufAddr + Addr{w} * 8),
                               v);
                }
                break;
              case Mechanism::Put:
                for (std::uint32_t w = 0; w < le.words; ++w) {
                    const std::uint64_t v = p.readU64(GlobalAddr::make(
                        me, le.stagingAddr + Addr{w} * 8));
                    p.putU64(GlobalAddr::make(le.dstPe,
                                              le.bufAddr + Addr{w} * 8),
                             v);
                }
                puts_issued = true;
                break;
              case Mechanism::Am: {
                std::array<std::uint64_t, 4> args{ei, 0, 0, 0};
                for (std::uint32_t w = 0; w < le.words; ++w)
                    args[1 + w] = p.readU64(GlobalAddr::make(
                        me, le.stagingAddr + Addr{w} * 8));
                p.amDeposit(le.dstPe, kAmTag, args);
                break;
              }
              case Mechanism::Message: {
                std::array<std::uint64_t, 4> words{ei, 0, 0, 0};
                for (std::uint32_t w = 0; w < le.words; ++w)
                    words[1 + w] = p.readU64(GlobalAddr::make(
                        me, le.stagingAddr + Addr{w} * 8));
                p.sendMessage(le.dstPe, words);
                break;
              }
              default:
                break;
            }
        }
        for (std::uint32_t ei : work.pull) {
            const LoweredEdge &le = plan.loweredEdges[ei];
            const GlobalAddr src =
                GlobalAddr::make(le.srcPe, le.stagingAddr);
            if (le.mech == Mechanism::Blt)
                p.bulkReadBlt(le.bufAddr, src, std::size_t{le.words} * 8);
            else
                p.bulkGet(le.bufAddr, src, std::size_t{le.words} * 8);
        }
        if (puts_issued || !work.pull.empty())
            p.sync();

        for (std::uint32_t m = 0; m < work.expectMessages; ++m) {
            co_await p.waitMessage();
            const shell::Message msg = p.takeMessage(false);
            const LoweredEdge &le =
                plan.loweredEdges[static_cast<std::uint32_t>(
                    msg.words[0])];
            for (std::uint32_t w = 0; w < le.words; ++w)
                p.writeU64(GlobalAddr::make(me, le.bufAddr + Addr{w} * 8),
                           msg.words[1 + w]);
        }
        for (std::uint32_t handled = 0; handled < work.expectAms;) {
            if (p.amPoll()) {
                ++handled;
                continue;
            }
            co_await p.amWait();
        }

        // Everything pushed this level has landed before any PE
        // starts the next level's folds.
        co_await p.allStoreSync();
    }
    co_return;
}

} // namespace

RunResult
simulate(const TaskGraph &graph, const Plan &plan,
         const RunOptions &options)
{
    machine::MachineConfig mconfig =
        machine::MachineConfig::t3d(plan.pes);
    mconfig.observe.trace = options.trace;

    machine::Machine machine(mconfig);

    ProgramContext ctx;
    ctx.graph = &graph;
    ctx.plan = &plan;
    ctx.inEdges.resize(graph.tasks.size());
    for (std::uint32_t ei = 0; ei < graph.edges.size(); ++ei)
        ctx.inEdges[graph.edges[ei].dst].push_back(ei);

    splitc::SplitcConfig sconfig;
    sconfig.hostThreads = options.hostThreads;

    const std::vector<Cycles> finish = splitc::runSpmd(
        machine, [&ctx](Proc &p) { return runPe(p, ctx); }, sconfig);

    RunResult result;
    result.levels = plan.levels;
    result.makespanCycles =
        finish.empty() ? 0 : *std::max_element(finish.begin(), finish.end());
    result.finishHash = fnvCycles(finish);

    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (std::uint32_t t = 0; t < graph.tasks.size(); ++t) {
        const std::uint64_t r = machine.node(plan.placement[t])
                                    .storage()
                                    .readU64(plan.taskResultAddr[t]);
        checksum ^= r;
        checksum *= 0x100000001b3ull;
    }
    result.checksum = checksum;

    if (const probes::TraceSink *trace = machine.trace()) {
        result.traceEvents = trace->eventCount();
        if (!options.tracePath.empty())
            trace->writeFile(options.tracePath);
    }
    return result;
}

} // namespace t3dsim::taskgraph
