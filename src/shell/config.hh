/**
 * @file
 * Calibration constants of the T3D shell. Every value is annotated
 * with the paper section whose measurement it reproduces; benches
 * report modeled-vs-paper numbers side by side (see EXPERIMENTS.md).
 */

#ifndef T3DSIM_SHELL_CONFIG_HH
#define T3DSIM_SHELL_CONFIG_HH

#include "sim/types.hh"

namespace t3dsim::shell
{

/** All shell timing parameters. */
struct ShellConfig
{
    /** @name Remote read path (§4.2: uncached 91 cy, cached 114 cy) */
    /// @{
    /** Fixed shell processing, request + response, both ends. */
    Cycles readFixedCycles = 65;

    /** Extra cycles a cached read pays for its 32-byte payload. */
    Cycles cachedReadExtraCycles = 23;

    /**
     * Extra page-miss cost in the *remote* memory controller beyond
     * the local DRAM model's off-page penalty (§4.2 reports ~15
     * cycles total for remote vs 9 locally).
     */
    Cycles remoteOffPageExtraCycles = 6;
    /// @}

    /** @name Remote write path (§4.3: blocking 130 cy; §5.3: 17 cy) */
    /// @{
    /**
     * Injection cost of a drained line: base + perByte * payload.
     * A single-word line costs 5 + 1.5*8 = 17 cycles (the §5.3
     * steady-state non-blocking write cost); a full 32-byte line
     * costs ~53 cycles, which is what limits bulk stores to the
     * "apparently bus limited" 90 MB/s of §6.2.
     */
    Cycles writeInjectBaseCycles = 5;
    double writeInjectPerByteCycles = 1.5;

    /** Fixed shell processing for a write + its acknowledgement. */
    Cycles writeFixedCycles = 62;

    /** Writes allowed in flight before injection backpressure. */
    unsigned writeWindow = 4;

    /** Reading and testing the outstanding-write status bit. */
    Cycles statusPollCycles = 12;
    /// @}

    /** @name Binding prefetch (§5.2 breakdown: 4/4/80/23) */
    /// @{
    unsigned prefetchSlots = 16;
    Cycles prefetchIssueCycles = 4;
    Cycles prefetchPopCycles = 23;

    /** Fixed request+response cost excluding transit and DRAM. */
    Cycles prefetchFixedCycles = 50;

    /** Pipelined injection interval for back-to-back prefetches. */
    Cycles prefetchInjectCycles = 5;

    /**
     * Below this many outstanding prefetches an MB is needed before
     * popping to force the requests out of the write buffer (§5.2).
     */
    unsigned prefetchMbThreshold = 4;
    /// @}

    /** @name Block transfer engine (§6.2: 180 us startup, 140 MB/s) */
    /// @{
    /** OS-invocation startup overhead. */
    Cycles bltStartupCycles = usToCycles(180.0);

    /** Streaming read cost: 140 MB/s peak -> ~1.07 cy/byte. */
    double bltReadCyclesPerByte = 1.071;

    /** Streaming write cost: modeled 75 MB/s (never beats stores). */
    double bltWriteCyclesPerByte = 2.0;

    /** Extra per-element cost of strided transfers. */
    Cycles bltStridedElemCycles = 2;
    /// @}

    /** @name Synchronization (§7) */
    /// @{
    /** Hardware global-OR barrier latency (assumed; see DESIGN.md). */
    Cycles barrierLatencyCycles = 40;

    /** Fetch&increment: ~1 us total (§7.4), minus transit. */
    Cycles fetchIncFixedCycles = 142;

    /** Atomic swap fixed cost on top of transit + remote DRAM. */
    Cycles swapFixedCycles = 70;
    /// @}

    /** @name User-level message queue (§7.3) */
    /// @{
    /** PAL-call send: measured 122 cycles / 813 ns. */
    Cycles msgSendCycles = 122;

    /** OS interrupt on message arrival: 25 us. */
    Cycles msgInterruptCycles = usToCycles(25.0);

    /** Additional switch to a user-level message handler: 33 us. */
    Cycles msgHandlerCycles = usToCycles(33.0);

    /**
     * Messages the memory-resident hardware queue holds before the
     * OS spills arrivals to a DRAM overflow region (§7.3 describes a
     * fixed-size queue the system software drains). 4080 four-word
     * entries ≈ the 128 KB queue segment of the real machine.
     */
    unsigned msgQueueCapacity = 4080;

    /**
     * Extra receiver cost to recover one spilled message from the
     * DRAM overflow region at dequeue time (assumption, DESIGN.md:
     * an OS copy-back on the interrupt path, ~3 us).
     */
    Cycles msgSpillDrainCycles = usToCycles(3.0);
    /// @}

    /**
     * Extra cost charged at issue and again at pop for a binding
     * prefetch issued past the 16 hardware slots: the shell parks
     * the reply in a DRAM-side spill buffer instead of corrupting
     * the FIFO (assumption, DESIGN.md — the real hardware corrupts
     * state, so any finite cost is an upper-bound idealization).
     */
    Cycles prefetchSpillCycles = 60;

    /** Concurrent DMA transfers the BLT engine sustains; invoking
     *  it while saturated stalls the caller until a transfer
     *  completes (§6.2: one engine per node). 0 disables the limit. */
    unsigned bltMaxInFlight = 1;

    /** Annex register update via store-conditional (§3.2): 23 cy. */
    Cycles annexUpdateCycles = 23;
};

} // namespace t3dsim::shell

#endif // T3DSIM_SHELL_CONFIG_HH
